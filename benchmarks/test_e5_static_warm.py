"""Experiment E5 — the static warm-system observation (end of §5.3).

"After all nodes in the static system set a color upon the exit from
the critical section in the range [0..delta], the recoloring module is
never run again.  Thus, the response time in this special case becomes
O(delta^2), as in the algorithm of Choy and Singh."

We run Algorithm 1 on growing static lines, discard the warm-up phase,
and check (a) colors have collapsed into [0, delta], (b) warm response
time does not grow with n.
"""

from repro.analysis.stats import summarize
from repro.analysis.tables import render_table
from repro.net.geometry import line_positions
from repro.runtime.simulation import ScenarioConfig, Simulation

NS = (8, 16, 32)
UNTIL = 500.0
WARMUP = 100.0


def warm_run(n: int):
    config = ScenarioConfig(
        positions=line_positions(n, spacing=1.0),
        algorithm="alg1-greedy",
        seed=11,
        think_range=(0.5, 2.0),
    )
    sim = Simulation(config)
    result = sim.run(until=UNTIL)
    warm = [
        s.response_time for s in result.metrics.samples if s.hungry_at > WARMUP
    ]
    colors = [sim.algorithm_of(i).my_color for i in range(n)]
    delta = sim.topology.max_degree()
    return summarize(warm), colors, delta


def test_e5_static_warm_response(benchmark, report):
    data = benchmark.pedantic(
        lambda: {n: warm_run(n) for n in NS}, rounds=1, iterations=1
    )
    rows = []
    for n, (summary, colors, delta) in data.items():
        rows.append([
            n,
            f"{summary.mean:.2f}",
            f"{summary.maximum:.2f}",
            f"[{min(colors)}, {max(colors)}]",
        ])
    report(render_table(
        ["n", "warm mean rt", "warm max rt", "color range"],
        rows,
        title="E5: Algorithm 1 on static lines after warm-up — response "
              "independent of n, colors in [0, delta]",
    ))
    for n, (summary, colors, delta) in data.items():
        # Warm colors have collapsed into [0, delta] (Line 6 recoloring).
        assert all(c is not None and 0 <= c <= delta for c in colors), (
            f"n={n}: colors {colors} outside [0, {delta}]"
        )
    means = [data[n][0].mean for n in NS]
    # 4x nodes, ~same response: the O(delta^2) regime, not O(n).
    assert means[-1] <= means[0] * 2.0
