"""Experiment E9 — the randomized coloring substitution (Chapter 7).

The paper's discussion argues a randomized color-reduction procedure
can slot into the recoloring module unchanged.  This benchmark runs the
substitution end-to-end against the two deterministic procedures under
recoloring-heavy mobility, comparing response time and recoloring
traffic — and verifies that the probabilistic procedure inherits the
module's deterministic *safety* (strict monitor on throughout).
"""

from repro.analysis.stats import summarize
from repro.analysis.tables import render_table
from repro.mobility import RandomWalk
from repro.net.geometry import grid_positions
from repro.runtime.simulation import ScenarioConfig, Simulation

N = 12
UNTIL = 400.0
VARIANTS = ("alg1-greedy", "alg1-linial", "alg1-random")


def churn_run(algorithm: str):
    config = ScenarioConfig(
        positions=grid_positions(N, 1.0),
        radio_range=1.3,
        algorithm=algorithm,
        seed=37,
        think_range=(0.5, 2.0),
        delta_override=N - 1,
        mobility_factory=lambda i: (
            RandomWalk(4.0, 4.0, hop_range=(0.8, 1.5), speed=1.0,
                       pause_range=(4.0, 10.0))
            if i % 3 == 0
            else None
        ),
    )
    sim = Simulation(config)
    result = sim.run(until=UNTIL)
    recolors = sum(sim.algorithm_of(i).recolor_runs for i in range(N))
    return result, recolors


def test_e9_randomized_substitution(benchmark, report):
    data = benchmark.pedantic(
        lambda: {a: churn_run(a) for a in VARIANTS}, rounds=1, iterations=1
    )
    rows = []
    for algorithm, (result, recolors) in data.items():
        s = summarize(result.response_times)
        rows.append([
            algorithm, result.cs_entries, f"{s.mean:.2f}", f"{s.p95:.2f}",
            recolors,
            f"{result.messages_per_cs():.1f}",
            ",".join(map(str, result.starved)) or "-",
        ])
    report(render_table(
        ["coloring", "cs entries", "mean rt", "p95 rt", "recolor runs",
         "msgs/cs", "starved"],
        rows,
        title=f"E9: coloring-procedure substitution under random-walk churn "
              f"({N}-node grid)",
    ))
    # All three procedures keep the algorithm safe and live.
    for algorithm, (result, recolors) in data.items():
        assert result.cs_entries > 200, algorithm
        assert result.starved == [], algorithm
        assert recolors > N  # churn forced real recoloring beyond bootstrap
    # Comparable throughput: the substitution costs no more than 30%.
    entries = {a: r.cs_entries for a, (r, _) in data.items()}
    assert entries["alg1-random"] >= 0.7 * entries["alg1-greedy"]
