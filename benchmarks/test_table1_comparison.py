"""Experiment T1 — Table 1: comparison of algorithms.

The paper's Table 1 compares failure locality and response time across
algorithms analytically; this benchmark regenerates it empirically on a
common workload (13-node line, one mid-line crash probe) and checks the
ordering the table claims:

* failure locality: alg2 (2, optimal) < alg1 variants (small) <<
  Chandy-Misra / ordered-ids (Theta(n));
* response time: every distributed protocol beats none, the oracle
  lower-bounds all of them.
"""

from repro.analysis.tables import render_table
from repro.harness.experiments import TABLE1_ALGORITHMS, compare_algorithms

N = 13
UNTIL = 600.0


def test_table1_comparison(benchmark, report):
    rows = benchmark.pedantic(
        lambda: compare_algorithms(n=N, until=UNTIL),
        rounds=1,
        iterations=1,
    )
    by_name = {r.algorithm: r for r in rows}

    table_rows = []
    for row in rows:
        table_rows.append(
            [
                row.algorithm,
                row.cs_entries,
                f"{row.response.mean:.2f}",
                f"{row.response.p95:.2f}",
                f"{row.response.maximum:.2f}",
                f"{row.messages_per_cs:.1f}",
                row.starvation_radius if row.starvation_radius is not None else 0,
            ]
        )
    report(render_table(
        ["algorithm", "cs entries", "mean rt", "p95 rt", "max rt",
         "msgs/cs", "starve radius"],
        table_rows,
        title=f"Table 1 (empirical): {N}-node line, {UNTIL} tu, crash probe "
              f"at the middle node",
    ))

    # --- the orderings Table 1 predicts -----------------------------
    assert set(by_name) == set(TABLE1_ALGORITHMS)
    radius = {
        name: (r.starvation_radius or 0) for name, r in by_name.items()
    }
    # Optimal failure locality for Algorithm 2 (Theorem 25).
    assert radius["alg2"] <= 2
    # Algorithm 1 variants stay within max(log* n, 4) + 2 = 6 for n=13.
    assert radius["alg1-linial"] <= 6
    assert radius["alg1-greedy"] <= 6
    # The chain-based baselines hurt (almost) the whole line.
    assert radius["chandy-misra"] >= 4
    assert radius["ordered-ids"] >= 4
    # The oracle is the response-time floor.
    oracle_mean = by_name["oracle"].response.mean
    for name in TABLE1_ALGORITHMS:
        if name != "oracle":
            assert by_name[name].response.mean >= oracle_mean
    # Everyone makes progress in the failure-free run.
    for row in rows:
        assert row.cs_entries > 0
