"""Experiment F4 — Figure 4 / Lemma 2: double doorway with a return path.

Lemma 2: with up to R executions of the inner synchronous doorway's
entry code per traversal, the exit latency is O(delta * T * R).  We
sweep R at fixed delta and T; mean traversal should scale ~linearly
with R (each return re-runs the module).
"""

from repro.analysis.tables import render_table
from repro.harness.experiments import doorway_latency

RETURNS = (1, 2, 4, 8)
UNTIL = 400.0


def test_fig4_return_path_scaling(benchmark, report):
    def run():
        return [
            (r, doorway_latency("double-return", 6, module_time=1.0,
                                returns=r, until=UNTIL))
            for r in RETURNS
        ]

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    report(render_table(
        ["R (module runs)", "mean traversal", "max traversal"],
        [[r, f"{s.mean:.2f}", f"{s.maximum:.2f}"] for r, s in data],
        title="Figure 4 / Lemma 2: return-path doorway latency = "
              "O(delta * T * R)",
    ))

    means = {r: s.mean for r, s in data}
    # Each extra module run adds ~T: mean grows monotonically and
    # roughly linearly in R.
    assert means[2] > means[1]
    assert means[4] > means[2]
    assert means[8] > means[4]
    ratio = means[8] / means[1]
    assert 4.0 <= ratio <= 16.0, f"R-scaling off: x{ratio:.1f} for 8x R"
