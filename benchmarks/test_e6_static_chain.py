"""Experiment E6 — Theorem 26 vs prior work: long-chain response growth.

Algorithm 2's static response time is O(n) thanks to the notification
mechanism (thinking high-priority neighbors step aside instead of
ambushing).  The chain-prone baselines pay for convoys: worst-case
response on a saturated line grows much faster.  We saturate lines
(think time ~ 0: everyone always wants in) to surface the convoy
effect and compare growth of the worst response.
"""

from repro.analysis.stats import summarize
from repro.analysis.tables import render_table
from repro.net.geometry import line_positions
from repro.runtime.simulation import ScenarioConfig, Simulation

NS = (8, 16, 32)
UNTIL = 400.0
ALGORITHMS = ("alg2", "chandy-misra", "ordered-ids")


def saturated_run(algorithm: str, n: int):
    config = ScenarioConfig(
        positions=line_positions(n, spacing=1.0),
        algorithm=algorithm,
        seed=17,
        think_range=(0.0, 0.2),  # saturation: maximal contention
    )
    result = Simulation(config).run(until=UNTIL)
    return summarize(result.response_times)


def test_e6_static_chain_growth(benchmark, report):
    data = benchmark.pedantic(
        lambda: {
            a: {n: saturated_run(a, n) for n in NS} for a in ALGORITHMS
        },
        rounds=1,
        iterations=1,
    )
    rows = []
    for algorithm, series in data.items():
        for n, s in series.items():
            rows.append([algorithm, n, f"{s.mean:.2f}", f"{s.p95:.2f}",
                         f"{s.maximum:.2f}"])
    report(render_table(
        ["algorithm", "n", "mean rt", "p95 rt", "max rt"],
        rows,
        title="E6 / Theorem 26: saturated static lines — worst response "
              "growth (alg2 stays locality-bound)",
    ))

    def growth(algorithm):
        series = data[algorithm]
        return series[NS[-1]].maximum / series[NS[0]].maximum

    # Algorithm 2's worst response stays essentially flat as n grows.
    assert growth("alg2") <= 2.5
    # The ordered-acquisition baseline convoys: markedly faster growth.
    assert growth("ordered-ids") >= growth("alg2")
    # And in absolute terms alg2 beats both baselines' tails at n=32.
    assert data["alg2"][32].maximum <= data["ordered-ids"][32].maximum
