"""Experiment E10 — why *local* mutual exclusion (Chapter 1's pitch).

The introduction argues global mutual exclusion "appears to have fewer
potential applications": it serializes the whole network even when
conflicts are purely local.  We quantify the gap with the two oracle
modes (identical scheduling, identical workload; the only difference is
whether exclusion is per-neighborhood or network-wide) and with
Algorithm 2 as the distributed realization: as the network grows,
local-mutex throughput scales with area while global-mutex throughput
stays flat — and even the *message-paying distributed* local algorithm
overtakes the *free omniscient* global oracle.
"""

from repro.analysis.scaling import fit_power_law
from repro.analysis.tables import render_table
from repro.harness.experiments import run_static
from repro.net.geometry import line_positions

NS = (8, 16, 32, 64)
UNTIL = 300.0


def throughput(algorithm, n):
    result = run_static(
        algorithm,
        line_positions(n, spacing=1.0),
        until=UNTIL,
        think_range=(0.2, 1.0),
    )
    return result.cs_entries / UNTIL


def test_e10_local_vs_global(benchmark, report):
    def run():
        return {
            algorithm: [(n, throughput(algorithm, n)) for n in NS]
            for algorithm in (
                "oracle", "global-oracle", "token-mutex", "alg2",
            )
        }

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for algorithm, series in data.items():
        for n, tput in series:
            rows.append([algorithm, n, f"{tput:.2f}"])
    fits = {
        algorithm: fit_power_law(
            [n for n, _ in series], [t for _, t in series]
        )
        for algorithm, series in data.items()
    }
    fit_text = ", ".join(
        f"{name} x^{fit.exponent:.2f}" for name, fit in fits.items()
    )
    report(render_table(
        ["exclusion", "n", "CS entries / tu"],
        rows,
        title="E10: local vs global mutual exclusion throughput "
              f"(growing lines; growth fits: {fit_text})",
    ))

    # Local throughput scales ~linearly with n; global saturates flat.
    assert fits["oracle"].exponent > 0.8
    assert fits["global-oracle"].exponent < 0.3
    assert fits["alg2"].exponent > 0.8
    # The *distributed* global mutex (Raymond token) is flat too, and
    # pays token-routing latency on top — it cannot beat its oracle.
    assert fits["token-mutex"].exponent < 0.3
    token = dict(data["token-mutex"])
    global_oracle = dict(data["global-oracle"])
    assert token[NS[-1]] <= global_oracle[NS[-1]] * 1.1
    # By the largest size, even the message-paying distributed local
    # algorithm beats the omniscient global scheduler outright.
    local_alg2 = dict(data["alg2"])
    assert local_alg2[NS[-1]] > 2 * global_oracle[NS[-1]]
