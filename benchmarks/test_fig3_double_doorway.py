"""Experiment F3 — Figure 3 / Lemma 1: the double doorway.

Lemma 1: a node entering the double doorway exits within O(delta * T)
when the enclosed module takes T.  We sweep both delta (at fixed T) and
T (at fixed delta) and check the worst-case traversal grows at most
linearly in each, with no super-linear blowup.
"""

from repro.analysis.tables import render_table
from repro.harness.experiments import doorway_latency

DELTAS = (2, 4, 8, 12)
MODULE_TIMES = (0.5, 1.0, 2.0, 4.0)
UNTIL = 400.0


def test_fig3_double_doorway_delta_scaling(benchmark, report):
    def run():
        by_delta = [
            (d, doorway_latency("double", d, module_time=1.0, until=UNTIL))
            for d in DELTAS
        ]
        by_T = [
            (t, doorway_latency("double", 6, module_time=t, until=UNTIL))
            for t in MODULE_TIMES
        ]
        return by_delta, by_T

    by_delta, by_T = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [["delta", d, f"{s.mean:.2f}", f"{s.maximum:.2f}"]
            for d, s in by_delta]
    rows += [["T", t, f"{s.mean:.2f}", f"{s.maximum:.2f}"] for t, s in by_T]
    report(render_table(
        ["swept", "value", "mean traversal", "max traversal"],
        rows,
        title="Figure 3 / Lemma 1: double doorway exit latency = O(delta * T)",
    ))

    # Linear-ish in delta: 6x delta must not exceed ~linear headroom.
    d_lo, d_hi = by_delta[0][1].maximum, by_delta[-1][1].maximum
    delta_growth = DELTAS[-1] / DELTAS[0]
    assert d_hi <= d_lo * delta_growth * 2.0, (
        f"super-linear delta scaling: {d_lo:.2f} -> {d_hi:.2f}"
    )
    # Linear-ish in T: max traversal grows no faster than ~T itself.
    t_lo, t_hi = by_T[0][1].maximum, by_T[-1][1].maximum
    t_growth = MODULE_TIMES[-1] / MODULE_TIMES[0]
    assert t_hi <= t_lo * t_growth * 2.0
    # And T strictly matters (the module really runs behind the doorway).
    assert by_T[-1][1].mean > by_T[0][1].mean
