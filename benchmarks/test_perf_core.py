"""Core-pipeline performance benchmarks (PR 1 baseline).

Times the three hot paths the simulation core was rebuilt around:

1. **Topology churn** — grid-indexed vs brute-force `set_position` at
   n=1000 (the grid must win by ≥5×, and produce identical links);
2. **Raw event throughput** — the Simulator hot loop, including a
   cancellation-heavy workload that exercises heap compaction;
3. **Multi-seed replicate** — serial vs ``workers=4``, asserting the
   parallel estimates are bit-identical to the serial ones.

Run with ``pytest -m perf benchmarks/test_perf_core.py``.  Setting
``REPRO_WRITE_BENCH=1`` writes the measurements to ``BENCH_core.json``
at the repo root so later PRs have a perf trajectory to defend; without
the env var no file is touched.
"""

import json
import math
import os
import random
import time
from pathlib import Path

import pytest

from repro.harness.multiseed import DEFAULT_METRICS, replicate
from repro.net.geometry import Point, grid_positions
from repro.net.topology import DynamicTopology
from repro.runtime.simulation import ScenarioConfig
from repro.sim.engine import Simulator

pytestmark = pytest.mark.perf

_RESULTS = {}

_WRITE_ENV = "REPRO_WRITE_BENCH"


@pytest.fixture(scope="module", autouse=True)
def _bench_sink():
    """Collect per-test measurements; emit BENCH_core.json only on opt-in."""
    yield
    if os.environ.get(_WRITE_ENV) and _RESULTS:
        path = Path(__file__).resolve().parent.parent / "BENCH_core.json"
        path.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


# ---------------------------------------------------------------------------
# 1. Topology churn: spatial hash vs brute force
# ---------------------------------------------------------------------------


def test_topology_churn_grid_vs_brute(report):
    n = 1000
    radio = 2.0
    arena = 40.0
    rng = random.Random(1234)
    positions = [
        Point(rng.uniform(0, arena), rng.uniform(0, arena)) for _ in range(n)
    ]
    moves = []
    for _ in range(600):
        node = rng.randrange(n)
        base = positions[node]
        target = Point(
            min(max(base.x + rng.uniform(-radio, radio), 0.0), arena),
            min(max(base.y + rng.uniform(-radio, radio), 0.0), arena),
        )
        moves.append((node, target))

    def build(brute_force):
        topo = DynamicTopology(radio_range=radio, brute_force=brute_force)
        for node, pos in enumerate(positions):
            topo.add_node(node, pos)
        return topo

    def churn(topo):
        for node, target in moves:
            topo.set_position(node, target)

    grid_topo = build(brute_force=False)
    brute_topo = build(brute_force=True)
    grid_time = _timed(lambda: churn(grid_topo))
    brute_time = _timed(lambda: churn(brute_topo))
    assert grid_topo.links() == brute_topo.links()
    assert grid_topo.max_degree() == brute_topo.max_degree()

    speedup = brute_time / grid_time if grid_time else math.inf
    _RESULTS["topology_churn"] = {
        "n": n,
        "moves": len(moves),
        "radio_range": radio,
        "grid_seconds": round(grid_time, 6),
        "brute_seconds": round(brute_time, 6),
        "speedup": round(speedup, 2),
    }
    report(
        f"topology churn n={n}: grid {grid_time:.4f}s, "
        f"brute {brute_time:.4f}s, speedup {speedup:.1f}x"
    )
    assert speedup >= 5.0, (
        f"grid index should beat brute force by >=5x at n={n}, "
        f"got {speedup:.1f}x"
    )


# ---------------------------------------------------------------------------
# 2. Raw event throughput and cancellation-heavy workloads
# ---------------------------------------------------------------------------


def test_event_throughput(report):
    n_events = 200_000
    sim = Simulator()

    def noop():
        pass

    def schedule_all():
        for i in range(n_events):
            sim.schedule_at(float(i % 997), noop)

    schedule_time = _timed(schedule_all)
    run_time = _timed(sim.run)
    assert sim.executed_events == n_events
    throughput = n_events / run_time if run_time else math.inf
    _RESULTS["event_throughput"] = {
        "events": n_events,
        "schedule_seconds": round(schedule_time, 6),
        "run_seconds": round(run_time, 6),
        "events_per_second": round(throughput),
    }
    report(
        f"event loop: {n_events} events in {run_time:.4f}s "
        f"({throughput:,.0f} ev/s)"
    )


def test_cancellation_heavy_throughput(report):
    """Mass cancellation triggers compaction; pending count stays O(1)."""
    n_events = 120_000
    sim = Simulator()
    handles = [
        sim.schedule_at(float(i % 89), lambda: None) for i in range(n_events)
    ]

    def cancel_most():
        for i, handle in enumerate(handles):
            if i % 10:
                handle.cancel()

    cancel_time = _timed(cancel_most)
    # The live counter keeps this O(1); with n cancellations above it
    # would be O(n²) under the old scan-the-heap implementation.
    assert sim.pending_events == n_events // 10
    run_time = _timed(sim.run)
    assert sim.executed_events == n_events // 10
    assert sim.pending_events == 0
    _RESULTS["cancellation_heavy"] = {
        "scheduled": n_events,
        "cancelled": n_events - n_events // 10,
        "cancel_seconds": round(cancel_time, 6),
        "drain_seconds": round(run_time, 6),
    }
    report(
        f"cancel-heavy: cancelled {n_events - n_events // 10} in "
        f"{cancel_time:.4f}s, drained survivors in {run_time:.4f}s"
    )


# ---------------------------------------------------------------------------
# 3. Parallel + cached multi-seed replicate
# ---------------------------------------------------------------------------


def test_replicate_parallel_matches_serial(report, tmp_path):
    config = ScenarioConfig(
        positions=grid_positions(64, spacing=1.0),
        radio_range=1.1,
        algorithm="alg2",
        think_range=(0.5, 2.0),
    )
    seeds = (1, 2, 3, 4)
    until = 400.0

    serial_time = [0.0]
    parallel_time = [0.0]
    results = {}

    def run_serial():
        results["serial"] = replicate(
            config, until=until, seeds=seeds, metrics=DEFAULT_METRICS
        )

    def run_parallel():
        results["parallel"] = replicate(
            config, until=until, seeds=seeds, metrics=DEFAULT_METRICS,
            workers=4,
        )

    serial_time[0] = _timed(run_serial)
    parallel_time[0] = _timed(run_parallel)

    for name in DEFAULT_METRICS:
        s, p = results["serial"][name], results["parallel"][name]
        assert s.samples == p.samples
        assert _same_float(s.mean, p.mean), name
        assert _same_float(s.half_width, p.half_width), name

    # Warm cache: a re-run served from disk skips every simulation.
    cached_cold = _timed(
        lambda: replicate(
            config, until=until, seeds=seeds, metrics=DEFAULT_METRICS,
            cache=tmp_path,
        )
    )
    cached_warm = _timed(
        lambda: replicate(
            config, until=until, seeds=seeds, metrics=DEFAULT_METRICS,
            cache=tmp_path,
        )
    )

    # On a single-CPU box the pool can only tie the serial path; the
    # recorded cpu count keeps the baseline interpretable elsewhere.
    speedup = serial_time[0] / parallel_time[0] if parallel_time[0] else math.inf
    _RESULTS["replicate"] = {
        "cpus": os.cpu_count(),
        "nodes": len(config.positions),
        "seeds": len(seeds),
        "until": until,
        "serial_seconds": round(serial_time[0], 6),
        "parallel4_seconds": round(parallel_time[0], 6),
        "parallel4_speedup": round(speedup, 2),
        "cached_cold_seconds": round(cached_cold, 6),
        "cached_warm_seconds": round(cached_warm, 6),
    }
    report(
        f"replicate x{len(seeds)} seeds: serial {serial_time[0]:.3f}s, "
        f"workers=4 {parallel_time[0]:.3f}s ({speedup:.1f}x), "
        f"warm cache {cached_warm:.4f}s"
    )
    assert cached_warm < cached_cold


def _same_float(x, y):
    if math.isnan(x) and math.isnan(y):
        return True
    return x == y
