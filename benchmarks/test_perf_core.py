"""Core-pipeline performance benchmarks (PR 1 baseline, PR 2 message plane).

Times the hot paths the simulation core was rebuilt around:

1. **Topology churn** — grid-indexed vs brute-force `set_position` at
   n=1000 (the grid must win by ≥5×, and produce identical links);
2. **Raw event throughput** — the Simulator hot loop, including a
   cancellation-heavy workload that exercises heap compaction;
3. **Multi-seed replicate** — serial vs ``workers=4``, asserting the
   parallel estimates are bit-identical to the serial ones;
4. **Message plane** — broadcast-flood delivery through the per-link
   queue fast path vs legacy one-event-per-message scheduling, with the
   live heap bounded O(links) instead of O(in-flight messages);
5. **Telemetry** — instrumented-vs-off overhead for the flood and an
   alg2-line protocol workload, plus the zero-cost-when-off guard
   against the committed baseline (normalized by a fresh event-loop
   calibration so cross-machine comparisons stay meaningful);
6. **Mobility plane** — kinetic link prediction vs the fixed-step
   execution path at n=1000 with every node mid-flight concurrently:
   the kinetic path must execute ≥3× fewer topology updates (a
   deterministic counter comparison) and finish ≥2× faster on a quiet
   box (jitter-gated, like the telemetry guard), while both paths land
   on identical final positions and link sets;
7. **Sharded engine** — single-shard delegation overhead (≤3%,
   jitter-gated) and the n=100k scaling curve across worker counts,
   with the 4-worker speedup assertion cpu-gated like the replicate
   benchmark.

Run with ``pytest -m perf benchmarks/test_perf_core.py``.  Setting
``REPRO_WRITE_BENCH=1`` writes the measurements to ``BENCH_core.json``
at the repo root so later PRs have a perf trajectory to defend; without
the env var no file is touched.
"""

import gc
import json
import math
import os
import random
import time
import tracemalloc
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro._version import __version__
from repro.harness.multiseed import DEFAULT_METRICS, replicate
from repro.obs.bench_history import HISTORY_NAME, append_record, git_commit
from repro.mobility import MobilityController
from repro.net.channel import ChannelLayer
from repro.net.linklayer import LinkLayer
from repro.net.geometry import Point, grid_positions, line_positions
from repro.net.messages import Message
from repro.net.topology import DynamicTopology
from repro.obs.profiler import EngineProfiler
from repro.runtime.simulation import (
    ScenarioConfig,
    Simulation,
    peak_rss_kb,
)
from repro.sim.clock import TimeBounds
from repro.sim.engine import Simulator
from repro.sim.rng import RandomSource

pytestmark = pytest.mark.perf

_RESULTS = {}

_WRITE_ENV = "REPRO_WRITE_BENCH"


_GIT_COMMIT = git_commit(Path(__file__).resolve().parent)


def _record(name: str, entry: dict) -> dict:
    """Store one bench section, stamped with provenance + peak RSS.

    The RSS stamp is the high-water mark *up to this point of the
    session* (``ru_maxrss`` never decreases), so sections later in the
    file inherit earlier peaks; per-section deltas are only meaningful
    against the same section in an earlier baseline.  The commit and
    version stamps keep the legacy ``BENCH_core.json`` snapshot and the
    ``BENCH_history.jsonl`` trajectory agreeing on provenance.
    """
    entry["peak_rss_kb"] = peak_rss_kb()
    entry["git_commit"] = _GIT_COMMIT
    entry["version"] = __version__
    _RESULTS[name] = entry
    return entry


@pytest.fixture(scope="module", autouse=True)
def _bench_sink():
    """Collect per-test measurements; emit BENCH files only on opt-in.

    On ``REPRO_WRITE_BENCH=1`` the run overwrites the ``BENCH_core.json``
    snapshot (the legacy at-a-glance view) *and* appends one stamped
    record to ``BENCH_history.jsonl`` (the append-only trajectory
    ``repro bench check`` compares against).
    """
    yield
    if os.environ.get(_WRITE_ENV) and _RESULTS:
        # Sections created via setdefault() bypass _record(); give them
        # the same provenance stamps before anything is written.
        for entry in _RESULTS.values():
            entry.setdefault("peak_rss_kb", peak_rss_kb())
            entry.setdefault("git_commit", _GIT_COMMIT)
            entry.setdefault("version", __version__)
        root = Path(__file__).resolve().parent.parent
        path = root / "BENCH_core.json"
        path.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")
        append_record(root / HISTORY_NAME, _RESULTS, commit=_GIT_COMMIT)


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


# ---------------------------------------------------------------------------
# 1. Topology churn: spatial hash vs brute force
# ---------------------------------------------------------------------------


def test_topology_churn_grid_vs_brute(report):
    n = 1000
    radio = 2.0
    arena = 40.0
    rng = random.Random(1234)
    positions = [
        Point(rng.uniform(0, arena), rng.uniform(0, arena)) for _ in range(n)
    ]
    moves = []
    for _ in range(600):
        node = rng.randrange(n)
        base = positions[node]
        target = Point(
            min(max(base.x + rng.uniform(-radio, radio), 0.0), arena),
            min(max(base.y + rng.uniform(-radio, radio), 0.0), arena),
        )
        moves.append((node, target))

    def build(brute_force):
        topo = DynamicTopology(radio_range=radio, brute_force=brute_force)
        for node, pos in enumerate(positions):
            topo.add_node(node, pos)
        return topo

    def churn(topo):
        for node, target in moves:
            topo.set_position(node, target)

    grid_topo = build(brute_force=False)
    brute_topo = build(brute_force=True)
    grid_time = _timed(lambda: churn(grid_topo))
    brute_time = _timed(lambda: churn(brute_topo))
    assert grid_topo.links() == brute_topo.links()
    assert grid_topo.max_degree() == brute_topo.max_degree()

    speedup = brute_time / grid_time if grid_time else math.inf
    _record("topology_churn", {
        "n": n,
        "moves": len(moves),
        "radio_range": radio,
        "grid_seconds": round(grid_time, 6),
        "brute_seconds": round(brute_time, 6),
        "speedup": round(speedup, 2),
    })
    report(
        f"topology churn n={n}: grid {grid_time:.4f}s, "
        f"brute {brute_time:.4f}s, speedup {speedup:.1f}x"
    )
    assert speedup >= 5.0, (
        f"grid index should beat brute force by >=5x at n={n}, "
        f"got {speedup:.1f}x"
    )


# ---------------------------------------------------------------------------
# 2. Raw event throughput and cancellation-heavy workloads
# ---------------------------------------------------------------------------


def test_event_throughput(report):
    n_events = 200_000
    sim = Simulator()

    def noop():
        pass

    def schedule_all():
        for i in range(n_events):
            sim.schedule_at(float(i % 997), noop)

    schedule_time = _timed(schedule_all)
    run_time = _timed(sim.run)
    assert sim.executed_events == n_events
    throughput = n_events / run_time if run_time else math.inf
    _record("event_throughput", {
        "events": n_events,
        "schedule_seconds": round(schedule_time, 6),
        "run_seconds": round(run_time, 6),
        "events_per_second": round(throughput),
    })
    report(
        f"event loop: {n_events} events in {run_time:.4f}s "
        f"({throughput:,.0f} ev/s)"
    )


def test_cancellation_heavy_throughput(report):
    """Mass cancellation triggers compaction; pending count stays O(1)."""
    n_events = 120_000
    sim = Simulator()
    handles = [
        sim.schedule_at(float(i % 89), lambda: None) for i in range(n_events)
    ]

    def cancel_most():
        for i, handle in enumerate(handles):
            if i % 10:
                handle.cancel()

    cancel_time = _timed(cancel_most)
    # The live counter keeps this O(1); with n cancellations above it
    # would be O(n²) under the old scan-the-heap implementation.
    assert sim.pending_events == n_events // 10
    run_time = _timed(sim.run)
    assert sim.executed_events == n_events // 10
    assert sim.pending_events == 0
    _record("cancellation_heavy", {
        "scheduled": n_events,
        "cancelled": n_events - n_events // 10,
        "cancel_seconds": round(cancel_time, 6),
        "drain_seconds": round(run_time, 6),
    })
    report(
        f"cancel-heavy: cancelled {n_events - n_events // 10} in "
        f"{cancel_time:.4f}s, drained survivors in {run_time:.4f}s"
    )


# ---------------------------------------------------------------------------
# 3. Parallel + cached multi-seed replicate
# ---------------------------------------------------------------------------


def test_replicate_parallel_matches_serial(report, tmp_path):
    config = ScenarioConfig(
        positions=grid_positions(64, spacing=1.0),
        radio_range=1.1,
        algorithm="alg2",
        think_range=(0.5, 2.0),
    )
    seeds = (1, 2, 3, 4)
    until = 400.0
    workers = 4
    cpus = os.cpu_count() or 1

    serial_time = [0.0]
    parallel_time = [0.0]
    results = {}

    def run_serial():
        results["serial"] = replicate(
            config, until=until, seeds=seeds, metrics=DEFAULT_METRICS
        )

    def run_parallel():
        results["parallel"] = replicate(
            config, until=until, seeds=seeds, metrics=DEFAULT_METRICS,
            workers=workers,
        )

    serial_time[0] = _timed(run_serial)
    parallel_time[0] = _timed(run_parallel)

    for name in DEFAULT_METRICS:
        s, p = results["serial"][name], results["parallel"][name]
        assert s.samples == p.samples
        assert _same_float(s.mean, p.mean), name
        assert _same_float(s.half_width, p.half_width), name

    # Warm cache: a re-run served from disk skips every simulation.
    cached_cold = _timed(
        lambda: replicate(
            config, until=until, seeds=seeds, metrics=DEFAULT_METRICS,
            cache=tmp_path,
        )
    )
    cached_warm = _timed(
        lambda: replicate(
            config, until=until, seeds=seeds, metrics=DEFAULT_METRICS,
            cache=tmp_path,
        )
    )

    entry = {
        "cpus": cpus,
        "nodes": len(config.positions),
        "seeds": len(seeds),
        "until": until,
        "serial_seconds": round(serial_time[0], 6),
        "cached_cold_seconds": round(cached_cold, 6),
        "cached_warm_seconds": round(cached_warm, 6),
    }
    if cpus < workers:
        # A pool of 4 on fewer than 4 CPUs measures contention, not
        # speedup; recording the 0.8x "slowdown" would poison the perf
        # trajectory.  The bit-identical comparison above still ran.
        # The parallel4_* keys are *omitted* (not null): readers treat
        # a missing key and a skipped measurement identically, and a
        # null would otherwise leak into min/round arithmetic.
        entry["skipped_reason"] = (
            f"cpu_count {cpus} < workers {workers}: parallel timing "
            "not meaningful on this box"
        )
        report(
            f"replicate x{len(seeds)} seeds: serial {serial_time[0]:.3f}s, "
            f"parallel timing skipped ({cpus} CPU), "
            f"warm cache {cached_warm:.4f}s"
        )
    else:
        speedup = (
            serial_time[0] / parallel_time[0] if parallel_time[0] else math.inf
        )
        entry["parallel4_seconds"] = round(parallel_time[0], 6)
        entry["parallel4_speedup"] = round(speedup, 2)
        report(
            f"replicate x{len(seeds)} seeds: serial {serial_time[0]:.3f}s, "
            f"workers={workers} {parallel_time[0]:.3f}s ({speedup:.1f}x), "
            f"warm cache {cached_warm:.4f}s"
        )
    _record("replicate", entry)
    assert cached_warm < cached_cold


# ---------------------------------------------------------------------------
# 4. Message plane: per-link delivery queues vs per-message events
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Flood(Message):
    round_index: int = 0


def _run_flood(per_message: bool, n: int, bursts: int, rounds: int,
               profile: bool = False):
    """Broadcast flood: every node sends ``bursts`` messages to every
    neighbor in each round.  Returns (wall seconds, delivered count,
    heap high-water, directed link count)."""
    sim = Simulator()
    if profile:
        sim.attach_profiler(EngineProfiler())
    topo = DynamicTopology(radio_range=1.1)
    for node, pos in enumerate(grid_positions(n, spacing=1.0)):
        topo.add_node(node, pos)
    bounds = TimeBounds(nu=0.5, min_delay_fraction=0.25)
    delivered = [0]

    def sink(src, dst, message):
        delivered[0] += 1

    channel = ChannelLayer(
        sim, topo, bounds, RandomSource(7).stream("c"),
        deliver=sink, per_message=per_message,
    )

    def burst(round_index):
        # ``bursts`` back-to-back broadcasts per node build the per-link
        # FIFO trains the delivery queues are designed around.
        for b in range(bursts):
            message = Flood(round_index * bursts + b)
            for node in range(n):
                channel.broadcast(node, topo.sorted_neighbors(node), message)

    for round_index in range(rounds):
        # Rounds are spaced past nu so each round's traffic fully
        # drains before the next burst event fires.
        sim.schedule_at(round_index * 1.0, burst, round_index)
    elapsed = _timed(sim.run)
    directed_links = 2 * len(topo.links())
    assert channel.stats.dropped_link_down == 0
    return elapsed, delivered[0], sim.heap_high_water, directed_links


def test_message_plane_flood_throughput(report):
    n = 1000
    bursts = 25
    rounds = 2

    fast_time, fast_delivered, fast_high_water, directed_links = _run_flood(
        per_message=False, n=n, bursts=bursts, rounds=rounds
    )
    slow_time, slow_delivered, slow_high_water, _ = _run_flood(
        per_message=True, n=n, bursts=bursts, rounds=rounds
    )
    assert fast_delivered == slow_delivered > 0

    fast_throughput = fast_delivered / fast_time if fast_time else math.inf
    slow_throughput = slow_delivered / slow_time if slow_time else math.inf
    speedup = fast_throughput / slow_throughput if slow_throughput else math.inf

    _record("message_plane", {
        "n": n,
        "directed_links": directed_links,
        "messages": fast_delivered,
        "queue_seconds": round(fast_time, 6),
        "per_message_seconds": round(slow_time, 6),
        "queue_msgs_per_second": round(fast_throughput),
        "per_message_msgs_per_second": round(slow_throughput),
        "speedup": round(speedup, 2),
        "queue_heap_high_water": fast_high_water,
        "per_message_heap_high_water": slow_high_water,
    })
    report(
        f"message plane n={n}: queue {fast_time:.3f}s, "
        f"per-message {slow_time:.3f}s ({speedup:.1f}x), heap high-water "
        f"{fast_high_water} vs {slow_high_water}"
    )
    assert speedup >= 2.0, (
        f"per-link queues should at least double flood throughput, "
        f"got {speedup:.2f}x"
    )
    # Heap stays O(links): one in-flight event per active directed link
    # plus the round-burst events, never one event per message.
    assert fast_high_water <= directed_links + rounds + 64, (
        f"fast-path heap high-water {fast_high_water} exceeds the "
        f"O(links) bound ({directed_links} directed links)"
    )


# ---------------------------------------------------------------------------
# 5. Telemetry: instrumented-vs-off overhead, zero-cost-when-off guard
# ---------------------------------------------------------------------------


def _time_alg2_line(telemetry: bool, n: int, until: float, repeats: int = 3):
    """Best-of-``repeats`` wall time for an alg2 line scenario.

    Returns (seconds, executed events, cs entries); the protocol numbers
    must be identical across telemetry settings — instrumentation only
    observes, it never schedules.
    """
    best = math.inf
    events = cs_entries = None
    for _ in range(repeats):
        sim = Simulation(ScenarioConfig(
            positions=line_positions(n, spacing=1.0),
            radio_range=1.1,
            algorithm="alg2",
            think_range=(0.5, 2.0),
            telemetry=telemetry,
        ))
        elapsed = _timed(lambda: sim.run(until=until))
        stats = sim.sim.stats()
        result_entries = sim.metrics.total_cs_entries()
        if events is not None:
            assert stats["executed_events"] == events
            assert result_entries == cs_entries
        events, cs_entries = stats["executed_events"], result_entries
        best = min(best, elapsed)
    return best, events, cs_entries


def _calibrate_events_per_second(n_events: int = 100_000) -> float:
    """Throughput of the bare event loop on *this* box, used to turn the
    committed baseline's numbers into machine-relative expectations."""
    sim = Simulator()

    def noop():
        pass

    for i in range(n_events):
        sim.schedule_at(float(i % 997), noop)
    run_time = _timed(sim.run)
    return n_events / run_time if run_time else math.inf


def test_telemetry_overhead(report):
    """Instrumented-vs-off cost of the run telemetry layer.

    Two workloads: the alg2 line (probes + metric registry on the
    protocol paths) and the broadcast flood with an attached
    :class:`EngineProfiler` (the only telemetry that touches the raw
    message plane).  Both instrumented runs must reproduce the
    uninstrumented protocol numbers exactly.
    """
    n, until = 48, 400.0
    off_time, off_events, off_entries = _time_alg2_line(False, n, until)
    on_time, on_events, on_entries = _time_alg2_line(True, n, until)
    assert on_events == off_events
    assert on_entries == off_entries
    alg2_overhead = on_time / off_time - 1 if off_time else 0.0

    flood_n, bursts, rounds = 400, 10, 2
    _run_flood(False, flood_n, bursts, rounds)  # warm-up: first run is cold
    plain = min(
        (_run_flood(False, flood_n, bursts, rounds) for _ in range(3)),
        key=lambda r: r[0],
    )
    profiled = min(
        (_run_flood(False, flood_n, bursts, rounds, profile=True)
         for _ in range(3)),
        key=lambda r: r[0],
    )
    assert profiled[1] == plain[1] > 0
    flood_overhead = profiled[0] / plain[0] - 1 if plain[0] else 0.0

    _record("telemetry", {
        "alg2_line_nodes": n,
        "alg2_line_until": until,
        "alg2_line_events": off_events,
        "alg2_line_off_seconds": round(off_time, 6),
        "alg2_line_on_seconds": round(on_time, 6),
        "alg2_line_overhead": round(alg2_overhead, 4),
        "flood_messages": plain[1],
        "flood_off_seconds": round(plain[0], 6),
        "flood_profiled_seconds": round(profiled[0], 6),
        "flood_profile_overhead": round(flood_overhead, 4),
    })
    report(
        f"telemetry: alg2 line n={n} off {off_time:.4f}s, on {on_time:.4f}s "
        f"({alg2_overhead:+.1%}); flood profile overhead "
        f"{flood_overhead:+.1%}"
    )
    # Loose sanity bounds — the real zero-cost-when-off contract is the
    # baseline guard below; instrumented runs just must not blow up.
    assert on_time < off_time * 2.0, (
        f"telemetry-on alg2 run {on_time:.4f}s vs off {off_time:.4f}s: "
        "probe overhead should stay well under 2x"
    )
    assert profiled[0] < plain[0] * 3.0


def _attr_values(obj):
    """Attribute values of ``obj``, covering both ``__dict__`` and the
    ``__slots__`` laid down anywhere in its MRO (the memory-plane slots
    sweep removed ``__dict__`` from the hot per-node objects)."""
    seen = set()
    for cls in type(obj).__mro__:
        for slot in getattr(cls, "__slots__", ()):
            if slot not in seen:
                seen.add(slot)
                try:
                    yield getattr(obj, slot)
                except AttributeError:
                    pass
    yield from getattr(obj, "__dict__", {}).values()


def test_telemetry_off_is_structurally_free():
    """The deterministic half of the zero-cost-when-off guard.

    With telemetry disabled no instrumentation object may exist anywhere
    on a hot path — every probe/registry/profiler handle must be
    ``None`` — so the *only* residual cost is one ``is not None``
    pointer test per site.  This is the check that cannot flake on a
    noisy box; the wall-clock comparison below is advisory on top.
    """
    sim = Simulation(ScenarioConfig(
        positions=line_positions(6, spacing=1.0),
        radio_range=1.1,
        algorithm="alg2",
    ))
    assert sim.registry is None
    assert sim.probes is None
    assert sim.sim.profiler is None
    for harness in sim.harnesses.values():
        assert harness.probes is None
        algorithm = harness.algorithm
        assert getattr(algorithm, "_probes", None) is None
        # Sub-components picked their handle up from the harness too.
        for attr in _attr_values(algorithm):
            if hasattr(attr, "_probes"):
                assert attr._probes is None, type(attr).__name__


def test_telemetry_off_matches_baseline(report):
    """Wall-clock half of the guard: telemetry-off flood throughput must
    stay within 3% of the committed ``BENCH_core.json`` baseline after
    normalizing for machine speed (bare event-loop throughput measured
    in the same session vs at baseline time).

    Wall-clock ratios are only meaningful when the box is quiet, so the
    calibration runs three times around the workload; if its spread
    exceeds 5% the comparison is recorded but skipped rather than
    allowed to flake.  The structural guard above always runs.
    """
    path = Path(__file__).resolve().parent.parent / "BENCH_core.json"
    if not path.exists():
        pytest.skip("no BENCH_core.json baseline committed")
    baseline = json.loads(path.read_text())
    base_events = baseline.get("event_throughput", {}).get("events_per_second")
    base_flood = baseline.get("message_plane", {}).get("queue_msgs_per_second")
    if not base_events or not base_flood:
        pytest.skip("baseline lacks event_throughput/message_plane sections")

    calibrations = [_calibrate_events_per_second()]
    flood = min(
        (_run_flood(per_message=False, n=1000, bursts=25, rounds=2)
         for _ in range(3)),
        key=lambda r: r[0],
    )
    calibrations.append(_calibrate_events_per_second())
    calibrations.append(_calibrate_events_per_second())
    jitter = max(calibrations) / min(calibrations) - 1.0
    machine = max(calibrations) / base_events

    throughput = flood[1] / flood[0] if flood[0] else math.inf
    normalized = throughput / machine
    _record("telemetry_guard", {
        "machine_factor": round(machine, 4),
        "calibration_jitter": round(jitter, 4),
        "flood_msgs_per_second": round(throughput),
        "flood_normalized_msgs_per_second": round(normalized),
        "flood_baseline_msgs_per_second": base_flood,
    })
    report(
        f"telemetry-off guard: flood {throughput:,.0f} msg/s, normalized "
        f"{normalized:,.0f} vs baseline {base_flood:,.0f} "
        f"(machine {machine:.2f}, jitter {jitter:.1%})"
    )
    if jitter > 0.05:
        pytest.skip(
            f"calibration jitter {jitter:.1%} > 5%: box too noisy for a "
            "3% wall-clock bound (numbers recorded above)"
        )
    assert normalized >= 0.97 * base_flood, (
        f"telemetry-off flood regressed: {normalized:,.0f} msg/s "
        f"(normalized) < 97% of baseline {base_flood:,.0f}"
    )


# ---------------------------------------------------------------------------
# 6. Mobility plane: kinetic link prediction vs fixed-step execution
# ---------------------------------------------------------------------------


class _MobilitySink:
    def on_message(self, src, message):
        pass

    def on_link_up(self, peer, moving):
        pass

    def on_link_down(self, peer):
        pass


def _mobility_plan(n, arena, hop, seed=5):
    """Deterministic high-mobility plan: one long leg per node, every
    node launched within the first two virtual seconds (so all ``n``
    flights overlap), destinations clamped to the arena."""
    rnd = random.Random(seed)
    positions = [
        Point(rnd.uniform(0, arena), rnd.uniform(0, arena)) for _ in range(n)
    ]
    plan = []
    for node in range(n):
        cur = positions[node]
        dest = Point(
            min(max(cur.x + rnd.uniform(-hop, hop), 0.0), arena),
            min(max(cur.y + rnd.uniform(-hop, hop), 0.0), arena),
        )
        plan.append(
            (rnd.uniform(0.0, 2.0), node, dest, rnd.uniform(2.0, 6.0))
        )
    return positions, plan


def _run_mobility_churn(fixed_step, positions, plan, radio):
    sim = Simulator()
    topo = DynamicTopology(radio_range=radio)
    link = LinkLayer(sim, topo)
    channel = ChannelLayer(
        sim, topo, TimeBounds(), RandomSource(0).stream("c"),
        deliver=link.deliver,
    )
    link.bind_channel(channel)
    for node, pos in enumerate(positions):
        topo.add_node(node, pos)
        link.register(node, _MobilitySink())
    controller = MobilityController(
        sim, topo, link, RandomSource(1), fixed_step=fixed_step
    )
    for start, node, dest, speed in plan:
        sim.schedule_at(start, controller.move_node, node, dest, speed)
    elapsed = _timed(sim.run)
    return (
        elapsed,
        controller.stats(),
        set(topo.links()),
        [topo.position(node) for node in range(len(positions))],
    )


def test_mobility_churn_kinetic_vs_fixed_step(report):
    """Kinetic certificates vs fixed steps under total churn.

    n=1000 nodes each fly one long waypoint leg, all concurrently.  The
    update-count comparison is deterministic (both paths count every
    ``set_position(s)``/reposition they execute), so it asserts
    unconditionally; the wall-clock speedup is gated on event-loop
    calibration jitter exactly like the telemetry baseline guard.
    Equivalence — identical final positions and link sets — asserts
    unconditionally too: it is what makes the speedup a free lunch.
    """
    n, arena, radio, hop = 1000, 400.0, 4.0, 100.0
    positions, plan = _mobility_plan(n, arena, hop)

    calibrations = [_calibrate_events_per_second()]
    kin = min(
        (_run_mobility_churn(False, positions, plan, radio) for _ in range(2)),
        key=lambda r: r[0],
    )
    fix = min(
        (_run_mobility_churn(True, positions, plan, radio) for _ in range(2)),
        key=lambda r: r[0],
    )
    calibrations.append(_calibrate_events_per_second())
    jitter = max(calibrations) / min(calibrations) - 1.0

    # Equivalence at quiescence: same links, same exact positions.
    assert kin[2] == fix[2], "link sets diverged between mobility paths"
    assert kin[3] == fix[3], "positions diverged between mobility paths"

    kin_updates = kin[1]["position_updates"]
    fix_updates = fix[1]["position_updates"]
    update_ratio = fix_updates / kin_updates if kin_updates else math.inf
    speedup = fix[0] / kin[0] if kin[0] else math.inf

    _record("mobility_churn", {
        "n": n,
        "arena": arena,
        "radio_range": radio,
        "max_leg": hop,
        "links_final": len(kin[2]),
        "kinetic_seconds": round(kin[0], 6),
        "fixed_step_seconds": round(fix[0], 6),
        "kinetic_updates": kin_updates,
        "fixed_step_updates": fix_updates,
        "update_ratio": round(update_ratio, 2),
        "speedup": round(speedup, 2),
        "crossings_scheduled": kin[1]["crossings_scheduled"],
        "crossing_events": kin[1]["crossing_events"],
        "horizon_events": kin[1]["horizon_events"],
        "dead_steps_skipped": kin[1]["dead_steps_skipped"],
        "calibration_jitter": round(jitter, 4),
    })
    report(
        f"mobility churn n={n}: kinetic {kin[0]:.3f}s "
        f"({kin_updates} updates), fixed-step {fix[0]:.3f}s "
        f"({fix_updates} updates) -> {update_ratio:.1f}x fewer updates, "
        f"{speedup:.1f}x wall (jitter {jitter:.1%})"
    )
    assert update_ratio >= 3.0, (
        f"kinetic path should execute >=3x fewer topology updates, "
        f"got {update_ratio:.2f}x"
    )
    assert kin[1]["dead_steps_skipped"] > 0
    if jitter > 0.05:
        pytest.skip(
            f"calibration jitter {jitter:.1%} > 5%: box too noisy for a "
            "wall-clock bound (numbers recorded above)"
        )
    assert speedup >= 2.0, (
        f"kinetic path should be >=2x faster under total churn, "
        f"got {speedup:.2f}x"
    )


# ---------------------------------------------------------------------------
# 7. Sharded engine: delegation overhead and n=100k scaling
# ---------------------------------------------------------------------------


def test_sharded_single_shard_overhead(report):
    """``ShardedEngine(num_shards=1)`` must be free.

    It delegates wholesale to the plain in-process engine, so the only
    admissible cost is the per-send ``is not None`` remote check and the
    safe-horizon test added to ``Simulator.run`` — within 3% at n=1000.
    Jitter-gated like the other wall-clock guards; the bit-identity of
    the two paths is asserted unconditionally by tests/test_sharded.py.
    """
    from repro.sim.sharded import ShardedEngine

    n, until = 1000, 60.0

    def config():
        return ScenarioConfig(
            positions=grid_positions(n, spacing=1.0),
            radio_range=1.1,
            algorithm="alg2",
            think_range=(0.5, 2.0),
            seed=9,
        )

    calibrations = [_calibrate_events_per_second()]
    plain_runs = []
    sharded_runs = []
    for _ in range(3):
        # Both sides pay Simulation construction inside the timed
        # region: ShardedEngine.run builds its delegate internally.
        holder = {}

        def run_plain():
            holder["r"] = Simulation(config()).run(until=until)

        plain_runs.append((_timed(run_plain),
                           holder["r"].engine["executed_events"]))

        def run_sharded():
            holder["r"] = ShardedEngine(config(), num_shards=1).run(
                until=until
            )

        sharded_runs.append((_timed(run_sharded),
                             holder["r"].engine["executed_events"]))
    calibrations.append(_calibrate_events_per_second())
    jitter = max(calibrations) / min(calibrations) - 1.0

    plain = min(plain_runs)
    sharded = min(sharded_runs)
    assert plain[1] == sharded[1] > 0
    plain_rate = plain[1] / plain[0] if plain[0] else math.inf
    sharded_rate = sharded[1] / sharded[0] if sharded[0] else math.inf
    ratio = sharded_rate / plain_rate if plain_rate else math.inf

    _RESULTS.setdefault("sharded_scaling", {})["single_shard_overhead"] = {
        "n": n,
        "until": until,
        "events": plain[1],
        "plain_events_per_second": round(plain_rate),
        "sharded_events_per_second": round(sharded_rate),
        "throughput_ratio": round(ratio, 4),
        "calibration_jitter": round(jitter, 4),
        "peak_rss_kb": peak_rss_kb(),
    }
    report(
        f"sharded delegation n={n}: plain {plain_rate:,.0f} ev/s, "
        f"num_shards=1 {sharded_rate:,.0f} ev/s "
        f"(ratio {ratio:.3f}, jitter {jitter:.1%})"
    )
    if jitter > 0.05:
        pytest.skip(
            f"calibration jitter {jitter:.1%} > 5%: box too noisy for a "
            "3% wall-clock bound (numbers recorded above)"
        )
    assert ratio >= 0.97, (
        f"single-shard delegation should cost <=3%, got ratio {ratio:.3f}"
    )


def test_sharded_scaling_100k(report):
    """n=100k scaling curve across worker counts.

    Four stripes over a 100k-node grid, hosted by 1, 2 and 4 worker
    processes.  Results must agree across worker counts (same protocol
    outcome); the >=2.5x speedup at 4 workers is asserted only on boxes
    that actually have 4 CPUs — on smaller machines the curve is still
    measured and committed with a ``skipped_reason``, matching the
    replicate benchmark's precedent.
    """
    from repro.sim.sharded import ShardedEngine

    n, until, shards = 100_000, 5.0, 4
    cpus = os.cpu_count() or 1

    def config():
        return ScenarioConfig(
            positions=grid_positions(n, spacing=1.0),
            radio_range=1.1,
            algorithm="alg2",
            think_range=(4.0, 8.0),
            seed=1,
        )

    curve = []
    outcomes = []
    for workers in (1, 2, 4):
        engine = ShardedEngine(config(), num_shards=shards, workers=workers)
        result = engine.run(until=until)
        outcomes.append((result.cs_entries, result.messages_sent,
                         result.engine["executed_events"]))
        curve.append({
            "workers": workers,
            "wall_seconds": round(result.resources["wall_time_s"], 3),
            "events_per_second": round(result.resources["events_per_sec"]),
            "peak_rss_kb": result.resources["peak_rss_kb"],
        })
        report(
            f"sharded n={n} shards={shards} workers={workers}: "
            f"{result.resources['wall_time_s']:.1f}s wall, "
            f"{result.resources['events_per_sec']:,.0f} ev/s, "
            f"{result.engine['executed_events']} events, "
            f"cs {result.cs_entries}"
        )
    assert outcomes[0] == outcomes[1] == outcomes[2], (
        "sharded results must not depend on the worker count"
    )

    speedup = curve[0]["wall_seconds"] / curve[-1]["wall_seconds"] \
        if curve[-1]["wall_seconds"] else math.inf
    entry = {
        "n": n,
        "until": until,
        "num_shards": shards,
        "cpus": cpus,
        "events": outcomes[0][2],
        "cs_entries": outcomes[0][0],
        "curve": curve,
        "speedup_4_over_1": round(speedup, 2),
        "peak_rss_kb": peak_rss_kb(),
    }
    if cpus < 4:
        entry["skipped_reason"] = (
            f"cpu_count {cpus} < 4: worker speedup not meaningful on "
            "this box; curve recorded for the trajectory"
        )
        _RESULTS.setdefault("sharded_scaling", {})["large"] = entry
        report(
            f"sharded n={n}: speedup assertion skipped ({cpus} CPU), "
            f"4-worker/1-worker ratio {speedup:.2f}x recorded"
        )
        return
    _RESULTS.setdefault("sharded_scaling", {})["large"] = entry
    assert speedup >= 2.5, (
        f"4 workers should beat 1 by >=2.5x at n={n}, got {speedup:.2f}x"
    )


# ---------------------------------------------------------------------------
# 8. Memory plane: pooled events, lazy RNG streams, O(n) bootstrap
# ---------------------------------------------------------------------------


def _memory_plane_config(n, pooling=True):
    return ScenarioConfig(
        positions=grid_positions(n, spacing=1.0),
        radio_range=1.1,
        algorithm="alg2",
        think_range=(0.5, 2.0),
        seed=3,
        pooling=pooling,
    )


def _live_blocks(snapshot):
    return sum(stat.count for stat in snapshot.statistics("filename"))


def _retained_allocs_per_event(pooling, n=1000, warmup=40.0, horizon=120.0):
    """Still-live allocation blocks per executed event over a warm
    steady-state window (tracemalloc tracks blocks allocated *during*
    the window that survive it — per-event garbage cancels out, so this
    is the per-event footprint the run keeps, not transient churn)."""
    sim = Simulation(_memory_plane_config(n, pooling=pooling))
    sim.run(until=warmup)
    events_before = sim.sim.executed_events
    gc.collect()
    tracemalloc.start()
    baseline = _live_blocks(tracemalloc.take_snapshot())
    sim.run(until=horizon)
    gc.collect()
    retained = _live_blocks(tracemalloc.take_snapshot()) - baseline
    tracemalloc.stop()
    events = sim.sim.executed_events - events_before
    return (retained / events if events else 0.0), events


def test_memory_plane(report):
    """The PR 7 tentpole: pooled shells + slotted state + O(n) bootstrap.

    Records construction wall time and steady-state throughput at
    n=1000 and n=100k, plus retained allocations per event (pooled and
    ``pooling=False``).  Construction must be O(n): the scaling
    assertion compares n=10k to n=100k (10x the nodes, allowed at most
    25x the time — sub-1k runs are dominated by fixed setup cost and
    would make the ratio meaningless), which the per-stream-eager
    pre-PR7 bootstrap failed by an order of magnitude.  Wall-clock
    bounds are jitter-gated like the other guards; the allocation
    numbers are deterministic and assert unconditionally.
    """
    n_small, n_mid, n_large = 1000, 10_000, 100_000
    calibrations = [_calibrate_events_per_second()]

    pooled_allocs, window_events = _retained_allocs_per_event(True)
    unpooled_allocs, _ = _retained_allocs_per_event(False)

    built = {}

    def build_small():
        built["small"] = Simulation(_memory_plane_config(n_small))

    def build_mid():
        built["mid"] = Simulation(_memory_plane_config(n_mid))

    def build_large():
        built["large"] = Simulation(_memory_plane_config(n_large))

    construct_small = _timed(build_small)
    small_result = built["small"].run(until=60.0)
    construct_mid = _timed(build_mid)
    del built["mid"]
    construct_large = _timed(build_large)
    large_result = built["large"].run(until=2.0)
    calibrations.append(_calibrate_events_per_second())
    jitter = max(calibrations) / min(calibrations) - 1.0

    _record("memory_plane", {
        "allocs_per_event_pooled": round(pooled_allocs, 4),
        "allocs_per_event_unpooled": round(unpooled_allocs, 4),
        "allocs_window_events": window_events,
        "construction_seconds_1k": round(construct_small, 6),
        "construction_seconds_10k": round(construct_mid, 6),
        "construction_seconds_100k": round(construct_large, 6),
        "events_per_sec_1k": round(
            small_result.resources["events_per_sec"]
        ),
        "events_per_sec_100k": round(
            large_result.resources["events_per_sec"]
        ),
        "calibration_jitter": round(jitter, 4),
    })
    report(
        f"memory plane: build n={n_small} {construct_small:.3f}s, "
        f"n={n_large} {construct_large:.3f}s; "
        f"{small_result.resources['events_per_sec']:,.0f} ev/s small, "
        f"{large_result.resources['events_per_sec']:,.0f} ev/s large; "
        f"retained allocs/event {pooled_allocs:.2f} pooled vs "
        f"{unpooled_allocs:.2f} unpooled (jitter {jitter:.1%})"
    )
    # Deterministic guard: a warm pooled run must not retain more than
    # a handful of blocks per event (metrics samples and trace-free
    # bookkeeping only) — shells coming from the free list is what
    # keeps this flat.
    assert pooled_allocs < 8.0, (
        f"pooled steady state retains {pooled_allocs:.2f} blocks/event; "
        "the event pool should keep this under 8"
    )
    if jitter > 0.05:
        pytest.skip(
            f"calibration jitter {jitter:.1%} > 5%: box too noisy for "
            "construction wall-clock bounds (numbers recorded above)"
        )
    assert construct_large <= 25 * max(construct_mid, 1e-2), (
        f"n=100k construction {construct_large:.2f}s vs n=10k "
        f"{construct_mid:.3f}s: bootstrap should scale O(n)"
    )


# ---------------------------------------------------------------------------
# 9. Scheduler disciplines: ladder queue + timer wheel vs binary heap
# ---------------------------------------------------------------------------


def _run_throughput_discipline(scheduler, n_events=200_000):
    """Seconds to drain ``n_events`` noop events under one discipline."""
    sim = Simulator(scheduler=scheduler)

    def noop():
        pass

    for i in range(n_events):
        sim.schedule_at(float(i % 997), noop)
    elapsed = _timed(sim.run)
    assert sim.executed_events == n_events
    return elapsed


def _run_cancellation_discipline(scheduler, n_events=120_000):
    """Cancel 90% of a pending set, then drain the survivors.

    Timer churn (schedule + cancel before firing) is the restartable-
    watchdog pattern the wheel front-end exists for: under the ladder
    the cancellations are in-place flag flips that never touch the
    queue, under the heap they are lazy-deleted shells the compactor
    has to sweep.
    """
    sim = Simulator(scheduler=scheduler)
    handles = [
        sim.schedule_timer_at(float(1 + i % 89), lambda: None)
        for i in range(n_events)
    ]

    def cancel_most():
        for i, handle in enumerate(handles):
            if i % 10:
                handle.cancel()

    cancel_time = _timed(cancel_most)
    assert sim.pending_events == n_events // 10
    drain_time = _timed(sim.run)
    assert sim.executed_events == n_events // 10
    return cancel_time + drain_time


def test_scheduler_disciplines(report):
    """The PR 9 tentpole: adaptive ladder queue + timer wheel vs heap.

    Both workloads replay the section-2 benchmarks under each discipline
    in the same session, so the comparison is self-calibrating; the
    speedup bars are still jitter-gated like every wall-clock guard
    because a noisy box can squeeze either side.  Bit-identity of the
    two disciplines is asserted by tests/test_schedqueue.py and
    tests/test_sched_equivalence.py — this benchmark only defends the
    reason the ladder is the default.
    """
    calibrations = [_calibrate_events_per_second()]
    times = {}
    for scheduler in ("ladder", "heap"):
        times[scheduler] = {
            "throughput_seconds": min(
                _run_throughput_discipline(scheduler) for _ in range(3)
            ),
            "cancellation_seconds": min(
                _run_cancellation_discipline(scheduler) for _ in range(3)
            ),
        }
    calibrations.append(_calibrate_events_per_second())
    jitter = max(calibrations) / min(calibrations) - 1.0

    ladder, heap = times["ladder"], times["heap"]
    throughput_speedup = (
        heap["throughput_seconds"] / ladder["throughput_seconds"]
        if ladder["throughput_seconds"] else math.inf
    )
    cancel_speedup = (
        heap["cancellation_seconds"] / ladder["cancellation_seconds"]
        if ladder["cancellation_seconds"] else math.inf
    )

    _record("scheduler", {
        "throughput_events": 200_000,
        "cancellation_events": 120_000,
        "ladder_throughput_seconds": round(ladder["throughput_seconds"], 6),
        "heap_throughput_seconds": round(heap["throughput_seconds"], 6),
        "ladder_cancellation_seconds": round(
            ladder["cancellation_seconds"], 6
        ),
        "heap_cancellation_seconds": round(heap["cancellation_seconds"], 6),
        "throughput_speedup": round(throughput_speedup, 2),
        "cancellation_speedup": round(cancel_speedup, 2),
        "calibration_jitter": round(jitter, 4),
    })
    report(
        f"scheduler: throughput ladder "
        f"{ladder['throughput_seconds']:.3f}s vs heap "
        f"{heap['throughput_seconds']:.3f}s ({throughput_speedup:.2f}x); "
        f"cancel-heavy ladder {ladder['cancellation_seconds']:.3f}s vs "
        f"heap {heap['cancellation_seconds']:.3f}s ({cancel_speedup:.2f}x, "
        f"jitter {jitter:.1%})"
    )
    if jitter > 0.05:
        pytest.skip(
            f"calibration jitter {jitter:.1%} > 5%: box too noisy for "
            "scheduler speedup bars (numbers recorded above)"
        )
    assert throughput_speedup >= 1.0, (
        f"ladder should not lose raw throughput to the heap, got "
        f"{throughput_speedup:.2f}x"
    )
    assert cancel_speedup >= 1.2, (
        f"wheel cancellation should beat heap lazy-delete by >=1.2x, "
        f"got {cancel_speedup:.2f}x"
    )


def _same_float(x, y):
    if math.isnan(x) and math.isnan(y):
        return True
    return x == y
