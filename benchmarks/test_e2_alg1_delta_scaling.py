"""Experiment E2 — Theorems 16/22: Algorithm 1 response time vs delta.

Both Algorithm 1 variants have response time polynomial in delta and
(nearly) independent of n.  We grow the contention degree on dense
clusters at fixed n-per-cluster and check the response grows with
delta; and we grow n at fixed delta (disjoint clusters chained
sparsely) to show near-independence from n in the static setting.
"""

from repro.analysis.tables import render_table
from repro.harness.experiments import run_static, star_positions
from repro.net.geometry import Point, line_positions

DELTAS = (3, 6, 9, 12)
UNTIL = 400.0


def cluster_chain(clusters: int, cluster_size: int = 4):
    """Sparsely chained tight clusters: n grows, delta stays put."""
    positions = []
    for c in range(clusters):
        base_x = c * 3.0
        for i in range(cluster_size):
            positions.append(Point(base_x + (i % 2) * 0.4,
                                   (i // 2) * 0.4))
    return positions


def test_e2_alg1_delta_scaling(benchmark, report):
    def run():
        by_delta = {}
        for algorithm in ("alg1-greedy", "alg1-linial"):
            series = []
            for delta in DELTAS:
                result = run_static(
                    algorithm,
                    star_positions(delta),
                    radio_range=3.0,  # full clique: degree = delta
                    until=UNTIL,
                    think_range=(0.5, 2.0),
                )
                from repro.analysis.stats import summarize
                series.append((delta, summarize(result.response_times)))
            by_delta[algorithm] = series
        by_n = []
        for clusters in (2, 4, 8):
            result = run_static(
                "alg1-greedy",
                cluster_chain(clusters),
                radio_range=1.0,
                until=UNTIL,
                think_range=(0.5, 2.0),
            )
            from repro.analysis.stats import summarize
            by_n.append((clusters * 4, summarize(result.response_times)))
        return by_delta, by_n

    by_delta, by_n = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for algorithm, series in by_delta.items():
        for delta, s in series:
            rows.append([algorithm, f"delta={delta}", f"{s.mean:.2f}",
                         f"{s.maximum:.2f}"])
    for n, s in by_n:
        rows.append(["alg1-greedy", f"n={n} (delta fixed)", f"{s.mean:.2f}",
                     f"{s.maximum:.2f}"])
    report(render_table(
        ["algorithm", "swept", "mean rt", "max rt"],
        rows,
        title="E2 / Theorems 16+22: Algorithm 1 response vs delta "
              "(cliques) and vs n at fixed delta (cluster chains)",
    ))

    # Response grows with contention degree...
    for algorithm, series in by_delta.items():
        means = {d: s.mean for d, s in series}
        assert means[DELTAS[-1]] > means[DELTAS[0]], algorithm
    # ...but is near-independent of n at fixed delta (static setting).
    n_means = [s.mean for _, s in by_n]
    assert n_means[-1] <= n_means[0] * 2.5
