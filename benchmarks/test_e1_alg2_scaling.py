"""Experiment E1 — Theorems 25/26: Algorithm 2 response-time scaling.

Claims: response time O(n^2) in the mobile setting, O(n) static — and
the static bound beats the prior best (O(n^2), Tsay-Bagrodia/
Sivilotti) thanks to the notification mechanism.  We grow line networks
and check the static worst-case response grows roughly linearly,
definitely sub-quadratically.
"""

from repro.analysis.scaling import fit_power_law
from repro.analysis.tables import render_table
from repro.harness.experiments import response_vs_n

NS = (6, 12, 24, 48)
UNTIL = 500.0


def test_e1_alg2_static_scaling(benchmark, report):
    data = benchmark.pedantic(
        lambda: response_vs_n("alg2", NS, until=UNTIL),
        rounds=1,
        iterations=1,
    )
    fit = fit_power_law([n for n, _ in data], [s.maximum for _, s in data])
    report(render_table(
        ["n", "mean rt", "p95 rt", "max rt"],
        [[n, f"{s.mean:.2f}", f"{s.p95:.2f}", f"{s.maximum:.2f}"]
         for n, s in data],
        title="E1 / Theorem 26: Algorithm 2 static response time vs n "
              f"(line networks) — max-rt growth fit: {fit}",
    ))
    maxima = {n: s.maximum for n, s in data}
    means = {n: s.mean for n, s in data}
    # 8x the nodes: worst response grows clearly sub-quadratically
    # (quadratic would be 64x).
    assert maxima[NS[-1]] <= maxima[NS[0]] * (NS[-1] / NS[0]) * 2.5
    # Mean response is essentially locality-bound: near-flat.
    assert means[NS[-1]] <= means[NS[0]] * 4
    # The fitted growth exponent is decisively below quadratic.
    assert fit.exponent < 1.3, f"measured exponent {fit.exponent:.2f}"
