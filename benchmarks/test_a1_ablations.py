"""Experiments A1-A3 — ablations of the paper's design choices.

DESIGN.md calls out three load-bearing mechanisms; each ablation
removes one and measures what breaks:

* A1: Algorithm 2 *without* the notification/switch mechanism (the
  paper credits it for the static O(n) bound of Theorem 26).
* A2: Algorithm 1 *without* the SDf return path (Lines 59-60; the
  mobility-recovery mechanism of Figure 6).
* A3: Algorithm 1's fork collection *without* doorway admission
  (the fairness machinery inherited from Choy-Singh).
"""

from repro.analysis.stats import summarize
from repro.analysis.tables import render_table
from repro.mobility import RandomWaypoint
from repro.net.geometry import grid_positions, line_positions
from repro.runtime.simulation import ScenarioConfig, Simulation

UNTIL = 400.0


def saturated_line(algorithm: str, n: int = 24):
    config = ScenarioConfig(
        positions=line_positions(n, spacing=1.0),
        algorithm=algorithm,
        seed=17,
        think_range=(0.0, 0.2),
    )
    return Simulation(config).run(until=UNTIL)


def mobile_grid(algorithm: str, n: int = 16, movers: int = 5):
    config = ScenarioConfig(
        positions=grid_positions(n, 1.0),
        radio_range=1.2,
        algorithm=algorithm,
        seed=23,
        think_range=(0.5, 2.0),
        delta_override=n - 1,
        mobility_factory=lambda i: (
            RandomWaypoint(4.0, 4.0, speed_range=(0.5, 1.2),
                           pause_range=(5.0, 15.0))
            if i < movers
            else None
        ),
    )
    return Simulation(config).run(until=UNTIL)


def test_ablations(benchmark, report):
    def run():
        return {
            "alg2": saturated_line("alg2"),
            "alg2-nonotify": saturated_line("alg2-nonotify"),
            "alg1-greedy (mobile)": mobile_grid("alg1-greedy"),
            "alg1-noreturn (mobile)": mobile_grid("alg1-noreturn"),
            "choy-singh": saturated_line("choy-singh", n=12),
            "alg1-nodoorway": saturated_line("alg1-nodoorway", n=12),
        }

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name, result in data.items():
        s = summarize(result.response_times)
        rows.append([
            name, result.cs_entries, f"{s.mean:.2f}", f"{s.p95:.2f}",
            f"{s.maximum:.2f}",
            ",".join(map(str, result.starved)) or "-",
        ])
    report(render_table(
        ["variant", "cs entries", "mean rt", "p95 rt", "max rt", "starved"],
        rows,
        title="A1-A3: what each removed mechanism was buying "
              "(pairs: full protocol vs ablated)",
    ))

    def tail(name):
        return summarize(data[name].response_times).maximum

    # A3 is the dramatic one: doorway admission bounds the tail.
    assert tail("alg1-nodoorway") > 2.0 * tail("choy-singh"), (
        "removing doorways should inflate the response tail"
    )
    # A1: the notification mechanism never *hurts*; without it the tail
    # is at least as bad (usually worse) under saturation.
    assert tail("alg2-nonotify") >= 0.8 * tail("alg2")
    # A2: both variants stay safe and live under mobility (the return
    # path is about fairness/analysis, not bare liveness, thanks to the
    # link-destroys-fork rule); everyone still eats.
    for name in ("alg1-greedy (mobile)", "alg1-noreturn (mobile)"):
        assert data[name].cs_entries > 100
        assert data[name].starved == []
