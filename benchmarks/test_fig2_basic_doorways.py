"""Experiment F2 — Figure 2: basic synchronous / asynchronous doorways.

Figure 2 gives the two doorway implementations.  Their behavioral
difference: the synchronous doorway's conjunctive wait can starve a
node indefinitely under contention (unbounded tail), while the
asynchronous doorway's seen-once rule bounds the wait by one traversal
per neighbor.  We measure hub traversal latency on increasingly
contended stars and compare the tails.
"""

from repro.analysis.tables import render_table
from repro.harness.experiments import doorway_latency

DELTAS = (2, 4, 8, 12)
UNTIL = 400.0


def test_fig2_basic_doorways(benchmark, report):
    def run():
        data = {}
        for kind in ("sync", "async"):
            data[kind] = [
                (d, doorway_latency(kind, d, until=UNTIL)) for d in DELTAS
            ]
        return data

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for kind, series in data.items():
        for delta, s in series:
            if s is None:
                rows.append([kind, delta, "STARVED", "STARVED", "inf"])
            else:
                rows.append([kind, delta, f"{s.mean:.2f}", f"{s.p95:.2f}",
                             f"{s.maximum:.2f}"])
    report(render_table(
        ["doorway", "delta", "mean", "p95", "max"],
        rows,
        title="Figure 2: hub traversal latency, saturated star of degree delta "
              "(module time T=1, nu=tau=0.1); STARVED = hub never got through",
    ))

    def tail(entry):
        return float("inf") if entry is None else entry.maximum

    sync_tail = {d: tail(s) for d, s in data["sync"]}
    async_tail = {d: tail(s) for d, s in data["async"]}
    # The async doorway never starves the hub...
    for d, s in data["async"]:
        assert s is not None, f"async doorway starved the hub at delta={d}"
    # ...while the sync doorway's tail blows up (to outright starvation
    # at high contention) — the reason the double doorway exists.
    for d in DELTAS[2:]:
        assert sync_tail[d] > async_tail[d], (
            f"sync tail should exceed async tail at delta={d}"
        )
    async_means = {d: s.mean for d, s in data["async"]}
    assert async_tail[DELTAS[-1]] <= 6 * async_means[DELTAS[-1]]
