"""Experiment E4 — Lemmas 15/21: the coloring procedures.

Greedy (Algorithm 4): O(n) rounds, colors in [0, delta].
Linial (Algorithm 5): Theta(log* n) rounds, colors in O(delta^2 *
polylog delta), independent of n.

We run both procedures offline over cliques of concurrent recolorers
(the worst case for both) and chart rounds + color range; plus the
round-schedule growth over astronomically large id spaces, which is
where log* n visibly flattens.
"""

from repro.analysis.tables import render_table
from repro.core.coloring.cover_free import reduction_schedule
from repro.core.coloring.greedy import GreedyColoring
from repro.core.coloring.linial import LinialColoring
from repro.harness.experiments import coloring_offline

CLIQUES = (2, 4, 8)
ID_SPACES = (10 ** 2, 10 ** 4, 10 ** 8, 10 ** 16, 10 ** 32)
DELTA = 8


def test_e4_coloring_procedures(benchmark, report):
    def run():
        greedy_rows = []
        linial_rows = []
        for k in CLIQUES:
            ids = [i * 37 + 5 for i in range(k)]  # sparse ids
            colors, rounds = coloring_offline(GreedyColoring(), ids)
            greedy_rows.append((k, rounds, max(colors.values())))
            proc = LinialColoring(id_space=10 ** 6, delta=DELTA)
            colors, rounds = coloring_offline(proc, ids)
            linial_rows.append((k, rounds, max(colors.values())))
        schedule_rows = [
            (n, len(reduction_schedule(n, DELTA)),
             reduction_schedule(n, DELTA)[-1].range_size
             if reduction_schedule(n, DELTA) else n)
            for n in ID_SPACES
        ]
        return greedy_rows, linial_rows, schedule_rows

    greedy_rows, linial_rows, schedule_rows = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    rows = [["greedy", f"clique {k}", r, c] for k, r, c in greedy_rows]
    rows += [["linial (n=1e6)", f"clique {k}", r, c] for k, r, c in linial_rows]
    report(render_table(
        ["procedure", "participants", "rounds", "max color"],
        rows,
        title="E4a / Lemmas 15+21: coloring rounds and ranges over "
              "concurrent-recolorer cliques",
    ))
    report(render_table(
        ["id space n", "rounds (log* n)", "final color range"],
        [[f"1e{len(str(n)) - 1}", r, rng] for n, r, rng in schedule_rows],
        title=f"E4b: Linial reduction schedule growth (delta={DELTA})",
    ))

    # Greedy colors stay within the clique degree (delta bound).
    for k, rounds, max_color in greedy_rows:
        assert max_color <= k - 1
        # Everyone legal: checked inside coloring_offline consumers; the
        # round count is bounded by the flood diameter (1 for a clique)
        # plus termination detection.
        assert rounds <= k + 2
    # Linial: round count independent of clique size, colors bounded by
    # the schedule's final range.
    linial_rounds = {r for _, r, _ in linial_rows}
    assert len(linial_rounds) == 1
    proc = LinialColoring(id_space=10 ** 6, delta=DELTA)
    for _, _, max_color in linial_rows:
        assert max_color <= proc.max_color()
    # log* growth: 30 orders of magnitude of n cost at most ~3 extra rounds.
    round_counts = [r for _, r, _ in schedule_rows]
    assert round_counts == sorted(round_counts)
    assert round_counts[-1] - round_counts[0] <= 3
    # Final range independent of n for large n.
    final_ranges = {rng for n, r, rng in schedule_rows if n >= 10 ** 8}
    assert len(final_ranges) == 1
