"""Experiment F6 — Figure 6: mobility rescues a blocked node.

The paper's Figure 6 scenario, scripted exactly: four nodes in a line
(p1-p2-p3-p4), priorities color(p3) < color(p2) < color(p1), p4 crashes
while holding the p3-p4 fork.

* p3 (distance 1 from the crash) blocks forever waiting for p4's fork;
* p3's suspension rule protects p1 (distance 3): it keeps eating;
* p2 (distance 2) is collateral damage — until p3 *moves away*, at
  which point p2 takes the SDf return path (Lines 59-60) and recovers.
"""

from repro.analysis.tables import render_table
from repro.harness.experiments import fig6_crash_scenario

MOVE_TIME = 250.0
UNTIL = 500.0


def test_fig6_crash_and_movement(benchmark, report):
    out = benchmark.pedantic(
        lambda: fig6_crash_scenario(move_time=MOVE_TIME, until=UNTIL),
        rounds=1,
        iterations=1,
    )
    report(render_table(
        ["node", "CS entries before p3 moves", "after"],
        [
            ["p1 (dist 3)", out.p1_entries, "(continuous)"],
            ["p2 (dist 2)", out.p2_entries_before_move,
             out.p2_entries_after_move],
            ["p3 (dist 1)", out.p3_entries_before_move,
             f"{out.p3_entries_after_move} (isolated)"],
            ["p2 return paths", out.p2_return_paths, ""],
        ],
        title=f"Figure 6: p4 crashed holding p3's fork; p3 departs at "
              f"t={MOVE_TIME}",
    ))
    # p1 is protected throughout (failure locality in action).
    assert out.p1_entries > 20
    # p2 is blocked while p3 is present...
    assert out.p2_entries_before_move == 0
    # ...and recovers via the return path after p3 leaves.
    assert out.p2_entries_after_move > 10
    assert out.p2_return_paths >= 1
    # p3 starves next to the crashed fork-holder.
    assert out.p3_entries_before_move == 0
