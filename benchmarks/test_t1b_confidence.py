"""Experiment T1b — Table 1's orderings across seeds (robustness check).

One seed is an anecdote; this benchmark replicates the head-to-head
response-time comparison over five seeds and reports 95% confidence
intervals, asserting the orderings Table 1 implies hold with
non-overlapping intervals where the theory says the gap is real.
"""

from repro.analysis.tables import render_table
from repro.harness.multiseed import DEFAULT_METRICS, replicate
from repro.net.geometry import line_positions
from repro.runtime.simulation import ScenarioConfig

SEEDS = (1, 2, 3, 4, 5)
N = 11
UNTIL = 300.0
ALGORITHMS = ("oracle", "alg2", "alg1-greedy", "chandy-misra")


def test_t1b_orderings_hold_across_seeds(benchmark, report):
    def run():
        estimates = {}
        for algorithm in ALGORITHMS:
            config = ScenarioConfig(
                positions=line_positions(N, spacing=1.0),
                algorithm=algorithm,
                think_range=(0.5, 2.0),
            )
            estimates[algorithm] = replicate(
                config, until=UNTIL, seeds=SEEDS, metrics=DEFAULT_METRICS
            )
        return estimates

    estimates = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for algorithm in ALGORITHMS:
        est = estimates[algorithm]
        rows.append([
            algorithm,
            str(est["mean_response"]),
            str(est["throughput"]),
            str(est["messages_per_cs"]),
        ])
    report(render_table(
        ["algorithm", "mean response (95% CI)", "throughput (95% CI)",
         "msgs/cs (95% CI)"],
        rows,
        title=f"T1b: {len(SEEDS)}-seed replication, {N}-node line, "
              f"{UNTIL} tu",
    ))

    # The oracle's response advantage over every protocol is real
    # (non-overlapping intervals).
    oracle = estimates["oracle"]["mean_response"]
    for algorithm in ALGORITHMS[1:]:
        other = estimates[algorithm]["mean_response"]
        assert oracle.high < other.low, (
            f"oracle should beat {algorithm} beyond CI overlap"
        )
    # The oracle message cost is exactly zero in every seed.
    assert estimates["oracle"]["messages_per_cs"].mean == 0.0
    # Protocol costs are stable enough to report (finite CIs).
    for algorithm in ALGORITHMS[1:]:
        assert estimates[algorithm]["messages_per_cs"].half_width < float(
            "inf"
        )
