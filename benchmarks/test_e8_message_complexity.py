"""Experiment E8 — message complexity (Chapter 7 names it future work).

The paper never analyzes message complexity; its discussion lists it as
an open measure.  We close the loop empirically: messages per
critical-section entry for every protocol, static and mobile, broken
down by message kind for the paper's algorithms — quantifying what the
doorway machinery costs relative to Algorithm 2's notification scheme.
"""

from repro.analysis.tables import render_table
from repro.mobility import RandomWaypoint
from repro.net.geometry import grid_positions
from repro.runtime.simulation import ScenarioConfig, Simulation

N = 12
UNTIL = 400.0
ALGORITHMS = ("alg2", "alg1-linial", "alg1-greedy", "chandy-misra",
              "ordered-ids", "oracle")


def run_one(algorithm: str, mobile: bool):
    config = ScenarioConfig(
        positions=grid_positions(N, 1.0),
        radio_range=1.2,
        algorithm=algorithm,
        seed=29,
        think_range=(0.5, 2.0),
        delta_override=N - 1,
        mobility_factory=(
            (lambda i: RandomWaypoint(4.0, 4.0, speed_range=(0.5, 1.0),
                                      pause_range=(8.0, 20.0))
             if i < 3 else None)
            if mobile
            else None
        ),
    )
    return Simulation(config).run(until=UNTIL)


def test_e8_message_complexity(benchmark, report):
    def run():
        return {
            (algorithm, mobile): run_one(algorithm, mobile)
            for algorithm in ALGORITHMS
            for mobile in (False, True)
        }

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for (algorithm, mobile), result in sorted(
        data.items(), key=lambda kv: (kv[0][1], ALGORITHMS.index(kv[0][0]))
    ):
        rows.append([
            "mobile" if mobile else "static",
            algorithm,
            result.cs_entries,
            f"{result.messages_per_cs():.1f}"
            if result.messages_per_cs() is not None else "0",
        ])
    report(render_table(
        ["setting", "algorithm", "cs entries", "msgs / cs entry"],
        rows,
        title=f"E8: message complexity, {N}-node grid",
    ))

    # Breakdown by kind for the paper's two algorithms (static).
    for algorithm in ("alg2", "alg1-greedy"):
        kinds = data[(algorithm, False)].messages_by_kind
        top = sorted(kinds.items(), key=lambda kv: -kv[1])[:6]
        report(render_table(
            ["message kind", "count"], top,
            title=f"E8 detail: {algorithm} message mix (static)",
        ))

    static_cost = {
        a: data[(a, False)].messages_per_cs() for a in ALGORITHMS
    }
    # The oracle sends nothing; every real protocol pays something.
    assert static_cost["oracle"] == 0
    # Algorithm 2 is leaner than the doorway-pipeline variants.
    assert static_cost["alg2"] < static_cost["alg1-greedy"]
    assert static_cost["alg2"] < static_cost["alg1-linial"]
    # Mobility strictly increases Algorithm 1's cost (recoloring traffic).
    assert (
        data[("alg1-greedy", True)].messages_per_cs()
        > data[("alg1-greedy", False)].messages_per_cs()
    )
