"""Experiment F5 — Figure 5: the structure of Algorithm 1.

Figure 5 shows the pipeline a hungry node flows through: the recoloring
double doorway (ADr, SDr) around the coloring module, interleaved with
the fork-collection double doorway (ADf, SDf) around fork collection.
This benchmark reconstructs that structure *from traces*: average time
spent between consecutive pipeline milestones on a mobile grid, proving
all six stages execute and showing where the latency lives.
"""

from repro.analysis.tables import render_table
from repro.harness.experiments import pipeline_breakdown

STAGE_LABELS = {
    "cross_ADr": "enter ADr (recolor async doorway)",
    "cross_SDr": "enter SDr (recolor sync doorway)",
    "recolor": "run coloring module",
    "cross_ADf": "enter ADf (fork async doorway)",
    "cross_SDf": "enter SDf (fork sync doorway)",
    "eat": "collect forks -> eat",
}


def test_fig5_pipeline_breakdown(benchmark, report):
    stages = benchmark.pedantic(
        lambda: pipeline_breakdown(n=12, until=600.0),
        rounds=1,
        iterations=1,
    )
    report(render_table(
        ["stage", "mean time in stage"],
        [[STAGE_LABELS[k], f"{v:.3f}"] for k, v in stages.items()],
        title="Figure 5: Algorithm 1 pipeline, measured per-stage latency "
              "(12-node grid, 1/3 of nodes mobile, greedy recoloring)",
    ))
    # Every stage of Figure 5 executed.
    assert set(stages) == set(STAGE_LABELS)
    # Fork collection and the coloring module dominate; doorways that
    # pass through an idle neighborhood are near-instant but nonzero
    # somewhere in the run.
    assert stages["eat"] > 0
    assert stages["recolor"] > 0, "recoloring module never ran"
    assert stages["cross_ADf"] >= 0
