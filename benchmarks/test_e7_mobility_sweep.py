"""Experiment E7 — the cost of mobility (Chapter 7's open question).

The paper asks what node movement inherently costs.  We sweep the
fraction of mobile nodes on a grid and measure, for both of the paper's
algorithms: response time, critical-section throughput, recoloring runs
(Algorithm 1 only) and demotions.  Safety is enforced throughout by the
strict monitor — the run itself is the proof that mobility never breaks
mutual exclusion.
"""

from repro.analysis.stats import summarize
from repro.analysis.tables import render_table
from repro.mobility import RandomWaypoint
from repro.net.geometry import grid_positions
from repro.runtime.simulation import ScenarioConfig, Simulation

N = 16
UNTIL = 400.0
MOVER_COUNTS = (0, 2, 4, 8)


def mobile_run(algorithm: str, movers: int):
    config = ScenarioConfig(
        positions=grid_positions(N, 1.0),
        radio_range=1.2,
        algorithm=algorithm,
        seed=23,
        think_range=(0.5, 2.0),
        delta_override=N - 1,
        mobility_factory=lambda i: (
            RandomWaypoint(4.0, 4.0, speed_range=(0.5, 1.2),
                           pause_range=(5.0, 15.0))
            if i < movers
            else None
        ),
    )
    sim = Simulation(config)
    result = sim.run(until=UNTIL)
    summary = summarize(result.response_times)
    demotions = sum(c.demotions for c in result.metrics.counters.values())
    recolors = 0
    for i in range(N):
        recolors += getattr(sim.algorithm_of(i), "recolor_runs", 0)
    return summary, result.cs_entries, demotions, recolors


def test_e7_mobility_sweep(benchmark, report):
    def run():
        return {
            (algorithm, movers): mobile_run(algorithm, movers)
            for algorithm in ("alg2", "alg1-greedy")
            for movers in MOVER_COUNTS
        }

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for (algorithm, movers), (s, entries, demotions, recolors) in data.items():
        rows.append([
            algorithm, movers, entries, f"{s.mean:.2f}", f"{s.p95:.2f}",
            demotions, recolors,
        ])
    report(render_table(
        ["algorithm", "movers", "cs entries", "mean rt", "p95 rt",
         "demotions", "recolor runs"],
        rows,
        title=f"E7: mobility sweep on a {N}-node grid "
              f"(strict safety enforced throughout)",
    ))

    # Progress survives every mobility level.
    for (algorithm, movers), (s, entries, _, _) in data.items():
        assert entries > 100, f"{algorithm} with {movers} movers stalled"
    # Recoloring only happens when someone moves (plus first-color runs).
    first_colors = N  # every node recolors once for its initial color
    assert data[("alg1-greedy", 0)][3] <= first_colors
    assert data[("alg1-greedy", 8)][3] > data[("alg1-greedy", 0)][3]
