"""Experiment E3 — failure locality, measured as starvation radius.

The core robustness claim of the paper.  Crash the middle of a long
line under sustained hunger and measure how far starvation reaches:

* Algorithm 2: radius <= 2 (Theorem 25, optimal);
* Algorithm 1 (Linial): <= max(log* n, 4) + 2 (Theorem 22);
* Algorithm 1 (greedy): can reach n in adversarial schedules
  (Theorem 16) but is typically small when recoloring is idle;
* Chandy-Misra / ordered-ids: Theta(n) waiting chains.
"""

from repro.analysis.tables import render_table
from repro.harness.experiments import crash_probe

N = 15
UNTIL = 700.0
ALGORITHMS = ("alg2", "alg1-linial", "alg1-greedy", "choy-singh",
              "chandy-misra", "ordered-ids")


def test_e3_failure_locality(benchmark, report):
    def run():
        return {
            algorithm: crash_probe(algorithm, n=N, until=UNTIL)
            for algorithm in ALGORITHMS
        }

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for algorithm, rep in reports.items():
        rows.append([
            algorithm,
            rep.starvation_radius if rep.starvation_radius is not None else 0,
            len(rep.starved),
            str(rep.starved_by_distance()),
        ])
    report(render_table(
        ["algorithm", "starvation radius", "starved nodes", "by distance"],
        rows,
        title=f"E3: crash at the middle of a {N}-node line, sustained hunger",
    ))

    radius = {
        a: (r.starvation_radius or 0) for a, r in reports.items()
    }
    assert radius["alg2"] <= 2, "Theorem 25: optimal failure locality 2"
    assert radius["alg1-linial"] <= 6, "Theorem 22: max(log* n, 4) + 2"
    assert radius["alg1-greedy"] <= 6
    # The chain baselines reach (almost) the end of the line.
    assert radius["chandy-misra"] >= (N // 2) - 2
    assert radius["ordered-ids"] >= (N // 2) - 2
