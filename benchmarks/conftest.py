"""Shared fixtures for the benchmark suite.

Every benchmark prints the paper-style table it regenerates; the
``report`` fixture writes through pytest's capture so the tables appear
in ``bench_output.txt`` alongside pytest-benchmark's timing table.
"""

import pytest


@pytest.fixture
def report(capsys):
    def _report(text: str) -> None:
        with capsys.disabled():
            print("\n" + text + "\n")

    return _report
