"""Experiment F1 — Figure 1: the doorway guarantee.

Figure 1 defines what a doorway *is*: if node i crosses before neighbor
j begins its entry code, j does not cross until i exits.  We probe the
guarantee statistically: on a saturated clique of doorway users, for
every traversal of node i we count how many times any single neighbor
managed to slip through the doorway while i was continuously waiting at
the entry — the "overtake factor".  For the asynchronous doorway each
neighbor can overtake at most once per wait (the seen-once rule); for
the raw synchronous doorway overtakes are unbounded.
"""

from collections import defaultdict

from repro.analysis.tables import render_table
from repro.core.doorway_harness import doorway_entry
from repro.harness.experiments import run_static, star_positions
from repro.sim.clock import TimeBounds


def overtake_stats(kind: str, until: float = 300.0):
    result_holder = {}

    config_kwargs = dict(
        until=until,
        seed=3,
        think_range=(0.0, 0.1),
        bounds=TimeBounds(nu=0.1, tau=0.1),
        strict_safety=False,
        trace=True,
    )
    from repro.runtime.simulation import ScenarioConfig, Simulation

    config = ScenarioConfig(
        positions=star_positions(6),
        radio_range=3.0,  # clique: everyone interferes with everyone
        algorithm=doorway_entry(kind, module_time=0.5),
        seed=3,
        think_range=(0.0, 0.1),
        bounds=TimeBounds(nu=0.1, tau=0.1),
        strict_safety=False,
        trace=True,
    )
    sim = Simulation(config)
    sim.run(until=until)

    # For every (waiter, wait interval), count per-neighbor crossings.
    waits = defaultdict(list)  # node -> [(start, end)]
    start = {}
    crossings = []  # (time, node)
    for rec in sim.trace:
        if rec.category == "app.hungry":
            start[rec.node] = rec.time
        elif rec.category == "cs.enter" and rec.node in start:
            waits[rec.node].append((start.pop(rec.node), rec.time))
        if rec.category == "doorway.crossed":
            continue
    for rec in sim.trace.select(category="cs.enter"):
        crossings.append((rec.time, rec.node))

    max_overtakes = 0
    for node, intervals in waits.items():
        for lo, hi in intervals:
            per_neighbor = defaultdict(int)
            for time, other in crossings:
                if other != node and lo < time < hi:
                    per_neighbor[other] += 1
            if per_neighbor:
                max_overtakes = max(max_overtakes, max(per_neighbor.values()))
    return max_overtakes


def test_fig1_doorway_guarantee(benchmark, report):
    def run():
        return {
            "sync": overtake_stats("sync"),
            "async": overtake_stats("async"),
            "double": overtake_stats("double"),
        }

    overtakes = benchmark.pedantic(run, rounds=1, iterations=1)
    report(render_table(
        ["doorway", "max times one neighbor overtook a waiter"],
        [[k, v] for k, v in overtakes.items()],
        title="Figure 1: the doorway no-overtake guarantee "
              "(saturated 7-node clique)",
    ))
    # The asynchronous entry bounds per-neighbor overtaking; the plain
    # synchronous doorway does not (this is why the double doorway
    # wraps sync inside async).
    assert overtakes["async"] <= overtakes["sync"]
    assert overtakes["double"] <= overtakes["sync"]
    assert overtakes["sync"] >= 2  # raw sync doorway does get overtaken
