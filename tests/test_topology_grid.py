"""Equivalence of the grid-indexed topology and the brute-force scan.

The spatial-hash index is a pure acceleration: for any sequence of
add/move/remove operations it must produce the same links, the same
neighbor sets and — bit for bit — the same ``LinkDiff`` lists (same
entries, same order) as the original all-pairs scan.  These tests
mirror randomized operation sequences into both implementations and
compare after every step, across several radio ranges and with nodes
placed exactly at the range boundary.
"""

import random

import pytest

from repro.errors import TopologyError
from repro.net.geometry import Point
from repro.net.topology import DynamicTopology


def _assert_same_state(grid: DynamicTopology, brute: DynamicTopology) -> None:
    assert grid.nodes() == brute.nodes()
    assert grid.links() == brute.links()
    assert grid.max_degree() == brute.max_degree()
    for node in grid.nodes():
        assert grid.neighbors(node) == brute.neighbors(node)
        assert grid.degree(node) == brute.degree(node)


def _mirror(grid, brute, op, *args):
    diff_grid = getattr(grid, op)(*args)
    diff_brute = getattr(brute, op)(*args)
    assert diff_grid.added == diff_brute.added, f"{op}{args}: added differ"
    assert diff_grid.removed == diff_brute.removed, f"{op}{args}: removed differ"
    return diff_grid


@pytest.mark.parametrize("radio", [0.3, 1.0, 1.5, 2.5])
def test_random_churn_matches_brute_force(radio):
    """≥200 random add/move/remove ops agree step-by-step per range."""
    rng = random.Random(hash(("churn", radio)) & 0xFFFFFFFF)
    grid = DynamicTopology(radio_range=radio)
    brute = DynamicTopology(radio_range=radio, brute_force=True)
    arena = 6.0 * radio
    next_id = 0
    live = []

    def random_point():
        return Point(rng.uniform(-arena, arena), rng.uniform(-arena, arena))

    for step in range(220):
        roll = rng.random()
        if not live or roll < 0.35:
            node = next_id
            next_id += 1
            _mirror(grid, brute, "add_node", node, random_point())
            live.append(node)
        elif roll < 0.85:
            node = rng.choice(live)
            if rng.random() < 0.5:
                # Local jitter — the common mobility pattern.
                base = grid.position(node)
                target = Point(
                    base.x + rng.uniform(-radio, radio),
                    base.y + rng.uniform(-radio, radio),
                )
            else:
                target = random_point()
            _mirror(grid, brute, "set_position", node, target)
        else:
            node = rng.choice(live)
            live.remove(node)
            _mirror(grid, brute, "remove_node", node)
        _assert_same_state(grid, brute)


@pytest.mark.parametrize("radio", [1.0, 0.1, 2.0])
def test_exact_range_boundary_is_a_link_in_both(radio):
    """Distance == radio_range is inclusive under both implementations."""
    grid = DynamicTopology(radio_range=radio)
    brute = DynamicTopology(radio_range=radio, brute_force=True)
    _mirror(grid, brute, "add_node", 0, Point(0.0, 0.0))
    # Axis-aligned at exactly the range, and a 3-4-5 triangle scaled so
    # the hypotenuse is exactly the range.
    _mirror(grid, brute, "add_node", 1, Point(radio, 0.0))
    _mirror(grid, brute, "add_node", 2, Point(0.0, -radio))
    _mirror(grid, brute, "add_node", 3, Point(0.6 * radio, 0.8 * radio))
    _assert_same_state(grid, brute)
    for other in (1, 2, 3):
        if grid.position(other).distance_to(Point(0.0, 0.0)) <= radio:
            assert grid.has_link(0, other)
    # Slide node 1 along the boundary circle and just beyond it.
    _mirror(grid, brute, "set_position", 1, Point(0.0, radio))
    _assert_same_state(grid, brute)
    _mirror(grid, brute, "set_position", 1, Point(0.0, radio * 1.0000001))
    _assert_same_state(grid, brute)
    assert not grid.has_link(0, 1)


def test_moves_across_many_cells_at_once():
    """A long jump relinks against a far-away cluster correctly."""
    grid = DynamicTopology(radio_range=1.0)
    brute = DynamicTopology(radio_range=1.0, brute_force=True)
    for i in range(5):
        _mirror(grid, brute, "add_node", i, Point(0.2 * i, 0.0))
    for i in range(5, 10):
        _mirror(grid, brute, "add_node", i, Point(50.0 + 0.2 * i, 0.0))
    _assert_same_state(grid, brute)
    _mirror(grid, brute, "set_position", 0, Point(51.0, 0.0))
    _assert_same_state(grid, brute)
    assert grid.neighbors(0) == frozenset(range(5, 10))
    _mirror(grid, brute, "set_position", 0, Point(0.0, 0.0))
    _assert_same_state(grid, brute)


def test_negative_coordinates_and_reinsertion():
    """Cells behave around the origin; removed ids can come back."""
    grid = DynamicTopology(radio_range=1.0)
    brute = DynamicTopology(radio_range=1.0, brute_force=True)
    _mirror(grid, brute, "add_node", 0, Point(-0.5, -0.5))
    _mirror(grid, brute, "add_node", 1, Point(0.4, 0.3))
    _mirror(grid, brute, "add_node", 2, Point(-1.4, -0.6))
    _assert_same_state(grid, brute)
    _mirror(grid, brute, "remove_node", 0)
    _assert_same_state(grid, brute)
    _mirror(grid, brute, "add_node", 0, Point(-0.5, -0.5))
    _assert_same_state(grid, brute)


def test_grid_bookkeeping_stays_minimal():
    """No stale cells linger after churn (internal sanity check)."""
    topo = DynamicTopology(radio_range=1.0)
    rng = random.Random(9)
    for i in range(30):
        topo.add_node(i, Point(rng.uniform(0, 10), rng.uniform(0, 10)))
    for i in range(30):
        topo.set_position(i, Point(rng.uniform(0, 10), rng.uniform(0, 10)))
    for i in range(30):
        topo.remove_node(i)
    assert topo._grid == {}
    assert topo._node_cell == {}
    assert topo.max_degree() == 0


def test_incremental_max_degree_tracks_removals():
    topo = DynamicTopology(radio_range=1.0)
    topo.add_node(0, Point(0.0, 0.0))
    topo.add_node(1, Point(0.5, 0.0))
    topo.add_node(2, Point(0.0, 0.5))
    assert topo.max_degree() == 2
    topo.set_position(2, Point(5.0, 5.0))
    assert topo.max_degree() == 1
    topo.remove_node(1)
    assert topo.max_degree() == 0
    with pytest.raises(TopologyError):
        topo.remove_node(1)
