"""Tests for the randomized coloring procedure (Chapter 7 extension)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coloring.randomized import Candidate, RandomizedColoring
from repro.core.messages import RecolorNack
from repro.errors import ConfigurationError
from repro.net.geometry import line_positions
from repro.runtime.simulation import ScenarioConfig, Simulation


class Wire:
    """Instant in-order delivery between sessions (see test_coloring)."""

    def __init__(self):
        self.sessions = {}
        self.finished = {}
        self.queue = []

    def add(self, node_id, procedure, peers):
        session = procedure.create_session(
            node_id,
            set(peers),
            lambda dst, msg, src=node_id: self.queue.append((src, dst, msg)),
            lambda value, src=node_id: self.finished.__setitem__(src, value),
        )
        self.sessions[node_id] = session
        return session

    def deliver_all(self):
        while self.queue:
            src, dst, msg = self.queue.pop(0)
            target = self.sessions.get(dst)
            if isinstance(msg, RecolorNack):
                # NACKs always terminate (see test_coloring.Wire).
                if target is not None:
                    target.remove_peer(src)
                continue
            if target is None or not target.active:
                self.queue.append((dst, src, RecolorNack(0)))
                continue
            target.on_peer_message(src, msg)


def run_clique(ids, seed=0, delta=None):
    procedure = RandomizedColoring(
        delta=delta or max(1, len(ids) - 1), rng=random.Random(seed)
    )
    wire = Wire()
    sessions = [
        wire.add(i, procedure, peers=[j for j in ids if j != i]) for i in ids
    ]
    for s in sessions:
        s.begin()
    wire.deliver_all()
    return wire.finished, sessions, procedure


def test_invalid_delta_rejected():
    with pytest.raises(ConfigurationError):
        RandomizedColoring(delta=0, rng=random.Random(0))


def test_solo_node_gets_zero():
    finished, _, _ = run_clique([4][:1])
    assert finished == {4: 0}


def test_pair_gets_distinct_colors():
    finished, _, _ = run_clique([0, 1])
    assert len(finished) == 2
    assert finished[0] != finished[1]


@settings(max_examples=30, deadline=None)
@given(
    k=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=10 ** 6),
)
def test_clique_always_rainbow(k, seed):
    """Legality is certain, not probabilistic: cliques end rainbow."""
    ids = list(range(0, 10 * k, 10))[:k]
    finished, _, _ = run_clique(ids, seed=seed)
    assert len(finished) == k
    values = list(finished.values())
    assert len(set(values)) == k


def test_colors_within_palette_or_fallback_band():
    ids = [0, 1, 2, 3]
    finished, sessions, procedure = run_clique(ids, seed=3)
    for node, color in finished.items():
        assert 0 <= color < procedure.palette_size + max(ids) + 1


def test_fallback_after_round_cap():
    # max_rounds=0 forces the deterministic fallback immediately.
    procedure = RandomizedColoring(delta=2, rng=random.Random(0), max_rounds=0)
    wire = Wire()
    a = wire.add(3, procedure, peers=(4,))
    b = wire.add(4, procedure, peers=(3,))
    a.begin()
    b.begin()
    wire.deliver_all()
    assert wire.finished[3] == procedure.palette_size + 3
    assert wire.finished[4] == procedure.palette_size + 4


def test_round_counts_are_small():
    finished, sessions, _ = run_clique([0, 1, 2, 3, 4], seed=9)
    for s in sessions:
        assert s.rounds_executed <= 10


def test_full_algorithm1_with_randomized_coloring():
    config = ScenarioConfig(
        positions=line_positions(7, spacing=1.0),
        algorithm="alg1-random",
        seed=4,
        think_range=(0.5, 2.0),
    )
    sim = Simulation(config)
    result = sim.run(until=250.0)
    assert result.starved == []
    for node in range(7):
        assert result.metrics.counters[node].cs_entries >= 5


def test_randomized_is_seed_deterministic():
    def run(seed):
        config = ScenarioConfig(
            positions=line_positions(5, spacing=1.0),
            algorithm="alg1-random",
            seed=seed,
            think_range=(0.5, 2.0),
        )
        result = Simulation(config).run(until=100.0)
        return result.cs_entries, result.messages_sent

    assert run(8) == run(8)
