"""Scale smoke tests: the library handles 100+ node networks briskly.

These are correctness-at-scale checks, not micro-benchmarks: big
topologies exercise code paths (wide neighbor sets, long BFS, many
concurrent hungry nodes) that small fixtures cannot.
"""

import time

from repro.mobility import RandomWaypoint
from repro.net.geometry import grid_positions, line_positions
from repro.runtime.simulation import ScenarioConfig, Simulation


def test_hundred_node_line_alg2():
    config = ScenarioConfig(
        positions=line_positions(100, spacing=1.0),
        algorithm="alg2",
        seed=1,
        think_range=(0.5, 2.0),
    )
    sim = Simulation(config)
    started = time.time()
    result = sim.run(until=150.0)
    elapsed = time.time() - started
    assert result.starved == []
    assert result.cs_entries > 2000
    assert elapsed < 30.0, f"100-node run took {elapsed:.1f}s"


def test_hundred_node_grid_alg1_linial():
    config = ScenarioConfig(
        positions=grid_positions(100, 1.0),
        radio_range=1.2,
        algorithm="alg1-linial",
        seed=2,
        think_range=(0.5, 2.0),
    )
    sim = Simulation(config)
    result = sim.run(until=100.0)
    assert result.starved == []
    assert result.cs_entries > 1000


def test_large_mobile_run_stays_safe():
    config = ScenarioConfig(
        positions=grid_positions(64, 1.0),
        radio_range=1.3,
        algorithm="alg2",
        seed=3,
        think_range=(0.5, 2.0),
        mobility_factory=lambda i: (
            RandomWaypoint(8.0, 8.0, speed_range=(0.5, 1.2),
                           pause_range=(5.0, 15.0))
            if i % 8 == 0
            else None
        ),
    )
    sim = Simulation(config)
    result = sim.run(until=120.0)  # strict safety throughout
    assert result.cs_entries > 400


def test_event_counts_are_sane():
    """No event-storm pathologies: events per CS entry stay bounded."""
    config = ScenarioConfig(
        positions=line_positions(50, spacing=1.0),
        algorithm="alg2",
        seed=4,
        think_range=(0.5, 2.0),
    )
    sim = Simulation(config)
    result = sim.run(until=100.0)
    events_per_cs = sim.sim.executed_events / max(1, result.cs_entries)
    assert events_per_cs < 60, f"{events_per_cs:.0f} events per CS entry"
