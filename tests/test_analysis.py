"""Tests for analysis helpers (stats and tables)."""

import pytest

from repro.analysis.stats import Summary, percentile, summarize
from repro.analysis.tables import render_table


def test_percentile_interpolation():
    data = [0.0, 1.0, 2.0, 3.0, 4.0]
    assert percentile(data, 0.0) == 0.0
    assert percentile(data, 1.0) == 4.0
    assert percentile(data, 0.5) == 2.0
    assert percentile(data, 0.25) == pytest.approx(1.0)
    assert percentile([7.0], 0.5) == 7.0
    with pytest.raises(ValueError):
        percentile([], 0.5)


def test_summarize_basic():
    s = summarize([1.0, 2.0, 3.0, 4.0])
    assert s.count == 4
    assert s.mean == pytest.approx(2.5)
    assert s.median == pytest.approx(2.5)
    assert s.maximum == 4.0
    assert s.minimum == 1.0
    assert s.stdev == pytest.approx(1.118, abs=1e-3)
    assert "n=4" in str(s)


def test_summarize_empty_returns_none():
    assert summarize([]) is None


def test_summarize_order_independent():
    assert summarize([3.0, 1.0, 2.0]) == summarize([1.0, 2.0, 3.0])


def test_render_table_alignment_and_floats():
    text = render_table(
        ["name", "value"],
        [["alpha", 1.23456], ["b", 10]],
        title="demo",
    )
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert "name" in lines[1] and "value" in lines[1]
    assert "1.235" in text  # floats formatted to 3 decimals
    assert "10" in text
    # All data rows are equally wide.
    assert len(lines[3]) == len(lines[4])


def test_render_table_no_title():
    text = render_table(["a"], [[1]])
    assert text.splitlines()[0].startswith("a")
