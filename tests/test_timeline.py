"""Tests for timeline rendering, concurrency profile and trace export."""

import io
import json

from repro.analysis.timeline import (
    concurrency_profile,
    eating_intervals,
    export_jsonl,
    render_timeline,
)
from repro.net.geometry import line_positions
from repro.runtime.simulation import ScenarioConfig, Simulation
from repro.sim.trace import TraceLog


def synthetic_trace():
    trace = TraceLog()
    trace.record(1.0, "cs.enter", 0)
    trace.record(2.0, "cs.exit", 0)
    trace.record(2.5, "cs.enter", 1)
    trace.record(3.0, "cs.demoted", 1)  # demotion closes the interval
    trace.record(4.0, "cs.enter", 0)
    # interval left open: closed at the last record time
    trace.record(5.0, "app.hungry", 2)
    return trace


def test_eating_intervals_reconstruction():
    intervals = eating_intervals(synthetic_trace())
    assert intervals[0] == [(1.0, 2.0), (4.0, 5.0)]
    assert intervals[1] == [(2.5, 3.0)]
    assert 2 not in intervals


def test_render_timeline_marks_eaters():
    text = render_timeline(synthetic_trace(), start=0.0, end=5.0, width=10)
    lines = text.splitlines()
    assert lines[0].startswith("t = [0.0, 5.0]")
    row0 = lines[1]
    assert row0.startswith("p0")
    assert "#" in row0 and "." in row0


def test_render_timeline_handles_empty_trace():
    text = render_timeline(TraceLog(), width=5)
    assert "t = [" in text


def test_concurrency_profile_counts_parallel_eaters():
    trace = TraceLog()
    trace.record(0.0, "cs.enter", 0)
    trace.record(0.0, "cs.enter", 5)   # far-away node eats in parallel
    trace.record(2.0, "cs.exit", 0)
    trace.record(2.0, "cs.exit", 5)
    profile = concurrency_profile(trace, step=1.0)
    assert profile[0] == 2
    assert profile[1] == 2
    assert profile[2] == 0


def test_local_mutex_allows_parallelism_in_real_run():
    """Global mutex would cap concurrency at 1; local mutex must not."""
    config = ScenarioConfig(
        positions=line_positions(12, spacing=1.0),
        algorithm="alg2",
        seed=3,
        think_range=(0.2, 1.0),
        trace=True,
    )
    sim = Simulation(config)
    sim.run(until=150.0)
    profile = concurrency_profile(sim.trace, step=0.5)
    assert max(profile) >= 2, "local mutual exclusion should allow parallelism"


def test_export_jsonl_round_trips():
    trace = TraceLog()
    trace.record(1.5, "link.up", None, static=1, moving=2)
    trace.record(2.0, "cs.enter", 3)
    buffer = io.StringIO()
    count = export_jsonl(trace, buffer)
    assert count == 2
    lines = [json.loads(line) for line in buffer.getvalue().splitlines()]
    assert lines[0]["category"] == "link.up"
    assert lines[0]["detail"] == {"static": 1, "moving": 2}
    assert lines[1]["node"] == 3


def test_export_jsonl_handles_sets():
    trace = TraceLog()
    trace.record(0.0, "x", 1, doors=frozenset({"b", "a"}))
    buffer = io.StringIO()
    export_jsonl(trace, buffer)
    record = json.loads(buffer.getvalue())
    assert record["detail"]["doors"] == ["a", "b"]


def test_eating_intervals_refuse_truncated_traces():
    import pytest

    from repro.errors import TraceTruncatedError

    trace = TraceLog(capacity=4)
    for i in range(10):
        trace.record(float(i), "cs.enter" if i % 2 == 0 else "cs.exit", 0)
    assert trace.truncated
    with pytest.raises(TraceTruncatedError):
        eating_intervals(trace)
    with pytest.raises(TraceTruncatedError):
        render_timeline(trace)
    with pytest.raises(TraceTruncatedError):
        concurrency_profile(trace)
    # The caller can still opt into a partial reconstruction.
    partial = eating_intervals(trace, allow_truncated=True)
    assert isinstance(partial, dict)
