"""Scheduler-discipline equivalence: ladder queue + wheel vs heap.

The ladder/wheel scheduler is only allowed to exist because it is
bit-identical to the binary heap.  These tests drive both disciplines
through randomized schedules (cancellations, retimes, timer churn,
same-instant tie groups under a ControlledScheduler, safe-horizon
truncation) and require the *exact* execution sequence to match, then
poke the structures' own mechanics (rung spills, bottom spill, wheel
cascades) directly.
"""

import math
import random

import pytest

from repro.errors import SimulationError
from repro.explore.schedule import RandomStrategy
from repro.sim.engine import Simulator
from repro.sim.events import EventPriority
from repro.sim.schedqueue import LadderQueue, TimerWheel


# ----------------------------------------------------------------------
# Randomized equivalence property
# ----------------------------------------------------------------------


def _drive(sim: Simulator, seed: int):
    """One deterministic pseudo-random workload against ``sim``.

    Mixes plain schedules, timer schedules (wheel-eligible), clustered
    timestamps (tie groups), cancellations, retimes, in-callback
    scheduling, and chunked run() calls.  Returns the execution log.
    """
    rng = random.Random(seed)
    log = []
    # Handles are kept past their firing, so revalidate with the
    # generation stamp (the documented pattern for long-lived holders):
    # a fired shell may be recycled for an unrelated event, and pool
    # reuse order is discipline-dependent.
    live = []

    def grab(handle):
        live.append((handle, handle.generation))

    def still_ours(handle, generation):
        return handle.generation == generation and not handle.cancelled

    def fire(label):
        log.append((sim.now, label))
        # Reentrant scheduling from inside a callback, sometimes.
        if rng.random() < 0.15:
            sim.schedule(rng.choice((0.0, 0.5, 3.0)), fire, ("child", label))

    horizon = 0.0
    for chunk in range(6):
        for i in range(120):
            roll = rng.random()
            # Cluster times so tie groups and shared buckets happen.
            t = sim.now + rng.choice((0.0, 0.25, 1.0, 1.0, 2.5, 7.0, 40.0))
            label = (chunk, i)
            if roll < 0.45:
                grab(sim.schedule_at(t, fire, label))
            elif roll < 0.75:
                grab(sim.schedule_timer_at(t, fire, label))
            elif roll < 0.85 and live:
                handle, generation = live.pop(rng.randrange(len(live)))
                if still_ours(handle, generation):
                    handle.cancel()
            elif live:
                # Retime: the crash-injector pattern (cancel + reissue).
                handle, generation = live.pop(rng.randrange(len(live)))
                if still_ours(handle, generation):
                    handle.cancel()
                grab(sim.schedule_timer_at(t + 1.0, fire, ("retimed", label)))
        horizon += rng.choice((1.5, 4.0, 9.0))
        sim.run(until=horizon)
        live = [(h, g) for h, g in live if still_ours(h, g)]
    sim.run(until=horizon + 200.0)
    return log


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 11])
def test_randomized_schedules_are_bit_identical(seed):
    ladder = Simulator(scheduler="ladder")
    heap = Simulator(scheduler="heap")
    ladder_log = _drive(ladder, seed)
    heap_log = _drive(heap, seed)
    assert ladder_log == heap_log
    assert ladder.now == heap.now
    assert ladder.executed_events == heap.executed_events
    assert ladder.pending_events == heap.pending_events


@pytest.mark.parametrize("pooling", [True, False])
def test_equivalence_holds_without_pooling(pooling):
    ladder = Simulator(pooling=pooling, scheduler="ladder")
    heap = Simulator(pooling=pooling, scheduler="heap")
    assert _drive(ladder, 5) == _drive(heap, 5)


@pytest.mark.parametrize("seed", [0, 7])
def test_tie_groups_match_under_a_controller(seed):
    """Same-key tie groups resolve identically in both disciplines.

    Includes wheel-parked timers due exactly at the tie instant: the
    engine must release them into the queue before the controller sees
    the group, or the controller's permutation authority would differ
    between disciplines.
    """
    logs = []
    for discipline in ("ladder", "heap"):
        sim = Simulator(scheduler=discipline)
        sim.set_choice_controller(RandomStrategy(seed))
        log = []
        for i in range(40):
            sim.schedule_at(5.0, log.append, ("event", i))
        # Timers landing on the same instant (wheel-eligible: positive
        # delay fixes granularity g=5.0, tick boundary at 5.0).
        for i in range(10):
            sim.schedule_timer(5.0, log.append, ("timer", i))
        # And a few at a different priority — never in the same group.
        for i in range(5):
            sim.schedule_at(
                5.0, log.append, ("monitor", i),
                priority=EventPriority.MONITOR,
            )
        sim.run(until=10.0)
        assert len(log) == 55
        # Priority classes stay ordered regardless of controller.
        assert all(entry[0] != "monitor" for entry in log[:50])
        logs.append(log)
    assert logs[0] == logs[1]


def test_safe_horizon_and_ingest_match():
    logs = []
    for discipline in ("ladder", "heap"):
        sim = Simulator(scheduler=discipline)
        log = []
        for i in range(50):
            sim.schedule_at(float(i), log.append, i)
        for i in range(20):
            sim.schedule_timer(10.0 + i, log.append, ("t", i))
        sim.set_safe_horizon(12.0)
        sim.run(until=100.0)
        assert sim.now == 12.0
        # Barrier window advances: ingest external events, move horizon.
        sim.ingest([(11.0, log.append, (("ingested", i),)) for i in range(3)])
        sim.set_safe_horizon(40.0)
        sim.run(until=100.0)
        assert sim.now == 40.0
        sim.set_safe_horizon(None)
        sim.run(until=100.0)
        logs.append(log)
    assert logs[0] == logs[1]
    assert logs[0][-1] == 49  # plain event at t=49.0 outlives the timers
    assert len(logs[0]) == 73


# ----------------------------------------------------------------------
# Ladder mechanics
# ----------------------------------------------------------------------


def _shells(times):
    """Bare event shells (engine=None keeps cancel() self-contained)."""
    from repro.sim.events import ScheduledEvent

    return [
        ScheduledEvent(t, EventPriority.NORMAL, seq, lambda: None, ())
        for seq, t in enumerate(times)
    ]


def test_ladder_pops_random_times_in_sorted_order():
    q = LadderQueue(lambda e: None)
    rng = random.Random(42)
    times = [rng.uniform(0.0, 1000.0) for _ in range(3000)]
    shells = _shells(times)
    for shell in shells:
        q.push(shell)
    popped = []
    while q.peek() is not None:
        popped.append(q.take())
    assert popped == sorted(shells, key=lambda e: e._key)
    assert q.dequeues == 3000 and q.live == 0


def test_ladder_spills_an_overloaded_bucket_into_a_deeper_rung():
    # Spread pushes spawn a coarse rung; a later burst lands >64 events
    # with distinct times in one coarse bucket, which must re-bucket
    # into a deeper rung instead of insertion-sorting the whole batch.
    q = LadderQueue(lambda e: None)
    anchors = _shells([0.0, 1000.0])
    for shell in anchors:
        q.push(shell)
    assert q.peek() is anchors[0]  # top transfer spawns the rung
    burst = _shells([600.0 + 0.1 * i for i in range(200)])
    for seq, shell in enumerate(burst, start=10):
        shell.seq = seq
        shell._key = (shell.time, int(shell.priority), seq)
        q.push(shell)
    popped = []
    while q.peek() is not None:
        popped.append(q.take())
    assert popped == sorted(anchors + burst, key=lambda e: e._key)
    assert q.rung_spills >= 1


def test_ladder_single_timestamp_bucket_goes_straight_to_bottom():
    # >64 events at one timestamp cannot be re-bucketed; they must sort
    # directly to the bottom rather than recursing forever.
    q = LadderQueue(lambda e: None)
    shells = _shells([5.0] * 300 + [1.0])
    for shell in shells:
        q.push(shell)
    order = []
    while q.peek() is not None:
        order.append(q.take().seq)
    assert order == [300] + list(range(300))


def test_ladder_sweep_recycles_cancelled_shells():
    freed = []
    q = LadderQueue(freed.append)
    shells = _shells([float(i % 37) for i in range(200)])
    for shell in shells:
        q.push(shell)
    for shell in shells[:150]:
        shell.cancelled = True  # engine=None: flip directly
        q.note_cancelled()
    assert q.compactions >= 1
    assert q.live == 50
    # Draining recycles whatever cancelled shells the sweep left behind.
    drained = 0
    while q.peek() is not None:
        q.take()
        drained += 1
    assert drained == 50
    assert len(freed) == 150


def test_ladder_equal_time_push_after_top_transfer():
    # After a top transfer, a new push at exactly the transferred max
    # time must land below the fresh top epoch and sort by seq.
    q = LadderQueue(lambda e: None)
    shells = _shells([10.0, 20.0, 30.0])
    for shell in shells:
        q.push(shell)
    assert q.peek() is shells[0]  # forces the top transfer
    late = _shells([30.0])[0]
    late.seq = 99
    late._key = (30.0, int(late.priority), 99)
    q.push(late)
    order = [q.take().seq for _ in range(4) if q.peek() is not None]
    assert order == [0, 1, 2, 99]


# ----------------------------------------------------------------------
# Wheel mechanics
# ----------------------------------------------------------------------


def test_wheel_spans_levels_and_cascades():
    sim = Simulator()
    fired = []
    # First delay fixes g=1.0; later arms span wheel levels 0..2.
    delays = [1.0, 3.0, 70.0, 700.0, 5000.0]
    for d in delays:
        sim.schedule_timer(d, fired.append, d)
    sched = sim.stats()["scheduler"]
    assert sched["wheel_arms"] == len(delays)
    sim.run(until=6000.0)
    assert fired == sorted(delays)
    assert sim.stats()["scheduler"]["wheel_cascades"] > 0


def test_wheel_cancelled_shells_recycle_without_queue_traffic():
    sim = Simulator()
    enqueues_before = sim.stats()["scheduler"]["enqueues"]
    handles = [sim.schedule_timer(2.0 + i % 5, lambda: None) for i in range(50)]
    for handle in handles:
        handle.cancel()
    sched = sim.stats()["scheduler"]
    assert sched["cancelled_in_place"] == 50
    assert sched["enqueues"] == enqueues_before  # ladder untouched
    assert sim.pending_events == 0
    # Draining past the slots recycles the shells; time still advances.
    assert sim.run(until=50.0) == 50.0


def test_wheel_out_of_range_falls_back_to_queue():
    sim = Simulator()
    fired = []
    sim.schedule_timer(1.0, fired.append, "sets-g")
    # 64**4 ticks of g=1.0 is out of wheel range -> plain queue push.
    far = sim.schedule_timer(float(64**4 + 10), fired.append, "far")
    assert far.engine is sim
    # Zero delay is not wheel-eligible either.
    sim.schedule_timer(0.0, fired.append, "now")
    sim.run(until=float(64**4 + 20))
    assert fired == ["now", "sets-g", "far"]


def test_wheel_empty_queue_idle_advance():
    # With nothing in the queue and only far-future live timers, run()
    # must advance to `until` without spinning or firing early.
    sim = Simulator()
    fired = []
    sim.schedule_timer(100.0, fired.append, "late")
    assert sim.run(until=30.0) == 30.0
    assert fired == []
    assert sim.run(until=150.0) == 150.0
    assert fired == ["late"]


def test_scheduler_argument_is_validated():
    with pytest.raises(SimulationError):
        Simulator(scheduler="splay")


def test_wheel_granularity_is_lazy():
    wheel = TimerWheel(lambda e: None)
    assert wheel.next_time == math.inf
    assert not wheel.accepts(5.0, 5.0)  # zero delay never parks
    assert wheel.accepts(7.0, 5.0)      # fixes g = 2.0
    assert not wheel.accepts(4.0, 5.0)  # behind now
