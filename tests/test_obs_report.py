"""Tests for RunReport: round-trips, diffs, determinism, golden schema.

The golden file ``tests/data/golden_report.json`` pins the report
*schema*: regenerate it (see ``_golden_config``) only on a deliberate,
version-bumped layout change.  Structure and integer leaves must match
exactly; float leaves are compared approximately because the
``statistics`` module's summation details may differ across
interpreter versions.
"""

import json
import math
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.net.geometry import line_positions
from repro.obs.report import SCHEMA_VERSION, RunReport, _flatten
from repro.runtime.simulation import ScenarioConfig, Simulation

GOLDEN = Path(__file__).parent / "data" / "golden_report.json"


def _golden_config():
    return ScenarioConfig(
        positions=line_positions(6, spacing=1.0),
        radio_range=1.1,
        algorithm="alg2",
        seed=3,
        crashes=[(20.0, 2)],
        telemetry=True,
        watchdog=15.0,
    )


def _small_report():
    config = ScenarioConfig(
        positions=line_positions(4, spacing=1.0),
        radio_range=1.1,
        algorithm="alg2",
        seed=7,
        telemetry=True,
    )
    return Simulation(config).run(until=60.0).report()


# ----------------------------------------------------------------------
# Serialization round-trips
# ----------------------------------------------------------------------


def test_json_round_trip_is_bit_identical():
    report = _small_report()
    text = report.to_json()
    clone = RunReport.from_json(text)
    assert clone.to_json() == text
    assert clone.to_dict() == report.to_dict()


def test_save_load_round_trip(tmp_path):
    report = _small_report()
    path = report.save(tmp_path / "run.json")
    assert RunReport.load(path).to_dict() == report.to_dict()


def test_from_dict_rejects_other_schema_versions():
    with pytest.raises(ConfigurationError):
        RunReport.from_dict({"schema_version": SCHEMA_VERSION + 1})
    with pytest.raises(ConfigurationError):
        RunReport.from_dict({})


def test_from_dict_rejects_unknown_fields():
    data = RunReport().to_dict()
    data["surprise"] = 1
    with pytest.raises(ConfigurationError):
        RunReport.from_dict(data)


def test_from_json_rejects_garbage():
    with pytest.raises(ConfigurationError):
        RunReport.from_json("{not json")
    with pytest.raises(ConfigurationError):
        RunReport.from_json("[1, 2]")


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------


def test_fixed_seed_runs_produce_bit_identical_reports():
    config = _golden_config()
    first = Simulation(config).run(until=120.0).report()
    second = Simulation(_golden_config()).run(until=120.0).report()
    assert first.to_json() == second.to_json()
    assert first.diff(second) == {}


def test_telemetry_and_watchdog_do_not_change_protocol_leaves():
    config = _golden_config()
    config.telemetry = False
    config.watchdog = None
    plain = Simulation(config).run(until=120.0).report()
    full = Simulation(_golden_config()).run(until=120.0).report()
    changed = full.diff(plain)
    # Only observation-layer leaves may differ: probe metrics, watchdog
    # warnings, the config flags that enabled them, and engine counters
    # (watchdog ticks are engine events).  Protocol-visible sections
    # must be untouched.
    for path in changed:
        top = path.split(".")[0].split("[")[0]
        assert top in ("probes", "warnings", "config", "engine"), path
    assert plain.response == full.response
    assert plain.channel == full.channel


# ----------------------------------------------------------------------
# Diff
# ----------------------------------------------------------------------


def test_diff_reports_changed_leaves_with_dotted_paths():
    a = RunReport(duration=10.0, response={"cs_entries": 5, "mean": 1.0})
    b = RunReport(duration=12.0, response={"cs_entries": 5, "mean": 2.0})
    changed = a.diff(b)
    assert changed["duration"] == (10.0, 12.0)
    assert changed["response.mean"] == (1.0, 2.0)
    assert "response.cs_entries" not in changed


def test_diff_shows_one_sided_paths_as_none():
    a = RunReport(probes={"fork.requests": {"value": 3}})
    b = RunReport()
    changed = a.diff(b)
    assert changed["probes.fork.requests.value"] == (3, None)


def test_summary_lines_mention_the_essentials():
    report = _small_report()
    text = "\n".join(report.summary_lines())
    assert f"schema v{SCHEMA_VERSION}" in text
    assert "cs entries" in text
    assert "engine" in text
    assert "probe metrics" in text


# ----------------------------------------------------------------------
# Golden schema file
# ----------------------------------------------------------------------


def test_golden_report_schema_is_stable():
    golden = RunReport.load(GOLDEN)
    assert golden.schema_version == SCHEMA_VERSION

    fresh = Simulation(_golden_config()).run(until=120.0).report()
    golden_leaves = _flatten(golden.to_dict())
    fresh_leaves = _flatten(fresh.to_dict())
    # The set of dotted leaf paths IS the schema: any rename, removal or
    # addition must be deliberate (regenerate the golden + bump review).
    assert set(golden_leaves) == set(fresh_leaves)
    for path, value in golden_leaves.items():
        other = fresh_leaves[path]
        if isinstance(value, float) and isinstance(other, float):
            assert math.isclose(value, other, rel_tol=1e-9, abs_tol=1e-12), path
        else:
            assert value == other, path


def test_golden_report_is_valid_canonical_json():
    text = GOLDEN.read_text()
    data = json.loads(text)
    assert text == json.dumps(data, indent=2, sort_keys=True) + "\n"
