"""Lemma-by-lemma conformance index.

One test per formal statement of the paper, so a reviewer can map the
thesis's claims onto executable checks.  Several statements are also
exercised more thoroughly elsewhere (noted inline); this file is the
paper-facing table of contents.
"""

import pytest

from repro.harness.experiments import (
    crash_probe,
    doorway_latency,
    run_static,
)
from repro.net.geometry import line_positions
from repro.runtime.simulation import ScenarioConfig, Simulation

from helpers import (
    Lemma4Checker,
    assert_alg2_priority_graph_acyclic,
    assert_fork_uniqueness,
)


def test_lemma_1_double_doorway_bounded_exit():
    """Lemma 1: double doorway exits within O(delta * T).

    (Scaling shape asserted in benchmarks/test_fig3; here: the bound is
    *finite* — a saturated hub still gets through.)
    """
    summary = doorway_latency("double", delta=8, module_time=1.0, until=200.0)
    assert summary is not None and summary.count >= 10


def test_lemma_2_return_path_bounded_exit():
    """Lemma 2: R module runs cost ~R*T per traversal (shape in F4)."""
    single = doorway_latency("double-return", delta=4, returns=1, until=150.0)
    triple = doorway_latency("double-return", delta=4, returns=3, until=150.0)
    assert single is not None and triple is not None
    assert triple.mean > 2.0 * single.mean


def test_lemma_3_local_mutual_exclusion_and_fork_uniqueness():
    """Lemma 3: the first algorithm satisfies local mutual exclusion.

    The strict monitor enforces the exclusion half during the run; the
    proof's core invariant (one fork per link) is checked at the end.
    """
    config = ScenarioConfig(
        positions=line_positions(7, 1.0), algorithm="alg1-greedy",
        seed=3, think_range=(0.2, 1.0),
    )
    sim = Simulation(config)
    sim.run(until=150.0)
    assert_fork_uniqueness(sim)


def test_lemma_4_colors_legal_behind_sdf():
    """Lemma 4: neighbors concurrently behind SDf hold distinct colors."""
    config = ScenarioConfig(
        positions=line_positions(6, 1.0), algorithm="alg1-greedy",
        seed=6, think_range=(0.2, 1.0),
    )
    sim = Simulation(config)
    checker = Lemma4Checker(sim)  # asserts on every event
    sim.run(until=120.0)
    assert checker.checks > 500


def test_lemmas_14_19_coloring_legality():
    """Lemma 14 (greedy) / Lemma 19 (Linial): Assumption 1 holds.

    Exhaustive and property-based versions live in test_coloring.py;
    this is the canonical two-neighbor instance for each procedure.
    """
    from repro.core.coloring.greedy import GreedyColoring
    from repro.core.coloring.linial import LinialColoring
    from repro.harness.experiments import coloring_offline

    for procedure in (GreedyColoring(), LinialColoring(10 ** 6, 4)):
        colors, _ = coloring_offline(procedure, [3, 8])
        assert colors[3] != colors[8], type(procedure).__name__


def test_lemma_15_greedy_colors_in_delta_range():
    """Lemma 15: greedy recoloring yields colors in [0, delta]."""
    from repro.core.coloring.greedy import GreedyColoring
    from repro.harness.experiments import coloring_offline

    ids = [2, 5, 11, 17]  # a 4-clique of participants: delta = 3
    colors, _ = coloring_offline(GreedyColoring(), ids)
    assert all(0 <= c <= 3 for c in colors.values())


def test_lemma_21_linial_rounds_and_range():
    """Lemma 21: O(log* n) rounds, colors in a delta-polynomial range."""
    from repro.core.coloring.linial import LinialColoring

    proc = LinialColoring(id_space=10 ** 9, delta=8)
    assert proc.rounds <= 6  # log* of 10^9 plus construction slack
    assert proc.max_color() <= 8 ** 3


def test_lemma_24_priority_graph_acyclic():
    """Lemma 24: Algorithm 2's priority digraph stays acyclic."""
    config = ScenarioConfig(
        positions=line_positions(8, 1.0), algorithm="alg2",
        seed=9, think_range=(0.2, 1.0),
    )
    sim = Simulation(config)
    sim.run(until=150.0)
    assert_alg2_priority_graph_acyclic(sim)


def test_theorem_25_failure_locality_two():
    """Theorem 25: Algorithm 2's starvation radius is at most 2."""
    report = crash_probe("alg2", n=11, until=500.0)
    assert report.starvation_radius is None or report.starvation_radius <= 2


def test_theorem_26_static_linear_response():
    """Theorem 26: static response grows ~linearly (shape in E1/E6)."""
    small = run_static("alg2", line_positions(6, 1.0), until=200.0,
                       think_range=(0.3, 1.0))
    large = run_static("alg2", line_positions(24, 1.0), until=200.0,
                       think_range=(0.3, 1.0))
    assert max(large.response_times) <= 8 * max(small.response_times)


def test_theorems_16_22_liveness_of_both_variants():
    """Theorems 16/22: both Algorithm 1 variants are starvation-free in
    failure-free runs (response-time scaling shapes in E2/E5)."""
    for algorithm in ("alg1-greedy", "alg1-linial"):
        result = run_static(
            algorithm, line_positions(7, 1.0), until=250.0,
            think_range=(0.3, 1.2),
        )
        assert result.starved == [], algorithm
