"""Shrinking: minimal repro files that still fail the same way.

``shrink_repro`` must only ever accept candidates that an actual
replay confirmed, so the invariants here are hard guarantees: the
size metric never grows, the shrunk repro still trips the original
monitor, and a replay of the shrunk file succeeds end to end.
"""

import pytest

from repro.errors import ConfigurationError
from repro.explore import replay, run_campaign, shrink_repro
from repro.explore.runner import check_repro


@pytest.fixture(scope="module")
def violation_repro():
    """One violating run from the fastest-failing ablation campaign."""
    result = run_campaign(
        "alg2-nonotify", runs=12, seed=1, stop_on_first=True
    )
    assert not result.clean
    return result.violations[0]


def test_shrink_is_monotone_and_preserves_the_monitor(violation_repro):
    shrunk, replays = shrink_repro(violation_repro)
    assert replays > 0
    assert shrunk.size() <= violation_repro.size()
    assert shrunk.violation["monitor"] == violation_repro.violation["monitor"]
    # The shrinker touched horizon + decisions here, so it should make
    # real progress, not just return its input.
    assert shrunk.size() < violation_repro.size()
    assert shrunk.until <= violation_repro.until


def test_shrunk_repro_records_its_origin(violation_repro):
    shrunk, _ = shrink_repro(violation_repro)
    assert shrunk.shrunk_from == {
        "size": violation_repro.size(),
        "decisions": len(violation_repro.decisions),
        "until": violation_repro.until,
    }


def test_shrunk_repro_still_fails_via_replay(violation_repro):
    shrunk, _ = shrink_repro(violation_repro)
    result = replay(shrunk)  # raises on divergence
    assert result.violation.monitor == shrunk.violation["monitor"]
    assert result.violation.step == shrunk.violation["step"]


def test_shrink_respects_the_replay_budget(violation_repro):
    shrunk, replays = shrink_repro(violation_repro, max_replays=3)
    assert replays <= 3
    # Whatever came out still fails: candidates are only kept when a
    # replay confirmed them.
    assert check_repro(shrunk) is not None


def test_replay_of_tampered_repro_diverges(violation_repro):
    tampered = type(violation_repro).from_dict(violation_repro.to_dict())
    tampered.violation = dict(tampered.violation)
    tampered.violation["monitor"] = "exclusion"
    with pytest.raises(ConfigurationError):
        replay(tampered)
