"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim import EventPriority, Simulator, TimeBounds, Timer
from repro.sim.rng import RandomSource


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, order.append, "c")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(2.0, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_events_run_in_priority_then_insertion_order():
    sim = Simulator()
    order = []
    sim.schedule(1.0, order.append, "normal-1")
    sim.schedule(1.0, order.append, "monitor", priority=EventPriority.MONITOR)
    sim.schedule(1.0, order.append, "topology", priority=EventPriority.TOPOLOGY)
    sim.schedule(1.0, order.append, "normal-2")
    sim.run()
    assert order == ["topology", "normal-1", "normal-2", "monitor"]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    handle.cancel()
    sim.run()
    assert fired == []
    assert sim.executed_events == 0


def test_run_until_deadline_leaves_future_events_pending():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(5.0, fired.append, "late")
    sim.run(until=2.0)
    assert fired == ["early"]
    assert sim.now == 2.0
    sim.run()
    assert fired == ["early", "late"]


def test_schedule_into_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        sim.schedule(1.0, order.append, "second")

    sim.schedule(1.0, first)
    sim.run()
    assert order == ["first", "second"]
    assert sim.now == 2.0


def test_run_is_not_reentrant():
    sim = Simulator()
    errors = []

    def recurse():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, recurse)
    sim.run()
    assert len(errors) == 1


def test_stop_halts_execution():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append("a"), sim.stop()))
    sim.schedule(2.0, fired.append, "b")
    sim.run()
    assert fired == ["a"]
    assert sim.pending_events == 1


def test_max_events_budget():
    sim = Simulator()
    for i in range(10):
        sim.schedule(float(i + 1), lambda: None)
    sim.run(max_events=4)
    assert sim.executed_events == 4


def test_listener_fires_after_each_event():
    sim = Simulator()
    seen = []
    sim.add_listener(lambda s: seen.append(s.now))
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.run()
    assert seen == [1.0, 2.0]


def test_listener_can_be_removed():
    sim = Simulator()
    seen = []
    listener = lambda s: seen.append(s.now)  # noqa: E731
    sim.add_listener(listener)
    sim.schedule(1.0, lambda: None)
    sim.run()
    sim.remove_listener(listener)
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert seen == [1.0]


def test_timer_restart_supersedes_previous_deadline():
    sim = Simulator()
    fired = []
    timer = Timer(sim, fired.append, "tick")
    timer.start(1.0)
    timer.start(3.0)
    sim.run(until=2.0)
    assert fired == []
    assert timer.pending
    sim.run()
    assert fired == ["tick"]
    assert not timer.pending


def test_timer_cancel():
    sim = Simulator()
    fired = []
    timer = Timer(sim, fired.append, "tick")
    timer.start(1.0)
    timer.cancel()
    sim.run()
    assert fired == []


def test_time_bounds_validation():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        TimeBounds(nu=0)
    with pytest.raises(ConfigurationError):
        TimeBounds(tau=-1)
    with pytest.raises(ConfigurationError):
        TimeBounds(min_delay_fraction=0)


def test_time_bounds_delay_draws_within_range():
    bounds = TimeBounds(nu=2.0, tau=3.0, min_delay_fraction=0.5)
    rng = RandomSource(7).stream("t")
    for _ in range(200):
        d = bounds.draw_message_delay(rng)
        assert 1.0 <= d <= 2.0
        e = bounds.draw_eating_time(rng)
        assert 0 < e <= 3.0


def test_time_bounds_deterministic_delay():
    bounds = TimeBounds(nu=2.0, min_delay_fraction=1.0)
    rng = RandomSource(7).stream("t")
    assert bounds.draw_message_delay(rng) == 2.0


def test_random_source_streams_are_independent_and_reproducible():
    a = RandomSource(42)
    b = RandomSource(42)
    assert a.stream("x").random() == b.stream("x").random()
    c = RandomSource(42)
    d = RandomSource(43)
    assert c.stream("x").random() != d.stream("x").random()
    # Distinct names give distinct streams.
    e = RandomSource(42)
    assert e.stream("x", 1).random() != e.stream("x", 2).random()


def test_random_source_fork_derives_new_seed():
    root = RandomSource(5)
    child1 = root.fork("child")
    child2 = RandomSource(5).fork("child")
    assert child1.seed == child2.seed
    assert child1.seed != root.seed


# ----------------------------------------------------------------------
# Engine stats and profiling hooks
# ----------------------------------------------------------------------


def test_stats_snapshot_tracks_counters():
    for discipline in ("ladder", "heap"):
        sim = Simulator(scheduler=discipline)
        for i in range(5):
            sim.schedule_at(float(i), lambda: None)
        sim.run()
        stats = sim.stats()
        assert stats["executed_events"] == 5
        assert stats["pending_events"] == 0
        assert stats["now"] == 4.0
        sched = stats["scheduler"]
        assert sched["discipline"] == discipline
        assert sched["enqueues"] == 5
        assert sched["dequeues"] == 5
        assert sched["high_water"] >= 1
        assert "compactions" in sched


def test_mass_cancellation_triggers_compaction():
    # Both disciplines sweep their pending set in place once cancelled
    # shells outnumber live events.
    for discipline in ("ladder", "heap"):
        sim = Simulator(scheduler=discipline)
        handles = [sim.schedule_at(float(i), lambda: None) for i in range(200)]
        for handle in handles[:150]:
            handle.cancel()
        assert sim.compactions >= 1
        assert sim.stats()["scheduler"]["compactions"] == sim.compactions
        sim.run()
        assert sim.executed_events == 50


def test_wheel_cancel_is_in_place():
    # A cancelled wheel-resident timer never enters the main queue: the
    # cancellation is a flag flip accounted on the wheel.
    sim = Simulator()  # ladder + wheel
    fired = []
    keep = sim.schedule_timer(5.0, fired.append, "keep")
    drop = [sim.schedule_timer(5.0 + i % 3, fired.append, i) for i in range(30)]
    for handle in drop:
        handle.cancel()
    assert keep.pending and not drop[0].pending
    before = sim.stats()["scheduler"]
    assert before["wheel_arms"] == 31
    assert before["cancelled_in_place"] == 30
    assert before["cancelled"] == 0  # the ladder never saw them
    assert sim.pending_events == 1
    sim.run(until=10.0)
    assert fired == ["keep"]


def test_profiler_attach_detach_and_categories():
    from repro.obs.profiler import EngineProfiler

    sim = Simulator()
    profiler = EngineProfiler(sample_every=2)
    sim.attach_profiler(profiler)
    assert sim.profiler is profiler

    def tick():
        pass

    for i in range(6):
        sim.schedule_at(float(i), tick)
    sim.run()
    assert profiler.events == 6
    summary = profiler.summary()
    (category,) = summary["by_category"].keys()
    assert category.endswith("tick")
    assert summary["by_category"][category]["events"] == 6
    assert summary["events_per_second"] > 0
    assert profiler.top_categories() == [category]
    sim.detach_profiler()
    assert sim.profiler is None


def test_profiler_cannot_change_mid_run():
    from repro.obs.profiler import EngineProfiler

    sim = Simulator()

    def meddle():
        with pytest.raises(SimulationError):
            sim.attach_profiler(EngineProfiler())
        with pytest.raises(SimulationError):
            sim.detach_profiler()

    sim.schedule_at(1.0, meddle)
    sim.run()
