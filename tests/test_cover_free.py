"""Tests for the polynomial cover-free families (Theorem 18 substitute)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coloring.cover_free import (
    PolynomialFamily,
    final_color_range,
    is_prime,
    next_prime,
    reduction_schedule,
)
from repro.errors import ConfigurationError, ProtocolError


def test_primality_basics():
    primes = [2, 3, 5, 7, 11, 13, 17, 19, 23]
    for p in primes:
        assert is_prime(p)
    for c in [0, 1, 4, 6, 9, 15, 21, 25, 49]:
        assert not is_prime(c)


def test_next_prime():
    assert next_prime(1) == 2
    assert next_prime(8) == 11
    assert next_prime(11) == 11
    assert next_prime(90) == 97


def test_family_parameters_satisfy_constraints():
    fam = PolynomialFamily(m=1000, delta=4)
    assert is_prime(fam.q)
    assert fam.q > fam.degree * fam.delta
    assert fam.q ** (fam.degree + 1) >= fam.m


def test_sets_have_q_elements_in_range():
    fam = PolynomialFamily(m=100, delta=3)
    for v in range(fam.m):
        s = fam.set_for(v)
        assert len(s) == fam.q
        assert all(0 <= x < fam.range_size for x in s)


def test_distinct_values_give_distinct_sets():
    fam = PolynomialFamily(m=60, delta=3)
    sets = [fam.set_for(v) for v in range(fam.m)]
    assert len(set(sets)) == fam.m


def test_pairwise_intersection_bounded_by_degree():
    fam = PolynomialFamily(m=60, delta=3)
    for u in range(fam.m):
        for v in range(u + 1, fam.m):
            assert len(fam.set_for(u) & fam.set_for(v)) <= fam.degree


def test_cover_free_property_exhaustive_small():
    """No set covered by the union of any delta others (delta=2)."""
    import itertools

    fam = PolynomialFamily(m=25, delta=2)
    values = range(fam.m)
    for v in values:
        own = fam.set_for(v)
        for others in itertools.combinations((u for u in values if u != v), 2):
            union = set()
            for u in others:
                union |= fam.set_for(u)
            assert not own <= union, f"F_{v} covered by {others}"


@settings(max_examples=60, deadline=None)
@given(
    m=st.integers(min_value=2, max_value=5000),
    delta=st.integers(min_value=1, max_value=10),
    data=st.data(),
)
def test_fresh_element_property(m, delta, data):
    """fresh_element always returns an own-set element missed by others."""
    fam = PolynomialFamily(m, delta)
    value = data.draw(st.integers(min_value=0, max_value=m - 1))
    others = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=m - 1).filter(lambda u: u != value),
            max_size=delta,
        )
    )
    fresh = fam.fresh_element(value, others)
    assert fresh in fam.set_for(value)
    for other in others:
        assert fresh not in fam.set_for(other)


def test_fresh_element_rejects_too_many_neighbors():
    fam = PolynomialFamily(m=50, delta=2)
    with pytest.raises(ProtocolError):
        fam.fresh_element(0, [1, 2, 3])


def test_out_of_domain_value_rejected():
    fam = PolynomialFamily(m=10, delta=2)
    with pytest.raises(ProtocolError):
        fam.set_for(fam.q ** (fam.degree + 1))


def test_invalid_parameters():
    with pytest.raises(ConfigurationError):
        PolynomialFamily(0, 2)
    with pytest.raises(ConfigurationError):
        PolynomialFamily(10, 0)
    with pytest.raises(ConfigurationError):
        reduction_schedule(0, 1)


def test_schedule_ranges_strictly_shrink():
    schedule = reduction_schedule(10 ** 6, 8)
    ranges = [f.range_size for f in schedule]
    m = 10 ** 6
    for family, rng in zip(schedule, ranges):
        assert rng < m
        m = rng


def test_schedule_round_count_grows_very_slowly():
    """The log* behavior: rounds grow by at most a couple per 10^3x n."""
    rounds = [len(reduction_schedule(n, 8)) for n in (10 ** 3, 10 ** 6, 10 ** 12)]
    assert rounds == sorted(rounds)
    assert rounds[-1] <= rounds[0] + 3
    assert rounds[-1] <= 6


def test_schedule_is_memoized_and_deterministic():
    a = reduction_schedule(5000, 5)
    b = reduction_schedule(5000, 5)
    assert a is b  # lru_cache


def test_final_color_range_quadratic_in_delta():
    """Final range is polynomial in delta, independent of n (large n)."""
    n = 10 ** 9
    small = final_color_range(n, 4)
    large = final_color_range(n, 16)
    assert small < large
    # O(delta^2 polylog): well under delta^3 at these sizes.
    assert large <= 16 ** 3
    # And independent of n once n is large.
    assert final_color_range(10 ** 12, 16) == pytest.approx(large, abs=large)
