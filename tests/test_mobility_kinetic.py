"""Kinetic vs fixed-step mobility: equivalence, batching, cached views.

The two execution paths are *not* bit-identical mid-flight (the
fixed-step path quantizes motion to step_length hops), so the contract
tested here is the one both paths guarantee:

* identical destinations and identical link sets whenever the network
  is quiescent (every node at rest) — and both equal the ground truth
  recomputed from raw positions;
* kinetic link events fire at the analytically exact crossing times;
* unchanged safety verdicts and failure-locality verdicts on crash
  scenarios;
* bit-identical RunReports across reruns *within* each path.

Plus unit coverage for ``DynamicTopology.set_positions`` (the batched
update entry point) and the version-counter-backed cached views.
"""

import math
import random

import pytest

from repro.metrics.safety import SafetyViolation
from repro.mobility import MobilityController, RandomWaypoint
from repro.net.channel import ChannelLayer
from repro.net.geometry import Point, line_positions
from repro.net.linklayer import LinkLayer
from repro.net.topology import DynamicTopology
from repro.runtime.simulation import ScenarioConfig, Simulation
from repro.sim.clock import TimeBounds
from repro.sim.engine import Simulator
from repro.sim.rng import RandomSource


class NullHandler:
    def on_message(self, src, message):
        pass

    def on_link_up(self, peer, moving):
        pass

    def on_link_down(self, peer):
        pass


def build_stack(positions, radio=1.5, fixed_step=False, seed=0):
    sim = Simulator()
    topo = DynamicTopology(radio_range=radio)
    link = LinkLayer(sim, topo)
    channel = ChannelLayer(
        sim, topo, TimeBounds(), RandomSource(seed).stream("c"),
        deliver=link.deliver,
    )
    link.bind_channel(channel)
    for i, p in enumerate(positions):
        topo.add_node(i, p)
        link.register(i, NullHandler())
    controller = MobilityController(
        sim, topo, link, RandomSource(seed), fixed_step=fixed_step
    )
    return sim, topo, link, controller


def ground_truth_links(topo):
    ids = topo.nodes()
    r = topo.radio_range
    truth = set()
    for i, a in enumerate(ids):
        for b in ids[i + 1:]:
            if topo.position(a).distance_to(topo.position(b)) <= r:
                truth.add((a, b))
    return truth


# ----------------------------------------------------------------------
# set_positions: the batched update entry point
# ----------------------------------------------------------------------


def test_set_positions_singleton_is_bit_identical_to_set_position():
    rnd = random.Random(11)
    single = DynamicTopology(radio_range=1.3)
    batched = DynamicTopology(radio_range=1.3)
    for i in range(25):
        p = Point(rnd.uniform(0, 6), rnd.uniform(0, 6))
        single.add_node(i, p)
        batched.add_node(i, p)
    for _ in range(200):
        node = rnd.randrange(25)
        dest = Point(rnd.uniform(0, 6), rnd.uniform(0, 6))
        a = single.set_position(node, dest)
        b = batched.set_positions([(node, dest)])
        assert a.added == b.added and a.removed == b.removed
    assert single.links() == batched.links()


def test_set_positions_batch_matches_sequential_final_state():
    rnd = random.Random(23)
    seq = DynamicTopology(radio_range=1.2)
    bat = DynamicTopology(radio_range=1.2)
    for i in range(30):
        p = Point(rnd.uniform(0, 7), rnd.uniform(0, 7))
        seq.add_node(i, p)
        bat.add_node(i, p)
    for _ in range(60):
        movers = rnd.sample(range(30), rnd.randint(1, 6))
        moves = [
            (m, Point(rnd.uniform(0, 7), rnd.uniform(0, 7))) for m in movers
        ]
        before = set(seq.links())
        for node, dest in moves:
            seq.set_position(node, dest)
        after = set(seq.links())
        diff = bat.set_positions(moves)
        # One merged diff, equal to the *net* effect of the sequential
        # application.  Transient toggles through intermediate states
        # (a pair linking against a stale position, then unlinking once
        # the second mover lands) cancel out: every pair is judged once
        # on final positions, so the diff is exactly after-vs-before.
        assert set(diff.added) == after - before
        assert set(diff.removed) == before - after
        assert len(diff.added) == len(set(diff.added))
        assert len(diff.removed) == len(set(diff.removed))
        assert seq.links() == bat.links()
    assert ground_truth_links(bat) == set(bat.links())


def test_set_positions_rejects_duplicate_mover():
    topo = DynamicTopology(radio_range=1.0)
    topo.add_node(0, Point(0, 0))
    from repro.errors import TopologyError

    with pytest.raises(TopologyError):
        topo.set_positions([(0, Point(1, 0)), (0, Point(2, 0))])


def test_set_positions_skips_deferred_pairs():
    topo = DynamicTopology(radio_range=1.0)
    topo.add_node(0, Point(0, 0))
    topo.add_node(1, Point(5, 0))  # stale stored position of a mover
    topo.add_node(2, Point(0.5, 0))
    # Move node 0 right next to node 1's stored position: the deferred
    # pair (0, 1) must not toggle, the live pair (0, 2) must.
    diff = topo.set_positions([(0, Point(4.9, 0))], deferred=[1])
    assert (0, 1) not in diff.added
    assert (0, 2) in diff.removed
    assert not topo.has_link(0, 1)
    # Batch members are never deferred, even if listed.
    diff = topo.set_positions(
        [(0, Point(4.8, 0)), (1, Point(4.0, 0))], deferred=[1]
    )
    assert (0, 1) in diff.added


# ----------------------------------------------------------------------
# Version counter and cached views
# ----------------------------------------------------------------------


def test_cached_views_are_stable_between_graph_changes():
    topo = DynamicTopology(radio_range=1.1)
    for i, p in enumerate(line_positions(5, spacing=1.0)):
        topo.add_node(i, p)
    v = topo.version
    n_first = topo.neighbors(2)
    s_first = topo.sorted_neighbors(2)
    assert n_first == frozenset({1, 3})
    assert s_first == (1, 3)
    # Pure position updates that change no link leave the version and
    # the cached objects untouched.
    topo.set_position(2, Point(2.0, 0.1))
    assert topo.version == v
    assert topo.neighbors(2) is n_first
    assert topo.sorted_neighbors(2) is s_first
    # A link change bumps the version and invalidates both views.
    topo.set_position(4, Point(3.0, 0.5))
    assert topo.version > v
    assert topo.neighbors(3) == frozenset({2, 4})


def test_distances_from_is_memoized_against_version():
    topo = DynamicTopology(radio_range=1.1)
    for i, p in enumerate(line_positions(6, spacing=1.0)):
        topo.add_node(i, p)
    first = topo.distances_from(0)
    assert topo.distances_from(0) is first  # memo hit, same object
    assert first[5] == 5
    topo.set_position(5, Point(0.0, 1.0))  # 5 now adjacent to 0
    second = topo.distances_from(0)
    assert second is not first
    assert second[5] == 1


# ----------------------------------------------------------------------
# Exact crossing behavior of the kinetic engine
# ----------------------------------------------------------------------


def test_two_movers_cross_at_analytic_times():
    sim, topo, link, ctl = build_stack(
        [Point(0, 0), Point(10, 0.9)], radio=1.5
    )
    events = []
    link.observers.append(lambda kind, a, b: events.append((kind, sim.now)))
    ctl.move_node(0, Point(10, 0.0), speed=1.0)
    ctl.move_node(1, Point(0, 0.9), speed=1.0)
    sim.run(until=30.0)
    gap = math.sqrt(1.5**2 - 0.9**2)  # x-gap when distance equals r
    t_in = (10 - gap) / 2.0
    t_out = (10 + gap) / 2.0
    assert [k for k, _ in events] == ["up", "down"]
    assert events[0][1] == pytest.approx(t_in, abs=1e-9)
    assert events[1][1] == pytest.approx(t_out, abs=1e-9)


def test_teleport_into_a_movers_path_is_not_missed():
    # A mover certifies pairs against stored positions; a teleport jumps
    # a third party into its path after certification.  The engine must
    # re-certify and still produce the link.
    sim, topo, link, ctl = build_stack(
        [Point(0, 0), Point(50, 50)], radio=1.0
    )
    events = []
    link.observers.append(lambda kind, a, b: events.append((kind, sim.now)))
    ctl.move_node(0, Point(20, 0), speed=1.0)
    sim.schedule(5.0, lambda: ctl.teleport(1, Point(10, 0)))
    sim.run(until=40.0)
    kinds = [k for k, _ in events]
    assert "up" in kinds  # mover reached the teleported node
    assert events[kinds.index("up")][1] == pytest.approx(9.0, abs=1e-9)


def test_retarget_mid_flight_pins_position_and_reroutes():
    sim, topo, link, ctl = build_stack([Point(0, 0), Point(4, 3)], radio=1.0)
    ctl.move_node(0, Point(8, 0), speed=1.0)
    # At t=4 node 0 sits at (4, 0); retarget straight up toward (4, 3).
    sim.schedule(4.0, lambda: ctl.move_node(0, Point(4, 3), speed=1.0))
    events = []
    link.observers.append(lambda kind, a, b: events.append((kind, sim.now)))
    sim.run(until=20.0)
    assert topo.position(0) == Point(4, 3)
    # Link to node 1 comes up when |(4, y) - (4, 3)| = 1 -> y = 2, t = 6.
    ups = [t for k, t in events if k == "up"]
    assert ups and ups[0] == pytest.approx(6.0, abs=1e-9)


# ----------------------------------------------------------------------
# Randomized equivalence at quiescent instants
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_quiescent_link_sets_match_fixed_step_and_ground_truth(seed):
    rnd = random.Random(seed)
    positions = [
        Point(rnd.uniform(0, 9), rnd.uniform(0, 9)) for _ in range(24)
    ]
    kin = build_stack(positions, radio=1.4, fixed_step=False, seed=seed)
    fix = build_stack(positions, radio=1.4, fixed_step=True, seed=seed)
    for round_no in range(12):
        # A burst of overlapping episodes...
        # (distinct movers: the fixed-step path does not support
        # retargeting a node that is already mid-flight)
        for node in rnd.sample(range(24), rnd.randint(1, 5)):
            dest = Point(rnd.uniform(0, 9), rnd.uniform(0, 9))
            speed = rnd.uniform(0.5, 4.0)
            for (_, _, _, ctl) in (kin, fix):
                ctl.move_node(node, dest, speed)
        # ...then run both stacks long past every arrival (quiescence).
        horizon = max(kin[0].now, fix[0].now) + 60.0
        kin[0].run(until=horizon)
        fix[0].run(until=horizon)
        k_links = set(kin[1].links())
        assert k_links == set(fix[1].links()), round_no
        assert k_links == ground_truth_links(kin[1]), round_no
        for n in range(24):
            assert kin[1].position(n) == fix[1].position(n)


@pytest.mark.parametrize("seed", [0, 7])
def test_concurrent_waypoint_scenarios_agree_on_quiescent_snapshots(seed):
    # Full Simulation stack, several concurrently moving nodes.  Both
    # modes must stay safe (strict monitor raises on any violation) and
    # agree with ground truth whenever sampled mid-run (the kinetic
    # adjacency is maintained from true motion, so it always matches
    # ground truth at its own positions).
    def factory(node_id):
        if node_id % 3 == 0:
            return RandomWaypoint(
                8.0, 8.0, speed_range=(0.5, 2.5), pause_range=(0.5, 2.0)
            )
        return None

    results = {}
    for fixed in (False, True):
        config = ScenarioConfig(
            positions=line_positions(12, spacing=0.9),
            radio_range=1.0,
            algorithm="alg2",
            seed=seed,
            mobility_factory=factory,
            mobility_fixed_step=fixed,
        )
        simulation = Simulation(config)
        checks = []

        def check(simulation=simulation, checks=checks):
            checks.append(
                set(simulation.topology.links())
                == ground_truth_links(simulation.topology)
            )

        if not fixed:
            for t in range(10, 100, 10):
                simulation.sim.schedule_at(float(t), check)
        results[fixed] = simulation.run(until=120.0)
        assert all(checks)
    # Safety violations: zero in both (strict mode would have raised).
    assert results[False].cs_entries > 0
    assert results[True].cs_entries > 0


@pytest.mark.parametrize("fixed", [False, True])
def test_reports_are_bit_identical_across_reruns_within_each_path(fixed):
    def factory(node_id):
        if node_id in (1, 4):
            return RandomWaypoint(
                6.0, 4.0, speed_range=(1.0, 3.0), pause_range=(0.2, 1.0)
            )
        return None

    def run():
        config = ScenarioConfig(
            positions=line_positions(8, spacing=0.9),
            radio_range=1.0,
            algorithm="alg2",
            seed=13,
            mobility_factory=factory,
            mobility_fixed_step=fixed,
            telemetry=True,
            crashes=[(40.0, 3)],
        )
        return Simulation(config).run(until=100.0).report()

    first, second = run(), run()
    assert first.to_json() == second.to_json()
    assert first.diff(second) == {}


def test_crash_scenario_verdicts_match_across_paths():
    # Failure-locality verdict (the paper's headline property) must not
    # depend on the mobility execution path.
    def factory(node_id):
        if node_id in (2, 9):
            return RandomWaypoint(
                10.0, 3.0, speed_range=(1.0, 2.0), pause_range=(0.5, 1.5)
            )
        return None

    verdicts = {}
    for fixed in (False, True):
        config = ScenarioConfig(
            positions=line_positions(12, spacing=0.9),
            radio_range=1.0,
            algorithm="alg2",
            seed=3,
            mobility_factory=factory,
            mobility_fixed_step=fixed,
            crashes=[(30.0, 5)],
        )
        result = Simulation(config).run(until=160.0)
        assert result.locality is not None
        verdicts[fixed] = (
            result.locality["starvation_radius"],
            sorted(result.locality["crashed"]),
        )
    assert verdicts[False] == verdicts[True]


def test_safety_monitor_stays_strict_under_kinetic_churn():
    # High churn with several movers; strict safety raises on any
    # same-instant double-eat between neighbors.
    def factory(node_id):
        if node_id % 2 == 0:
            return RandomWaypoint(
                5.0, 5.0, speed_range=(1.0, 4.0), pause_range=(0.0, 0.5)
            )
        return None

    config = ScenarioConfig(
        positions=line_positions(10, spacing=0.7),
        radio_range=1.0,
        algorithm="alg2",
        seed=21,
        mobility_factory=factory,
        strict_safety=True,
    )
    try:
        result = Simulation(config).run(until=150.0)
    except SafetyViolation as exc:  # pragma: no cover - diagnostic
        pytest.fail(f"kinetic churn broke mutual exclusion: {exc}")
    assert result.cs_entries > 0
