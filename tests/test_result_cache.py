"""Behavior of the on-disk result cache and the parallel-safe harness.

Covers: key stability, hit/miss accounting, invalidation when any
``ScenarioConfig`` field changes, corrupted-entry tolerance (a broken
file is a miss, never a crash), uncacheable scenarios, and that
``replicate``'s cached / parallel paths reproduce the serial numbers
exactly.
"""

import json
import math

import pytest

from repro.harness import multiseed
from repro.harness.cache import ResultCache, resolve_cache, scenario_key
from repro.harness.multiseed import DEFAULT_METRICS, replicate, sweep
from repro.net.geometry import line_positions
from repro.runtime.simulation import ScenarioConfig


def _config(**overrides):
    base = dict(
        positions=line_positions(4, spacing=1.0),
        algorithm="alg2",
        think_range=(0.5, 2.0),
        max_entries=2,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


# Key scheme -----------------------------------------------------------------


def test_scenario_key_is_stable_and_seed_sensitive():
    config = _config()
    assert scenario_key(config, 30.0, 1) == scenario_key(config, 30.0, 1)
    assert scenario_key(config, 30.0, 1) != scenario_key(config, 30.0, 2)
    assert scenario_key(config, 30.0, 1) != scenario_key(config, 40.0, 1)


def test_scenario_key_changes_when_config_fields_change():
    config = _config()
    variants = [
        _config(radio_range=1.5),
        _config(algorithm="chandy-misra"),
        _config(think_range=(1.0, 3.0)),
        _config(max_entries=3),
        _config(crashes=[(5.0, 1)]),
    ]
    base_key = scenario_key(config, 30.0, 1)
    for variant in variants:
        assert scenario_key(variant, 30.0, 1) != base_key


def test_scenario_key_encodes_engine_shape():
    config = _config()
    base = scenario_key(config, 30.0, 1)
    assert scenario_key(config, 30.0, 1, shards=2) != base
    assert scenario_key(config, 30.0, 1, max_speed=1.5) != base
    assert (
        scenario_key(config, 30.0, 1, shards=2)
        != scenario_key(config, 30.0, 1, shards=4)
    )
    # The default engine shape is part of the same scheme, not a
    # special case: explicit defaults reproduce the two-argument key.
    assert scenario_key(config, 30.0, 1, shards=1, max_speed=None) == base


def test_sharded_replicate_caches_independently(tmp_path):
    """Sharded replications cache (no bypass) under shard-specific keys."""
    config = _config()
    metrics = {"throughput": DEFAULT_METRICS["throughput"]}
    classic = replicate(config, until=30.0, seeds=(1,), metrics=metrics,
                        cache=tmp_path)
    store = ResultCache(tmp_path)
    assert store.get(scenario_key(config, 30.0, 1)) is not None
    assert store.get(scenario_key(config, 30.0, 1, shards=2)) is None
    sharded = replicate(config, until=30.0, seeds=(1,), metrics=metrics,
                        cache=tmp_path, shards=2)
    assert store.get(scenario_key(config, 30.0, 1, shards=2)) is not None
    # Cached sharded entries replay for sharded calls only.
    again = replicate(config, until=30.0, seeds=(1,), metrics=metrics,
                      cache=tmp_path, shards=2)
    assert _estimates_equal(again["throughput"], sharded["throughput"])
    assert _estimates_equal(
        replicate(config, until=30.0, seeds=(1,), metrics=metrics,
                  cache=tmp_path)["throughput"],
        classic["throughput"],
    )


def test_unserializable_scenarios_are_uncacheable():
    assert scenario_key(_config(algorithm=lambda ctx: None), 30.0, 1) is None
    assert (
        scenario_key(_config(mobility_factory=lambda nid: None), 30.0, 1)
        is None
    )


# Store behavior --------------------------------------------------------------


def test_cache_miss_then_hit(tmp_path):
    cache = ResultCache(tmp_path)
    key = scenario_key(_config(), 30.0, 1)
    assert cache.get(key) is None
    cache.put(key, {"throughput": 0.25})
    assert cache.get(key) == {"throughput": 0.25}
    assert cache.misses == 1
    assert cache.hits == 1


def test_cache_none_key_is_inert(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(None, {"x": 1.0})
    assert cache.get(None) is None
    assert list(tmp_path.iterdir()) == []


@pytest.mark.parametrize(
    "payload",
    [
        "",  # empty file
        "{not json",  # syntax error
        '{"wrong": "shape"}',  # missing metrics
        '{"metrics": [1, 2]}',  # metrics not a dict
        '{"metrics": {"m": "NaN-ish-garbage"}}',  # non-float value
    ],
)
def test_corrupted_cache_entry_is_a_miss(tmp_path, payload):
    cache = ResultCache(tmp_path)
    key = scenario_key(_config(), 30.0, 1)
    cache.path_for(key).write_text(payload)
    assert cache.get(key) is None
    # And a subsequent put repairs the entry.
    cache.put(key, {"m": 1.5})
    assert cache.get(key) == {"m": 1.5}


def test_cache_round_trips_nan(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("deadbeef", {"m": float("nan")})
    restored = cache.get("deadbeef")
    assert restored is not None and math.isnan(restored["m"])


def test_cache_clear(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("k1", {"m": 1.0})
    cache.put("k2", {"m": 2.0})
    assert cache.clear() == 2
    assert cache.get("k1") is None


def test_resolve_cache_forms(tmp_path):
    assert resolve_cache(None) is None
    assert resolve_cache(False) is None
    assert resolve_cache(tmp_path).directory == tmp_path
    cache = ResultCache(tmp_path)
    assert resolve_cache(cache) is cache
    monkey_default = resolve_cache(True)
    assert isinstance(monkey_default, ResultCache)


def test_default_dir_honors_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "alt"))
    assert resolve_cache(True).directory == tmp_path / "alt"


# Harness integration ---------------------------------------------------------


def _counting_run_seed(monkeypatch):
    calls = []
    real = multiseed._run_seed

    def wrapper(config, until, seed, metrics):
        calls.append(seed)
        return real(config, until, seed, metrics)

    monkeypatch.setattr(multiseed, "_run_seed", wrapper)
    return calls


def test_replicate_cache_skips_completed_seeds(tmp_path, monkeypatch):
    calls = _counting_run_seed(monkeypatch)
    config = _config()
    first = replicate(
        config, until=30.0, seeds=(1, 2), metrics=DEFAULT_METRICS,
        cache=tmp_path,
    )
    assert calls == [1, 2]
    second = replicate(
        config, until=30.0, seeds=(1, 2), metrics=DEFAULT_METRICS,
        cache=tmp_path,
    )
    assert calls == [1, 2], "second run should be served from cache"
    for name in DEFAULT_METRICS:
        assert _estimates_equal(first[name], second[name])
    # A new seed triggers exactly one extra run.
    replicate(
        config, until=30.0, seeds=(1, 2, 3), metrics=DEFAULT_METRICS,
        cache=tmp_path,
    )
    assert calls == [1, 2, 3]


def test_replicate_cache_invalidates_on_config_change(tmp_path, monkeypatch):
    calls = _counting_run_seed(monkeypatch)
    replicate(
        _config(), until=30.0, seeds=(1,), metrics=DEFAULT_METRICS,
        cache=tmp_path,
    )
    replicate(
        _config(think_range=(1.0, 4.0)), until=30.0, seeds=(1,),
        metrics=DEFAULT_METRICS, cache=tmp_path,
    )
    assert calls == [1, 1]


def test_replicate_cached_equals_uncached(tmp_path):
    config = _config()
    cached = replicate(
        config, until=30.0, seeds=(1, 2), metrics=DEFAULT_METRICS,
        cache=tmp_path,
    )
    recached = replicate(
        config, until=30.0, seeds=(1, 2), metrics=DEFAULT_METRICS,
        cache=tmp_path,
    )
    plain = replicate(config, until=30.0, seeds=(1, 2), metrics=DEFAULT_METRICS)
    for name in DEFAULT_METRICS:
        assert _estimates_equal(cached[name], plain[name])
        assert _estimates_equal(recached[name], plain[name])


def test_replicate_corrupted_cache_recovers(tmp_path):
    config = _config()
    cache = ResultCache(tmp_path)
    replicate(config, until=30.0, seeds=(1,), metrics=DEFAULT_METRICS,
              cache=cache)
    key = scenario_key(config, 30.0, 1)
    cache.path_for(key).write_text("garbage {{{")
    rerun = replicate(config, until=30.0, seeds=(1,), metrics=DEFAULT_METRICS,
                      cache=cache)
    plain = replicate(config, until=30.0, seeds=(1,), metrics=DEFAULT_METRICS)
    for name in DEFAULT_METRICS:
        assert _estimates_equal(rerun[name], plain[name])
    # The entry was rewritten with valid JSON.
    json.loads(cache.path_for(key).read_text())


def test_replicate_workers_matches_serial():
    config = _config()
    serial = replicate(config, until=30.0, seeds=(1, 2, 3),
                       metrics=DEFAULT_METRICS)
    parallel = replicate(config, until=30.0, seeds=(1, 2, 3),
                         metrics=DEFAULT_METRICS, workers=2)
    for name in DEFAULT_METRICS:
        assert _estimates_equal(serial[name], parallel[name])


def test_replicate_rejects_bad_workers():
    with pytest.raises(ValueError):
        replicate(_config(), until=10.0, seeds=(1,), metrics=DEFAULT_METRICS,
                  workers=0)


def test_sweep_grid_order_and_cache_reuse(tmp_path, monkeypatch):
    calls = _counting_run_seed(monkeypatch)
    points = sweep(
        _config(),
        until=30.0,
        seeds=(1, 2),
        metrics={"throughput": DEFAULT_METRICS["throughput"]},
        grid={"radio_range": [1.0, 1.5], "max_entries": [1, 2]},
        cache=tmp_path,
    )
    assert [p.params for p in points] == [
        {"radio_range": 1.0, "max_entries": 1},
        {"radio_range": 1.0, "max_entries": 2},
        {"radio_range": 1.5, "max_entries": 1},
        {"radio_range": 1.5, "max_entries": 2},
    ]
    assert len(calls) == 8
    for point in points:
        assert point.estimates["throughput"].samples == 2
    # The (radio_range=1.0, max_entries=2) point matches a plain
    # replicate of the same config: sweep adds nothing but plumbing.
    direct = replicate(
        _config(radio_range=1.0, max_entries=2), until=30.0, seeds=(1, 2),
        metrics={"throughput": DEFAULT_METRICS["throughput"]},
        cache=tmp_path,
    )
    assert len(calls) == 8, "sweep results should be reused via the cache"
    assert _estimates_equal(direct["throughput"], points[1].estimates["throughput"])


def _estimates_equal(a, b):
    return (
        _float_equal(a.mean, b.mean)
        and _float_equal(a.half_width, b.half_width)
        and a.samples == b.samples
    )


def _float_equal(x, y):
    if math.isnan(x) and math.isnan(y):
        return True
    return x == y
