"""Tests for fairness metrics."""

import pytest

from repro.metrics.collector import MetricsCollector
from repro.metrics.fairness import (
    contention_weights,
    entry_counts,
    fairness_report,
    jain_index,
    starvation_free,
    weighted_fairness,
)
from repro.net.geometry import line_positions
from repro.net.topology import DynamicTopology
from repro.runtime.simulation import ScenarioConfig, Simulation


def test_jain_index_bounds():
    assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)
    assert jain_index([10, 0, 0, 0]) == pytest.approx(0.25)
    assert jain_index([0, 0]) == 1.0
    assert 0.25 < jain_index([3, 1, 1, 1]) < 1.0


def test_jain_index_validation():
    with pytest.raises(ValueError):
        jain_index([])
    with pytest.raises(ValueError):
        jain_index([1, -1])


def build_line_topology(n=4):
    topo = DynamicTopology(radio_range=1.0)
    for i, p in enumerate(line_positions(n, 1.0)):
        topo.add_node(i, p)
    return topo


def test_contention_weights_reflect_degree():
    topo = build_line_topology(4)
    weights = contention_weights(topo)
    # Endpoints have degree 1 -> weight 1/2; middles degree 2 -> 1/3.
    assert weights[0] == pytest.approx(0.5)
    assert weights[1] == pytest.approx(1 / 3)


def test_entry_counts_defaults_to_zero():
    metrics = MetricsCollector()
    metrics.note_hungry(0, 0.0)
    metrics.note_eat_start(0, 1.0)
    assert entry_counts(metrics, [0, 1]) == [1, 0]


def test_weighted_fairness_corrects_for_contention():
    topo = build_line_topology(3)
    metrics = MetricsCollector()
    # Endpoint nodes (weight 1/2) eat 3x; middle (weight 1/3) eats 2x —
    # exactly proportional to the ideal shares (6x weight).
    for node, times in [(0, 3), (1, 2), (2, 3)]:
        for k in range(times):
            metrics.note_hungry(node, float(k))
            metrics.note_eat_start(node, float(k) + 0.1)
    assert weighted_fairness(metrics, topo) == pytest.approx(1.0)
    # Raw Jain is below 1 for the same data.
    assert jain_index(entry_counts(metrics, topo.nodes())) < 1.0


def test_starvation_free_excludes_crashed():
    metrics = MetricsCollector()
    metrics.note_hungry(3, 0.0)
    assert not starvation_free(metrics, [1, 2, 3], now=100.0, threshold=10.0)
    assert starvation_free(
        metrics, [1, 2, 3], now=100.0, threshold=10.0, exclude=[3]
    )


def test_fairness_report_keys():
    topo = build_line_topology(3)
    metrics = MetricsCollector()
    metrics.note_hungry(0, 0.0)
    metrics.note_eat_start(0, 1.0)
    report = fairness_report(metrics, topo)
    assert set(report) == {
        "jain_raw", "jain_weighted", "min_entries", "max_entries",
    }
    assert report["max_entries"] == 1.0


def test_real_run_is_reasonably_fair():
    config = ScenarioConfig(
        positions=line_positions(8, spacing=1.0),
        algorithm="alg2",
        seed=3,
        think_range=(0.2, 1.0),
    )
    sim = Simulation(config)
    sim.run(until=300.0)
    report = fairness_report(sim.metrics, sim.topology)
    assert report["jain_weighted"] > 0.85
    assert report["min_entries"] > 0
