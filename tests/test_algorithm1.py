"""Tests for Algorithm 1 (Chapter 5): pipeline, recoloring, return path."""

import pytest

from repro.core.algorithm1 import Algorithm1
from repro.core.coloring.greedy import GreedyColoring
from repro.core.doorway import FORK_ASYNC, FORK_SYNC, RECOLOR_ASYNC
from repro.core.messages import Hello, UpdateColor
from repro.core.states import NodeState
from repro.mobility import ScriptedMobility, ScriptedMove
from repro.net.geometry import Point, line_positions
from repro.runtime.simulation import ScenarioConfig, Simulation

from helpers import FakeNode, Lemma4Checker, assert_fork_uniqueness


# ----------------------------------------------------------------------
# Unit level
# ----------------------------------------------------------------------


def build_unit(node_id=1, neighbors=(0, 2), colors=None):
    node = FakeNode(node_id, neighbors)
    algorithm = Algorithm1(node, GreedyColoring(), initial_colors=colors)
    for peer in neighbors:
        algorithm.bootstrap_peer(peer)
    return node, algorithm


def test_uncolored_node_enters_recolor_pipeline():
    node, alg = build_unit()
    node.set_state(NodeState.HUNGRY)
    alg.on_hungry()
    # With no initial color, the node heads for the recoloring doorway.
    assert alg.doorways.is_behind(RECOLOR_ASYNC) or alg.doorways.is_waiting(
        RECOLOR_ASYNC
    )


def test_precolored_node_goes_straight_to_fork_doorways():
    colors = {0: 0, 1: 1, 2: 2}
    node, alg = build_unit(colors=colors)
    node.set_state(NodeState.HUNGRY)
    alg.on_hungry()
    assert alg.doorways.is_behind(FORK_ASYNC)
    assert alg.doorways.is_behind(FORK_SYNC)  # all neighbors outside


def test_is_low_ordering_and_unknown_colors():
    colors = {0: 0, 1: 1, 2: 2}
    node, alg = build_unit(colors=colors)
    assert alg.is_low(0) is True
    assert alg.is_low(2) is False
    alg.colors[2] = None
    assert alg.is_low(2) is False  # unknown colors rank high


def test_exit_cs_picks_smallest_free_color_and_exits():
    colors = {0: 0, 1: 1, 2: 2}
    node, alg = build_unit(colors=colors)
    node.set_state(NodeState.HUNGRY)
    alg.on_hungry()
    node.set_state(NodeState.EATING)
    node.clear()
    alg.on_exit_cs()
    assert alg.my_color == 1  # smallest not in {0, 2}
    assert any(isinstance(m, UpdateColor) for m in node.broadcasts)
    assert not alg.doorways.is_behind(FORK_SYNC)
    assert not alg.doorways.is_behind(FORK_ASYNC)


def test_mover_resets_and_waits_for_hello():
    colors = {0: 0, 1: 1, 2: 2}
    node, alg = build_unit(colors=colors)
    node.set_state(NodeState.HUNGRY)
    alg.on_hungry()
    node.set_neighbors((0, 2, 7))
    alg.on_link_up(7, moving=True)
    assert alg.needs_recolor
    assert 7 in alg.pending_hellos
    assert not alg.doorways.is_behind(FORK_SYNC)
    assert not alg.forks.holds(7)  # the static side owns the new fork
    # The Hello releases the node into the recoloring pipeline.
    alg.on_message(7, Hello(4, frozenset()))
    assert alg.pending_hellos == set()
    assert alg.colors[7] == 4
    assert alg.doorways.is_behind(RECOLOR_ASYNC) or alg.doorways.is_waiting(
        RECOLOR_ASYNC
    )


def test_static_node_sends_hello_to_newcomer():
    colors = {0: 0, 1: 1, 2: 2}
    node, alg = build_unit(colors=colors)
    node.set_neighbors((0, 2, 9))
    alg.on_link_up(9, moving=False)
    hellos = [m for d, m in node.sent if d == 9 and isinstance(m, Hello)]
    assert len(hellos) == 1
    assert hellos[0].color == 1
    assert alg.forks.holds(9)  # static side owns the fork


def test_eating_mover_demotes():
    colors = {0: 0, 1: 1, 2: 2}
    node, alg = build_unit(colors=colors)
    node.set_state(NodeState.HUNGRY)
    alg.on_hungry()
    node.set_state(NodeState.EATING)
    node.set_neighbors((0, 2, 9))
    alg.on_link_up(9, moving=True)
    assert node.demote_calls == 1


def test_return_path_taken_when_low_neighbor_leaves_with_fork():
    colors = {0: 0, 1: 1, 2: 2}
    node, alg = build_unit(colors=colors)
    node.set_state(NodeState.HUNGRY)
    alg.on_hungry()
    assert alg.doorways.is_behind(FORK_SYNC)
    # Neighbor 0 is low (color 0) and holds the shared fork (id 0 < 1).
    assert not alg.forks.holds(0)
    node.set_neighbors((2,))
    alg.on_link_down(0)
    assert alg.return_paths_taken == 1
    # Re-entered SDf immediately (all neighbors outside in this fake).
    assert alg.doorways.is_behind(FORK_SYNC)


def test_no_return_path_when_we_hold_the_fork():
    colors = {0: 0, 1: 1, 2: 2}
    node, alg = build_unit(colors=colors)
    node.set_state(NodeState.HUNGRY)
    alg.on_hungry()
    # Neighbor 2 is high and we hold its fork (id 1 < 2).
    assert alg.forks.holds(2)
    node.set_neighbors((0,))
    alg.on_link_down(2)
    assert alg.return_paths_taken == 0


# ----------------------------------------------------------------------
# Integration
# ----------------------------------------------------------------------


@pytest.mark.parametrize("algorithm", ["alg1-greedy", "alg1-linial"])
def test_static_line_progress(algorithm):
    config = ScenarioConfig(
        positions=line_positions(7, spacing=1.0),
        algorithm=algorithm,
        seed=4,
        think_range=(0.5, 2.0),
    )
    sim = Simulation(config)
    result = sim.run(until=250.0)
    assert result.starved == []
    for node in range(7):
        assert result.metrics.counters[node].cs_entries >= 5
    assert_fork_uniqueness(sim)


def test_lemma4_colors_distinct_behind_sdf():
    config = ScenarioConfig(
        positions=line_positions(6, spacing=1.0),
        algorithm="alg1-greedy",
        seed=6,
        think_range=(0.2, 1.0),
    )
    sim = Simulation(config)
    checker = Lemma4Checker(sim)
    sim.run(until=150.0)
    assert checker.checks > 1000


def test_mobile_node_recolors_and_reintegrates():
    # Node 4 starts isolated, joins the line at t=30, must recolor.
    positions = line_positions(4, spacing=1.0) + [Point(50.0, 50.0)]
    config = ScenarioConfig(
        positions=positions,
        algorithm="alg1-greedy",
        seed=2,
        think_range=(0.5, 2.0),
        mobility_factory=lambda i: (
            ScriptedMobility([ScriptedMove(30.0, Point(1.5, 0.8))])
            if i == 4
            else None
        ),
    )
    sim = Simulation(config)
    result = sim.run(until=300.0)
    assert result.starved == []
    mover = sim.algorithm_of(4)
    assert mover.recolor_runs >= 1
    # The mover ate after joining the dense neighborhood.
    post_join = [
        s for s in result.metrics.samples if s.node == 4 and s.eating_at > 30.0
    ]
    assert post_join
    assert_fork_uniqueness(sim)


def test_grid_with_mixed_mobility_no_starvation():
    from repro.mobility import RandomWaypoint
    from repro.net.geometry import grid_positions

    config = ScenarioConfig(
        positions=grid_positions(9, 1.0),
        radio_range=1.2,
        algorithm="alg1-greedy",
        seed=13,
        think_range=(0.5, 2.0),
        mobility_factory=lambda i: (
            RandomWaypoint(3.0, 3.0, speed_range=(0.5, 1.0),
                           pause_range=(8.0, 20.0))
            if i in (0, 4)
            else None
        ),
    )
    sim = Simulation(config)
    result = sim.run(until=300.0)
    # Everyone ate at least once despite churn.
    for node in range(9):
        assert result.metrics.counters[node].cs_entries >= 1, f"node {node}"


def test_choy_singh_static_equivalence():
    # choy-singh is alg1 with precomputed colors: nobody ever recolors.
    config = ScenarioConfig(
        positions=line_positions(6, spacing=1.0),
        algorithm="choy-singh",
        seed=4,
        think_range=(0.5, 2.0),
    )
    sim = Simulation(config)
    result = sim.run(until=200.0)
    assert result.starved == []
    for node in range(6):
        assert sim.algorithm_of(node).recolor_runs == 0
