"""Live-runtime tests: real transports with the simulator as oracle.

The load-bearing assertions are the record→replay round trips: a run
on the in-process bus (and on the per-process socket transport) must
replay deterministically in-sim with every invariant monitor clean and
the effect stream reproduced stamp for stamp.  Around those sit unit
tests for the pieces: bus FIFO under concurrent senders, the framing
codec (interned messages, restricted unpickling), reconnect backoff,
the recording schema, the scenario-config round trip of the new replay
ingestion fields, and the ``repro live`` / ``repro --version`` CLI.
"""

import asyncio
import io
import json
import pickle
import random

import pytest

from repro import __version__
from repro.cli import main as cli_main
from repro.errors import ConfigurationError, ProtocolError, TopologyError
from repro.harness.config_io import config_from_dict, config_to_dict
from repro.live import (
    SCHEMA,
    load_recording,
    merge_rows,
    run_bus_family,
    run_socket,
    save_recording,
    scripted_link_feed,
    verify_recording,
)
from repro.live.bus import InProcessBus
from repro.live.codec import FrameDecoder, decode_body, encode_frame
from repro.live.socket_transport import backoff_delays
from repro.net.geometry import Point
from repro.core.messages import ForkRequest
from repro.net.topology import DynamicTopology
from repro.runtime.simulation import ScenarioConfig
from repro.explore.scenarios import build_scenario


# ----------------------------------------------------------------------
# Record -> replay round trips (the acceptance criterion)
# ----------------------------------------------------------------------
def assert_clean(report):
    assert report["violation"] is None, report["violation"]
    assert report["fidelity"]["divergence"] is None, report["fidelity"]
    assert report["clean"]
    assert report["fidelity"]["expected"] == report["fidelity"]["actual"] > 0


def test_bus_static_line_replays_clean():
    recording = run_bus_family("static-line", "alg2", seed=0,
                               time_scale=0.003)
    assert recording["schema"] == SCHEMA
    assert recording["runtime"] == "bus"
    assert recording["metrics"]["cs_entries"] > 0
    assert_clean(verify_recording(recording))


def test_bus_fig6_churn_and_crash_replays_clean():
    # fig6: scripted link churn plus a crash, Algorithm 1.
    recording = run_bus_family("fig6", "alg1-greedy", seed=0,
                               time_scale=0.003)
    kinds = {row["k"] for row in recording["rows"]}
    assert "crash" in kinds
    assert {"up", "down"} & kinds
    assert_clean(verify_recording(recording))


def test_bus_recording_round_trips_through_json():
    recording = run_bus_family("fig6", "alg1-greedy", seed=1,
                               time_scale=0.003)
    stream = io.StringIO()
    save_recording(recording, stream)
    reloaded = load_recording(io.StringIO(stream.getvalue()))
    assert_clean(verify_recording(reloaded))


def _three_node_line_scenario():
    return {
        "positions": [[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]],
        "radio_range": 1.2,
        "algorithm": "alg2",
        "seed": 3,
        "bounds": {"nu": 1.0, "tau": 1.0, "min_delay_fraction": 0.5},
        "scripted_hunger": {
            "0": [1.0, 8.0, 16.0],
            "1": [1.5, 9.0, 17.0],
            "2": [2.0, 10.0, 18.0],
        },
    }


def test_socket_three_node_line_replays_clean():
    recording = run_socket(
        _three_node_line_scenario(), until=30.0, time_scale=0.01,
        start_grace=0.3,
    )
    assert recording["runtime"] == "socket"
    # One recorder per process: merged rows carry per-origin message ids.
    origins = {row["m"].split(":")[0]
               for row in recording["rows"] if row["k"] == "recv"}
    assert len(origins) > 1
    assert_clean(verify_recording(recording))


def test_load_recording_rejects_unknown_schema():
    bad = io.StringIO(json.dumps({"schema": "nope/9", "rows": []}))
    with pytest.raises(ConfigurationError):
        load_recording(bad)


# ----------------------------------------------------------------------
# Bus FIFO property
# ----------------------------------------------------------------------
def test_bus_preserves_per_link_fifo_under_concurrent_senders():
    rng = random.Random(7)
    for _ in range(20):
        loop = asyncio.new_event_loop()
        try:
            delivered = []
            bus = InProcessBus(
                loop, lambda src, dst, m, mid, inc:
                delivered.append((src, dst, mid)),
            )
            # Concurrent senders: every node streams to every other, the
            # global interleaving shuffled per round.
            sends = [
                (src, dst, f"{src}->{dst}#{seq}")
                for src in range(4) for dst in range(4) if src != dst
                for seq in range(10)
            ]
            by_link = {}
            for src, dst, mid in sends:
                by_link.setdefault((src, dst), []).append(mid)
            # Shuffle while keeping each directed link's internal order —
            # that order is exactly what senders submit and FIFO promises.
            order = sends[:]
            for _ in range(200):
                i, j = rng.randrange(len(order)), rng.randrange(len(order))
                if (order[i][0], order[i][1]) != (order[j][0], order[j][1]):
                    order[i], order[j] = order[j], order[i]
            for src, dst, mid in order:
                loop.call_soon(bus.send, src, dst, mid, mid, 0)
            loop.call_soon(loop.stop)
            loop.run_forever()
            # Drain the deliveries enqueued by the sends.
            loop.call_soon(loop.stop)
            loop.run_forever()
            got = {}
            for src, dst, mid in delivered:
                got.setdefault((src, dst), []).append(mid)
            submitted = {}
            for src, dst, mid in order:
                submitted.setdefault((src, dst), []).append(mid)
            assert got == submitted
            assert bus.sent == len(sends)
        finally:
            loop.close()


# ----------------------------------------------------------------------
# Framing codec
# ----------------------------------------------------------------------
def test_codec_round_trips_interned_messages():
    frame = encode_frame({"y": "msg", "p": ForkRequest(), "s": 1.25})
    decoder = FrameDecoder()
    # Feed byte by byte: the decoder must reassemble across chunks.
    frames = []
    for offset in range(len(frame)):
        frames.extend(decoder.feed(frame[offset:offset + 1]))
    assert len(frames) == 1
    payload = frames[0]
    assert payload["s"] == 1.25
    # Interned messages resolve to the receiver-side canonical instance.
    assert payload["p"] is ForkRequest()


def test_codec_batches_multiple_frames():
    frames = encode_frame({"n": 1}) + encode_frame({"n": 2})
    assert [f["n"] for f in FrameDecoder().feed(frames)] == [1, 2]


def test_codec_rejects_forbidden_globals():
    body = pickle.dumps(random.Random)  # not a repro.* class
    with pytest.raises(pickle.UnpicklingError):
        decode_body(body)


def test_codec_rejects_oversized_length_prefix():
    with pytest.raises(ProtocolError):
        FrameDecoder().feed((1 << 30).to_bytes(4, "big") + b"xxxx")


# ----------------------------------------------------------------------
# Reconnect backoff
# ----------------------------------------------------------------------
def test_backoff_delays_grow_to_cap_with_jitter():
    delays = list(backoff_delays(
        attempts=8, base=0.05, cap=0.4, rng=random.Random(1)
    ))
    assert len(delays) == 8
    for attempt, delay in enumerate(delays):
        nominal = min(0.4, 0.05 * 2 ** attempt)
        assert 0.5 * nominal <= delay < 1.5 * nominal
    # The tail is capped: jitter only, no further exponential growth.
    assert all(delay < 0.6 for delay in delays[-3:])


def test_peer_loss_surfaces_link_down_and_counts():
    from repro.live.linklayer import LiveLinkLayer
    from repro.live.node import LiveProbes
    from repro.live.recorder import LiveRecorder
    from repro.live.runtime import WallClockRuntime
    from repro.live.socket_transport import SocketTransport
    from repro.obs.registry import MetricRegistry

    class StubWriter:
        def close(self):
            pass

    class StubHandler:
        def __init__(self):
            self.downs = []

        def on_link_down(self, peer):
            self.downs.append(peer)

    loop = asyncio.new_event_loop()
    try:
        recorder = LiveRecorder(origin=1)
        runtime = WallClockRuntime(loop, 1.0, recorder)
        registry = MetricRegistry()
        probes = LiveProbes(registry)
        transport = SocketTransport(loop, runtime, 1, [0], probes=probes)
        linklayer = LiveLinkLayer(
            runtime, recorder, transport.send, {0: {1}, 1: {0}},
            probes=probes,
        )
        transport.linklayer = linklayer
        transport.remember_ports({})
        handler = StubHandler()
        linklayer.register(1, handler)
        runtime.start()

        transport._writers[0] = StubWriter()
        transport._peer_lost(0, reason="liveness")

        # The loss is an on_link_down to the algorithm, an
        # endpoint-scoped down row in the log, and a live.* count.
        assert handler.downs == [0]
        assert 0 not in linklayer.neighbors(1)
        down_rows = [row for row in recorder.rows if row["k"] == "down"]
        assert down_rows and down_rows[0]["endpoint"] == 1
        assert probes.link_down.get("liveness") == 1
        # Losing an already-gone peer is a no-op, not a second event.
        transport._peer_lost(0, reason="liveness")
        assert probes.link_down.get("liveness") == 2  # counted...
        assert len(down_rows) == 1  # ...but no duplicate link event
        for task in transport._tasks:
            task.cancel()
        loop.run_until_complete(
            asyncio.gather(*transport._tasks, return_exceptions=True)
        )
    finally:
        loop.close()


# ----------------------------------------------------------------------
# Replay-ingestion plumbing in the simulator
# ----------------------------------------------------------------------
def test_scenario_config_round_trips_eating_and_link_script():
    config = ScenarioConfig(
        positions=[Point(0.0, 0.0), Point(1.0, 0.0), Point(2.0, 0.0)],
        algorithm="alg2",
        scripted_hunger={0: [1.0], 1: [2.0]},
        scripted_eating={0: [0.5, 0.75], 2: [1.5]},
        link_script=[[3.0, "down", 0, 1, -1], [4.0, "up", 0, 1, 1]],
    )
    rebuilt = config_from_dict(config_to_dict(config))
    assert rebuilt.scripted_eating == {0: [0.5, 0.75], 2: [1.5]}
    assert rebuilt.link_script == [
        [3.0, "down", 0, 1, -1], [4.0, "up", 0, 1, 1]
    ]


def test_force_link_produces_diffs_and_rejects_self_links():
    topology = DynamicTopology(radio_range=1.0)
    topology.add_nodes([(0, Point(0.0, 0.0)), (1, Point(5.0, 0.0))])
    diff = topology.force_link(0, 1, True)
    assert diff.added == [(0, 1)]
    assert topology.has_link(0, 1)
    assert topology.force_link(0, 1, True).empty  # idempotent
    diff = topology.force_link(1, 0, False)
    assert diff.removed == [(0, 1)]
    with pytest.raises(TopologyError):
        topology.force_link(1, 1, True)


def test_scripted_link_feed_rejects_moving_speeds():
    scenario = build_scenario("fig6", "alg1-greedy", seed=0)["scenario"]
    feed = scripted_link_feed(scenario)
    assert feed, "fig6's teleport move must yield link events"
    assert all(op in ("up", "down") for _, op, _, _, _ in feed)
    scenario = json.loads(json.dumps(scenario))
    scenario["mobility"]["params"]["moves"][0][3] = 1.0  # now a real move
    with pytest.raises(ConfigurationError):
        scripted_link_feed(scenario)


def test_build_scenario_names_unknown_families():
    row = build_scenario("static-line", "alg2", seed=4)
    assert row["scenario"]["algorithm"] == "alg2"
    with pytest.raises(KeyError) as excinfo:
        build_scenario("no-such-family", "alg2")
    assert "static-line" in str(excinfo.value)


def test_merge_rows_is_stable_and_strictly_increasing():
    merged = merge_rows({
        2: [{"t": 1.0, "k": "recv", "m": "2:1"},
            {"t": 2.0, "k": "recv", "m": "2:2"}],
        1: [{"t": 1.0, "k": "recv", "m": "1:1"},
            {"t": 1.0 + 1e-12, "k": "recv", "m": "1:2"}],
    })
    stamps = [row["t"] for row in merged]
    assert stamps == sorted(stamps)
    assert all(b > a for a, b in zip(stamps, stamps[1:]))
    # Stamp order first, ties by origin; per-origin order survives.
    assert [row["m"] for row in merged] == ["1:1", "2:1", "1:2", "2:2"]
    for origin in ("1", "2"):
        ours = [row["m"] for row in merged if row["m"].startswith(origin)]
        assert ours == sorted(ours)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_version_flag():
    out = io.StringIO()
    assert cli_main(["--version"], out=out) == 0
    assert out.getvalue().strip() == f"repro {__version__}"


def test_cli_live_run_records_and_verifies(tmp_path):
    destination = tmp_path / "recording.json"
    out = io.StringIO()
    rc = cli_main(
        ["live", "run", "--family", "static-line", "--algorithm", "alg2",
         "--seed", "0", "--time-scale", "0.003",
         "--out", str(destination), "--verify"],
        out=out,
    )
    assert rc == 0, out.getvalue()
    assert "clean" in out.getvalue()

    out = io.StringIO()
    assert cli_main(["live", "verify", str(destination)], out=out) == 0
    assert "clean" in out.getvalue()
