"""Targeted race tests for Algorithm 1's mobility/doorway interactions."""

import pytest

from repro.core.algorithm1 import Algorithm1
from repro.core.coloring.greedy import GreedyColoring
from repro.core.doorway import FORK_ASYNC, FORK_SYNC
from repro.core.messages import (
    DoorwayCross,
    ForkGrant,
    ForkRequest,
    Hello,
    RecolorNack,
    TempColor,
    UpdateColor,
)
from repro.core.states import NodeState
from repro.mobility import ScriptedMobility, ScriptedMove
from repro.net.geometry import Point, line_positions
from repro.runtime.simulation import ScenarioConfig, Simulation

from helpers import FakeNode


def build(node_id=1, neighbors=(0, 2), colors=None):
    node = FakeNode(node_id, neighbors)
    alg = Algorithm1(node, GreedyColoring(), initial_colors=colors)
    for peer in neighbors:
        alg.bootstrap_peer(peer)
    return node, alg


def test_hello_carrying_behind_status_blocks_newcomer():
    """A mover must respect doorway positions learned from Hello."""
    node, alg = build(colors=None)
    node.set_state(NodeState.HUNGRY)
    # We moved next to node 7 which is behind ADf and SDf.
    node.set_neighbors((0, 2, 7))
    alg.on_link_up(7, moving=True)
    alg.on_message(7, Hello(3, frozenset({FORK_ASYNC, FORK_SYNC})))
    # Pipeline started at the recoloring doorways, but the fork-side
    # view records 7 as behind, so crossing ADf later must wait.
    assert alg.doorways.peer_behind(FORK_ASYNC, 7)
    assert alg.doorways.peer_behind(FORK_SYNC, 7)


def test_non_participant_nacks_round_messages():
    node, alg = build(colors={0: 0, 1: 1, 2: 2})
    alg.on_message(0, TempColor(0, 5))
    nacks = [m for d, m in node.sent if d == 0 and isinstance(m, RecolorNack)]
    assert len(nacks) == 1


def test_stale_nack_after_session_end_is_ignored():
    node, alg = build(colors={0: 0, 1: 1, 2: 2})
    alg.on_message(0, RecolorNack(0))  # no session: must not crash


def test_update_color_triggers_progress_recheck():
    """A neighbor's exit-CS recolor can flip it from low to high."""
    node, alg = build(colors={0: 0, 1: 1, 2: 2})
    node.set_state(NodeState.HUNGRY)
    alg.on_hungry()  # behind SDf; requests the missing low fork from 0
    assert not alg.forks.holds(0)
    first_requests = [d for d, m in node.sent if isinstance(m, ForkRequest)]
    assert first_requests == [0]
    assert alg.is_low(0)
    node.clear()
    # Node 0 exits its CS and takes a color above ours: it flips to a
    # high neighbor.  The outstanding request is still valid (0 grants
    # unconditionally outside SDf), so the recheck must NOT duplicate
    # it — the dedup set keeps message counts honest.
    alg.on_message(0, UpdateColor(5))
    assert not alg.is_low(0)
    assert [d for d, m in node.sent if isinstance(m, ForkRequest)] == []
    # The grant then completes collection and we eat.
    alg.on_message(0, ForkGrant(flag=False))
    assert node.eat_calls == 1


def test_fork_request_while_outside_sdf_granted_unconditionally():
    node, alg = build(colors={0: 0, 1: 1, 2: 2})
    # Thinking, outside all doorways, holding the fork shared with 2.
    assert alg.forks.holds(2)
    alg.on_message(2, ForkRequest())
    grants = [d for d, m in node.sent if isinstance(m, ForkGrant)]
    assert grants == [2]
    # And the grant carries no want-back flag (we are not competing).
    assert [m.flag for d, m in node.sent if isinstance(m, ForkGrant)] == [False]


def test_mover_mid_collection_releases_suspensions():
    node, alg = build(colors={0: 0, 1: 1, 2: 2})
    node.set_state(NodeState.HUNGRY)
    alg.on_hungry()
    # Suspend a request from the high neighbor 2... first take its fork
    # state so a suspension can exist.
    alg.forks.suspended.add(2)
    node.set_neighbors((0, 2, 9))
    node.clear()
    alg.on_link_up(9, moving=True)
    # Line 51: all suspended requests granted on departure.
    grants = [d for d, m in node.sent if isinstance(m, ForkGrant)]
    assert grants == [2]
    assert not alg.doorways.is_behind(FORK_SYNC)


def test_double_moves_accumulate_pending_hellos():
    node, alg = build(colors={0: 0, 1: 1, 2: 2})
    node.set_state(NodeState.HUNGRY)
    node.set_neighbors((0, 2, 7, 8))
    alg.on_link_up(7, moving=True)
    alg.on_link_up(8, moving=True)
    assert alg.pending_hellos == {7, 8}
    alg.on_message(7, Hello(4, frozenset()))
    # Still waiting on 8: the pipeline must not start.
    assert not alg.doorways.is_waiting("ADr") and not alg.doorways.is_behind(
        "ADr"
    )
    alg.on_message(8, Hello(5, frozenset()))
    assert alg.doorways.is_behind("ADr") or alg.doorways.is_waiting("ADr")


def test_pending_hello_peer_departs_before_answering():
    node, alg = build(colors={0: 0, 1: 1, 2: 2})
    node.set_state(NodeState.HUNGRY)
    node.set_neighbors((0, 2, 7))
    alg.on_link_up(7, moving=True)
    assert alg.pending_hellos == {7}
    # 7 vanishes before its Hello arrives: the wait must clear.
    node.set_neighbors((0, 2))
    alg.on_link_down(7)
    assert alg.pending_hellos == set()
    assert alg.doorways.is_behind("ADr") or alg.doorways.is_waiting("ADr")


def test_eating_static_node_unaffected_by_arriving_mover():
    """End-to-end: a mover lands beside an eater; the eater finishes
    its CS undisturbed and the mover integrates afterwards."""
    positions = list(line_positions(2, spacing=1.0)) + [Point(30.0, 0.0)]
    config = ScenarioConfig(
        positions=positions,
        algorithm="alg1-greedy",
        seed=4,
        think_range=(0.2, 0.8),
        mobility_factory=lambda i: (
            ScriptedMobility([ScriptedMove(15.0, Point(0.5, 0.8), speed=10.0)])
            if i == 2
            else None
        ),
        trace=True,
    )
    sim = Simulation(config)
    result = sim.run(until=120.0)
    # The mover eventually eats in its new neighborhood.
    post = [s for s in result.metrics.samples if s.node == 2 and s.eating_at > 16]
    assert post
    # And the original pair kept eating after the arrival.
    for node in (0, 1):
        assert any(
            s.node == node and s.eating_at > 20.0
            for s in result.metrics.samples
        )
