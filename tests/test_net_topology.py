"""Unit tests for the dynamic unit-disk topology."""

import pytest

from repro.errors import TopologyError
from repro.net.geometry import (
    Point,
    grid_positions,
    line_positions,
    ring_positions,
    segment_points,
)
from repro.net.topology import DynamicTopology, link_key


def build_line(count, spacing=1.0, radio=1.0):
    topo = DynamicTopology(radio_range=radio)
    for i, pos in enumerate(line_positions(count, spacing)):
        topo.add_node(i, pos)
    return topo


def test_add_node_creates_links_within_range():
    topo = DynamicTopology(radio_range=1.0)
    topo.add_node(0, Point(0, 0))
    diff = topo.add_node(1, Point(0.5, 0))
    assert diff.added == [(0, 1)]
    diff = topo.add_node(2, Point(5, 5))
    assert diff.added == []
    assert topo.neighbors(0) == frozenset({1})
    assert topo.neighbors(2) == frozenset()


def test_duplicate_node_rejected():
    topo = DynamicTopology()
    topo.add_node(0, Point(0, 0))
    with pytest.raises(TopologyError):
        topo.add_node(0, Point(1, 1))


def test_set_position_produces_symmetric_diff():
    topo = build_line(3)  # 0-1-2 path
    assert topo.has_link(0, 1) and topo.has_link(1, 2)
    assert not topo.has_link(0, 2)
    # Move node 2 next to node 0: loses link to 1, gains link to 0.
    diff = topo.set_position(2, Point(0.1, 0.5))
    assert (0, 2) in diff.added
    assert (1, 2) in diff.removed
    assert topo.has_link(0, 2) and topo.has_link(2, 0)
    assert not topo.has_link(1, 2)


def test_remove_node_destroys_links():
    topo = build_line(3)
    diff = topo.remove_node(1)
    assert sorted(diff.removed) == [(0, 1), (1, 2)]
    assert 1 not in topo
    assert topo.neighbors(0) == frozenset()


def test_graph_distance_on_path():
    topo = build_line(5)
    assert topo.graph_distance(0, 0) == 0
    assert topo.graph_distance(0, 4) == 4
    assert topo.graph_distance(4, 0) == 4
    topo.set_position(4, Point(100, 100))
    assert topo.graph_distance(0, 4) is None


def test_m_neighborhood():
    topo = build_line(7)
    assert topo.m_neighborhood(3, 0) == {3}
    assert topo.m_neighborhood(3, 1) == {2, 3, 4}
    assert topo.m_neighborhood(3, 2) == {1, 2, 3, 4, 5}


def test_degree_and_max_degree():
    topo = DynamicTopology(radio_range=1.5)
    topo.add_node(0, Point(0, 0))
    topo.add_node(1, Point(1, 0))
    topo.add_node(2, Point(0, 1))
    topo.add_node(3, Point(10, 10))
    assert topo.degree(0) == 2
    assert topo.max_degree() == 2
    assert DynamicTopology().max_degree() == 0


def test_components_and_connectivity():
    topo = build_line(4)
    assert topo.is_connected()
    topo.set_position(3, Point(50, 50))
    assert not topo.is_connected()
    comps = topo.components()
    assert {frozenset(c) for c in comps} == {frozenset({0, 1, 2}), frozenset({3})}


def test_links_listing_is_canonical_and_sorted():
    topo = build_line(4)
    assert topo.links() == [(0, 1), (1, 2), (2, 3)]


def test_link_key_canonical():
    assert link_key(5, 2) == (2, 5)
    assert link_key(2, 5) == (2, 5)


def test_unknown_node_queries_raise():
    topo = DynamicTopology()
    with pytest.raises(TopologyError):
        topo.neighbors(0)
    with pytest.raises(TopologyError):
        topo.position(9)
    with pytest.raises(TopologyError):
        topo.remove_node(1)


def test_invalid_radio_range():
    with pytest.raises(TopologyError):
        DynamicTopology(radio_range=0)


def test_geometry_helpers():
    assert Point(0, 0).distance_to(Point(3, 4)) == 5.0
    assert Point(0, 0).towards(Point(10, 0), 3).x == pytest.approx(3)
    # Overshooting clamps at destination.
    assert Point(0, 0).towards(Point(1, 0), 5) == Point(1, 0)
    pts = segment_points(Point(0, 0), Point(1, 0), 0.4)
    assert pts[-1] == Point(1, 0)
    assert len(grid_positions(9, 1.0)) == 9
    assert len(ring_positions(6, 2.0)) == 6
    with pytest.raises(ValueError):
        segment_points(Point(0, 0), Point(1, 0), 0)
