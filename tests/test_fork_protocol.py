"""Unit tests for the shared fork-collection engine (Lines 1-35)."""

from repro.core.fork_collection import ForkProtocol
from repro.core.forks import ForkTable
from repro.core.messages import ForkGrant, ForkRequest
from repro.core.states import NodeState

from helpers import FakeNode


class Host:
    """Scriptable ForkHost: colors decide priority, flags are explicit."""

    def __init__(self, node, colors, my_color, gate=True):
        self.node = node
        self.forks = ForkTable()
        self.colors = colors
        self.my_color = my_color
        self.gate = gate  # behind SDf / hungry
        self.ate = 0

    def is_low(self, peer):
        return self.colors.get(peer, 10 ** 9) < self.my_color

    def collecting(self):
        return self.gate and self.node.state is NodeState.HUNGRY

    def bypass_grants(self):
        return not self.gate

    def want_back(self, peer):
        return self.is_low(peer) and self.gate

    def enter_cs(self):
        self.ate += 1
        self.node.set_state(NodeState.EATING)


def build(colors, my_color, holds=(), neighbors=None, state=NodeState.HUNGRY,
          gate=True):
    node = FakeNode(0, neighbors if neighbors is not None else colors.keys())
    node.set_state(state)
    host = Host(node, colors, my_color, gate=gate)
    for peer in holds:
        host.forks.set_holds(peer, True)
    return node, host, ForkProtocol(host)


def test_start_collection_eats_with_all_forks():
    node, host, proto = build({1: 0, 2: 5}, my_color=3, holds=(1, 2))
    proto.start_collection()
    assert host.ate == 1


def test_start_collection_requests_low_first():
    node, host, proto = build({1: 0, 2: 5}, my_color=3)
    proto.start_collection()
    # Missing both; only the low fork (peer 1, color 0 < 3) is requested.
    assert [d for d, m in node.sent if isinstance(m, ForkRequest)] == [1]


def test_start_collection_requests_high_when_low_held():
    node, host, proto = build({1: 0, 2: 5}, my_color=3, holds=(1,))
    proto.start_collection()
    assert [d for d, m in node.sent if isinstance(m, ForkRequest)] == [2]


def test_high_request_suspended_while_all_low_held():
    node, host, proto = build({1: 0, 2: 5}, my_color=3, holds=(1, 2))
    # Eating has not started; we hold everything and peer 2 (high) asks.
    proto.handle_request(2)
    assert 2 in host.forks.suspended
    assert node.sent == []


def test_high_request_granted_when_missing_low():
    node, host, proto = build({1: 0, 2: 5}, my_color=3, holds=(2,))
    proto.handle_request(2)
    grants = [m for d, m in node.sent if isinstance(m, ForkGrant)]
    assert len(grants) == 1
    assert not host.forks.holds(2)


def test_low_request_granted_and_releases_suspended_high():
    node, host, proto = build({1: 0, 2: 5}, my_color=3, holds=(1, 2))
    host.forks.suspended.add(2)
    # Missing nothing but peer 1 (low) asks -> we are not eating, but we
    # hold all forks, so the low request is suspended too...
    proto.handle_request(1)
    assert 1 in host.forks.suspended
    # ...unless something is missing: drop fork 2 and retry.
    host.forks.suspended.discard(1)
    host.forks.set_holds(2, False)
    host.forks.suspended.discard(2)
    proto.handle_request(1)
    sent_to = [d for d, m in node.sent if isinstance(m, ForkGrant)]
    assert sent_to == [1]


def test_low_request_release_high_forks_cascade():
    node, host, proto = build({1: 0, 2: 5, 3: 7}, my_color=3, holds=(1, 2, 3))
    host.forks.set_holds(1, False)  # missing a low fork -> not all forks
    host.forks.suspended.add(2)
    proto.handle_request(3)
    # Request from high neighbor 3: we hold all low? low = {1}, not held
    # -> grant, and since it is a high request, no release cascade.
    grants = [d for d, m in node.sent if isinstance(m, ForkGrant)]
    assert grants == [3]
    # Now a low request triggers release of the still-suspended 2.
    host.forks.set_holds(1, True)
    host.forks.set_holds(3, False)
    node.clear()
    proto.handle_request(1)
    grants = [d for d, m in node.sent if isinstance(m, ForkGrant)]
    assert grants == [1, 2]


def test_request_for_fork_in_transit_ignored():
    node, host, proto = build({1: 0}, my_color=3)
    proto.handle_request(1)  # we do not hold it
    assert node.sent == []


def test_want_back_flag_set_for_low_peer_while_competing():
    node, host, proto = build({1: 0, 2: 5}, my_color=3, holds=(1,))
    proto.send_fork(1)
    grant = node.sent_to(1)[0]
    assert isinstance(grant, ForkGrant) and grant.flag is True
    host_grant = None
    node.clear()
    host.forks.set_holds(2, True)
    proto.send_fork(2)
    grant = node.sent_to(2)[0]
    assert grant.flag is False  # high peer: no want-back


def test_fork_receipt_completing_all_forks_eats():
    node, host, proto = build({1: 0, 2: 5}, my_color=3, holds=(2,))
    proto.handle_fork(1, flag=False)
    assert host.ate == 1


def test_flagged_fork_suspends_sender_when_all_low_held():
    node, host, proto = build({1: 0, 2: 5}, my_color=3)
    proto.handle_fork(1, flag=True)  # completes our low tier
    assert 1 in host.forks.suspended
    # And the high fork gets requested.
    assert [d for d, m in node.sent if isinstance(m, ForkRequest)] == [2]


def test_flagged_fork_bounced_back_when_low_tier_incomplete():
    node, host, proto = build({1: 0, 2: 0, 3: 5}, my_color=3)
    proto.handle_fork(2, flag=True)  # still missing low fork from 1
    grants = [d for d, m in node.sent if isinstance(m, ForkGrant)]
    assert grants == [2]
    assert not host.forks.holds(2)


def test_fork_receipt_outside_gate_returns_flagged_fork():
    node, host, proto = build({1: 0}, my_color=3, gate=False)
    proto.handle_fork(1, flag=True)
    grants = [d for d, m in node.sent if isinstance(m, ForkGrant)]
    assert grants == [1]
    assert host.ate == 0


def test_grant_suspended_clears_queue():
    node, host, proto = build({1: 0, 2: 5}, my_color=3, holds=(1, 2))
    host.forks.suspended.update({1, 2})
    proto.grant_suspended()
    grants = sorted(d for d, m in node.sent if isinstance(m, ForkGrant))
    assert grants == [1, 2]
    assert host.forks.suspended == set()


def test_request_dedup():
    node, host, proto = build({1: 0, 2: 5}, my_color=3)
    proto.request_low_forks()
    proto.request_low_forks()
    requests = [d for d, m in node.sent if isinstance(m, ForkRequest)]
    assert requests == [1]
    proto.clear_requests()
    proto.request_low_forks()
    requests = [d for d, m in node.sent if isinstance(m, ForkRequest)]
    assert requests == [1, 1]


def test_recheck_noop_when_not_collecting():
    node, host, proto = build({1: 0}, my_color=3, state=NodeState.THINKING)
    proto.recheck()
    assert node.sent == []


def test_recheck_eats_after_neighbor_departed():
    node, host, proto = build({1: 0, 2: 5}, my_color=3, holds=(1,))
    # Neighbor 2 (whose fork we miss) disappears.
    node.set_neighbors((1,))
    host.forks.link_destroyed(2)
    proto.recheck()
    assert host.ate == 1


def test_fork_table_macros():
    table = ForkTable()
    table.set_holds(1, True)
    table.set_holds(2, False)
    assert table.all_forks(frozenset({1})) is True
    assert table.all_forks(frozenset({1, 2})) is False
    assert table.all_low_forks(frozenset({1, 2}), lambda j: j == 1)
    assert list(table.missing(frozenset({1, 2}), lambda j: True)) == [2]
    table.link_created(3, we_are_static=True)
    assert table.holds(3)
    table.link_destroyed(3)
    assert not table.holds(3)
