"""Tests for the trace log and the algorithm registry."""

import pytest

from repro.errors import ConfigurationError
from repro.net.geometry import line_positions
from repro.net.topology import DynamicTopology
from repro.runtime.registry import ALGORITHMS, BuildContext, resolve
from repro.sim.trace import TraceLog, TraceRecord


# ----------------------------------------------------------------------
# TraceLog
# ----------------------------------------------------------------------


def test_trace_records_and_filters():
    log = TraceLog()
    log.record(1.0, "a", 1, x=1)
    log.record(2.0, "b", 1)
    log.record(3.0, "a", 2)
    assert len(log) == 3
    assert [r.time for r in log.select(category="a")] == [1.0, 3.0]
    assert [r.time for r in log.select(node=1)] == [1.0, 2.0]
    assert log.select(category="a", node=2)[0].time == 3.0
    assert log.select(predicate=lambda r: r.time > 1.5)[0].category == "b"


def test_trace_first_and_last():
    log = TraceLog()
    assert log.first("x") is None and log.last("x") is None
    log.record(1.0, "x", 1)
    log.record(5.0, "x", 1)
    assert log.first("x").time == 1.0
    assert log.last("x").time == 5.0


def test_trace_disabled_is_free():
    log = TraceLog(enabled=False)
    log.record(1.0, "a", 1)
    assert len(log) == 0


def test_trace_capacity_drops_oldest():
    log = TraceLog(capacity=10)
    for i in range(25):
        log.record(float(i), "tick", 0)
    assert len(log) <= 11
    assert log.select(category="tick")[-1].time == 24.0


def test_trace_clear_and_dump():
    log = TraceLog()
    log.record(1.0, "a", 1, k="v")
    text = log.dump()
    assert "k=v" in text and "p1" in text
    log.clear()
    assert len(log) == 0


def test_trace_record_str_without_node():
    rec = TraceRecord(1.5, "net", None, {})
    assert "net" in str(rec)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


def build_ctx(n=4):
    topo = DynamicTopology(radio_range=1.0)
    for i, p in enumerate(line_positions(n, 1.0)):
        topo.add_node(i, p)
    return BuildContext(topology=topo, n=n, delta=topo.max_degree())


def test_registry_has_all_documented_names():
    expected = {
        "alg1-greedy", "alg1-linial", "alg1-random", "alg2",
        "chandy-misra", "ordered-ids", "choy-singh", "oracle",
        "global-oracle", "token-mutex",
        "alg2-nonotify", "alg1-noreturn", "alg1-nodoorway", "alg1-selforg",
    }
    assert expected == set(ALGORITHMS)


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_every_entry_builds_an_algorithm(name):
    from helpers import FakeNode

    ctx = build_ctx()
    factory = resolve(name, ctx)
    algorithm = factory(FakeNode(0, (1,)))
    assert hasattr(algorithm, "on_hungry")
    assert hasattr(algorithm, "on_message")


def test_resolve_unknown_name():
    with pytest.raises(ConfigurationError) as exc:
        resolve("definitely-not-real", build_ctx())
    assert "available" in str(exc.value)


def test_oracle_scheduler_shared_within_context():
    ctx = build_ctx()
    factory = resolve("oracle", ctx)
    from helpers import FakeNode

    a = factory(FakeNode(0, ()))
    b = factory(FakeNode(1, ()))
    assert a.scheduler is b.scheduler


def test_trace_truncation_is_loud_not_silent():
    log = TraceLog(capacity=10)
    assert not log.truncated
    for i in range(25):
        log.record(float(i), "tick", 0)
    assert log.truncated
    # Every evicted record is accounted for: survivors + dropped = total.
    assert len(log) + log.dropped == 25
    log.clear()
    assert not log.truncated and log.dropped == 0


def test_uncapped_trace_never_truncates():
    log = TraceLog()
    for i in range(1000):
        log.record(float(i), "tick", 0)
    assert not log.truncated and log.dropped == 0
