"""Append-only bench history and cross-commit regression detection."""

from __future__ import annotations

import io
import json

import pytest

from repro._version import __version__
from repro.cli import main
from repro.errors import ConfigurationError
from repro.obs.bench_history import (
    CheckResult,
    append_record,
    calibrated_jitter,
    check_latest,
    git_commit,
    load_history,
    metric_direction,
)


def _sections(wall=1.0, rate=1000.0, jitter=0.02, rss=50_000):
    return {
        "engine": {
            "wall_seconds": wall,
            "events_per_second": rate,
            "calibration_jitter": jitter,
            "peak_rss_kb": rss,
            "n_nodes": 100,
        }
    }


def _history(tmp_path, runs):
    tmp_path.mkdir(parents=True, exist_ok=True)
    path = tmp_path / "hist.jsonl"
    for index, sections in enumerate(runs):
        append_record(
            path, sections,
            commit=f"c{index}", timestamp=f"t{index}", peak_rss_kb=1000,
        )
    return path


# -- record plumbing ---------------------------------------------------------


def test_append_and_load_round_trip(tmp_path):
    path = tmp_path / "hist.jsonl"
    record = append_record(
        path, _sections(), commit="abc", timestamp="now", peak_rss_kb=7
    )
    assert record["version"] == __version__
    assert record["git_commit"] == "abc"
    loaded = load_history(path)
    assert loaded == [record]
    append_record(path, _sections(wall=2.0), commit="def",
                  timestamp="later", peak_rss_kb=8)
    assert len(load_history(path)) == 2  # append-only: first survives


def test_append_defaults_stamp_provenance(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    record = append_record(tmp_path / "hist.jsonl", _sections())
    assert record["version"] == __version__
    assert record["peak_rss_kb"] is None or record["peak_rss_kb"] > 0
    assert record["timestamp"]


def test_git_commit_in_this_repo_and_outside(tmp_path):
    head = git_commit()
    assert head is None or len(head) == 40
    assert git_commit(tmp_path) is None


def test_load_rejects_corrupt_lines(tmp_path):
    path = tmp_path / "hist.jsonl"
    path.write_text('{"sections": {}}\nnot json\n')
    with pytest.raises(ConfigurationError):
        load_history(path)
    path.write_text('[1, 2]\n')
    with pytest.raises(ConfigurationError):
        load_history(path)


def test_load_missing_file_is_empty(tmp_path):
    assert load_history(tmp_path / "absent.jsonl") == []


# -- direction + jitter ------------------------------------------------------


def test_metric_direction_suffix_contract():
    assert metric_direction("engine.wall_seconds") == "lower"
    assert metric_direction("engine.peak_rss_kb") == "lower"
    assert metric_direction("engine.events_per_second") == "higher"
    assert metric_direction("scaling.speedup_4w") == "higher"
    assert metric_direction("channel.delivery_ratio") == "higher"
    assert metric_direction("engine.n_nodes") is None
    assert metric_direction("engine.calibration_jitter") is None
    assert metric_direction("engine.machine_factor") is None


def test_calibrated_jitter_takes_the_worst_section():
    record = {
        "sections": {
            "a": {"calibration_jitter": 0.01},
            "b": {"nested": {"calibration_jitter": 0.09}},
        }
    }
    assert calibrated_jitter(record) == 0.09


# -- regression detection ----------------------------------------------------


def test_short_history_never_flags(tmp_path):
    path = _history(tmp_path, [_sections()])
    result = check_latest(load_history(path))
    assert isinstance(result, CheckResult)
    assert result.clean
    assert result.checked == 0


def test_catches_synthetic_2x_regression(tmp_path):
    runs = [_sections() for _ in range(3)]
    runs.append(_sections(wall=2.0, rate=500.0))  # 2x slower across the board
    path = _history(tmp_path, runs)
    result = check_latest(load_history(path))
    assert not result.clean
    flagged = {r.metric for r in result.regressions}
    assert flagged == {"engine.wall_seconds", "engine.events_per_second"}
    directions = {r.metric: r.direction for r in result.regressions}
    assert directions["engine.wall_seconds"] == "lower"
    assert directions["engine.events_per_second"] == "higher"
    assert "2x" not in result.regressions[0].describe()  # human text renders
    assert "100.0%" in next(
        r.describe() for r in result.regressions
        if r.metric == "engine.wall_seconds"
    )


def test_jitter_level_noise_passes(tmp_path):
    # Latest run drifts by less than the calibrated jitter band.
    runs = [_sections(wall=1.0, rate=1000.0, jitter=0.10) for _ in range(3)]
    runs.append(_sections(wall=1.08, rate=930.0, jitter=0.10))
    path = _history(tmp_path, runs)
    result = check_latest(load_history(path))
    assert result.tolerance == pytest.approx(0.10)
    assert result.jitter == pytest.approx(0.10)
    assert result.clean
    # The same drift with a tight jitter still passes the 5% floor ...
    runs = [_sections(jitter=0.001) for _ in range(3)]
    runs.append(_sections(wall=1.04, rate=970.0, jitter=0.001))
    assert check_latest(load_history(_history(tmp_path / "b", runs))).clean


def test_floor_applies_when_jitter_is_tiny(tmp_path):
    runs = [_sections(jitter=0.001) for _ in range(3)]
    runs.append(_sections(wall=1.2, jitter=0.001))  # 20% >> 5% floor
    (tmp_path / "c").mkdir(exist_ok=True)
    result = check_latest(load_history(_history(tmp_path / "c", runs)))
    assert {r.metric for r in result.regressions} == {"engine.wall_seconds"}


def test_rss_gets_the_wider_floor(tmp_path):
    runs = [_sections(rss=50_000) for _ in range(3)]
    runs.append(_sections(rss=60_000))  # +20% — inside the 25% RSS band
    result = check_latest(load_history(_history(tmp_path, runs)))
    assert result.clean
    runs.append(_sections(rss=80_000))  # +60% — a real leak
    path = _history(tmp_path / "d", runs)
    result = check_latest(load_history(path))
    assert {r.metric for r in result.regressions} == {"engine.peak_rss_kb"}


def test_trailing_median_absorbs_one_hot_run(tmp_path):
    runs = [
        _sections(wall=1.0),
        _sections(wall=5.0),  # one anomalous run must not poison the base
        _sections(wall=1.0),
        _sections(wall=1.02),
    ]
    result = check_latest(load_history(_history(tmp_path, runs)))
    assert result.clean


def test_new_metric_starts_its_own_trend(tmp_path):
    runs = [_sections() for _ in range(2)]
    latest = _sections()
    latest["fresh"] = {"brand_new_seconds": 9.0}
    runs.append(latest)
    result = check_latest(load_history(_history(tmp_path, runs)))
    assert result.clean  # no baseline -> not comparable -> not flagged


def test_window_bounds_the_baseline(tmp_path):
    # Old fast runs age out of the window; the recent plateau rules.
    runs = [_sections(wall=0.5)] * 3 + [_sections(wall=1.0)] * 5
    runs.append(_sections(wall=1.03))
    result = check_latest(load_history(_history(tmp_path, runs)), window=5)
    assert result.clean
    assert result.baseline_records == 5


# -- CLI ---------------------------------------------------------------------


def _write_bench(tmp_path, **kwargs):
    bench = tmp_path / "BENCH_core.json"
    bench.write_text(json.dumps(_sections(**kwargs)))
    return bench


def test_cli_append_history_check_round_trip(tmp_path):
    bench = _write_bench(tmp_path)
    history = tmp_path / "BENCH_history.jsonl"
    for _ in range(3):
        out = io.StringIO()
        assert main(
            ["bench", "append", "--bench", str(bench),
             "--history", str(history)], out,
        ) == 0
        assert "appended" in out.getvalue()

    out = io.StringIO()
    assert main(["bench", "history", "--history", str(history)], out) == 0
    assert "3 record(s)" in out.getvalue()

    out = io.StringIO()
    assert main(["bench", "check", "--history", str(history)], out) == 0
    assert "no regressions" in out.getvalue()

    # Inject a synthetic 2x regression -> exit 1.
    _write_bench(tmp_path, wall=2.0, rate=500.0)
    assert main(
        ["bench", "append", "--bench", str(bench),
         "--history", str(history)], io.StringIO(),
    ) == 0
    out = io.StringIO()
    assert main(["bench", "check", "--history", str(history)], out) == 1
    assert "REGRESSION" in out.getvalue()

    # Report-only mode mentions the regression but exits 0 (CI smoke).
    out = io.StringIO()
    assert main(
        ["bench", "check", "--history", str(history), "--report-only"], out,
    ) == 0
    assert "REGRESSION" in out.getvalue()


def test_cli_check_with_one_record_is_clean(tmp_path):
    bench = _write_bench(tmp_path)
    history = tmp_path / "h.jsonl"
    main(["bench", "append", "--bench", str(bench),
          "--history", str(history)], io.StringIO())
    out = io.StringIO()
    assert main(["bench", "check", "--history", str(history)], out) == 0
    assert "nothing to compare" in out.getvalue()


def test_cli_history_empty_and_last(tmp_path):
    history = tmp_path / "h.jsonl"
    out = io.StringIO()
    assert main(["bench", "history", "--history", str(history)], out) == 0
    assert "no records" in out.getvalue()
    bench = _write_bench(tmp_path)
    for _ in range(4):
        main(["bench", "append", "--bench", str(bench),
              "--history", str(history)], io.StringIO())
    out = io.StringIO()
    assert main(["bench", "history", "--history", str(history),
                 "--last", "2"], out) == 0
    assert "4 record(s)" in out.getvalue()


def test_cli_append_rejects_non_object_bench(tmp_path):
    bench = tmp_path / "bad.json"
    bench.write_text("[1, 2, 3]")
    out = io.StringIO()
    assert main(
        ["bench", "append", "--bench", str(bench),
         "--history", str(tmp_path / "h.jsonl")], out,
    ) == 2
    assert "error" in out.getvalue()
