"""Adversarial regression tests: crafted races and failure schedules.

Each test encodes one scenario that stressed the implementation during
development or that the paper's proofs single out.  Deterministic
message delays (``min_delay_fraction=1.0``) make the schedules exact.
"""

import pytest

from repro.core.doorway import FORK_SYNC, RECOLOR_SYNC
from repro.core.states import NodeState
from repro.mobility import ScriptedMobility, ScriptedMove
from repro.net.geometry import Point, line_positions
from repro.runtime.simulation import ScenarioConfig, Simulation
from repro.sim.clock import TimeBounds

from helpers import assert_fork_uniqueness

DETERMINISTIC = TimeBounds(nu=0.5, tau=1.0, min_delay_fraction=1.0)


def test_fork_bounce_terminates():
    """The want-back flag must not ping-pong a fork forever.

    Two neighbors with adjacent priorities hammer the CS; every grant
    to the lower-priority node carries the want-back flag.  The run
    completing with both nodes eating repeatedly proves the bounce
    terminates (the paper's argument: only lower-priority senders set
    the flag).
    """
    config = ScenarioConfig(
        positions=line_positions(2, spacing=1.0),
        algorithm="alg1-greedy",
        seed=2,
        think_range=(0.0, 0.1),
        bounds=DETERMINISTIC,
        initial_colors={0: 0, 1: 1},
    )
    sim = Simulation(config)
    result = sim.run(until=200.0)
    assert result.metrics.counters[0].cs_entries > 20
    assert result.metrics.counters[1].cs_entries > 20
    # Bounded traffic per CS entry (no runaway bounce).
    assert result.messages_per_cs() < 30


def test_simultaneous_recoloring_of_neighbors():
    """Two adjacent movers recolor concurrently and must diverge.

    Both become hungry at the same instant with no colors; with
    deterministic delays they cross SDr together and run a joint
    greedy session (Lemma 14's case).
    """
    config = ScenarioConfig(
        positions=line_positions(2, spacing=1.0),
        algorithm="alg1-greedy",
        seed=2,
        bounds=DETERMINISTIC,
        scripted_hunger={0: [1.0, 20.0], 1: [1.0, 20.0]},
    )
    sim = Simulation(config)
    sim.run(until=15.0)
    a0 = sim.algorithm_of(0)
    a1 = sim.algorithm_of(1)
    assert a0.my_color is not None and a1.my_color is not None
    assert a0.my_color != a1.my_color
    sim.run(until=60.0)
    assert sim.metrics.counters[0].cs_entries >= 1
    assert sim.metrics.counters[1].cs_entries >= 1


def test_crash_during_recoloring_stalls_participants():
    """The greedy coloring's failure-locality cascade (Section 5.4.2).

    The paper: "all nodes ... start running the recoloring
    simultaneously, and one of them fails in the first iteration ...
    all nodes at distance 1 will be blocked in their first iteration".
    We crash a mid-line node the moment everyone starts recoloring and
    assert its *recoloring partners* never finish while far nodes the
    crash cannot reach via the flood do.
    """
    n = 5
    config = ScenarioConfig(
        positions=line_positions(n, spacing=1.0),
        algorithm="alg1-greedy",
        seed=3,
        bounds=DETERMINISTIC,
        scripted_hunger={i: [1.0] for i in range(n)},
        crashes=[(1.2, 2)],  # node 2 dies inside its first exchange
    )
    sim = Simulation(config)
    sim.run(until=300.0)
    # Nodes 1 and 3 were exchanging graphs with the dead node: stalled
    # (never colored, never ate) — the O(n) locality of Theorem 16.
    for node in (1, 3):
        alg = sim.algorithm_of(node)
        stalled = (
            sim.harnesses[node].state is NodeState.HUNGRY
            and sim.metrics.counters[node].cs_entries == 0
        )
        assert stalled, f"node {node} should be stalled by the crash"


def test_mover_aborts_recoloring_cleanly():
    """A node that moves mid-recoloring abandons the session and
    restarts; its former partner completes alone."""
    # Nodes 0,1 adjacent; node 2 far away.  0 and 1 recolor together;
    # node 1 teleports away mid-session.
    positions = [Point(0, 0), Point(1, 0), Point(10, 0)]
    config = ScenarioConfig(
        positions=positions,
        algorithm="alg1-greedy",
        seed=4,
        bounds=DETERMINISTIC,
        scripted_hunger={0: [1.0, 30.0], 1: [1.0, 30.0]},
        mobility_factory=lambda i: (
            ScriptedMobility([ScriptedMove(1.4, Point(9.5, 0.0))])
            if i == 1
            else None
        ),
    )
    sim = Simulation(config)
    result = sim.run(until=100.0)
    # Node 0 completed recoloring despite the partner's departure.
    assert sim.algorithm_of(0).my_color is not None
    assert sim.metrics.counters[0].cs_entries >= 1
    # Node 1 ended next to node 2 and, once hungry again, recolored and ate.
    assert sim.topology.has_link(1, 2)
    assert sim.metrics.counters[1].cs_entries >= 1
    assert_fork_uniqueness(sim)


def test_fork_destroyed_in_flight_no_deadlock():
    """A fork in transit when its link dies is destroyed with the link;
    the re-formed link carries a fresh fork and both sides proceed."""
    positions = [Point(0, 0), Point(1, 0)]
    config = ScenarioConfig(
        positions=positions,
        algorithm="alg2",
        seed=5,
        bounds=DETERMINISTIC,
        think_range=(0.0, 0.2),
        mobility_factory=lambda i: (
            ScriptedMobility([
                ScriptedMove(10.0, Point(5.0, 0.0), speed=4.0),
                ScriptedMove(20.0, Point(1.0, 0.0), speed=4.0),
            ])
            if i == 1
            else None
        ),
    )
    sim = Simulation(config)
    result = sim.run(until=120.0)
    assert sim.topology.has_link(0, 1)
    # Both keep eating after the break/re-form cycle.
    post = [s for s in result.metrics.samples if s.eating_at > 25.0]
    assert {s.node for s in post} == {0, 1}
    assert_fork_uniqueness(sim)


def test_rapid_demotion_cycle_stays_safe():
    """A node that keeps diving into a busy clique gets demoted over
    and over; safety holds and the static nodes keep progressing."""
    positions = [Point(0, 0), Point(1, 0), Point(0.5, 0.9), Point(8.0, 0.0)]
    moves = []
    for k in range(6):
        moves.append(ScriptedMove(10.0 + 12 * k, Point(0.5, 0.4), speed=3.0))
        moves.append(ScriptedMove(16.0 + 12 * k, Point(8.0, 0.0), speed=3.0))
    config = ScenarioConfig(
        positions=positions,
        algorithm="alg2",
        seed=6,
        think_range=(0.0, 0.3),
        mobility_factory=lambda i: ScriptedMobility(moves) if i == 3 else None,
    )
    sim = Simulation(config)
    result = sim.run(until=120.0)
    for node in (0, 1, 2):
        assert result.metrics.counters[node].cs_entries > 10
    assert_fork_uniqueness(sim)


def test_double_doorway_discipline_under_churn():
    """Invariant probe: a node is never behind SDf and SDr at once
    unless transiting the Figure 5 interleave (behind SDr implies not
    yet exited the recolor doorways)."""
    config = ScenarioConfig(
        positions=line_positions(4, spacing=1.0),
        algorithm="alg1-greedy",
        seed=7,
        think_range=(0.2, 0.8),
        mobility_factory=lambda i: (
            ScriptedMobility([
                ScriptedMove(30.0, Point(1.5, 0.9)),
                ScriptedMove(60.0, Point(3.0, 0.0)),
            ])
            if i == 0
            else None
        ),
    )
    sim = Simulation(config)
    seen_states = []

    def probe(engine):
        for node in range(4):
            alg = sim.algorithm_of(node)
            if alg.doorways.is_behind(FORK_SYNC) and alg.doorways.is_behind(
                RECOLOR_SYNC
            ):
                seen_states.append(node)  # pragma: no cover - violation

    sim.sim.add_listener(probe)
    sim.run(until=100.0)
    assert seen_states == [], "SDf and SDr must never overlap"
