"""Tests for the runtime: harness transitions, workloads, crashes."""

import pytest

from repro.core.base import LocalMutexAlgorithm
from repro.core.states import NodeState, check_transition
from repro.errors import ConfigurationError, ProtocolError
from repro.net.geometry import line_positions
from repro.runtime.simulation import ScenarioConfig, Simulation


class GreedyEater(LocalMutexAlgorithm):
    """Degenerate protocol: eat immediately when hungry (no neighbors
    assumed); used to exercise the harness plumbing in isolation."""

    name = "greedy-eater"

    def on_hungry(self):
        self.node.start_eating()

    def on_exit_cs(self):
        pass

    def on_message(self, src, message):
        pass


def eater_entry(ctx):
    return GreedyEater


def single_node_sim(**overrides):
    config = ScenarioConfig(
        positions=line_positions(1, spacing=5.0),
        algorithm=eater_entry,
        seed=1,
        **overrides,
    )
    return Simulation(config)


def test_state_transition_validation():
    check_transition(NodeState.THINKING, NodeState.HUNGRY)
    check_transition(NodeState.EATING, NodeState.HUNGRY)
    with pytest.raises(ProtocolError):
        check_transition(NodeState.THINKING, NodeState.EATING)
    with pytest.raises(ProtocolError):
        check_transition(NodeState.HUNGRY, NodeState.THINKING)


def test_harness_cycles_states_and_counts():
    sim = single_node_sim(think_range=(1.0, 1.0))
    result = sim.run(until=50.0)
    counters = result.metrics.counters[0]
    assert counters.cs_entries >= 10
    assert counters.cs_entries == counters.cs_completions
    assert all(rt >= 0 for rt in result.response_times)


def test_max_entries_caps_workload():
    sim = single_node_sim(max_entries=3)
    result = sim.run(until=200.0)
    assert result.metrics.counters[0].cs_entries == 3


def test_scripted_hunger_runs_at_exact_times():
    sim = single_node_sim(scripted_hunger={0: [5.0, 9.0]})
    result = sim.run(until=50.0)
    hungry_times = [s.hungry_at for s in result.metrics.samples]
    assert hungry_times == [5.0, 9.0]


def test_become_hungry_ignored_unless_thinking():
    sim = single_node_sim(scripted_hunger={0: [5.0, 5.0, 5.0]})
    result = sim.run(until=50.0)
    # Duplicate hungers collapse into one episode.
    assert result.metrics.counters[0].cs_entries == 1


def test_crashed_node_stops_everything():
    sim = single_node_sim(think_range=(1.0, 1.0), crashes=[(10.0, 0)])
    result = sim.run(until=100.0)
    entries = result.metrics.counters[0].cs_entries
    # Roughly 10 / (1 think + ~0.75 eat) entries before the crash; none after.
    assert 3 <= entries <= 10


def test_config_rejects_empty_positions():
    with pytest.raises(ConfigurationError):
        ScenarioConfig(positions=[])


def test_unknown_algorithm_rejected():
    with pytest.raises(ConfigurationError):
        Simulation(
            ScenarioConfig(
                positions=line_positions(2, 1.0), algorithm="nope"
            )
        )


def test_determinism_same_seed_same_run():
    def run(seed):
        config = ScenarioConfig(
            positions=line_positions(6, spacing=1.0),
            algorithm="alg2",
            seed=seed,
            think_range=(0.5, 2.0),
        )
        result = Simulation(config).run(until=120.0)
        return (
            result.cs_entries,
            result.messages_sent,
            tuple(round(t, 12) for t in result.response_times),
        )

    assert run(42) == run(42)
    assert run(42) != run(43)


def test_messages_per_cs_none_when_no_entries():
    sim = single_node_sim(scripted_hunger={0: []})
    result = sim.run(until=10.0)
    assert result.cs_entries == 0
    assert result.messages_per_cs() is None


def test_locality_report_requires_crash_plan():
    sim = single_node_sim()
    sim.run(until=10.0)
    with pytest.raises(ConfigurationError):
        sim.locality_report()
