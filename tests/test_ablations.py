"""Tests for the ablated variants (they must stay safe and live)."""

import pytest

from repro.core.ablations import (
    Algorithm1NoDoorways,
    Algorithm1NoReturnPath,
    Algorithm2NoNotify,
)
from repro.core.coloring.greedy import GreedyColoring
from repro.core.messages import Notification
from repro.core.states import NodeState
from repro.errors import ConfigurationError
from repro.mobility import ScriptedMobility, ScriptedMove
from repro.net.geometry import Point, line_positions
from repro.runtime.simulation import ScenarioConfig, Simulation

from helpers import FakeNode, assert_fork_uniqueness


def test_nonotify_skips_notification():
    node = FakeNode(1, (0, 2))
    alg = Algorithm2NoNotify(node)
    for peer in (0, 2):
        alg.bootstrap_peer(peer)
    node.set_state(NodeState.HUNGRY)
    alg.on_hungry()
    assert all(not isinstance(m, Notification) for m in node.broadcasts)


def test_noreturn_does_not_exit_sdf():
    colors = {0: 0, 1: 1, 2: 2}
    node = FakeNode(1, (0, 2))
    alg = Algorithm1NoReturnPath(node, GreedyColoring(), initial_colors=colors)
    for peer in (0, 2):
        alg.bootstrap_peer(peer)
    node.set_state(NodeState.HUNGRY)
    alg.on_hungry()
    # Low neighbor 0 departs holding the shared fork: full Algorithm 1
    # would take the return path; this variant stays put.
    node.set_neighbors((2,))
    alg.on_link_down(0)
    assert alg.return_paths_taken == 0
    from repro.core.doorway import FORK_SYNC

    assert alg.doorways.is_behind(FORK_SYNC)


def test_nodoorway_requires_full_coloring():
    node = FakeNode(1, (0,))
    with pytest.raises(ConfigurationError):
        Algorithm1NoDoorways(node, initial_colors={0: 0})  # missing own color


@pytest.mark.parametrize(
    "algorithm", ["alg2-nonotify", "alg1-noreturn", "alg1-nodoorway"]
)
def test_ablations_safe_and_live_static(algorithm):
    config = ScenarioConfig(
        positions=line_positions(7, spacing=1.0),
        algorithm=algorithm,
        seed=9,
        think_range=(0.5, 2.0),
    )
    sim = Simulation(config)
    result = sim.run(until=250.0)  # strict safety enforced
    assert result.starved == []
    for node in range(7):
        assert result.metrics.counters[node].cs_entries >= 3
    assert_fork_uniqueness(sim)


def test_noreturn_survives_the_fig6_movement():
    """Without the return path the Figure 6 recovery relies on the
    link-destroys-fork rule; the node must still make progress."""
    positions = line_positions(4, spacing=1.0)
    config = ScenarioConfig(
        positions=positions,
        algorithm="alg1-noreturn",
        seed=1,
        initial_colors={0: 2, 1: 1, 2: 0, 3: 3},
        scripted_hunger={
            3: [1.0],
            0: [t * 4.0 + 30.0 for t in range(60)],
            1: [t * 4.0 + 30.0 for t in range(60)],
            2: [t * 4.0 + 30.0 for t in range(60)],
        },
        crashes=[(20.0, 3)],
        mobility_factory=lambda i: (
            ScriptedMobility([ScriptedMove(150.0, Point(2.0, 10.0))])
            if i == 2
            else None
        ),
        trace=True,
    )
    sim = Simulation(config)
    sim.run(until=300.0)
    p2_after = [
        r for r in sim.trace.select(category="cs.enter", node=1)
        if r.time > 150.0
    ]
    assert p2_after, "p2 must recover once p3 departs"
