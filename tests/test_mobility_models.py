"""Tests for the Gauss-Markov and group mobility models."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.mobility import GaussMarkov, GroupCenter, GroupMobility
from repro.net.geometry import Point
from repro.net.topology import DynamicTopology
from repro.runtime.simulation import ScenarioConfig, Simulation
from repro.sim.rng import RandomSource


def topo_with(node_id=0, position=Point(5.0, 5.0)):
    topo = DynamicTopology(radio_range=1.0)
    topo.add_node(node_id, position)
    return topo


# ----------------------------------------------------------------------
# Gauss-Markov
# ----------------------------------------------------------------------


def test_gauss_markov_validation():
    with pytest.raises(ConfigurationError):
        GaussMarkov(0, 10)
    with pytest.raises(ConfigurationError):
        GaussMarkov(10, 10, alpha=1.5)
    with pytest.raises(ConfigurationError):
        GaussMarkov(10, 10, mean_speed=0)


def test_gauss_markov_stays_in_arena():
    model = GaussMarkov(10.0, 10.0, mean_speed=2.0, update_interval=3.0)
    topo = topo_with(position=Point(9.5, 9.5))
    rng = RandomSource(1).stream("m")
    position = topo.position(0)
    for _ in range(50):
        episode = model.next_episode(0, 0.0, topo, rng)
        assert 0.0 <= episode.destination.x <= 10.0
        assert 0.0 <= episode.destination.y <= 10.0
        topo.set_position(0, episode.destination)


def test_gauss_markov_velocity_correlation():
    """High alpha -> consecutive headings stay close (vs alpha ~ 0)."""

    def heading_changes(alpha, seed=5):
        model = GaussMarkov(1000.0, 1000.0, mean_speed=1.0, alpha=alpha,
                            direction_sigma=1.0)
        topo = topo_with(position=Point(500.0, 500.0))
        rng = RandomSource(seed).stream("m")
        headings = []
        for _ in range(60):
            episode = model.next_episode(0, 0.0, topo, rng)
            origin = topo.position(0)
            headings.append(
                math.atan2(episode.destination.y - origin.y,
                           episode.destination.x - origin.x)
            )
            topo.set_position(0, episode.destination)
        deltas = [
            abs((b - a + math.pi) % (2 * math.pi) - math.pi)
            for a, b in zip(headings, headings[1:])
        ]
        return sum(deltas) / len(deltas)

    assert heading_changes(alpha=0.95) < heading_changes(alpha=0.05)


def test_gauss_markov_speed_stays_positive():
    model = GaussMarkov(100.0, 100.0, mean_speed=1.0, speed_sigma=2.0)
    topo = topo_with(position=Point(50.0, 50.0))
    rng = RandomSource(2).stream("m")
    for _ in range(100):
        episode = model.next_episode(0, 0.0, topo, rng)
        assert episode.speed > 0
        topo.set_position(0, episode.destination)


# ----------------------------------------------------------------------
# Group mobility
# ----------------------------------------------------------------------


def test_group_center_advances_legs_lazily():
    center = GroupCenter(Point(0, 0), 10.0, 10.0, speed=1.0, leg_duration=5.0)
    rng = RandomSource(3).stream("g")
    p0 = center.position_at(0.0, rng)
    p1 = center.position_at(20.0, rng)
    assert p0 == Point(0, 0)
    assert 0.0 <= p1.x <= 10.0 and 0.0 <= p1.y <= 10.0


def test_group_members_stay_near_center():
    center = GroupCenter(Point(5, 5), 10.0, 10.0, speed=0.5, leg_duration=10.0)
    model = GroupMobility(center, wander_radius=1.0, update_interval=2.0)
    topo = topo_with(position=Point(5.0, 5.0))
    rng = RandomSource(4).stream("g")
    now = 0.0
    for _ in range(20):
        episode = model.next_episode(0, now, topo, rng)
        now += episode.start_delay
        anchor = center.position_at(now + model.update_interval, rng)
        # Destination within the wander radius of the (near-term) anchor,
        # modulo the center having moved a little since we sampled it.
        assert episode.destination.distance_to(anchor) <= 1.0 + 2.0
        topo.set_position(0, episode.destination)


def test_group_validation():
    center = GroupCenter(Point(0, 0), 5.0, 5.0)
    with pytest.raises(ConfigurationError):
        GroupCenter(Point(0, 0), 0, 5.0)
    with pytest.raises(ConfigurationError):
        GroupMobility(center, wander_radius=-1)
    with pytest.raises(ConfigurationError):
        GroupMobility(center, member_speed=0)


# ----------------------------------------------------------------------
# End-to-end: the protocols stay safe under these models too
# ----------------------------------------------------------------------


@pytest.mark.parametrize("algorithm", ["alg2", "alg1-greedy"])
def test_protocols_safe_under_gauss_markov(algorithm):
    positions = [Point(float(i % 3), float(i // 3)) for i in range(9)]
    config = ScenarioConfig(
        positions=positions,
        radio_range=1.3,
        algorithm=algorithm,
        seed=6,
        think_range=(0.3, 1.5),
        delta_override=8,
        mobility_factory=lambda i: (
            GaussMarkov(3.0, 3.0, mean_speed=0.8) if i < 3 else None
        ),
    )
    sim = Simulation(config)
    result = sim.run(until=120.0)  # strict safety on
    assert result.cs_entries > 20


def test_protocols_safe_under_group_mobility():
    # One 4-node team sweeps past a static 5-node sensor line.
    positions = [Point(float(i), 0.0) for i in range(5)]
    positions += [Point(-3.0 + 0.3 * i, 1.0) for i in range(4)]
    center = GroupCenter(Point(-3.0, 1.0), 8.0, 2.0, speed=0.5,
                         leg_duration=15.0)
    config = ScenarioConfig(
        positions=positions,
        radio_range=1.4,
        algorithm="alg2",
        seed=8,
        think_range=(0.3, 1.5),
        mobility_factory=lambda i: (
            GroupMobility(center, wander_radius=0.5) if i >= 5 else None
        ),
    )
    sim = Simulation(config)
    result = sim.run(until=120.0)
    assert result.cs_entries > 20
