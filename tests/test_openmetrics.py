"""OpenMetrics exporter: format round-trips, name validity, serving.

Every rendering path is pushed through the strict hand-rolled parser in
``helpers.parse_openmetrics`` — the parser enforces the exposition
rules (declared families, ``_total`` counters, cumulative buckets
ending at ``+Inf``, single trailing ``# EOF``), so a passing round-trip
is a format conformance check, not just a smoke test.
"""

from __future__ import annotations

import threading
import urllib.request

import pytest
from helpers import parse_openmetrics

from repro.errors import ConfigurationError
from repro.obs.openmetrics import (
    CONTENT_TYPE,
    build_metrics_server,
    escape_label_value,
    help_catalogue,
    metric_name,
    openmetrics_from_report,
    render_openmetrics,
    render_registry,
)
from repro.obs.registry import MetricRegistry, merge_snapshots
from repro.runtime.simulation import ScenarioConfig, Simulation
from repro.sim.clock import TimeBounds
from repro.net.geometry import line_positions


def _loaded_registry() -> MetricRegistry:
    registry = MetricRegistry()
    requests = registry.counter("mutex.requests", "CS requests")
    requests.inc()
    requests.inc(key=3)
    depth = registry.gauge("mutex.queue_depth", "Forks held")
    depth.set(4)
    depth.set(2)
    response = registry.histogram("mutex.response_time", "Hungry to eating")
    for value in (0.004, 0.2, 1.7, 80.0):
        response.observe(value)
    response.observe(0.5, key=1)
    return registry


def _config(**overrides) -> ScenarioConfig:
    defaults = dict(
        positions=list(line_positions(6, spacing=1.0)),
        radio_range=1.0,
        algorithm="alg2",
        seed=7,
        bounds=TimeBounds(nu=1.0, tau=1.0),
        telemetry=True,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


# -- names and labels --------------------------------------------------------


def test_metric_name_translates_probe_dots():
    assert metric_name("alg2.switches") == "repro_alg2_switches"
    assert metric_name("explore.fuzz-runs") == "repro_explore_fuzz_runs"


def test_metric_name_rejects_unrepresentable():
    with pytest.raises(ConfigurationError):
        metric_name("bad metric!")


def test_every_catalogue_probe_renders_to_a_valid_identifier():
    """Property over the full probe catalogue: names always export.

    ``help_catalogue`` holds every probe the protocol / watchdog /
    explore planes register; each must survive ``metric_name`` and come
    with non-empty help text.
    """
    catalogue = help_catalogue()
    assert len(catalogue) >= 10
    for probe, help_text in catalogue.items():
        name = metric_name(probe)
        assert name.startswith("repro_")
        assert help_text, f"probe {probe!r} has no help text"
    assert "alg2.switches" in catalogue
    assert "watchdog.warnings" in catalogue
    assert "explore.violations" in catalogue


def test_escape_label_value():
    assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'


# -- rendering round-trips ---------------------------------------------------


def test_registry_round_trips_through_strict_parser():
    families = parse_openmetrics(render_registry(_loaded_registry()))
    counter = families["repro_mutex_requests"]
    assert counter["type"] == "counter"
    assert counter["help"] == "CS requests"
    assert ("repro_mutex_requests_total", (), 2.0) in counter["samples"]
    assert (
        "repro_mutex_requests_total", (("key", "3"),), 1.0
    ) in counter["samples"]

    gauge = families["repro_mutex_queue_depth"]
    assert gauge["samples"] == [("repro_mutex_queue_depth", (), 2.0)]
    peak = families["repro_mutex_queue_depth_high_water"]
    assert peak["samples"] == [
        ("repro_mutex_queue_depth_high_water", (), 4.0)
    ]

    histogram = families["repro_mutex_response_time"]
    assert histogram["type"] == "histogram"
    plain = [
        (name, labels, value)
        for name, labels, value in histogram["samples"]
        if ("key", "1") not in labels
    ]
    # Keyed observations also land in the aggregate cell (same
    # semantics as keyed counter increments): 4 plain + 1 keyed.
    count = [v for n, _, v in plain if n.endswith("_count")]
    assert count == [5.0]
    infs = [
        v for n, labels, v in plain
        if n.endswith("_bucket") and ("le", "+Inf") in labels
    ]
    assert infs == [5.0]
    keyed_counts = [
        v for n, labels, v in histogram["samples"]
        if n.endswith("_count") and ("key", "1") in labels
    ]
    assert keyed_counts == [1.0]
    assert families["repro_mutex_response_time_min"]["samples"][0][2] == 0.004
    assert families["repro_mutex_response_time_max"]["samples"][0][2] == 80.0


def test_empty_registry_renders_bare_eof():
    assert render_registry(MetricRegistry()) == "# EOF\n"
    assert parse_openmetrics(render_openmetrics({})) == {}


def test_snapshot_and_registry_renderings_agree():
    registry = _loaded_registry()
    live = parse_openmetrics(render_registry(registry))
    from_snapshot = parse_openmetrics(
        render_openmetrics(
            registry.snapshot(),
            help_texts={
                "mutex.requests": "CS requests",
                "mutex.queue_depth": "Forks held",
                "mutex.response_time": "Hungry to eating",
            },
        )
    )
    assert live == from_snapshot


def test_merged_snapshot_round_trips():
    merged = merge_snapshots(
        [_loaded_registry().snapshot(), _loaded_registry().snapshot()]
    )
    families = parse_openmetrics(render_openmetrics(merged))
    counter = families["repro_mutex_requests"]
    assert ("repro_mutex_requests_total", (), 4.0) in counter["samples"]
    # min/max survive the merge instead of being summed.
    assert families["repro_mutex_response_time_min"]["samples"][0][2] == 0.004
    assert families["repro_mutex_response_time_max"]["samples"][0][2] == 80.0


def test_sharded_rendering_labels_every_sample():
    shards = {
        0: _loaded_registry().snapshot(),
        1: _loaded_registry().snapshot(),
    }
    families = parse_openmetrics(render_openmetrics(shards=shards))
    counter = families["repro_mutex_requests"]
    shard_labels = {
        dict(labels).get("shard") for _, labels, _ in counter["samples"]
    }
    assert shard_labels == {"0", "1"}
    for family in families.values():
        for _, labels, _ in family["samples"]:
            assert dict(labels).get("shard") in {"0", "1"}


def test_simulation_result_exports_openmetrics():
    result = Simulation(_config()).run(until=40.0)
    families = parse_openmetrics(result.openmetrics())
    assert any(name.startswith("repro_alg2_") for name in families)
    # The declared help text comes from the live probe catalogue.
    assert families["repro_alg2_switches"]["help"]


def test_report_export_matches_result_export():
    result = Simulation(_config()).run(until=40.0)
    assert openmetrics_from_report(result.report()) == result.openmetrics()


def test_sharded_run_exports_shard_labeled_metrics():
    from repro.sim.sharded import ShardedEngine

    config = _config(positions=list(line_positions(12, spacing=1.0)))
    result = ShardedEngine(config, num_shards=2, workers=1).run(until=40.0)
    text = result.openmetrics()
    families = parse_openmetrics(text)
    labels = {
        dict(sample_labels).get("shard")
        for family in families.values()
        for _, sample_labels, _ in family["samples"]
    }
    assert labels == {"0", "1"}
    # The merged (unlabeled) view is still available from the probes.
    merged = parse_openmetrics(render_openmetrics(result.probes))
    assert merged


def test_canonical_report_stays_free_of_shard_probes():
    """Per-shard snapshots ride under resources, which canonical
    (non-profile) reports omit — fixed-seed reports stay bit-identical
    whether or not the exporter is in play."""
    from repro.sim.sharded import ShardedEngine

    config = _config(positions=list(line_positions(12, spacing=1.0)))
    result = ShardedEngine(config, num_shards=2, workers=1).run(until=40.0)
    assert "shard_probes" in (result.resources or {})
    report = result.report()
    assert report.resources is None


# -- scrape endpoint ---------------------------------------------------------


def test_metrics_server_serves_current_text():
    payloads = iter(["# EOF\n", "# TYPE repro_x gauge\nrepro_x 1\n# EOF\n"])
    server = build_metrics_server(lambda: next(payloads), port=0)
    host, port = server.server_address[:2]
    try:
        for expected_first in ("# EOF\n", "# TYPE repro_x gauge"):
            thread = threading.Thread(target=server.handle_request)
            thread.start()
            response = urllib.request.urlopen(
                f"http://{host}:{port}/metrics"
            )
            body = response.read().decode()
            thread.join()
            assert response.status == 200
            assert response.headers["Content-Type"] == CONTENT_TYPE
            assert body.startswith(expected_first)
            parse_openmetrics(body)
    finally:
        server.server_close()


def test_metrics_server_404_off_path():
    server = build_metrics_server(lambda: "# EOF\n", port=0)
    host, port = server.server_address[:2]
    try:
        thread = threading.Thread(target=server.handle_request)
        thread.start()
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"http://{host}:{port}/nope")
        thread.join()
        assert excinfo.value.code == 404
    finally:
        server.server_close()
