"""Shared test utilities: fake nodes and global invariant checkers."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.doorway import FORK_SYNC
from repro.core.states import NodeState
from repro.net.messages import Message
from repro.runtime.simulation import Simulation
from repro.sim.engine import Simulator
from repro.sim.trace import TraceLog


class FakeNode:
    """A minimal NodeServices implementation for unit-testing components.

    Records sends/broadcasts instead of delivering them, and lets tests
    control the neighbor set and state directly.
    """

    def __init__(self, node_id: int = 0, neighbors: Iterable[int] = ()) -> None:
        self.node_id = node_id
        self._neighbors: Set[int] = set(neighbors)
        self._state = NodeState.THINKING
        self.sim = Simulator()
        self.trace = TraceLog(enabled=True)
        self.sent: List[Tuple[int, Message]] = []
        self.broadcasts: List[Message] = []
        self.eat_calls = 0
        self.demote_calls = 0

    # -- state control ---------------------------------------------------
    @property
    def state(self) -> NodeState:
        return self._state

    def set_state(self, state: NodeState) -> None:
        self._state = state

    @property
    def now(self) -> float:
        return self.sim.now

    def set_neighbors(self, neighbors: Iterable[int]) -> None:
        self._neighbors = set(neighbors)

    def neighbors(self):
        return frozenset(self._neighbors)

    def sorted_neighbors(self):
        return tuple(sorted(self._neighbors))

    # -- services ----------------------------------------------------------
    def send(self, dst: int, message: Message) -> None:
        self.sent.append((dst, message))

    def broadcast(self, message: Message) -> None:
        self.broadcasts.append(message)

    def start_eating(self) -> None:
        self.eat_calls += 1
        self._state = NodeState.EATING

    def demote_to_hungry(self) -> None:
        self.demote_calls += 1
        self._state = NodeState.HUNGRY

    # -- assertions ---------------------------------------------------------
    def sent_to(self, dst: int) -> List[Message]:
        return [m for d, m in self.sent if d == dst]

    def clear(self) -> None:
        self.sent.clear()
        self.broadcasts.clear()


# ----------------------------------------------------------------------
# Global invariant checkers over a running Simulation
# ----------------------------------------------------------------------


def fork_holders(sim: Simulation, a: int, b: int) -> Tuple[bool, bool]:
    """(a holds the a-b fork, b holds it) across protocol families."""

    def holds(node: int, peer: int) -> bool:
        algorithm = sim.algorithm_of(node)
        if hasattr(algorithm, "forks"):
            return algorithm.forks.holds(peer)
        if hasattr(algorithm, "holds_fork"):
            return algorithm.holds_fork.get(peer, False)
        raise AttributeError(f"{algorithm!r} has no fork state")

    return holds(a, b), holds(b, a)


def assert_fork_uniqueness(sim: Simulation) -> None:
    """Lemma 3's core: no link's fork is held by both endpoints."""
    for a, b in sim.topology.links():
        held_a, held_b = fork_holders(sim, a, b)
        assert not (held_a and held_b), (
            f"fork of link ({a},{b}) held by both endpoints"
        )


def assert_alg2_priorities_antisymmetric(sim: Simulation) -> None:
    """At most one of higher_i[j] / higher_j[i] may be false (Lemma 24).

    Both-true is legal only while a switch message is in transit; at
    quiescence exactly one direction holds.
    """
    for a, b in sim.topology.links():
        alg_a = sim.algorithm_of(a)
        alg_b = sim.algorithm_of(b)
        higher_ab = alg_a.higher.get(b, False)
        higher_ba = alg_b.higher.get(a, False)
        assert higher_ab or higher_ba, (
            f"priority lost on link ({a},{b}): both consider the other lower"
        )


def assert_alg2_priority_graph_acyclic(sim: Simulation) -> None:
    """The strict priority digraph of Algorithm 2 is acyclic (Lemma 24)."""
    edges: Dict[int, List[int]] = {}
    for a, b in sim.topology.links():
        higher_ab = sim.algorithm_of(a).higher.get(b, False)
        higher_ba = sim.algorithm_of(b).higher.get(a, False)
        if higher_ab and not higher_ba:
            edges.setdefault(a, []).append(b)  # b outranks a
        elif higher_ba and not higher_ab:
            edges.setdefault(b, []).append(a)
    state: Dict[int, int] = {}

    def dfs(node: int) -> None:
        state[node] = 1
        for nxt in edges.get(node, ()):
            if state.get(nxt, 0) == 1:
                raise AssertionError(f"priority cycle through {node}->{nxt}")
            if state.get(nxt, 0) == 0:
                dfs(nxt)
        state[node] = 2

    for node in sim.topology.nodes():
        if state.get(node, 0) == 0:
            dfs(node)


class Lemma4Checker:
    """Continuously checks color legality among nodes behind SDf.

    Registered as an engine listener; after every event, any two
    neighbors both behind the fork-collection synchronous doorway must
    hold distinct colors (Lemma 4).
    """

    def __init__(self, sim: Simulation) -> None:
        self._simulation = sim
        self.checks = 0
        sim.sim.add_listener(self._check)

    def _check(self, _engine) -> None:
        self.checks += 1
        simulation = self._simulation
        for a, b in simulation.topology.links():
            alg_a = simulation.algorithm_of(a)
            alg_b = simulation.algorithm_of(b)
            if not hasattr(alg_a, "doorways"):
                return
            if alg_a.doorways.is_behind(FORK_SYNC) and alg_b.doorways.is_behind(
                FORK_SYNC
            ):
                assert alg_a.my_color != alg_b.my_color, (
                    f"Lemma 4 violated at t={simulation.sim.now}: neighbors "
                    f"{a} and {b} both behind SDf with color {alg_a.my_color}"
                )


# -- OpenMetrics test parser ------------------------------------------------

_OM_NAME = r"[a-zA-Z_][a-zA-Z0-9_]*"


def parse_openmetrics(text: str) -> Dict[str, Dict]:
    """Strictly parse OpenMetrics exposition text.

    Deliberately hand-rolled and unforgiving — the point is to catch
    exporter drift, not to tolerate it.  Enforces the format rules the
    exporter promises: names match ``[a-zA-Z_][a-zA-Z0-9_]*``, every
    sample belongs to a previously declared ``# TYPE`` family, counter
    samples end in ``_total``, histogram buckets are cumulative and
    finish with ``le="+Inf"`` equal to ``_count``, and the exposition
    ends with exactly one ``# EOF`` line.

    Returns ``{family: {"type", "help", "samples": [(name, labels,
    value)]}}`` where ``labels`` is a tuple of (label, value) pairs.
    """
    import re

    families: Dict[str, Dict] = {}
    lines = text.split("\n")
    assert lines[-1] == "", "exposition must end with a newline"
    lines = lines[:-1]
    assert lines, "empty exposition"
    assert lines[-1] == "# EOF", "exposition must end with '# EOF'"
    body = lines[:-1]
    assert "# EOF" not in body, "'# EOF' must appear exactly once, last"
    current: Optional[str] = None
    for line in body:
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            assert re.fullmatch(_OM_NAME, name), f"bad family name {name!r}"
            assert kind in ("counter", "gauge", "histogram"), (
                f"bad family type {kind!r}"
            )
            assert name not in families, f"duplicate family {name!r}"
            families[name] = {"type": kind, "help": None, "samples": []}
            current = name
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            assert name == current, (
                f"HELP for {name!r} outside its TYPE block"
            )
            assert help_text, "empty HELP text"
            families[name]["help"] = help_text
            continue
        assert not line.startswith("#"), f"unknown comment line {line!r}"
        match = re.fullmatch(
            rf"({_OM_NAME})(?:\{{([^}}]*)\}})? (\S+)", line
        )
        assert match, f"unparseable sample line {line!r}"
        name, labelblob, raw = match.groups()
        assert current is not None, f"sample {name!r} before any # TYPE"
        family = families[current]
        assert name == current or name.startswith(current + "_"), (
            f"sample {name!r} outside family {current!r}"
        )
        if family["type"] == "counter":
            assert name == current + "_total", (
                f"counter sample {name!r} must be {current!r}_total"
            )
        elif family["type"] == "gauge":
            assert name == current, f"gauge sample {name!r} has a suffix"
        else:
            assert name in (
                current + "_bucket", current + "_count", current + "_sum"
            ), f"histogram sample {name!r} has unknown suffix"
        labels = []
        if labelblob:
            for part in labelblob.split(","):
                lmatch = re.fullmatch(rf'({_OM_NAME})="([^"]*)"', part)
                assert lmatch, f"bad label {part!r} in {line!r}"
                labels.append((lmatch.group(1), lmatch.group(2)))
        assert len(dict(labels)) == len(labels), (
            f"duplicate label names in {line!r}"
        )
        value = float(raw)
        family["samples"].append((name, tuple(labels), value))
    for name, family in families.items():
        if family["type"] != "histogram":
            continue
        by_labels: Dict[Tuple, Dict] = {}
        for sample, labels, value in family["samples"]:
            rest = tuple(
                (label, lv) for label, lv in labels if label != "le"
            )
            cell = by_labels.setdefault(rest, {"buckets": [], "scalars": {}})
            if sample.endswith("_bucket"):
                le = dict(labels).get("le")
                assert le is not None, f"bucket of {name!r} missing le"
                cell["buckets"].append((le, value))
            else:
                cell["scalars"][sample] = value
        for rest, cell in by_labels.items():
            assert cell["buckets"], f"histogram {name!r} cell has no buckets"
            assert cell["buckets"][-1][0] == "+Inf", (
                f"histogram {name!r} last bucket must be +Inf"
            )
            counts = [v for _, v in cell["buckets"]]
            assert counts == sorted(counts), (
                f"histogram {name!r} buckets not cumulative: {counts}"
            )
            bounds = [le for le, _ in cell["buckets"][:-1]]
            assert bounds == sorted(bounds, key=float), (
                f"histogram {name!r} bounds out of order: {bounds}"
            )
            count = cell["scalars"].get(name + "_count")
            assert count is not None, f"histogram {name!r} missing _count"
            assert name + "_sum" in cell["scalars"], (
                f"histogram {name!r} missing _sum"
            )
            assert counts[-1] == count, (
                f"histogram {name!r} +Inf bucket {counts[-1]} != "
                f"count {count}"
            )
    return families
