"""Tests for the metric registry: instruments, get-or-create, null idiom."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.registry import (
    NULL_REGISTRY,
    merge_snapshots,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    live_registry,
)


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------


def test_counter_totals_and_key_breakdown():
    c = Counter("doorway.cross")
    c.inc()
    c.inc(2, key="ADr")
    c.inc(key="SDr")
    assert c.get() == 4
    assert c.get("ADr") == 2
    assert c.get("SDr") == 1
    assert c.get("missing") == 0
    snap = c.snapshot()
    assert snap == {
        "kind": "counter", "value": 4, "by_key": {"ADr": 2, "SDr": 1},
    }


def test_counter_without_keys_snapshots_flat():
    c = Counter("fork.requests")
    c.inc(3)
    assert c.snapshot() == {"kind": "counter", "value": 3}


def test_gauge_tracks_level_and_high_water():
    g = Gauge("doorway.occupancy")
    g.inc()
    g.inc()
    g.dec()
    assert g.get() == 1
    assert g.high_water == 2
    g.set(5)
    g.set(3)
    assert g.get() == 3
    assert g.high_water == 5


def test_gauge_keyed_levels_are_independent():
    g = Gauge("doorway.occupancy")
    g.inc(key="ADr")
    g.inc(key="ADr")
    g.inc(key="SDf")
    g.dec(key="ADr")
    assert g.get("ADr") == 1
    assert g.get("SDf") == 1
    assert g.get() == 0  # the unkeyed level is separate
    snap = g.snapshot()
    assert snap["by_key"] == {"ADr": 1, "SDf": 1}
    assert snap["high_water_by_key"] == {"ADr": 2, "SDf": 1}


def test_histogram_streaming_summary():
    h = Histogram("fork.grant_latency")
    for value in (2.0, 4.0, 6.0):
        h.observe(value)
    assert h.count == 3
    assert h.total == 12.0
    assert h.mean() == 4.0
    snap = h.snapshot()
    assert snap["min"] == 2.0 and snap["max"] == 6.0 and snap["mean"] == 4.0


def test_histogram_keyed_cells():
    h = Histogram("doorway.time_behind")
    h.observe(1.0, key="ADr")
    h.observe(3.0, key="ADr")
    h.observe(10.0, key="SDr")
    assert h.mean("ADr") == 2.0
    assert h.mean("SDr") == 10.0
    assert h.mean("missing") is None
    assert h.mean() == pytest.approx(14.0 / 3)
    snap = h.snapshot()
    assert snap["by_key"]["ADr"]["count"] == 2


def test_empty_histogram_mean_is_none():
    h = Histogram("x")
    assert h.mean() is None
    assert h.snapshot()["min"] is None


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


def test_registry_get_or_create_returns_same_instrument():
    r = MetricRegistry()
    a = r.counter("hits")
    b = r.counter("hits")
    assert a is b
    a.inc()
    assert r.counter("hits").get() == 1


def test_registry_rejects_kind_mismatch():
    r = MetricRegistry()
    r.counter("x")
    with pytest.raises(ConfigurationError):
        r.gauge("x")
    with pytest.raises(ConfigurationError):
        r.histogram("x")


def test_registry_snapshot_is_sorted_and_json_ready():
    import json

    r = MetricRegistry()
    r.counter("b.second").inc()
    r.gauge("a.first").set(2)
    r.histogram("c.third").observe(1.5)
    snap = r.snapshot()
    assert list(snap) == ["a.first", "b.second", "c.third"]
    json.dumps(snap)  # must serialize without custom encoders
    assert r.names() == ["a.first", "b.second", "c.third"]
    assert r.get("a.first") is not None
    assert r.get("missing") is None


# ----------------------------------------------------------------------
# The None-when-off idiom
# ----------------------------------------------------------------------


def test_live_registry_normalizes_handles():
    real = MetricRegistry()
    assert live_registry(real) is real
    assert live_registry(None) is None
    assert live_registry(NULL_REGISTRY) is None


def test_null_registry_still_hands_out_instruments():
    # Code that wants an always-valid registry can use NULL_REGISTRY;
    # it records (harmlessly) but live_registry screens it off hot paths.
    c = NULL_REGISTRY.counter("anything")
    c.inc()
    assert not NULL_REGISTRY.enabled


# ----------------------------------------------------------------------
# Buckets and snapshot merging
# ----------------------------------------------------------------------


def test_histogram_buckets_are_cumulative():
    h = Histogram("rt", buckets=(1.0, 5.0, 10.0))
    for value in (0.5, 0.7, 3.0, 7.0, 100.0):
        h.observe(value)
    snap = h.snapshot()
    assert snap["buckets"] == {"1": 2, "5": 3, "10": 4, "+Inf": 5}


def test_histogram_boundary_lands_in_its_bucket():
    # le is inclusive: an observation exactly on a bound counts there.
    h = Histogram("rt", buckets=(1.0, 5.0))
    h.observe(1.0)
    h.observe(5.0)
    assert h.snapshot()["buckets"] == {"1": 1, "5": 2, "+Inf": 2}


def test_histogram_default_buckets_cover_decades():
    h = Histogram("rt")
    h.observe(0.002)
    h.observe(900.0)
    buckets = h.snapshot()["buckets"]
    assert buckets["0.0025"] == 1
    assert buckets["1000"] == 2
    assert buckets["+Inf"] == 2


def test_empty_histogram_snapshot_has_no_buckets():
    # Bucket-less empty snapshots keep pre-1.3 report layouts stable
    # for never-observed instruments.
    assert "buckets" not in Histogram("rt").snapshot()


def test_histogram_rejects_bad_buckets():
    with pytest.raises(ConfigurationError):
        Histogram("rt", buckets=(5.0, 1.0))
    with pytest.raises(ConfigurationError):
        Histogram("rt", buckets=(1.0, 1.0))
    with pytest.raises(ConfigurationError):
        Histogram("rt", buckets=())


def test_registry_histogram_accepts_buckets_once():
    r = MetricRegistry()
    h = r.histogram("rt", "resp", buckets=(1.0, 2.0))
    assert r.histogram("rt") is h
    assert h.bounds == (1.0, 2.0)
    with pytest.raises(ConfigurationError):
        r.counter("rt")


def _loaded(scale=1.0):
    r = MetricRegistry()
    c = r.counter("msgs", "Messages")
    c.inc(3)
    c.inc(2, key="req")
    g = r.gauge("depth", "Depth")
    g.set(4 * scale)
    g.set(1 * scale)
    h = r.histogram("rt", "Response", buckets=(1.0, 10.0))
    h.observe(0.5 * scale)
    h.observe(5.0 * scale)
    return r.snapshot()


def test_merge_snapshots_sums_counters_and_buckets():
    merged = merge_snapshots([_loaded(), _loaded()])
    assert merged["msgs"]["value"] == 10
    assert merged["msgs"]["by_key"]["req"] == 4
    assert merged["rt"]["count"] == 4
    assert merged["rt"]["total"] == pytest.approx(11.0)
    assert merged["rt"]["mean"] == pytest.approx(2.75)
    assert merged["rt"]["buckets"] == {"1": 2, "10": 4, "+Inf": 4}


def test_merge_snapshots_keeps_extrema_honest():
    # min of mins and max of maxes — NOT sums, which a naive numeric
    # merge would produce.
    merged = merge_snapshots([_loaded(scale=1.0), _loaded(scale=10.0)])
    assert merged["rt"]["min"] == 0.5
    assert merged["rt"]["max"] == 50.0
    assert merged["depth"]["high_water"] == 44.0  # gauge peaks do sum


def test_merge_snapshots_disjoint_instruments_union():
    a = MetricRegistry()
    a.counter("only.a").inc()
    b = MetricRegistry()
    b.counter("only.b").inc(5)
    merged = merge_snapshots([a.snapshot(), b.snapshot()])
    assert merged["only.a"]["value"] == 1
    assert merged["only.b"]["value"] == 5


def test_merge_snapshots_rejects_kind_conflicts():
    a = MetricRegistry()
    a.counter("x").inc()
    b = MetricRegistry()
    b.gauge("x").set(1)
    with pytest.raises(ConfigurationError):
        merge_snapshots([a.snapshot(), b.snapshot()])


def test_merge_snapshots_identity_cases():
    assert merge_snapshots([]) == {}
    single = _loaded()
    merged = merge_snapshots([single])
    assert merged == single
    assert merged is not single  # deep copy: caller mutation is safe
    merged["msgs"]["value"] = 999
    assert single["msgs"]["value"] == 5
