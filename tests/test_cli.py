"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main, parse_crash, parse_range, parse_topology
from repro.errors import ConfigurationError


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_parse_topology_variants():
    line, span = parse_topology("line:5")
    assert len(line) == 5 and span == 5.0
    grid, _ = parse_topology("grid:9")
    assert len(grid) == 9
    ring, _ = parse_topology("ring:6")
    assert len(ring) == 6
    rand, span = parse_topology("random:7:4x3")
    assert len(rand) == 7 and span == 4.0
    for p in rand:
        assert 0 <= p.x <= 4 and 0 <= p.y <= 3


def test_parse_topology_rejects_garbage():
    with pytest.raises(ConfigurationError):
        parse_topology("blob:5")
    with pytest.raises(ConfigurationError):
        parse_topology("line:x")
    with pytest.raises(ConfigurationError):
        parse_topology("random:5")


def test_parse_range_and_crash():
    assert parse_range("1.5:3") == (1.5, 3.0)
    assert parse_range("2") == (2.0, 2.0)
    assert parse_crash("10:3") == (10.0, 3)
    with pytest.raises(ConfigurationError):
        parse_range("a:b")
    with pytest.raises(ConfigurationError):
        parse_crash("10")


def test_algorithms_lists_registry():
    code, output = run_cli("algorithms")
    assert code == 0
    for name in ("alg2", "alg1-greedy", "alg1-linial", "chandy-misra",
                 "oracle", "alg2-nonotify"):
        assert name in output


def test_run_produces_summary():
    code, output = run_cli(
        "run", "--topology", "line:4", "--until", "50",
        "--algorithm", "alg2",
    )
    assert code == 0
    assert "cs entries" in output
    assert "starved" in output


def test_run_with_crash():
    code, output = run_cli(
        "run", "--topology", "line:5", "--until", "60",
        "--algorithm", "alg2", "--crash", "10:2",
    )
    assert code == 0
    assert "cs entries" in output


def test_compare_table():
    code, output = run_cli(
        "compare", "--topology", "line:4", "--until", "40",
        "--algorithms", "alg2", "oracle",
    )
    assert code == 0
    assert "alg2" in output and "oracle" in output


def test_locality_strip():
    code, output = run_cli(
        "locality", "--nodes", "7", "--until", "150",
        "--algorithms", "alg2",
    )
    assert code == 0
    assert "[" in output and "X" in output


def test_unknown_algorithm_is_a_clean_error():
    code, output = run_cli(
        "compare", "--topology", "line:4", "--until", "10",
        "--algorithms", "nope",
    )
    assert code == 2
    assert "error:" in output


# ----------------------------------------------------------------------
# Run reports
# ----------------------------------------------------------------------


def test_run_report_round_trips(tmp_path):
    from repro.obs.report import RunReport

    path = tmp_path / "run.json"
    code, output = run_cli(
        "run", "--topology", "line:4", "--until", "50",
        "--algorithm", "alg2", "--report", str(path),
    )
    assert code == 0
    assert str(path) in output
    report = RunReport.load(path)
    assert report.config["algorithm"] == "alg2"
    assert report.probes, "telemetry is implied by --report"
    assert RunReport.from_json(report.to_json()).to_dict() == report.to_dict()


def test_run_watchdog_prints_warnings(tmp_path):
    code, output = run_cli(
        "run", "--topology", "line:8", "--until", "300", "--seed", "0",
        "--algorithm", "alg2", "--crash", "30:4", "--watchdog", "25",
        "--report", str(tmp_path / "r.json"),
    )
    assert code == 0
    assert "warning: node" in output


def test_report_subcommand_summarizes_one_file(tmp_path):
    path = tmp_path / "run.json"
    run_cli("run", "--topology", "line:4", "--until", "40",
            "--algorithm", "alg2", "--report", str(path))
    code, output = run_cli("report", str(path))
    assert code == 0
    assert "schema v" in output
    assert "cs entries" in output


def test_report_subcommand_diffs_two_files(tmp_path):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    run_cli("run", "--topology", "line:4", "--until", "40", "--seed", "1",
            "--algorithm", "alg2", "--report", str(a))
    run_cli("run", "--topology", "line:4", "--until", "40", "--seed", "2",
            "--algorithm", "alg2", "--report", str(b))

    code, output = run_cli("report", str(a), str(a))
    assert code == 0 and "identical" in output

    code, output = run_cli("report", str(a), str(b))
    assert code == 1
    assert "leaves differ" in output
    assert "config.seed" in output


def test_report_subcommand_rejects_three_files(tmp_path):
    code, output = run_cli("report", "x.json", "y.json", "z.json")
    assert code == 2 and "error:" in output


def test_report_subcommand_missing_file_is_clean_error(tmp_path):
    code, output = run_cli("report", str(tmp_path / "nope.json"))
    assert code == 2 and "error:" in output


def test_compare_report_keyed_by_algorithm(tmp_path):
    import json as json_mod

    path = tmp_path / "cmp.json"
    code, output = run_cli(
        "compare", "--topology", "line:4", "--until", "40",
        "--algorithms", "alg2", "oracle", "--report", str(path),
    )
    assert code == 0
    data = json_mod.loads(path.read_text())
    assert set(data) == {"alg2", "oracle"}
    for payload in data.values():
        assert payload["schema_version"] >= 1


# ----------------------------------------------------------------------
# metrics export / serve
# ----------------------------------------------------------------------


def test_run_metrics_writes_openmetrics(tmp_path):
    from helpers import parse_openmetrics

    path = tmp_path / "run.prom"
    code, output = run_cli(
        "run", "--topology", "line:4", "--until", "50",
        "--algorithm", "alg2", "--metrics", str(path),
    )
    assert code == 0
    assert str(path) in output
    families = parse_openmetrics(path.read_text())
    assert any(name.startswith("repro_alg2_") for name in families), (
        "telemetry is implied by --metrics"
    )


def test_metrics_export_renders_saved_report(tmp_path):
    from helpers import parse_openmetrics

    report = tmp_path / "run.json"
    run_cli("run", "--topology", "line:4", "--until", "50",
            "--report", str(report))
    code, output = run_cli("metrics", "export", str(report))
    assert code == 0
    parse_openmetrics(output)
    prom = tmp_path / "run.prom"
    code, output = run_cli(
        "metrics", "export", str(report), "--out", str(prom)
    )
    assert code == 0
    parse_openmetrics(prom.read_text())


def test_metrics_export_missing_file_is_clean_error(tmp_path):
    code, output = run_cli("metrics", "export", str(tmp_path / "absent.json"))
    assert code == 2
    assert "error" in output


def test_metrics_serve_once_answers_a_scrape(tmp_path):
    import threading
    import urllib.request

    from helpers import parse_openmetrics

    report = tmp_path / "run.json"
    run_cli("run", "--topology", "line:4", "--until", "50",
            "--report", str(report))
    # Port 0 never collides; the announced URL carries the real port.
    out = io.StringIO()
    codes = []
    thread = threading.Thread(
        target=lambda: codes.append(main(
            ["metrics", "serve", str(report), "--port", "0", "--once"], out,
        ))
    )
    thread.start()
    for _ in range(200):
        if out.getvalue():
            break
        thread.join(0.05)
    url = out.getvalue().split()[-1].removesuffix("/metrics")
    body = urllib.request.urlopen(url + "/metrics").read().decode()
    thread.join()
    assert codes == [0]
    parse_openmetrics(body)
