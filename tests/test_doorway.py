"""Unit tests for DoorwaySet semantics (Chapter 4, Figure 2)."""

import pytest

from repro.core.doorway import (
    ALL_DOORWAYS,
    FORK_ASYNC,
    FORK_SYNC,
    DoorwaySet,
)
from repro.core.messages import DoorwayCross, DoorwayExit
from repro.errors import ProtocolError

from helpers import FakeNode


def build(neighbors=(1, 2), doorways=ALL_DOORWAYS, sync=None):
    node = FakeNode(0, neighbors)
    crossed = []
    kwargs = {}
    if sync is not None:
        kwargs["sync_doorways"] = frozenset(sync)
    doorway_set = DoorwaySet(node, crossed.append, doorways=doorways, **kwargs)
    return node, doorway_set, crossed


def test_entry_with_all_neighbors_outside_crosses_immediately():
    node, ds, crossed = build()
    ds.start_entry(FORK_SYNC)
    assert crossed == [FORK_SYNC]
    assert ds.is_behind(FORK_SYNC)
    # Crossing broadcast the position.
    assert any(isinstance(m, DoorwayCross) for m in node.broadcasts)


def test_sync_entry_blocks_until_all_outside_simultaneously():
    node, ds, crossed = build()
    ds.on_message(1, DoorwayCross(FORK_SYNC))
    ds.on_message(2, DoorwayCross(FORK_SYNC))
    ds.start_entry(FORK_SYNC)
    assert crossed == []
    ds.on_message(1, DoorwayExit(FORK_SYNC))
    assert crossed == []  # 2 still behind
    ds.on_message(2, DoorwayExit(FORK_SYNC))
    assert crossed == [FORK_SYNC]


def test_sync_entry_not_sticky():
    # Synchronous semantics: neighbors must be outside *simultaneously*.
    node, ds, crossed = build()
    ds.on_message(1, DoorwayCross(FORK_SYNC))
    ds.start_entry(FORK_SYNC)
    ds.on_message(1, DoorwayExit(FORK_SYNC))
    # 1 exits but immediately re-crosses before our check window closes:
    # our implementation re-evaluates on each update, so the exit above
    # already let us cross.  Build the stricter scenario: 2 behind too.
    assert crossed == [FORK_SYNC]


def test_sync_reentry_waits_for_other_crosser():
    node, ds, crossed = build(neighbors=(1,))
    ds.on_message(1, DoorwayCross(FORK_SYNC))
    ds.start_entry(FORK_SYNC)
    assert crossed == []
    # 1 exits then re-crosses: the pending entry fires on the exit.
    ds.on_message(1, DoorwayExit(FORK_SYNC))
    assert crossed == [FORK_SYNC]


def test_async_entry_is_sticky_per_neighbor():
    node, ds, crossed = build()
    ds.on_message(1, DoorwayCross(FORK_ASYNC))
    ds.on_message(2, DoorwayCross(FORK_ASYNC))
    ds.start_entry(FORK_ASYNC)
    assert crossed == []
    # Neighbor 1 exits (seen once) and re-crosses: stays satisfied.
    ds.on_message(1, DoorwayExit(FORK_ASYNC))
    ds.on_message(1, DoorwayCross(FORK_ASYNC))
    assert crossed == []
    ds.on_message(2, DoorwayExit(FORK_ASYNC))
    assert crossed == [FORK_ASYNC]  # both seen outside at least once


def test_double_entry_while_behind_raises():
    node, ds, crossed = build()
    ds.start_entry(FORK_SYNC)
    with pytest.raises(ProtocolError):
        ds.start_entry(FORK_SYNC)


def test_exit_broadcasts_and_clears():
    node, ds, crossed = build()
    ds.start_entry(FORK_SYNC)
    node.clear()
    ds.exit(FORK_SYNC)
    assert not ds.is_behind(FORK_SYNC)
    assert any(isinstance(m, DoorwayExit) for m in node.broadcasts)
    # Exiting while outside is a no-op.
    node.clear()
    ds.exit(FORK_SYNC)
    assert node.broadcasts == []


def test_exit_all_covers_pending_and_behind():
    node, ds, crossed = build()
    ds.on_message(1, DoorwayCross(FORK_SYNC))
    ds.start_entry(FORK_ASYNC)  # crosses immediately
    ds.start_entry(FORK_SYNC)  # blocked by 1
    assert ds.is_waiting(FORK_SYNC)
    ds.exit_all()
    assert not ds.is_waiting(FORK_SYNC)
    assert not ds.is_behind(FORK_ASYNC)


def test_link_down_unblocks_entry():
    node, ds, crossed = build(neighbors=(1,))
    ds.on_message(1, DoorwayCross(FORK_SYNC))
    ds.start_entry(FORK_SYNC)
    assert crossed == []
    node.set_neighbors(())
    ds.on_link_down(1)
    assert crossed == [FORK_SYNC]


def test_new_static_neighbor_counts_as_outside():
    node, ds, crossed = build(neighbors=(1,))
    ds.on_message(1, DoorwayCross(FORK_ASYNC))
    ds.start_entry(FORK_ASYNC)
    assert crossed == []
    # A new neighbor 5 arrives while we are static: it is outside and
    # must not block the pending async entry.
    node.set_neighbors((1, 5))
    ds.on_new_neighbor_while_static(5)
    ds.on_message(1, DoorwayExit(FORK_ASYNC))
    assert crossed == [FORK_ASYNC]


def test_hello_initializes_peer_view():
    node, ds, crossed = build(neighbors=(3,))
    ds.on_hello(3, frozenset({FORK_SYNC}))
    assert ds.peer_behind(FORK_SYNC, 3)
    assert not ds.peer_behind(FORK_ASYNC, 3)
    ds.start_entry(FORK_SYNC)
    assert crossed == []  # blocked by the hello-reported position


def test_behind_set_reflects_positions():
    node, ds, crossed = build()
    assert ds.behind_set() == frozenset()
    ds.start_entry(FORK_ASYNC)
    assert ds.behind_set() == frozenset({FORK_ASYNC})


def test_doorway_guarantee_no_overtake():
    """Figure 1: i crossed before j started entering -> j waits for exit."""
    node_j, ds_j, crossed_j = build(neighbors=(9,))
    # j learns i (=9) crossed before j begins its entry.
    ds_j.on_message(9, DoorwayCross(FORK_ASYNC))
    ds_j.start_entry(FORK_ASYNC)
    assert crossed_j == []
    ds_j.on_message(9, DoorwayExit(FORK_ASYNC))
    assert crossed_j == [FORK_ASYNC]


def test_abort_entry_cancels_wait():
    node, ds, crossed = build(neighbors=(1,))
    ds.on_message(1, DoorwayCross(FORK_SYNC))
    ds.start_entry(FORK_SYNC)
    ds.abort_entry(FORK_SYNC)
    ds.on_message(1, DoorwayExit(FORK_SYNC))
    assert crossed == []


def test_peers_behind_lists_current_neighbors_only():
    node, ds, crossed = build(neighbors=(1, 2))
    ds.on_message(1, DoorwayCross(FORK_SYNC))
    ds.on_message(2, DoorwayCross(FORK_SYNC))
    node.set_neighbors((1,))
    assert ds.peers_behind(FORK_SYNC) == {1}
