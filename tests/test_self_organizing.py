"""Tests for the self-organizing Algorithm 1 variant (Chapter 7)."""

import pytest

from repro.core.ablations import Algorithm1SelfOrganizing
from repro.core.coloring.greedy import GreedyColoring
from repro.core.states import NodeState
from repro.mobility import ScriptedMobility, ScriptedMove
from repro.net.geometry import Point, line_positions
from repro.runtime.simulation import ScenarioConfig, Simulation

from helpers import FakeNode


def test_static_endpoint_also_schedules_recoloring():
    node = FakeNode(1, (0,))
    alg = Algorithm1SelfOrganizing(
        node, GreedyColoring(), initial_colors={0: 0, 1: 1, 9: 2}
    )
    alg.bootstrap_peer(0)
    assert not alg.needs_recolor
    node.set_neighbors((0, 9))
    alg.on_link_up(9, moving=False)  # we are the static endpoint
    assert alg.needs_recolor


def test_static_endpoint_mid_pipeline_is_not_interrupted():
    node = FakeNode(1, (0,))
    alg = Algorithm1SelfOrganizing(
        node, GreedyColoring(), initial_colors={0: 0, 1: 1}
    )
    alg.bootstrap_peer(0)
    node.set_state(NodeState.HUNGRY)
    alg.on_hungry()  # precolored: goes straight to the fork doorways
    node.set_neighbors((0, 9))
    alg.on_link_up(9, moving=False)
    # In-flight attempt keeps its standing; the flag is not set now.
    assert not alg.needs_recolor


def test_selforg_recolors_more_than_baseline_under_churn():
    def run(algorithm):
        config = ScenarioConfig(
            positions=line_positions(5, spacing=1.0) + [Point(10.0, 0.0)],
            algorithm=algorithm,
            seed=3,
            think_range=(0.5, 2.0),
            mobility_factory=lambda i: (
                ScriptedMobility([
                    ScriptedMove(20.0, Point(2.0, 0.8)),
                    ScriptedMove(60.0, Point(10.0, 0.0)),
                    ScriptedMove(100.0, Point(1.0, 0.8)),
                ])
                if i == 5
                else None
            ),
        )
        sim = Simulation(config)
        result = sim.run(until=200.0)
        recolors = sum(
            sim.algorithm_of(i).recolor_runs for i in range(6)
        )
        return recolors, result

    base_recolors, base_result = run("alg1-greedy")
    org_recolors, org_result = run("alg1-selforg")
    # The self-organizing variant refreshes the static endpoints too.
    assert org_recolors > base_recolors
    # And it remains safe and live.
    assert org_result.starved == []
    assert base_result.starved == []
