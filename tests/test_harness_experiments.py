"""Reduced-scale runs of the canonical experiments: shapes must hold."""

import pytest

from repro.harness.experiments import (
    compare_algorithms,
    crash_probe,
    doorway_latency,
    fig6_crash_scenario,
    pipeline_breakdown,
    response_vs_n,
    star_positions,
)


def test_star_positions_layout():
    pts = star_positions(5)
    assert len(pts) == 6
    hub = pts[0]
    for leaf in pts[1:]:
        assert hub.distance_to(leaf) == pytest.approx(0.9)


def test_compare_algorithms_small():
    rows = compare_algorithms(
        n=7, until=150.0, algorithms=("oracle", "alg2", "chandy-misra")
    )
    by_name = {r.algorithm: r for r in rows}
    assert set(by_name) == {"oracle", "alg2", "chandy-misra"}
    # Everyone made progress; the oracle is fastest on average.
    for row in rows:
        assert row.cs_entries > 0 and row.response is not None
    assert by_name["oracle"].response.mean < by_name["alg2"].response.mean
    # The oracle sends no messages.
    assert by_name["oracle"].messages_per_cs == 0.0
    assert by_name["alg2"].messages_per_cs > 0


def test_crash_probe_alg2_radius_bounded():
    report = crash_probe("alg2", n=9, until=400.0)
    assert report.starvation_radius is None or report.starvation_radius <= 2


def test_crash_probe_chandy_misra_radius_large():
    report = crash_probe("chandy-misra", n=9, until=400.0)
    assert report.starvation_radius is not None
    assert report.starvation_radius >= 3


def test_doorway_latency_return_path_scales_with_R():
    base = doorway_latency("double-return", delta=4, returns=1, until=150.0)
    triple = doorway_latency("double-return", delta=4, returns=3, until=150.0)
    assert triple.mean > 2.0 * base.mean


def test_doorway_latency_async_beats_sync_tail():
    sync = doorway_latency("sync", delta=6, until=150.0)
    asyn = doorway_latency("async", delta=6, until=150.0)
    assert asyn is not None  # async never starves the hub
    sync_max = float("inf") if sync is None else sync.maximum
    assert asyn.maximum <= sync_max + 1e-9


def test_fig6_scenario_shape():
    out = fig6_crash_scenario(move_time=150.0, until=300.0)
    # p1 (distance 3 from the crash) always progresses.
    assert out.p1_entries > 10
    # p2 is blocked while p3 is present, recovers via the return path.
    assert out.p2_entries_before_move == 0
    assert out.p2_entries_after_move > 0
    assert out.p2_return_paths >= 1
    # p3 starves while adjacent to the crashed p4.
    assert out.p3_entries_before_move == 0


def test_pipeline_breakdown_covers_stages():
    stages = pipeline_breakdown(n=9, until=200.0)
    assert set(stages) == {
        "cross_ADr", "cross_SDr", "recolor", "cross_ADf", "cross_SDf", "eat",
    }
    # The fork-collection stages always have samples.
    assert stages["eat"] > 0
    assert stages["cross_ADf"] >= 0


def test_response_vs_n_alg2_static_subquadratic():
    """Theorem 26: static response grows ~linearly, not quadratically."""
    data = response_vs_n("alg2", ns=(6, 12, 24), until=200.0)
    ns = [n for n, _ in data]
    maxima = [s.maximum for _, s in data]
    assert ns == [6, 12, 24]
    # Growing n by 4x must grow the max response by far less than 16x.
    assert maxima[2] <= maxima[0] * 8
