"""Fast-path / legacy-path equivalence for the message plane.

The per-link delivery-queue fast path (the default) must be *bit
identical* to the legacy one-event-per-message scheduling: same
deliveries, in the same order, at the same timestamps, with the same
drop accounting — including under link churn and crashes.  These tests
drive both paths through identical fixed-seed scenarios and compare
everything observable.

Also here: the randomized churn property test — random link up/down
cycles with traffic in flight never deliver a stale-incarnation
message, and per-directed-link arrivals are strictly increasing, on
both paths.
"""

import random
from dataclasses import dataclass

import pytest

from repro.mobility import RandomWaypoint
from repro.net.channel import ChannelLayer
from repro.net.geometry import Point, grid_positions, line_positions
from repro.net.messages import Message
from repro.net.topology import DynamicTopology
from repro.runtime.simulation import ScenarioConfig, Simulation
from repro.sim.clock import TimeBounds
from repro.sim.engine import Simulator
from repro.sim.rng import RandomSource


@dataclass(frozen=True)
class Tagged(Message):
    """Test message carrying the link epoch it was sent in."""

    payload: int = 0
    epoch: int = 0


def _record_deliveries(simulation: Simulation):
    """Interpose on the channel's deliver callback, logging (t, src, dst, kind)."""
    log = []
    original = simulation.channel._deliver

    def recorder(src, dst, message):
        log.append((simulation.sim.now, src, dst, message.kind))
        original(src, dst, message)

    simulation.channel._deliver = recorder
    return log


def _run_scenario(per_message: bool, **overrides):
    until = overrides.pop("_until", 60.0)
    config = ScenarioConfig(channel_per_message=per_message, **overrides)
    simulation = Simulation(config)
    log = _record_deliveries(simulation)
    result = simulation.run(until=until)
    return simulation, result, log


def _compare_paths(**overrides):
    until = overrides.pop("until", 60.0)
    overrides["_until"] = until
    fast_sim, fast_result, fast_log = _run_scenario(False, **dict(overrides))
    slow_sim, slow_result, slow_log = _run_scenario(True, **dict(overrides))
    # Delivery sequences: same messages, same order, same timestamps.
    assert fast_log == slow_log
    # Drop/delivery accounting, per kind.
    assert fast_sim.channel.stats.snapshot() == slow_sim.channel.stats.snapshot()
    # End-to-end run metrics.
    assert fast_result.duration == slow_result.duration
    assert fast_result.messages_sent == slow_result.messages_sent
    assert fast_result.messages_by_kind == slow_result.messages_by_kind
    assert fast_result.cs_entries == slow_result.cs_entries
    assert fast_result.response_times == slow_result.response_times
    assert fast_result.starved == slow_result.starved
    # Anything still queued on the fast path is exactly what the legacy
    # path also left undelivered at the deadline.
    legacy_undelivered = (
        slow_sim.channel.stats.sent
        - slow_sim.channel.stats.delivered
        - slow_sim.channel.stats.dropped_link_down
    )
    assert fast_sim.channel.pending_messages() == legacy_undelivered
    return fast_sim, slow_sim


def test_equivalence_static_contention():
    """Static line, alg2: pure protocol traffic, no churn."""
    _compare_paths(
        positions=line_positions(8, spacing=1.0),
        algorithm="alg2",
        seed=101,
        think_range=(0.2, 1.0),
        until=80.0,
    )


def test_equivalence_deterministic_delays():
    """With jitter off, timestamp ties across links are common — the
    regime where per-send seq tickets are what keeps order identical."""
    _compare_paths(
        positions=line_positions(6, spacing=1.0),
        algorithm="alg2",
        seed=7,
        bounds=TimeBounds(min_delay_fraction=1.0),
        think_range=(0.1, 0.5),
        until=40.0,
    )


@pytest.mark.parametrize("algorithm", ["alg2", "alg1-greedy"])
def test_equivalence_under_mobility_and_crashes(algorithm):
    """Churn regime: moving node breaking/forming links plus a crash."""
    _compare_paths(
        positions=grid_positions(9, 1.0),
        radio_range=1.4,
        algorithm=algorithm,
        seed=23,
        think_range=(0.3, 1.5),
        crashes=[(20.0, 4)],
        delta_override=8,
        mobility_factory=lambda i: (
            RandomWaypoint(3.0, 3.0, speed_range=(0.4, 1.0),
                           pause_range=(3.0, 8.0))
            if i in (2, 7)
            else None
        ),
        until=90.0,
    )


def test_equivalence_across_multiple_seeds():
    for seed in (1, 2, 3, 4, 5):
        _compare_paths(
            positions=line_positions(5, spacing=1.0),
            algorithm="alg2",
            seed=seed,
            think_range=(0.2, 1.0),
            until=30.0,
        )


# ----------------------------------------------------------------------
# Randomized churn property test
# ----------------------------------------------------------------------


def _run_churn(per_message: bool, seed: int):
    """Random sends and link up/down cycles against a 3-node line.

    Returns the delivery log; asserts inside the recorder that no
    delivered message is from a dead link incarnation and that each
    directed link's delivery times strictly increase.
    """
    plan_rng = random.Random(seed)
    sim = Simulator()
    topo = DynamicTopology(radio_range=1.5)
    home = [Point(0.0, 0.0), Point(1.0, 0.0), Point(2.0, 0.0)]
    for i, p in enumerate(home):
        topo.add_node(i, p)
    bounds = TimeBounds(nu=1.0, min_delay_fraction=0.25)

    epoch = {}  # undirected link -> generation counter
    log = []
    last_seen = {}  # directed link -> last delivery time

    def link_id(a, b):
        return (a, b) if a < b else (b, a)

    def on_deliver(src, dst, message):
        now = sim.now
        assert message.epoch == epoch.get(link_id(src, dst), 0), (
            f"stale-incarnation delivery {src}->{dst} at t={now}"
        )
        prev = last_seen.get((src, dst))
        assert prev is None or now > prev, (
            f"non-increasing arrival on {src}->{dst}: {prev} -> {now}"
        )
        last_seen[(src, dst)] = now
        log.append((now, src, dst, message.payload))

    channel = ChannelLayer(
        sim, topo, bounds, RandomSource(seed).stream("c"),
        deliver=on_deliver, per_message=per_message,
    )

    away = Point(50.0, 50.0)
    out = {1: False}  # is node 1 currently moved away?

    def toggle():
        node = 1
        target = home[node] if out[node] else away
        diff = topo.set_position(node, target)
        out[node] = not out[node]
        for a, b in diff.removed:
            channel.link_down(a, b)
            epoch[link_id(a, b)] = epoch.get(link_id(a, b), 0) + 1

    payload = 0

    def send(src, dst):
        nonlocal payload
        if not topo.has_link(src, dst):
            return
        payload += 1
        channel.send(
            src, dst, Tagged(payload, epoch.get(link_id(src, dst), 0))
        )

    # Deterministic action plan, identical for both paths.
    t = 0.0
    plan_out = False
    for _ in range(300):
        t += plan_rng.uniform(0.05, 0.6)
        if plan_rng.random() < 0.15:
            sim.schedule_at(t, toggle)
            plan_out = not plan_out
        else:
            pair = plan_rng.choice([(0, 1), (1, 0), (1, 2), (2, 1)])
            sim.schedule_at(t, send, *pair)
    sim.run()
    assert channel.pending_messages() == 0
    assert channel.stats.sent == (
        channel.stats.delivered + channel.stats.dropped_link_down
    )
    return log, channel.stats.snapshot()


@pytest.mark.parametrize("seed", [11, 42, 99, 1234])
def test_churn_property_both_paths_identical(seed):
    fast_log, fast_stats = _run_churn(per_message=False, seed=seed)
    slow_log, slow_stats = _run_churn(per_message=True, seed=seed)
    assert fast_log == slow_log
    assert fast_stats == slow_stats
    assert fast_stats["delivered"] > 0
    # Churn actually happened: something was dropped in at least one run
    # of the seed set (checked loosely per seed to avoid flakiness, the
    # invariants above are the real assertions).
