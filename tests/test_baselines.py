"""Tests for the baseline protocols."""

import pytest

from repro.baselines.chandy_misra import ChandyMisra, CMFork, CMRequest
from repro.baselines.choy_singh import legal_coloring
from repro.baselines.ordered_ids import OIFork, OIRequest, OrderedIds
from repro.core.states import NodeState
from repro.net.geometry import Point, line_positions, ring_positions
from repro.net.topology import DynamicTopology
from repro.runtime.simulation import ScenarioConfig, Simulation

from helpers import FakeNode, assert_fork_uniqueness


# ----------------------------------------------------------------------
# Chandy-Misra units
# ----------------------------------------------------------------------


def build_cm(node_id=1, neighbors=(0, 2)):
    node = FakeNode(node_id, neighbors)
    alg = ChandyMisra(node)
    for peer in neighbors:
        alg.bootstrap_peer(peer)
    return node, alg


def test_cm_bootstrap_acyclic():
    node, alg = build_cm()
    # Smaller id holds the dirty fork.
    assert not alg.holds_fork[0] and alg.holds_fork[2]
    assert alg.holds_token[0] and not alg.holds_token[2]
    assert alg.dirty[0] and alg.dirty[2]


def test_cm_hungry_requests_missing_forks():
    node, alg = build_cm()
    node.set_state(NodeState.HUNGRY)
    alg.on_hungry()
    requests = [d for d, m in node.sent if isinstance(m, CMRequest)]
    assert requests == [0]
    assert not alg.holds_token[0]


def test_cm_dirty_fork_yielded_to_request():
    node, alg = build_cm()
    alg.on_message(2, CMRequest())
    forks = [d for d, m in node.sent if isinstance(m, CMFork)]
    assert forks == [2]
    assert not alg.holds_fork[2]
    assert alg.holds_token[2]


def test_cm_clean_fork_kept_while_hungry():
    node, alg = build_cm()
    node.set_state(NodeState.HUNGRY)
    alg.dirty[2] = False  # pretend we cleaned it by receiving it
    alg.on_message(2, CMRequest())
    assert alg.holds_fork[2]
    assert alg.deferred[2]


def test_cm_eating_defers_everything():
    node, alg = build_cm()
    node.set_state(NodeState.EATING)
    alg.on_message(2, CMRequest())
    assert alg.holds_fork[2] and alg.deferred[2]
    node.set_state(NodeState.EATING)
    node.clear()
    alg.on_exit_cs()
    forks = [d for d, m in node.sent if isinstance(m, CMFork)]
    assert forks == [2]


def test_cm_hungry_grantor_rerequests():
    node, alg = build_cm()
    node.set_state(NodeState.HUNGRY)
    alg.on_message(2, CMRequest())  # dirty fork -> grant + re-request
    kinds = [type(m).__name__ for d, m in node.sent if d == 2]
    assert kinds == ["CMFork", "CMRequest"]


def test_cm_fork_receipt_completes_eating():
    node, alg = build_cm()
    node.set_state(NodeState.HUNGRY)
    alg.on_message(0, CMFork())
    assert node.eat_calls == 1
    assert not alg.dirty[0]


# ----------------------------------------------------------------------
# OrderedIds units
# ----------------------------------------------------------------------


def build_oi(node_id=1, neighbors=(0, 2)):
    node = FakeNode(node_id, neighbors)
    alg = OrderedIds(node)
    for peer in neighbors:
        alg.bootstrap_peer(peer)
    return node, alg


def test_oi_requests_forks_in_ascending_link_order():
    node, alg = build_oi()
    node.set_state(NodeState.HUNGRY)
    alg.on_hungry()
    # Missing the (0,1) fork only (we hold (1,2)); requests 0 first.
    requests = [d for d, m in node.sent if isinstance(m, OIRequest)]
    assert requests == [0]
    node.clear()
    alg.on_message(0, OIFork())
    assert node.eat_calls == 1


def test_oi_grants_forks_above_current_target():
    node, alg = build_oi()
    node.set_state(NodeState.HUNGRY)
    alg.on_hungry()  # target is link (0,1)
    alg.on_message(2, OIRequest())  # link (1,2) is above the target
    grants = [d for d, m in node.sent if isinstance(m, OIFork)]
    assert grants == [2]


def test_oi_defers_forks_at_or_below_target():
    node, alg = build_oi(node_id=1, neighbors=(0, 2))
    node.set_state(NodeState.HUNGRY)
    alg.holds_fork[0] = True  # now waiting for the higher link (1,2)
    alg.on_hungry()
    node.clear()
    alg.on_message(0, OIRequest())  # link (0,1) <= target (1,2): defer
    assert 0 in alg.deferred
    assert node.sent == []


def test_oi_exit_grants_deferred():
    node, alg = build_oi()
    alg.deferred.add(2)
    node.set_state(NodeState.EATING)
    alg.on_exit_cs()
    grants = [d for d, m in node.sent if isinstance(m, OIFork)]
    assert grants == [2]


# ----------------------------------------------------------------------
# legal_coloring helper
# ----------------------------------------------------------------------


def test_legal_coloring_is_legal_and_compact():
    topo = DynamicTopology(radio_range=1.1)
    for i, p in enumerate(ring_positions(6, radius=1.05)):
        topo.add_node(i, p)
    colors = legal_coloring(topo)
    for a, b in topo.links():
        assert colors[a] != colors[b]
    assert max(colors.values()) <= topo.max_degree()


# ----------------------------------------------------------------------
# Integration: all baselines make progress and keep safety
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "algorithm", ["chandy-misra", "ordered-ids", "choy-singh", "oracle"]
)
def test_baseline_static_progress(algorithm):
    config = ScenarioConfig(
        positions=line_positions(7, spacing=1.0),
        algorithm=algorithm,
        seed=9,
        think_range=(0.5, 2.0),
    )
    sim = Simulation(config)
    result = sim.run(until=250.0)
    assert result.starved == []
    for node in range(7):
        assert result.metrics.counters[node].cs_entries >= 3


@pytest.mark.parametrize("algorithm", ["chandy-misra", "ordered-ids"])
def test_baseline_fork_uniqueness(algorithm):
    config = ScenarioConfig(
        positions=line_positions(5, spacing=1.0),
        algorithm=algorithm,
        seed=9,
        think_range=(0.5, 2.0),
    )
    sim = Simulation(config)
    sim.run(until=100.0)
    assert_fork_uniqueness(sim)


def test_oracle_is_fastest():
    def mean_rt(algorithm):
        config = ScenarioConfig(
            positions=line_positions(7, spacing=1.0),
            algorithm=algorithm,
            seed=9,
            think_range=(0.5, 2.0),
        )
        result = Simulation(config).run(until=200.0)
        times = result.response_times
        return sum(times) / len(times)

    assert mean_rt("oracle") < mean_rt("alg2")
    assert mean_rt("oracle") < mean_rt("chandy-misra")
