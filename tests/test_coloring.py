"""Tests for the coloring procedures (Algorithms 4 and 5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coloring.greedy import GreedyColoring, greedy_color_graph
from repro.core.coloring.linial import LinialColoring
from repro.core.messages import GraphExchange, RecolorNack, TempColor
from repro.errors import ConfigurationError
from repro.net.topology import link_key


# ----------------------------------------------------------------------
# greedy_color_graph (the local deterministic coloring of Line 72)
# ----------------------------------------------------------------------


def colors_of(edges, nodes):
    return {n: greedy_color_graph(frozenset(edges), n) for n in nodes}


def test_greedy_color_isolated_node():
    assert greedy_color_graph(frozenset(), 5) == 0


def test_greedy_color_legal_on_path():
    edges = {(0, 1), (1, 2), (2, 3)}
    colors = colors_of(edges, [0, 1, 2, 3])
    for a, b in edges:
        assert colors[a] != colors[b]


def test_greedy_color_uses_few_colors_on_path():
    edges = {(i, i + 1) for i in range(10)}
    colors = colors_of(edges, range(11))
    assert max(colors.values()) <= 1  # a path is 2-colorable greedily


def test_greedy_color_deterministic_across_nodes():
    edges = frozenset({(0, 1), (1, 2), (0, 2), (2, 3)})
    # Every node computes the same global coloring.
    all_views = [
        {n: greedy_color_graph(edges, n) for n in range(4)}
        for _ in range(3)
    ]
    assert all_views[0] == all_views[1] == all_views[2]


@settings(max_examples=50, deadline=None)
@given(
    edge_list=st.lists(
        st.tuples(st.integers(0, 12), st.integers(0, 12)).filter(
            lambda e: e[0] != e[1]
        ),
        max_size=30,
    )
)
def test_greedy_color_always_legal(edge_list):
    edges = frozenset(link_key(a, b) for a, b in edge_list)
    nodes = {n for e in edges for n in e}
    colors = {n: greedy_color_graph(edges, n) for n in nodes}
    for a, b in edges:
        assert colors[a] != colors[b]


# ----------------------------------------------------------------------
# Session-level behavior with hand-driven message exchange
# ----------------------------------------------------------------------


class Wire:
    """Connects two or more sessions with instant in-order delivery."""

    def __init__(self):
        self.sessions = {}
        self.finished = {}
        self.queue = []

    def add(self, node_id, procedure, peers):
        session = procedure.create_session(
            node_id,
            set(peers),
            lambda dst, msg, src=node_id: self.queue.append((src, dst, msg)),
            lambda value, src=node_id: self.finished.__setitem__(src, value),
        )
        self.sessions[node_id] = session
        return session

    def deliver_all(self, drop=()):
        while self.queue:
            src, dst, msg = self.queue.pop(0)
            if (src, dst) in drop:
                continue
            target = self.sessions.get(dst)
            if isinstance(msg, RecolorNack):
                # NACKs terminate here regardless of the target's state
                # (mirroring Algorithm 1, where a NACK received by a
                # non-participant is silently dropped) — answering a
                # NACK with a NACK would ping-pong forever between two
                # finished sessions.
                if target is not None:
                    target.remove_peer(src)
                continue
            if target is None or not target.active:
                self.queue.append((dst, src, RecolorNack(0)))
                continue
            target.on_peer_message(src, msg)


def test_greedy_session_solo_finishes_immediately():
    wire = Wire()
    session = wire.add(0, GreedyColoring(), peers=())
    session.begin()
    assert wire.finished[0] == 0


def test_greedy_sessions_two_neighbors_pick_distinct_colors():
    wire = Wire()
    a = wire.add(0, GreedyColoring(), peers=(1,))
    b = wire.add(1, GreedyColoring(), peers=(0,))
    a.begin()
    b.begin()
    wire.deliver_all()
    assert 0 in wire.finished and 1 in wire.finished
    assert wire.finished[0] != wire.finished[1]
    assert a.graph == b.graph == {(0, 1)}


def test_greedy_sessions_triangle_all_distinct():
    wire = Wire()
    sessions = [
        wire.add(i, GreedyColoring(), peers=[j for j in range(3) if j != i])
        for i in range(3)
    ]
    for s in sessions:
        s.begin()
    wire.deliver_all()
    values = [wire.finished[i] for i in range(3)]
    assert len(set(values)) == 3


def test_greedy_session_nack_removes_peer():
    wire = Wire()
    # Node 1 never participates: its messages are NACKed by the wire.
    a = wire.add(0, GreedyColoring(), peers=(1,))
    a.begin()
    wire.deliver_all()
    assert wire.finished[0] == 0  # colored alone
    assert a.peers == set()


def test_greedy_session_peer_loss_mid_round():
    wire = Wire()
    a = wire.add(0, GreedyColoring(), peers=(1, 2))
    b = wire.add(1, GreedyColoring(), peers=(0,))
    a.begin()
    b.begin()
    # Peer 2 vanishes (link down) before answering.
    a.remove_peer(2)
    wire.deliver_all()
    assert 0 in wire.finished and 1 in wire.finished
    assert wire.finished[0] != wire.finished[1]


def test_linial_requires_valid_parameters():
    with pytest.raises(ConfigurationError):
        LinialColoring(id_space=0, delta=2)
    with pytest.raises(ConfigurationError):
        LinialColoring(id_space=10, delta=0)
    proc = LinialColoring(id_space=4, delta=2)
    with pytest.raises(ConfigurationError):
        proc.create_session(99, set(), lambda d, m: None, lambda v: None)


def test_linial_solo_returns_zero():
    wire = Wire()
    proc = LinialColoring(id_space=10, delta=3)
    s = wire.add(0, proc, peers=())
    s.begin()
    assert wire.finished[0] == 0


def test_linial_empty_schedule_returns_id():
    # Tiny id space: no reduction round shrinks it.
    proc = LinialColoring(id_space=8, delta=3)
    assert proc.rounds == 0
    wire = Wire()
    s = wire.add(5, proc, peers=(1,))
    t = wire.add(1, proc, peers=(5,))
    s.begin()
    t.begin()
    wire.deliver_all()
    assert wire.finished[5] == 5
    assert wire.finished[1] == 1


def test_linial_neighbors_get_distinct_small_colors():
    proc = LinialColoring(id_space=10 ** 6, delta=4)
    assert proc.rounds >= 1
    wire = Wire()
    ids = [17, 40123, 999999]
    sessions = [
        wire.add(i, proc, peers=[j for j in ids if j != i]) for i in ids
    ]
    for s in sessions:
        s.begin()
    wire.deliver_all()
    values = [wire.finished[i] for i in ids]
    assert len(set(values)) == 3
    bound = proc.max_color()
    assert all(0 <= v <= bound for v in values)


@settings(max_examples=25, deadline=None)
@given(
    ids=st.lists(
        st.integers(min_value=0, max_value=9999), min_size=2, max_size=5,
        unique=True,
    )
)
def test_linial_clique_always_legal(ids):
    """Property: a clique of participants always ends rainbow-colored."""
    proc = LinialColoring(id_space=10000, delta=6)
    wire = Wire()
    sessions = [
        wire.add(i, proc, peers=[j for j in ids if j != i]) for i in ids
    ]
    for s in sessions:
        s.begin()
    wire.deliver_all()
    values = [wire.finished[i] for i in ids]
    assert len(set(values)) == len(ids)


def test_linial_rounds_counted():
    proc = LinialColoring(id_space=10 ** 6, delta=4)
    wire = Wire()
    a = wire.add(3, proc, peers=(4,))
    b = wire.add(4, proc, peers=(3,))
    a.begin()
    b.begin()
    wire.deliver_all()
    assert a.rounds_executed == proc.rounds
    assert b.rounds_executed == proc.rounds


def test_session_abort_goes_inert():
    proc = GreedyColoring()
    wire = Wire()
    a = wire.add(0, proc, peers=(1,))
    a.begin()
    a.abort()
    assert not a.active
    # Late messages are ignored without error.
    a.on_peer_message(1, GraphExchange(1, frozenset(), False))
    assert 0 not in wire.finished
