"""Unit tests for mobility models and the controller."""

import pytest

from repro.errors import ConfigurationError
from repro.mobility import (
    Episode,
    MobilityController,
    RandomWalk,
    RandomWaypoint,
    ScriptedMobility,
    ScriptedMove,
    StaticMobility,
)
from repro.net.channel import ChannelLayer
from repro.net.geometry import Point
from repro.net.linklayer import LinkLayer
from repro.net.topology import DynamicTopology
from repro.sim.clock import TimeBounds
from repro.sim.engine import Simulator
from repro.sim.rng import RandomSource


class NullHandler:
    def on_message(self, src, message):
        pass

    def on_link_up(self, peer, moving):
        pass

    def on_link_down(self, peer):
        pass


def build(nodes=3, spacing=1.0, step=0.25):
    sim = Simulator()
    topo = DynamicTopology(radio_range=1.2)
    link = LinkLayer(sim, topo)
    channel = ChannelLayer(
        sim, topo, TimeBounds(), RandomSource(0).stream("c"),
        deliver=link.deliver,
    )
    link.bind_channel(channel)
    for i in range(nodes):
        topo.add_node(i, Point(i * spacing, 0.0))
        link.register(i, NullHandler())
    controller = MobilityController(
        sim, topo, link, RandomSource(7), step_length=step
    )
    return sim, topo, link, controller


def test_static_model_never_moves():
    sim, topo, link, controller = build()
    controller.attach(0, StaticMobility())
    controller.start()
    sim.run(until=100.0)
    assert topo.position(0) == Point(0.0, 0.0)


def test_move_node_reaches_destination_at_speed():
    sim, topo, link, controller = build()
    controller.move_node(0, Point(0.0, 4.0), speed=2.0)
    sim.run()
    assert topo.position(0) == Point(0.0, 4.0)
    # 4 units at speed 2 with step 0.25 -> last step at t = 2.0 - step_time
    assert sim.now == pytest.approx(4.0 / 2.0 - 0.25 / 2.0)


def test_moving_flag_set_during_episode():
    sim, topo, link, controller = build()
    controller.move_node(0, Point(0.0, 2.0), speed=1.0)
    observed = []
    sim.schedule(1.0, lambda: observed.append(link.is_moving(0)))
    sim.run()
    assert observed == [True]
    assert not link.is_moving(0)


def test_teleport_flips_topology_instantly():
    sim, topo, link, controller = build()
    controller.teleport(2, Point(0.0, 0.5))
    sim.run()
    assert topo.has_link(0, 2)
    assert not link.is_moving(2)


def test_crashed_node_freezes_mid_flight():
    sim, topo, link, controller = build()
    controller.move_node(0, Point(0.0, 10.0), speed=1.0)
    sim.schedule(3.0, lambda: link.crash(0))
    sim.run()
    assert topo.position(0).y < 10.0  # froze on the way
    assert not link.is_moving(0)


def test_crashed_node_never_starts_episode():
    sim, topo, link, controller = build()
    link.crash(0)
    controller.attach(0, ScriptedMobility([ScriptedMove(1.0, Point(5, 5))]))
    controller.start()
    sim.run()
    assert topo.position(0) == Point(0.0, 0.0)


def test_scripted_mobility_replays_moves_in_order():
    sim, topo, link, controller = build()
    controller.attach(
        0,
        ScriptedMobility(
            [
                ScriptedMove(5.0, Point(0.0, 2.0)),
                ScriptedMove(10.0, Point(0.0, 0.0)),
            ]
        ),
    )
    controller.start()
    sim.run(until=7.0)
    assert topo.position(0) == Point(0.0, 2.0)
    sim.run(until=20.0)
    assert topo.position(0) == Point(0.0, 0.0)


def test_random_waypoint_stays_in_arena():
    sim, topo, link, controller = build()
    model = RandomWaypoint(5.0, 5.0, speed_range=(1.0, 2.0), pause_range=(0.0, 0.5))
    controller.attach(1, model)
    controller.start()
    positions = []
    for t in range(1, 40):
        sim.schedule_at(float(t), lambda: positions.append(topo.position(1)))
    sim.run(until=40.0)
    assert positions, "node never sampled"
    for p in positions:
        assert 0.0 <= p.x <= 5.0 and 0.0 <= p.y <= 5.0


def test_random_walk_hops_are_bounded():
    sim, topo, link, controller = build()
    model = RandomWalk(10.0, 10.0, hop_range=(0.5, 1.0), speed=2.0,
                       pause_range=(0.0, 0.1))
    start = topo.position(1)
    episode = model.next_episode(1, 0.0, topo, RandomSource(3).stream("m"))
    assert episode is not None
    hop = start.distance_to(episode.destination)
    assert hop <= 1.0 + 1e-9


def test_episode_validation():
    with pytest.raises(ConfigurationError):
        Episode(start_delay=-1.0, destination=Point(0, 0), speed=1.0)
    with pytest.raises(ConfigurationError):
        RandomWaypoint(0.0, 5.0)
    with pytest.raises(ConfigurationError):
        RandomWalk(5.0, 5.0, speed=0)


def test_topology_updates_generate_link_events_along_path():
    sim, topo, link, controller = build(nodes=2, spacing=5.0)
    events = []
    link.observers.append(lambda kind, a, b: events.append((kind, sim.now)))
    # Walk node 0 past node 1 and far beyond: link must come up then down.
    controller.move_node(0, Point(10.0, 0.0), speed=1.0)
    sim.run()
    kinds = [k for k, _ in events]
    assert kinds == ["up", "down"]
