"""Unit tests for mobility models and the controller."""

import pytest

from repro.errors import ConfigurationError
from repro.mobility import (
    Episode,
    MobilityController,
    RandomWalk,
    RandomWaypoint,
    ScriptedMobility,
    ScriptedMove,
    StaticMobility,
)
from repro.net.channel import ChannelLayer
from repro.net.geometry import Point
from repro.net.linklayer import LinkLayer
from repro.net.topology import DynamicTopology
from repro.sim.clock import TimeBounds
from repro.sim.engine import Simulator
from repro.sim.rng import RandomSource


class NullHandler:
    def on_message(self, src, message):
        pass

    def on_link_up(self, peer, moving):
        pass

    def on_link_down(self, peer):
        pass


def build(nodes=3, spacing=1.0, step=0.25, fixed_step=False):
    sim = Simulator()
    topo = DynamicTopology(radio_range=1.2)
    link = LinkLayer(sim, topo)
    channel = ChannelLayer(
        sim, topo, TimeBounds(), RandomSource(0).stream("c"),
        deliver=link.deliver,
    )
    link.bind_channel(channel)
    for i in range(nodes):
        topo.add_node(i, Point(i * spacing, 0.0))
        link.register(i, NullHandler())
    controller = MobilityController(
        sim, topo, link, RandomSource(7), step_length=step,
        fixed_step=fixed_step,
    )
    return sim, topo, link, controller


def test_static_model_never_moves():
    sim, topo, link, controller = build()
    controller.attach(0, StaticMobility())
    controller.start()
    sim.run(until=100.0)
    assert topo.position(0) == Point(0.0, 0.0)


def test_move_node_reaches_destination_at_speed():
    # Kinetic execution arrives at exactly dist/speed.
    sim, topo, link, controller = build()
    controller.move_node(0, Point(0.0, 4.0), speed=2.0)
    sim.run()
    assert topo.position(0) == Point(0.0, 4.0)
    assert sim.now == pytest.approx(4.0 / 2.0)


def test_move_node_fixed_step_arrival_leads_by_one_step():
    sim, topo, link, controller = build(fixed_step=True)
    controller.move_node(0, Point(0.0, 4.0), speed=2.0)
    sim.run()
    assert topo.position(0) == Point(0.0, 4.0)
    # 4 units at speed 2 with step 0.25 -> last step at t = 2.0 - step_time
    assert sim.now == pytest.approx(4.0 / 2.0 - 0.25 / 2.0)


def test_moving_flag_set_during_episode():
    sim, topo, link, controller = build()
    controller.move_node(0, Point(0.0, 2.0), speed=1.0)
    observed = []
    sim.schedule(1.0, lambda: observed.append(link.is_moving(0)))
    sim.run()
    assert observed == [True]
    assert not link.is_moving(0)


@pytest.mark.parametrize("fixed_step", [False, True])
def test_teleport_flips_topology_instantly(fixed_step):
    sim, topo, link, controller = build(fixed_step=fixed_step)
    controller.teleport(2, Point(0.0, 0.5))
    sim.run()
    assert topo.has_link(0, 2)
    assert not link.is_moving(2)


@pytest.mark.parametrize("fixed_step", [False, True])
def test_crashed_node_freezes_mid_flight(fixed_step):
    sim, topo, link, controller = build(fixed_step=fixed_step)
    controller.move_node(0, Point(0.0, 10.0), speed=1.0)
    sim.schedule(3.0, lambda: link.crash(0))
    sim.run()
    assert topo.position(0).y < 10.0  # froze on the way
    assert not link.is_moving(0)


@pytest.mark.parametrize("fixed_step", [False, True])
def test_crash_hook_freezes_at_exact_position(fixed_step):
    # The runtime wires CrashInjector -> controller.note_crash; the
    # kinetic engine then pins the exact position at the crash instant
    # (the fixed-step path freezes at its last materialized step).
    sim, topo, link, controller = build(fixed_step=fixed_step)
    controller.move_node(0, Point(0.0, 10.0), speed=1.0)

    def crash():
        link.crash(0)
        controller.note_crash(0)

    sim.schedule(3.0, crash)
    sim.run()
    frozen = topo.position(0)
    if fixed_step:
        # The step timer materializes positions one step ahead of true
        # motion, so the freeze lands within one step of y = 3.
        assert abs(frozen.y - 3.0) <= 0.25 + 1e-9
    else:
        assert frozen.y == pytest.approx(3.0)
    assert not link.is_moving(0)


def test_crashed_node_never_starts_episode():
    sim, topo, link, controller = build()
    link.crash(0)
    controller.attach(0, ScriptedMobility([ScriptedMove(1.0, Point(5, 5))]))
    controller.start()
    sim.run()
    assert topo.position(0) == Point(0.0, 0.0)


def test_scripted_mobility_replays_moves_in_order():
    sim, topo, link, controller = build()
    controller.attach(
        0,
        ScriptedMobility(
            [
                ScriptedMove(5.0, Point(0.0, 2.0)),
                ScriptedMove(10.0, Point(0.0, 0.0)),
            ]
        ),
    )
    controller.start()
    sim.run(until=7.0)
    assert topo.position(0) == Point(0.0, 2.0)
    sim.run(until=20.0)
    assert topo.position(0) == Point(0.0, 0.0)


def test_random_waypoint_stays_in_arena():
    sim, topo, link, controller = build()
    model = RandomWaypoint(5.0, 5.0, speed_range=(1.0, 2.0), pause_range=(0.0, 0.5))
    controller.attach(1, model)
    controller.start()
    positions = []
    for t in range(1, 40):
        sim.schedule_at(float(t), lambda: positions.append(topo.position(1)))
    sim.run(until=40.0)
    assert positions, "node never sampled"
    for p in positions:
        assert 0.0 <= p.x <= 5.0 and 0.0 <= p.y <= 5.0


def test_random_walk_hops_are_bounded():
    sim, topo, link, controller = build()
    model = RandomWalk(10.0, 10.0, hop_range=(0.5, 1.0), speed=2.0,
                       pause_range=(0.0, 0.1))
    start = topo.position(1)
    episode = model.next_episode(1, 0.0, topo, RandomSource(3).stream("m"))
    assert episode is not None
    hop = start.distance_to(episode.destination)
    assert hop <= 1.0 + 1e-9


def test_episode_validation():
    with pytest.raises(ConfigurationError):
        Episode(start_delay=-1.0, destination=Point(0, 0), speed=1.0)
    with pytest.raises(ConfigurationError):
        RandomWaypoint(0.0, 5.0)
    with pytest.raises(ConfigurationError):
        RandomWalk(5.0, 5.0, speed=0)


@pytest.mark.parametrize("fixed_step", [False, True])
def test_topology_updates_generate_link_events_along_path(fixed_step):
    sim, topo, link, controller = build(nodes=2, spacing=5.0,
                                        fixed_step=fixed_step)
    events = []
    link.observers.append(lambda kind, a, b: events.append((kind, sim.now)))
    # Walk node 0 past node 1 and far beyond: link must come up then down.
    controller.move_node(0, Point(10.0, 0.0), speed=1.0)
    sim.run()
    kinds = [k for k, _ in events]
    assert kinds == ["up", "down"]


def test_kinetic_link_events_fire_at_exact_crossing_times():
    sim, topo, link, controller = build(nodes=2, spacing=5.0)
    events = []
    link.observers.append(lambda kind, a, b: events.append((kind, sim.now)))
    controller.move_node(0, Point(10.0, 0.0), speed=1.0)
    sim.run()
    # Radio range 1.2: in range at x = 5 - 1.2, out of range at 5 + 1.2.
    assert events[0][0] == "up"
    assert events[0][1] == pytest.approx(5.0 - 1.2, abs=1e-9)
    assert events[1][0] == "down"
    assert events[1][1] == pytest.approx(5.0 + 1.2, abs=1e-9)
    stats = controller.stats()
    assert stats["mode"] == "kinetic"
    assert stats["crossing_events"] == 2
    # 10 units of travel: far fewer updates than the 40 fixed steps.
    assert stats["position_updates"] < 40
    assert stats["dead_steps_skipped"] > 0
