"""Tests for the multi-seed replication helpers."""

import math

import pytest

from repro.harness.multiseed import (
    DEFAULT_METRICS,
    Estimate,
    estimate,
    replicate,
    t_critical_95,
)
from repro.net.geometry import line_positions
from repro.runtime.simulation import ScenarioConfig


def test_t_critical_monotone_and_bounded():
    assert t_critical_95(1) > t_critical_95(5) > t_critical_95(100)
    assert t_critical_95(100) == pytest.approx(1.96)
    with pytest.raises(ValueError):
        t_critical_95(0)


def test_estimate_basics():
    e = estimate([2.0, 4.0, 6.0])
    assert e.mean == pytest.approx(4.0)
    assert e.samples == 3
    assert e.low < 4.0 < e.high
    assert "±" in str(e)


def test_estimate_single_sample_has_infinite_width():
    e = estimate([5.0])
    assert math.isinf(e.half_width)


def test_estimate_empty_rejected():
    with pytest.raises(ValueError):
        estimate([])


def test_estimate_overlap():
    a = Estimate(mean=1.0, half_width=0.5, samples=5)
    b = Estimate(mean=1.8, half_width=0.4, samples=5)
    c = Estimate(mean=3.0, half_width=0.2, samples=5)
    assert a.overlaps(b)
    assert not a.overlaps(c)


def test_replicate_runs_all_seeds_and_aggregates():
    config = ScenarioConfig(
        positions=line_positions(5, spacing=1.0),
        algorithm="alg2",
        think_range=(0.5, 2.0),
    )
    estimates = replicate(
        config, until=80.0, seeds=(1, 2, 3), metrics=DEFAULT_METRICS
    )
    assert set(estimates) == set(DEFAULT_METRICS)
    assert estimates["throughput"].samples == 3
    assert estimates["mean_response"].mean > 0
    # Throughput CI is finite with 3 seeds.
    assert not math.isinf(estimates["throughput"].half_width)


def test_replicate_is_seed_sensitive_but_deterministic():
    config = ScenarioConfig(
        positions=line_positions(4, spacing=1.0),
        algorithm="alg2",
        think_range=(0.5, 2.0),
    )
    a = replicate(config, until=60.0, seeds=(7,), metrics=DEFAULT_METRICS)
    b = replicate(config, until=60.0, seeds=(7,), metrics=DEFAULT_METRICS)
    assert a["mean_response"].mean == b["mean_response"].mean


def test_replicate_report_dir_writes_one_report_per_seed(tmp_path):
    from repro.obs.report import RunReport

    config = ScenarioConfig(
        positions=line_positions(4, spacing=1.0),
        radio_range=1.1,
        algorithm="alg2",
        telemetry=True,
    )
    out = tmp_path / "reports"
    replicate(config, until=40.0, seeds=(1, 2, 3), metrics=DEFAULT_METRICS,
              report_dir=out)
    files = sorted(out.glob("*.json"))
    assert len(files) == 3
    seeds_seen = {RunReport.load(f).config["seed"] for f in files}
    assert seeds_seen == {1, 2, 3}


def test_replicate_cache_hits_skip_report_writes(tmp_path):
    config = ScenarioConfig(
        positions=line_positions(4, spacing=1.0),
        radio_range=1.1,
        algorithm="alg2",
    )
    cache = tmp_path / "cache"
    out = tmp_path / "reports"
    # Prime the cache without reports...
    replicate(config, until=40.0, seeds=(5, 6), metrics=DEFAULT_METRICS,
              cache=cache)
    # ...then a fully-cached re-run must not execute (and so not write).
    replicate(config, until=40.0, seeds=(5, 6), metrics=DEFAULT_METRICS,
              cache=cache, report_dir=out)
    assert not out.exists() or not list(out.glob("*.json"))


def test_replicate_metrics_dir_writes_openmetrics_per_seed(tmp_path):
    from helpers import parse_openmetrics

    config = ScenarioConfig(
        positions=line_positions(4, spacing=1.0),
        radio_range=1.1,
        algorithm="alg2",
        telemetry=True,
    )
    out = tmp_path / "prom"
    replicate(config, until=40.0, seeds=(1, 2), metrics=DEFAULT_METRICS,
              metrics_dir=out, report_dir=tmp_path / "reports")
    files = sorted(out.glob("*.prom"))
    assert len(files) == 2
    for path in files:
        families = parse_openmetrics(path.read_text())
        assert any(name.startswith("repro_alg2_") for name in families)
    # Snapshot stems pair up with the report stems for the same seed.
    report_stems = {p.stem for p in (tmp_path / "reports").glob("*.json")}
    assert {p.stem for p in files} == report_stems
