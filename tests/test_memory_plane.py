"""Memory-plane equivalence and use-after-release guards.

The memory-plane fast path (event-shell pooling, interned messages,
lazy per-node RNG streams, deferred bulk workload attach) is a pure
optimization: this module pins the bit-identity contract — the same
RunReport JSON with ``pooling`` on or off, and deferred attach equal to
eager per-node attach — plus the debug-mode use-after-release
detection on pooled event handles.
"""

import dataclasses

import pytest

from repro.explore.scenarios import scenario_pool
from repro.harness.config_io import config_from_dict
from repro.net.geometry import grid_positions
from repro.runtime.app import HungerWorkload
from repro.runtime.simulation import ScenarioConfig, Simulation
from repro.sim.engine import Simulator


def _report_json(config, until):
    return Simulation(config).run(until=until).report().to_json()


# ----------------------------------------------------------------------
# Pooled runs are bit-identical to pooling=False
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "algorithm,family",
    [
        ("alg1-greedy", "fig6"),
        ("alg2", "crash-line"),
        ("alg2", "mobility-waypoint"),
    ],
)
def test_pooling_off_is_bit_identical(algorithm, family):
    pool = scenario_pool(algorithm, count=12, seed=11)
    picked = [s for s in pool if s["family"] == family][:2]
    assert picked, family
    for scenario in picked:
        config = config_from_dict(scenario["scenario"])
        assert config.pooling  # pooling is the default
        expected = _report_json(config, scenario["until"])
        actual = _report_json(
            dataclasses.replace(config, pooling=False), scenario["until"]
        )
        assert actual == expected


def test_deferred_attach_matches_eager(monkeypatch):
    """attach_all defers the per-node draws to run start; the resulting
    run must match per-node eager attach bit for bit."""
    config = ScenarioConfig(
        positions=grid_positions(25, spacing=1.0),
        radio_range=1.1,
        algorithm="alg2",
        seed=5,
        crashes=[(12.0, 7)],
    )
    expected = _report_json(config, 40.0)

    def eager(self, harnesses):
        for harness in list(harnesses):
            self.attach(harness)

    monkeypatch.setattr(HungerWorkload, "attach_all", eager)
    assert _report_json(config, 40.0) == expected


# ----------------------------------------------------------------------
# Use-after-release detection on pooled handles
# ----------------------------------------------------------------------


def test_cancel_after_release_raises():
    sim = Simulator(pooling=True)
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    sim.run(until=2.0)
    assert fired == ["x"]
    # The shell went back to the free list when the event fired; the
    # stale handle must be rejected, not silently poison a recycled
    # event.
    with pytest.raises(AssertionError, match="use-after-release"):
        event.cancel()


def test_cancel_after_fire_without_pooling_is_noop():
    sim = Simulator(pooling=False)
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    sim.run(until=2.0)
    event.cancel()  # the legacy harmless-no-op contract
    assert fired == ["x"]


def test_generation_stamp_invalidates_recycled_shell():
    sim = Simulator(pooling=True)
    event = sim.schedule(1.0, lambda: None)
    generation = event.generation
    sim.run(until=2.0)  # fires and releases the shell
    recycled = sim.schedule(5.0, lambda: None)
    # The free list hands the same shell back, one generation later:
    # (event, generation) tokens captured before the release no longer
    # validate, which is how the crash injector's retime path tells a
    # live handle from a recycled one.
    assert recycled is event
    assert event.generation != generation
