"""Unit tests for the link layer: indications, roles, crash model."""

from dataclasses import dataclass
from typing import List, Tuple

from repro.net.channel import ChannelLayer
from repro.net.geometry import Point
from repro.net.linklayer import LinkLayer
from repro.net.messages import Message
from repro.net.topology import DynamicTopology
from repro.sim.clock import TimeBounds
from repro.sim.engine import Simulator
from repro.sim.rng import RandomSource


@dataclass(frozen=True)
class Probe(Message):
    payload: str = ""


class RecordingHandler:
    def __init__(self):
        self.messages: List[Tuple[int, Message]] = []
        self.link_ups: List[Tuple[int, bool]] = []
        self.link_downs: List[int] = []

    def on_message(self, src, message):
        self.messages.append((src, message))

    def on_link_up(self, peer, moving):
        self.link_ups.append((peer, moving))

    def on_link_down(self, peer):
        self.link_downs.append(peer)


def build(nodes=3, spacing=1.0, radio=1.5):
    sim = Simulator()
    topo = DynamicTopology(radio_range=radio)
    handlers = {}
    link = LinkLayer(sim, topo)
    channel = ChannelLayer(
        sim, topo, TimeBounds(), RandomSource(0).stream("c"),
        deliver=link.deliver,
    )
    link.bind_channel(channel)
    for i in range(nodes):
        topo.add_node(i, Point(i * spacing, 0.0))
        handlers[i] = RecordingHandler()
        link.register(i, handlers[i])
    return sim, topo, link, handlers


def test_link_down_indications_to_both_endpoints():
    sim, topo, link, handlers = build()
    diff = topo.set_position(2, Point(50, 50))
    link.apply_diff(diff)
    assert handlers[1].link_downs == [2]
    assert handlers[2].link_downs == [1]


def test_link_up_roles_static_vs_moving():
    sim, topo, link, handlers = build()
    link.set_moving(2, True)
    diff = topo.set_position(2, Point(0.5, 0.5))  # 2 now sees 0 as well
    link.apply_diff(diff)
    # Node 0 (static) learns of moving node 2; node 2 gets the moving role.
    assert (2, False) in handlers[0].link_ups
    assert (0, True) in handlers[2].link_ups


def test_link_up_between_two_movers_breaks_tie_by_id():
    sim, topo, link, handlers = build(nodes=2, spacing=10.0)
    link.set_moving(0, True)
    link.set_moving(1, True)
    diff = topo.set_position(1, Point(1.0, 0.0))
    link.apply_diff(diff)
    # Lower id (0) plays the static role.
    assert handlers[0].link_ups == [(1, False)]
    assert handlers[1].link_ups == [(0, True)]


def test_crashed_node_gets_no_indications_or_messages():
    sim, topo, link, handlers = build()
    link.crash(1)
    assert link.is_crashed(1)
    link.send(0, 1, Probe("x"))
    sim.run()
    assert handlers[1].messages == []
    assert link.messages_to_crashed == 1
    diff = topo.set_position(2, Point(1.2, 0.5))
    link.apply_diff(diff)
    assert all(peer != 1 or False for peer, _ in handlers[1].link_ups)


def test_crashed_node_sends_nothing():
    sim, topo, link, handlers = build()
    link.crash(0)
    link.send(0, 1, Probe("x"))
    link.broadcast(0, Probe("y"))
    sim.run()
    assert handlers[1].messages == []


def test_broadcast_goes_to_current_neighbors_only():
    sim, topo, link, handlers = build()
    link.broadcast(1, Probe("hello"))
    sim.run()
    assert [src for src, _ in handlers[0].messages] == [1]
    assert [src for src, _ in handlers[2].messages] == [1]


def test_moving_flag_lifecycle():
    sim, topo, link, handlers = build()
    assert not link.is_moving(0)
    link.set_moving(0, True)
    assert link.is_moving(0)
    link.set_moving(0, False)
    assert not link.is_moving(0)


def test_observers_fire_after_indications():
    sim, topo, link, handlers = build()
    events = []
    link.observers.append(lambda kind, a, b: events.append((kind, a, b)))
    diff = topo.set_position(2, Point(50, 50))
    link.apply_diff(diff)
    assert events == [("down", 1, 2)]


def test_live_nodes_excludes_crashed():
    sim, topo, link, handlers = build()
    link.crash(1)
    assert list(link.live_nodes()) == [0, 2]
