"""Fuzz campaigns must separate clean protocols from the ablations.

The tier-1 smoke keeps one bounded seeded campaign per algorithm: each
deliberately-broken variant in :mod:`repro.core.ablations` is flagged
by its designated monitor, and the clean algorithms survive the same
campaign untouched.  The ``fuzz``-marked tests widen the sweep (more
runs, more seeds, the PCT strategy) and are excluded from tier-1 —
run them with ``pytest -m fuzz``.
"""

import pytest

from repro.explore import run_campaign

#: ablation -> the monitor its designated scenario family trips.
ABLATION_MONITORS = {
    "alg2-nonotify": "stale-priority",
    "alg1-noreturn": "return-path",
    "alg1-nodoorway": "doorway-entry",
}

CLEAN_ALGORITHMS = ["alg2", "alg1-greedy", "alg1-linial"]

#: one bounded campaign: 12 runs covers every scenario family at least
#: once (fig6 included for the alg1 variants).
SMOKE_RUNS = 12
SMOKE_SEED = 1


# ----------------------------------------------------------------------
# Tier-1 smoke
# ----------------------------------------------------------------------


@pytest.mark.parametrize("ablation", sorted(ABLATION_MONITORS))
def test_smoke_campaign_catches_ablation(ablation):
    result = run_campaign(
        ablation, runs=SMOKE_RUNS, seed=SMOKE_SEED, stop_on_first=True
    )
    assert not result.clean, f"{ablation} escaped the campaign"
    assert ABLATION_MONITORS[ablation] in result.violated_monitors()


@pytest.mark.parametrize("algorithm", CLEAN_ALGORITHMS)
def test_smoke_campaign_keeps_clean_algorithm_clean(algorithm):
    result = run_campaign(algorithm, runs=SMOKE_RUNS, seed=SMOKE_SEED)
    assert result.clean, (
        f"{algorithm} flagged: {[v.violation for v in result.violations]}"
    )
    assert result.runs == SMOKE_RUNS


def test_smoke_violations_carry_replayable_repros():
    result = run_campaign(
        "alg1-nodoorway", runs=SMOKE_RUNS, seed=SMOKE_SEED,
        stop_on_first=True,
    )
    repro = result.violations[0]
    assert repro.violation["monitor"] == "doorway-entry"
    assert repro.violation["step"] > 0
    # The repro embeds everything a replay needs.
    assert repro.scenario["algorithm"] == "alg1-nodoorway"
    assert repro.monitors and repro.strategy["kind"] == "random"


# ----------------------------------------------------------------------
# Wide sweeps (pytest -m fuzz)
# ----------------------------------------------------------------------


@pytest.mark.fuzz
@pytest.mark.parametrize("seed", [0, 2, 7, 11])
@pytest.mark.parametrize("ablation", sorted(ABLATION_MONITORS))
def test_fuzz_ablation_caught_across_seeds(ablation, seed):
    result = run_campaign(ablation, runs=24, seed=seed, workers=2)
    assert not result.clean
    assert ABLATION_MONITORS[ablation] in result.violated_monitors()


@pytest.mark.fuzz
@pytest.mark.parametrize("seed", [0, 2, 7, 11])
@pytest.mark.parametrize("algorithm", CLEAN_ALGORITHMS)
def test_fuzz_clean_algorithms_survive_across_seeds(algorithm, seed):
    result = run_campaign(algorithm, runs=24, seed=seed, workers=2)
    assert result.clean, (
        f"{algorithm} flagged at seed {seed}: "
        f"{[v.violation for v in result.violations]}"
    )


@pytest.mark.fuzz
@pytest.mark.parametrize("ablation", sorted(ABLATION_MONITORS))
def test_fuzz_pct_strategy_also_catches(ablation):
    result = run_campaign(ablation, runs=24, seed=1, strategy="pct")
    assert not result.clean
    assert ABLATION_MONITORS[ablation] in result.violated_monitors()
