"""Tests for protocol probes: wiring, instruments, end-to-end population."""

from repro.net.geometry import line_positions
from repro.obs.probes import ProtocolProbes, build_probes
from repro.obs.registry import NULL_REGISTRY, MetricRegistry
from repro.runtime.simulation import ScenarioConfig, Simulation


def test_build_probes_follows_none_when_off():
    assert build_probes(None) is None
    assert build_probes(NULL_REGISTRY) is None
    live = build_probes(MetricRegistry())
    assert isinstance(live, ProtocolProbes)


def test_probe_methods_update_the_right_instruments():
    registry = MetricRegistry()
    probes = ProtocolProbes(registry)

    probes.note_doorway_cross("ADr")
    probes.note_doorway_cross("ADr")
    probes.note_doorway_exit("ADr", 1.5)
    probes.note_fork_request()
    probes.note_fork_grant()
    probes.note_fork_grant_latency(0.75)
    probes.note_recolor_begin()
    probes.note_recolor_round()
    probes.note_recolor_round()
    probes.note_recolor_done(rounds=2, duration=8.0)
    probes.note_notification()
    probes.note_switch("exit_cs")
    probes.note_switch("notified")
    probes.note_switch("exit_cs")

    snap = registry.snapshot()
    assert snap["doorway.cross"]["by_key"] == {"ADr": 2}
    assert snap["doorway.occupancy"]["by_key"] == {"ADr": 1}
    assert snap["doorway.occupancy"]["high_water_by_key"] == {"ADr": 2}
    assert snap["doorway.time_behind"]["by_key"]["ADr"]["mean"] == 1.5
    assert snap["fork.requests"]["value"] == 1
    assert snap["fork.grants"]["value"] == 1
    assert snap["fork.grant_latency"]["mean"] == 0.75
    assert snap["recolor.sessions"]["value"] == 1
    assert snap["recolor.rounds"]["value"] == 2
    assert snap["recolor.session_rounds"]["mean"] == 2.0
    assert snap["recolor.session_duration"]["mean"] == 8.0
    assert snap["alg2.notifications"]["value"] == 1
    assert snap["alg2.switches"]["by_key"] == {"exit_cs": 2, "notified": 1}


def _run(algorithm, telemetry=True, until=120.0, n=6):
    sim = Simulation(ScenarioConfig(
        positions=line_positions(n, spacing=1.0),
        radio_range=1.1,
        algorithm=algorithm,
        seed=11,
        telemetry=telemetry,
    ))
    result = sim.run(until=until)
    return sim, result


def test_alg2_run_populates_fork_and_priority_probes():
    sim, result = _run("alg2")
    snap = sim.registry.snapshot()
    assert snap["fork.requests"]["value"] > 0
    assert snap["fork.grants"]["value"] > 0
    assert snap["fork.grant_latency"]["count"] > 0
    # Every grant latency is a nonnegative virtual-time delta.
    assert snap["fork.grant_latency"]["min"] >= 0.0
    assert snap["alg2.notifications"]["value"] > 0
    assert snap["alg2.switches"]["value"] > 0
    # The snapshot lands in the result too.
    assert result.probes == snap


def test_alg1_run_populates_doorway_and_recoloring_probes():
    sim, _ = _run("alg1-greedy", until=200.0)
    snap = sim.registry.snapshot()
    assert snap["doorway.cross"]["value"] > 0
    assert snap["doorway.exit"]["value"] > 0
    assert snap["doorway.time_behind"]["count"] > 0
    # Doorways are Algorithm 1's machinery; crossings are keyed by the
    # doorway name and every crossing tracks occupancy high-water.
    assert snap["doorway.occupancy"]["high_water_by_key"]
    assert snap["recolor.sessions"]["value"] > 0
    assert snap["recolor.rounds"]["value"] > 0
    assert snap["recolor.session_rounds"]["count"] > 0
    assert snap["recolor.session_duration"]["min"] >= 0.0


def test_probes_never_perturb_the_protocol():
    _, with_probes = _run("alg2", telemetry=True)
    _, without = _run("alg2", telemetry=False)
    assert with_probes.cs_entries == without.cs_entries
    assert with_probes.messages_sent == without.messages_sent
    assert with_probes.response_times == without.response_times
    assert without.probes == {}


def test_telemetry_off_leaves_probe_handles_none():
    sim, _ = _run("alg2", telemetry=False, until=10.0)
    assert sim.registry is None
    assert sim.probes is None
    for harness in sim.harnesses.values():
        assert harness.probes is None
        assert getattr(harness.algorithm, "_probes", None) is None
