"""Tests for the Raymond token-mutex baseline (global exclusion)."""

import pytest

from repro.baselines.token_mutex import RaymondToken, spanning_tree
from repro.errors import ProtocolError
from repro.net.geometry import Point, grid_positions, line_positions
from repro.net.topology import DynamicTopology
from repro.runtime.simulation import ScenarioConfig, Simulation
from repro.analysis.timeline import concurrency_profile


def build_topology(positions, radio=1.0):
    topo = DynamicTopology(radio_range=radio)
    for i, p in enumerate(positions):
        topo.add_node(i, p)
    return topo


def test_spanning_tree_single_component():
    topo = build_topology(line_positions(5, 1.0))
    parents = spanning_tree(topo)
    assert parents[0] is None  # smallest id is the root
    # Every other node reaches the root via parent pointers.
    for node in range(1, 5):
        hops, current = 0, node
        while parents[current] is not None:
            current = parents[current]
            hops += 1
            assert hops <= 5
        assert current == 0
    # Parents are actual neighbors (tree edges exist in the graph).
    for node, parent in parents.items():
        if parent is not None:
            assert topo.has_link(node, parent)


def test_spanning_tree_multiple_components():
    positions = list(line_positions(3, 1.0)) + [Point(50, 50), Point(51, 50)]
    topo = build_topology(positions)
    parents = spanning_tree(topo)
    assert parents[0] is None
    assert parents[3] is None  # second component's root
    assert parents[4] == 3


def test_token_run_makes_progress_and_serializes():
    config = ScenarioConfig(
        positions=grid_positions(9, 1.0),
        radio_range=1.2,
        algorithm="token-mutex",
        seed=3,
        think_range=(0.2, 1.0),
        trace=True,
    )
    sim = Simulation(config)
    result = sim.run(until=200.0)
    assert result.starved == []
    for node in range(9):
        assert result.metrics.counters[node].cs_entries >= 3
    # GLOBAL exclusion: never two simultaneous eaters, anywhere.
    assert max(concurrency_profile(sim.trace, step=0.5)) <= 1


def test_two_components_hold_two_tokens():
    positions = list(line_positions(3, 1.0)) + [
        Point(50.0 + i, 0.0) for i in range(3)
    ]
    config = ScenarioConfig(
        positions=positions,
        algorithm="token-mutex",
        seed=4,
        think_range=(0.1, 0.4),
        trace=True,
    )
    sim = Simulation(config)
    result = sim.run(until=100.0)
    for node in range(6):
        assert result.metrics.counters[node].cs_entries >= 3
    # Separate components CAN eat concurrently (one token each).
    assert max(concurrency_profile(sim.trace, step=0.5)) == 2


def test_global_serialization_costs_throughput():
    def entries(algorithm):
        config = ScenarioConfig(
            positions=line_positions(12, 1.0),
            algorithm=algorithm,
            seed=5,
            think_range=(0.1, 0.5),
        )
        return Simulation(config).run(until=100.0).cs_entries

    assert entries("alg2") > 2 * entries("token-mutex")


def test_topology_change_rejected():
    from helpers import FakeNode

    node = FakeNode(1, (0,))
    algorithm = RaymondToken(node, {0: None, 1: 0})
    with pytest.raises(ProtocolError):
        algorithm.on_link_up(5, moving=False)
    with pytest.raises(ProtocolError):
        algorithm.on_link_down(0)
