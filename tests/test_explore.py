"""Unit tests for the exploration subsystem's moving parts.

Covers the controlled schedulers and their decision traces, the repro
file format, the controlled runner (probes, report section, replay
bit-identity), monitor selection, the DFS frontier, and the ``explore``
CLI.  End-to-end ablation catching lives in
``test_explore_ablations.py``; shrinking in ``test_explore_shrink.py``.
"""

import io
import json

import pytest

from repro import __version__
from repro.cli import main as cli_main
from repro.errors import ConfigurationError
from repro.explore import (
    ReproFile,
    ReplaySchedule,
    RandomStrategy,
    dfs_prefixes,
    replay,
    run_campaign,
    run_controlled,
    scenario_pool,
)
from repro.explore.monitors import build_monitors, default_monitor_specs
from repro.explore.repro_file import REPRO_SCHEMA_VERSION
from repro.explore.schedule import BoundedDFSStrategy, build_strategy


def _line_scenario(algorithm="alg2", n=4, until=30.0):
    hunger = {str(node): [1.0 + node, 10.0 + node] for node in range(n)}
    return {
        "algorithm": algorithm,
        "positions": [[float(i), 0.0] for i in range(n)],
        "seed": 5,
        "telemetry": True,
        "scripted_hunger": hunger,
    }, until


# ----------------------------------------------------------------------
# Schedulers
# ----------------------------------------------------------------------


def test_scheduler_records_and_clamps_decisions():
    strategy = RandomStrategy(seed=9)
    strategy.bind(min_message_delay=0.5, nu=1.0)
    for _ in range(50):
        delay = strategy.message_delay(0, 1, None)
        assert 0.5 <= delay <= 1.0
    assert strategy.crash_time(3, 0.1) >= 0.0
    counts = strategy.log.counts()
    assert counts["d"] == 50 and counts["c"] == 1


def test_same_seed_same_decisions():
    a, b = RandomStrategy(seed=4), RandomStrategy(seed=4)
    for s in (a, b):
        s.bind(0.5, 1.0)
        for _ in range(10):
            s.message_delay(0, 1, None)
    assert a.log.decisions == b.log.decisions


def test_replay_schedule_splits_queues_by_type():
    schedule = ReplaySchedule([["d", 0.75], ["t", 2], ["d", 0.5], ["c", 7.0]])
    schedule.bind(0.5, 1.0)
    # Types interleave differently than recorded; per-type queues keep
    # each stream aligned.
    assert schedule.crash_time(1, 3.0) == 7.0
    assert schedule.message_delay(0, 1, None) == 0.75
    assert schedule.tie_break([object()] * 5) == 2
    assert schedule.message_delay(0, 1, None) == 0.5


def test_replay_schedule_defaults_when_exhausted():
    schedule = ReplaySchedule([])
    schedule.bind(0.5, 2.0)
    assert schedule.tie_break([object(), object()]) == 0
    assert schedule.message_delay(0, 1, None) == 2.0
    assert schedule.crash_time(1, 4.5) == 4.5


def test_replay_schedule_rejects_unknown_kinds():
    with pytest.raises(ConfigurationError):
        ReplaySchedule([["x", 1]])


def test_build_strategy_round_trips_descriptors():
    for descriptor in (
        {"kind": "random", "seed": 3},
        {"kind": "pct", "seed": 3, "depth": 2, "expected_decisions": 100},
        {"kind": "dfs", "prefix": [1, 0, 2]},
    ):
        strategy = build_strategy(descriptor)
        assert strategy.describe() == descriptor
    with pytest.raises(ConfigurationError):
        build_strategy({"kind": "oracle"})


def test_dfs_prefixes_expand_first_branch_past_prefix():
    assert dfs_prefixes([], [3, 2]) == [[1], [2]]
    assert dfs_prefixes([1], [3, 2]) == [[1, 1]]
    assert dfs_prefixes([1, 0], [3, 2]) == []
    assert dfs_prefixes([], [1, 4]) == []  # no alternative at depth 0


def test_dfs_strategy_follows_prefix_then_zero():
    strategy = BoundedDFSStrategy(prefix=[2, 1])
    group = [object()] * 3
    assert strategy.tie_break(group) == 2
    assert strategy.tie_break(group) == 1
    assert strategy.tie_break(group) == 0
    assert strategy.branching == [3, 3, 3]


# ----------------------------------------------------------------------
# Repro files
# ----------------------------------------------------------------------


def _sample_repro():
    scenario, until = _line_scenario()
    return ReproFile(
        scenario=scenario,
        until=until,
        strategy={"kind": "random", "seed": 1},
        monitors=[{"name": "exclusion", "params": {}}],
        decisions=[["d", 0.625], ["t", 1]],
        violation={"monitor": "exclusion", "step": 4, "time": 2.0,
                   "details": {}},
    )


def test_repro_file_round_trips_canonically(tmp_path):
    repro = _sample_repro()
    path = repro.save(tmp_path / "case.json")
    loaded = ReproFile.load(path)
    assert loaded.to_dict() == repro.to_dict()
    assert loaded.schema_version == REPRO_SCHEMA_VERSION
    assert loaded.version == __version__
    text = path.read_text()
    assert json.loads(text)["decisions"] == [["d", 0.625], ["t", 1]]


def test_repro_file_rejects_other_schemas():
    data = _sample_repro().to_dict()
    data["schema_version"] = REPRO_SCHEMA_VERSION + 1
    with pytest.raises(ConfigurationError):
        ReproFile.from_dict(data)
    with pytest.raises(ConfigurationError):
        ReproFile.from_dict({"schema_version": REPRO_SCHEMA_VERSION})


# ----------------------------------------------------------------------
# Controlled runs
# ----------------------------------------------------------------------


def test_run_controlled_reports_exploration_and_probes():
    scenario, until = _line_scenario()
    result = run_controlled(scenario, until, RandomStrategy(seed=2))
    assert result.violation is None
    assert result.steps > 0 and result.decisions
    section = result.report.exploration
    assert section["strategy"] == {"kind": "random", "seed": 2}
    assert section["decisions"]["delay"] > 0
    assert section["monitor_checks"] > 0
    assert section["violation"] is None
    assert "explore.decisions" in result.report.probes
    assert "explore.monitor_checks" in result.report.probes
    assert result.report.version == __version__


def test_run_controlled_rejects_reused_strategies():
    scenario, until = _line_scenario()
    strategy = RandomStrategy(seed=2)
    run_controlled(scenario, until, strategy)
    with pytest.raises(ConfigurationError):
        run_controlled(scenario, until, strategy)


def test_identical_runs_are_bit_identical():
    scenario, until = _line_scenario()
    first = run_controlled(scenario, until, RandomStrategy(seed=6))
    second = run_controlled(scenario, until, RandomStrategy(seed=6))
    assert first.report.to_json() == second.report.to_json()
    assert first.decisions == second.decisions


def test_replay_reproduces_recorded_violation_exactly():
    campaign = run_campaign(
        "alg1-nodoorway", runs=12, seed=1, stop_on_first=True
    )
    repro = campaign.violations[0]
    result = replay(repro)
    assert result.violation.to_dict() == repro.violation
    again = replay(repro)
    assert again.report.to_json() == result.report.to_json()


# ----------------------------------------------------------------------
# Monitor selection and scenario pools
# ----------------------------------------------------------------------


def test_default_monitor_specs_follow_algorithm_and_hazards():
    base, until = _line_scenario("alg1-greedy")
    names = [s["name"] for s in default_monitor_specs(base, until)]
    assert names == ["exclusion", "fork-uniqueness", "doorway-entry",
                     "return-path", "progress"]

    alg2, until = _line_scenario("alg2")
    names = [s["name"] for s in default_monitor_specs(alg2, until)]
    assert "priority" in names and "stale-priority" in names

    mobile = dict(alg2, mobility={"kind": "waypoint", "nodes": [0],
                                  "params": {}})
    mobile_specs = default_monitor_specs(mobile, until)
    names = [s["name"] for s in mobile_specs]
    assert "stale-priority" not in names
    # Under churn the acyclicity half of the priority check is off
    # (in-flight abdications crossing link formations weave settled,
    # self-healing cycles); antisymmetry stays on.
    priority = [s for s in mobile_specs if s["name"] == "priority"]
    assert priority and priority[0]["params"] == {"cycles": False}
    static_priority = [s for s in default_monitor_specs(alg2, until)
                       if s["name"] == "priority"]
    assert static_priority and static_priority[0]["params"] == {}

    crashed = dict(alg2, crashes=[[5.0, 1]])
    specs = default_monitor_specs(crashed, until)
    progress = [s for s in specs if s["name"] == "progress"]
    assert progress and progress[0]["params"]["exempt_radius"] == 2

    crashed_alg1 = dict(base, crashes=[[5.0, 1]])
    names = [s["name"] for s in default_monitor_specs(crashed_alg1, until)]
    assert "progress" not in names


def test_priority_monitor_cycle_gate():
    from types import SimpleNamespace

    from repro.explore.monitors import PriorityMonitor

    def fake_sim(higher):
        harnesses = {
            node: SimpleNamespace(algorithm=SimpleNamespace(higher=flags))
            for node, flags in higher.items()
        }
        links = [(0, 1), (1, 2), (0, 2)]
        return SimpleNamespace(
            harnesses=harnesses,
            topology=SimpleNamespace(links=lambda: links),
        )

    # A settled 3-cycle: 1 outranks 0, 2 outranks 1, 0 outranks 2.
    cycle = {
        0: {1: True, 2: False},
        1: {0: False, 2: True},
        2: {1: False, 0: True},
    }
    checking = PriorityMonitor({})
    checking.attach(fake_sim(cycle))
    details = checking.check()
    assert details is not None and details["kind"] == "cycle"

    gated = PriorityMonitor({"cycles": False})
    gated.attach(fake_sim(cycle))
    assert gated.check() is None

    # Antisymmetry stays armed even with the cycle half off.
    both_low = {
        0: {1: False, 2: False},
        1: {0: False, 2: True},
        2: {1: False, 0: True},
    }
    gated.attach(fake_sim(both_low))
    details = gated.check()
    assert details is not None and details["kind"] == "antisymmetry"


def test_build_monitors_validates_specs():
    monitors = build_monitors([
        {"name": "exclusion", "params": {}},
        {"name": "progress", "params": {"threshold": 10.0}},
    ])
    assert [m.name for m in monitors] == ["exclusion", "progress"]
    with pytest.raises(ConfigurationError):
        build_monitors([{"name": "psychic", "params": {}}])
    with pytest.raises(ConfigurationError):
        build_monitors([{"name": "stale-priority", "params": {}}])


def test_scenario_pool_is_reproducible_and_family_gated():
    first = scenario_pool("alg2", count=8, seed=3)
    second = scenario_pool("alg2", count=8, seed=3)
    assert first == second
    assert all(e["family"] != "fig6" for e in first)
    alg1 = scenario_pool("alg1-greedy", count=12, seed=3)
    assert any(e["family"] == "fig6" for e in alg1)
    for entry in first:
        assert entry["scenario"]["algorithm"] == "alg2"
        assert entry["until"] > 0


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def run_cli(*argv):
    out = io.StringIO()
    code = cli_main(list(argv), out=out)
    return code, out.getvalue()


def test_cli_version_flag():
    code, output = run_cli("--version")
    assert code == 0
    assert output == f"repro {__version__}\n"


def test_cli_explore_fuzz_clean_exits_zero(tmp_path):
    code, output = run_cli(
        "explore", "fuzz", "--algorithm", "alg2", "--runs", "2",
        "--seed", "1", "--out", str(tmp_path / "repros"),
    )
    assert code == 0
    assert "campaign clean" in output
    assert not (tmp_path / "repros").exists()


def test_cli_explore_fuzz_replay_shrink_pipeline(tmp_path):
    out_dir = tmp_path / "repros"
    code, output = run_cli(
        "explore", "fuzz", "--algorithm", "alg2-nonotify",
        "--runs", "4", "--seed", "1", "--stop-on-first",
        "--out", str(out_dir),
    )
    assert code == 1
    assert "stale-priority" in output
    files = sorted(out_dir.glob("*.json"))
    assert len(files) == 1

    code, output = run_cli("explore", "replay", str(files[0]))
    assert code == 0
    assert "reproduced" in output

    code, output = run_cli("explore", "shrink", str(files[0]))
    assert code == 0
    minimal = files[0].with_suffix(".min.json")
    assert minimal.exists()
    assert "shrunk size" in output

    code, output = run_cli("explore", "replay", str(minimal))
    assert code == 0


def test_cli_explore_replay_rejects_missing_file(tmp_path):
    code, output = run_cli("explore", "replay", str(tmp_path / "nope.json"))
    assert code == 2
    assert "error" in output
