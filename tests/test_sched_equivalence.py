"""Full-scenario bit-identity: ladder scheduler vs the heap oracle.

Fixed-seed runs across the exploration scenario families must produce
byte-for-byte identical RunReports under both scheduler disciplines.
This is the end-to-end complement to the structure-level property tests
in test_schedqueue.py: anything the queue swap perturbed — delivery
order, timer firing, crash retimes, mobility steps — would surface here
as a report diff.
"""

import dataclasses

import pytest

from repro.explore.scenarios import scenario_pool
from repro.harness.config_io import config_from_dict
from repro.runtime.simulation import ScenarioConfig, Simulation
from repro.sim.sharded import ShardedEngine


def _pool_entry(algorithm, family):
    for entry in scenario_pool(algorithm, 12, seed=0):
        if entry["family"] == family:
            return entry
    raise AssertionError(f"family {family!r} missing from pool")


def _report_json(config, until, scheduler):
    # sched_ops probe values are discipline-dependent by design, so the
    # comparison runs with telemetry off (reports already strip the
    # engine-level scheduler sub-dict).
    run_config = dataclasses.replace(
        config, telemetry=False, scheduler=scheduler
    )
    return Simulation(run_config).run(until=until).report().to_json()


@pytest.mark.parametrize(
    "algorithm,family",
    [
        ("alg1-linial", "fig6"),
        ("alg2", "crash-line"),
        ("alg2", "mobility-waypoint"),
        ("alg2", "static-ring"),
    ],
)
def test_scenario_families_are_bit_identical(algorithm, family):
    entry = _pool_entry(algorithm, family)
    config = config_from_dict(entry["scenario"])
    until = entry["until"]
    ladder = _report_json(config, until, "ladder")
    heap = _report_json(config, until, "heap")
    assert ladder == heap


def test_single_shard_delegation_is_bit_identical():
    entry = _pool_entry("alg2", "static-line")
    base = config_from_dict(entry["scenario"])
    reports = []
    for scheduler in ("ladder", "heap"):
        config = dataclasses.replace(
            base, telemetry=False, scheduler=scheduler
        )
        engine = ShardedEngine(config, num_shards=1)
        reports.append(engine.run(until=entry["until"]).report().to_json())
    assert reports[0] == reports[1]


def test_scheduler_field_is_validated():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        ScenarioConfig(positions=[], scheduler="fibonacci")
