"""Tests for metrics: collector, safety monitor, locality report."""

import pytest

from repro.errors import SafetyViolation
from repro.metrics.collector import MetricsCollector
from repro.metrics.locality import measure_failure_locality
from repro.metrics.safety import SafetyMonitor
from repro.core.states import NodeState
from repro.net.geometry import Point, line_positions
from repro.net.topology import DynamicTopology


# ----------------------------------------------------------------------
# MetricsCollector
# ----------------------------------------------------------------------


def test_response_time_recorded_per_episode():
    m = MetricsCollector()
    m.note_hungry(1, 10.0)
    m.note_eat_start(1, 13.5)
    m.note_think(1, 14.0)
    assert m.response_times() == [3.5]
    assert m.counters[1].cs_entries == 1
    assert m.counters[1].cs_completions == 1


def test_demotion_restarts_the_clock_and_flags_sample():
    m = MetricsCollector()
    m.note_hungry(1, 0.0)
    m.note_eat_start(1, 2.0)
    m.note_demotion(1, 5.0)
    m.note_eat_start(1, 9.0)
    samples = m.samples
    assert [s.response_time for s in samples] == [2.0, 4.0]
    assert samples[1].after_demotion
    assert m.counters[1].demotions == 1


def test_starving_threshold():
    m = MetricsCollector()
    m.note_hungry(1, 0.0)
    m.note_hungry(2, 90.0)
    assert m.starving(now=100.0, threshold=50.0) == [1]
    assert m.hungry_nodes() == {1: 0.0, 2: 90.0}


def test_empty_collector_queries():
    m = MetricsCollector()
    assert m.response_times() == []
    assert m.max_response_time() is None
    assert m.mean_response_time() is None
    assert m.total_cs_entries() == 0


# ----------------------------------------------------------------------
# SafetyMonitor
# ----------------------------------------------------------------------


class StubHarness:
    def __init__(self, state=NodeState.THINKING):
        self.state = state


def build_monitor(strict=True):
    topo = DynamicTopology(radio_range=1.5)
    for i, p in enumerate(line_positions(3, 1.0)):
        topo.add_node(i, p)
    harnesses = {i: StubHarness() for i in range(3)}
    return topo, harnesses, SafetyMonitor(topo, harnesses, strict=strict)


def test_monitor_raises_on_neighbor_violation():
    topo, harnesses, monitor = build_monitor()
    harnesses[0].state = NodeState.EATING
    harnesses[1].state = NodeState.EATING
    with pytest.raises(SafetyViolation):
        monitor.note_eating_start(1, time=5.0)


def test_monitor_allows_distance_two_eaters():
    topo, harnesses, monitor = build_monitor()
    harnesses[0].state = NodeState.EATING
    harnesses[2].state = NodeState.EATING
    monitor.note_eating_start(2, time=5.0)  # 0 and 2 are not neighbors
    monitor.deep_check(time=5.0)


def test_monitor_nonstrict_records():
    topo, harnesses, monitor = build_monitor(strict=False)
    harnesses[0].state = NodeState.EATING
    harnesses[1].state = NodeState.EATING
    monitor.note_eating_start(1, time=5.0)
    assert len(monitor.violations) == 1
    assert monitor.violations[0].time == 5.0


def test_monitor_link_event_check():
    topo, harnesses, monitor = build_monitor(strict=False)
    harnesses[1].state = NodeState.EATING
    harnesses[2].state = NodeState.EATING
    monitor.on_link_event("up", 1, 2, time=7.0)
    assert len(monitor.violations) == 1
    monitor.on_link_event("down", 1, 2, time=8.0)  # downs are ignored
    assert len(monitor.violations) == 1


# ----------------------------------------------------------------------
# Locality report
# ----------------------------------------------------------------------


def test_locality_report_distances_and_radius():
    topo = DynamicTopology(radio_range=1.5)
    for i, p in enumerate(line_positions(7, 1.0)):
        topo.add_node(i, p)
    report = measure_failure_locality(
        topo,
        crashed=[3],
        hungry_after_crash=[0, 1, 2, 4, 5, 6],
        ate_after_crash=[0, 1, 5, 6],
    )
    assert report.starved == [2, 4]
    assert report.starvation_radius == 1
    assert report.progress_radius == 2
    assert report.starved_by_distance() == {1: 2}


def test_locality_report_no_starvation():
    topo = DynamicTopology(radio_range=1.5)
    for i, p in enumerate(line_positions(3, 1.0)):
        topo.add_node(i, p)
    report = measure_failure_locality(
        topo, crashed=[0], hungry_after_crash=[1, 2], ate_after_crash=[1, 2]
    )
    assert report.starved == []
    assert report.starvation_radius is None
    assert report.progress_radius == 0


def test_locality_report_crashed_nodes_excluded():
    topo = DynamicTopology(radio_range=1.5)
    for i, p in enumerate(line_positions(3, 1.0)):
        topo.add_node(i, p)
    report = measure_failure_locality(
        topo, crashed=[1], hungry_after_crash=[1, 2], ate_after_crash=[]
    )
    assert report.starved == [2]


def test_think_clears_demotion_flag_for_the_next_episode():
    m = MetricsCollector()
    m.note_hungry(1, 0.0)
    m.note_eat_start(1, 2.0)
    m.note_demotion(1, 5.0)
    # The demoted node gives up and thinks instead of re-entering; the
    # *next* hungry episode is a fresh one, not an after-demotion retry.
    m.note_think(1, 6.0)
    m.note_hungry(1, 10.0)
    m.note_eat_start(1, 12.0)
    assert [s.after_demotion for s in m.samples] == [False, False]


def test_note_crash_clears_live_state():
    m = MetricsCollector()
    m.note_hungry(2, 0.0)
    m.note_crash(2, 5.0)
    assert m.crashed == {2: 5.0}
    assert 2 not in m.hungry_nodes()
    assert m.starving(now=100.0, threshold=10.0) == []


def test_note_crash_clears_pending_demotion():
    m = MetricsCollector()
    m.note_hungry(3, 0.0)
    m.note_eat_start(3, 1.0)
    m.note_demotion(3, 2.0)
    m.note_crash(3, 3.0)
    # A dead node's half-open demotion episode never flags a later
    # sample (e.g. if node ids were ever reused by a restart model).
    m.note_hungry(3, 10.0)
    m.note_eat_start(3, 11.0)
    assert m.samples[-1].after_demotion is False
