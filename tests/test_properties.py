"""End-to-end property-based tests: protocol invariants under random
topologies, workloads and mobility.

These are the highest-value tests in the suite: hypothesis explores the
scenario space, and the strict safety monitor inside every simulation
turns any local-mutual-exclusion violation into an immediate failure.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mobility import RandomWaypoint
from repro.net.geometry import Point
from repro.runtime.simulation import ScenarioConfig, Simulation

from helpers import (
    assert_alg2_priorities_antisymmetric,
    assert_alg2_priority_graph_acyclic,
    assert_fork_uniqueness,
)

ALGORITHMS = ["alg2", "alg1-greedy", "alg1-linial", "chandy-misra", "ordered-ids"]

positions_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=6),
    ),
    min_size=2,
    max_size=10,
    unique=True,
).map(lambda pts: [Point(float(x) * 0.9, float(y) * 0.9) for x, y in pts])


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    positions=positions_strategy,
    seed=st.integers(min_value=0, max_value=10 ** 6),
    algorithm=st.sampled_from(ALGORITHMS),
)
def test_safety_and_fork_uniqueness_random_static(positions, seed, algorithm):
    """No run — any topology, any seed — may violate mutual exclusion."""
    config = ScenarioConfig(
        positions=positions,
        radio_range=1.0,
        algorithm=algorithm,
        seed=seed,
        think_range=(0.2, 1.5),
    )
    sim = Simulation(config)
    sim.run(until=60.0)  # strict monitor raises on violation
    assert_fork_uniqueness(sim)
    if algorithm == "alg2":
        assert_alg2_priorities_antisymmetric(sim)
        assert_alg2_priority_graph_acyclic(sim)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=10 ** 6),
    algorithm=st.sampled_from(["alg2", "alg1-greedy", "chandy-misra"]),
    movers=st.integers(min_value=1, max_value=3),
)
def test_safety_under_mobility(seed, algorithm, movers):
    """Mobility churn never violates safety (the demotion rule works)."""
    positions = [Point(float(i % 3), float(i // 3)) for i in range(9)]
    config = ScenarioConfig(
        positions=positions,
        radio_range=1.2,
        algorithm=algorithm,
        seed=seed,
        think_range=(0.2, 1.0),
        delta_override=8,
        mobility_factory=lambda i: (
            RandomWaypoint(3.0, 3.0, speed_range=(0.8, 1.5),
                           pause_range=(1.0, 4.0))
            if i < movers
            else None
        ),
    )
    sim = Simulation(config)
    sim.run(until=60.0)
    assert_fork_uniqueness(sim)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=10 ** 6),
    crash_node=st.integers(min_value=0, max_value=8),
    algorithm=st.sampled_from(["alg2", "alg1-greedy"]),
)
def test_safety_with_crashes(seed, crash_node, algorithm):
    """Crashes never cause safety violations (only liveness loss)."""
    positions = [Point(float(i % 3), float(i // 3)) for i in range(9)]
    config = ScenarioConfig(
        positions=positions,
        radio_range=1.2,
        algorithm=algorithm,
        seed=seed,
        think_range=(0.2, 1.0),
        crashes=[(10.0, crash_node)],
    )
    sim = Simulation(config)
    sim.run(until=60.0)
    assert_fork_uniqueness(sim)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10 ** 6))
def test_alg2_progress_on_random_seeds(seed):
    """Failure-free static runs never starve anyone (starvation freedom)."""
    positions = [Point(float(i), 0.0) for i in range(7)]
    config = ScenarioConfig(
        positions=positions,
        radio_range=1.0,
        algorithm="alg2",
        seed=seed,
        think_range=(0.2, 1.0),
    )
    result = Simulation(config).run(until=150.0)
    assert result.starved == []
    for node in range(7):
        assert result.metrics.counters[node].cs_entries >= 1
