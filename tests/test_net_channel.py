"""Unit tests for the FIFO bounded-delay channel layer."""

import pytest

from repro.errors import TopologyError
from repro.net.channel import ChannelLayer
from repro.net.geometry import Point
from repro.net.messages import Message
from repro.net.topology import DynamicTopology
from repro.sim.clock import TimeBounds
from repro.sim.engine import Simulator
from repro.sim.rng import RandomSource

from dataclasses import dataclass


@dataclass(frozen=True)
class Ping(Message):
    seq: int = 0


class Collector:
    def __init__(self):
        self.received = []

    def __call__(self, src, dst, message):
        self.received.append((src, dst, message))


def build(nu=1.0, jitter=True, nodes=3):
    sim = Simulator()
    topo = DynamicTopology(radio_range=1.5)
    for i in range(nodes):
        topo.add_node(i, Point(float(i), 0.0))
    bounds = TimeBounds(nu=nu, min_delay_fraction=0.25 if jitter else 1.0)
    sink = Collector()
    channel = ChannelLayer(
        sim, topo, bounds, RandomSource(1).stream("c"), deliver=sink
    )
    return sim, topo, channel, sink


def test_delivery_within_nu():
    sim, topo, channel, sink = build(nu=2.0)
    for seq in range(20):
        channel.send(0, 1, Ping(seq))
    sim.run()
    assert len(sink.received) == 20
    assert sim.now <= 2.0 + 1e-6


def test_fifo_per_directed_link():
    sim, topo, channel, sink = build(nu=5.0)
    for seq in range(50):
        channel.send(0, 1, Ping(seq))
    sim.run()
    sequence = [m.seq for _, _, m in sink.received]
    assert sequence == sorted(sequence)


def test_send_on_missing_link_rejected():
    sim, topo, channel, sink = build()
    with pytest.raises(TopologyError):
        channel.send(0, 2, Ping())  # distance 2.0 > range 1.5


def test_message_dropped_when_link_fails_in_flight():
    sim, topo, channel, sink = build(nu=1.0, jitter=False)
    channel.send(0, 1, Ping(1))
    # Break the link before delivery time.
    diff = topo.set_position(1, Point(10, 10))
    channel.link_down(0, 1)
    assert diff.removed
    sim.run()
    assert sink.received == []
    assert channel.stats.dropped_link_down == 1


def test_stale_incarnation_dropped_after_reform():
    sim, topo, channel, sink = build(nu=1.0, jitter=False)
    channel.send(0, 1, Ping(1))
    # Link breaks and immediately re-forms before the delivery fires.
    topo.set_position(1, Point(10, 10))
    channel.link_down(0, 1)
    topo.set_position(1, Point(1.0, 0.0))
    sim.run()
    # The in-flight message belonged to the old incarnation.
    assert sink.received == []
    assert channel.stats.dropped_link_down == 1
    # New messages on the new incarnation flow normally.
    channel.send(0, 1, Ping(2))
    sim.run()
    assert [m.seq for _, _, m in sink.received] == [2]


def test_broadcast_reaches_all_neighbors():
    sim, topo, channel, sink = build()
    channel.broadcast(1, topo.neighbors(1), Ping(7))
    sim.run()
    destinations = sorted(dst for _, dst, _ in sink.received)
    assert destinations == [0, 2]


def test_stats_by_kind():
    sim, topo, channel, sink = build()
    channel.send(0, 1, Ping(1))
    channel.send(0, 1, Ping(2))
    sim.run()
    assert channel.stats.sent == 2
    assert channel.stats.delivered == 2
    assert channel.stats.snapshot() == {
        "sent": 2,
        "delivered": 2,
        "dropped_link_down": 0,
        "sent_by_kind": {"Ping": 2},
        "delivered_by_kind": {"Ping": 2},
        "dropped_by_kind": {},
    }


def test_stats_count_drops_per_kind():
    sim, topo, channel, sink = build(nu=1.0, jitter=False)
    channel.send(0, 1, Ping(1))
    topo.set_position(1, Point(10, 10))
    channel.link_down(0, 1)
    sim.run()
    snap = channel.stats.snapshot()
    assert snap["dropped_link_down"] == 1
    assert snap["dropped_by_kind"] == {"Ping": 1}
    assert snap["delivered_by_kind"] == {}


def test_deterministic_delay_mode():
    sim, topo, channel, sink = build(nu=3.0, jitter=False)
    channel.send(0, 1, Ping(0))
    sim.run()
    assert sim.now == pytest.approx(3.0)
