"""Tests for the standalone doorway protocol harness (Figures 1-4)."""

import pytest

from repro.core.doorway_harness import DoorwayAlgorithm, doorway_entry
from repro.errors import ConfigurationError
from repro.harness.experiments import star_positions
from repro.net.geometry import line_positions
from repro.runtime.simulation import ScenarioConfig, Simulation
from repro.sim.clock import TimeBounds

from helpers import FakeNode


def test_kind_validation():
    node = FakeNode(0)
    with pytest.raises(ConfigurationError):
        DoorwayAlgorithm(node, "revolving")
    with pytest.raises(ConfigurationError):
        DoorwayAlgorithm(node, "double-return", returns=0)
    with pytest.raises(ConfigurationError):
        DoorwayAlgorithm(node, "sync", returns=3)


@pytest.mark.parametrize("kind", ["sync", "async", "double", "double-return"])
def test_every_kind_traverses_on_a_line(kind):
    config = ScenarioConfig(
        positions=line_positions(4, spacing=1.0),
        algorithm=doorway_entry(kind, module_time=0.3),
        seed=1,
        think_range=(0.2, 0.6),
        bounds=TimeBounds(nu=0.1, tau=0.1),
        strict_safety=False,
    )
    result = Simulation(config).run(until=60.0)
    for node in range(4):
        assert result.metrics.counters[node].cs_entries >= 5, (
            f"{kind}: node {node} barely traversed"
        )


def test_return_path_runs_module_r_times():
    # With R=3 and module_time=1, each traversal takes >= 3 time units.
    config = ScenarioConfig(
        positions=line_positions(2, spacing=5.0),  # isolated nodes
        algorithm=doorway_entry("double-return", module_time=1.0, returns=3),
        seed=1,
        think_range=(0.5, 0.5),
        bounds=TimeBounds(nu=0.1, tau=0.1),
        strict_safety=False,
    )
    result = Simulation(config).run(until=50.0)
    times = result.response_times
    assert times
    for rt in times:
        assert rt >= 3.0 - 1e-9


def test_module_time_floor():
    config = ScenarioConfig(
        positions=line_positions(1, spacing=1.0),
        algorithm=doorway_entry("double", module_time=2.0),
        seed=1,
        think_range=(0.5, 0.5),
        bounds=TimeBounds(nu=0.1, tau=0.1),
        strict_safety=False,
    )
    result = Simulation(config).run(until=40.0)
    assert min(result.response_times) >= 2.0 - 1e-9


def test_star_positions_hub_degree():
    positions = star_positions(7)
    config = ScenarioConfig(
        positions=positions,
        radio_range=1.0,
        algorithm=doorway_entry("double"),
        strict_safety=False,
    )
    sim = Simulation(config)
    assert sim.topology.degree(0) == 7
