"""Tests for the sharded engine: partitioning, lookahead, equivalence.

The load-bearing guarantees here are the ISSUE's acceptance criteria:
``ShardedEngine(num_shards=1)`` is bit-identical to the plain engine
(same event order, same RunReport JSON) across the fuzz scenario
families, multi-shard results are independent of the worker count, and
per-shard invariant monitors preserve the verdicts the unsharded
monitors reach.
"""

import dataclasses
import json

import pytest

from repro.errors import ConfigurationError
from repro.explore.scenarios import scenario_pool
from repro.harness.config_io import config_from_dict
from repro.harness.multiseed import DEFAULT_METRICS, replicate
from repro.net.geometry import Point, line_positions
from repro.runtime.simulation import ScenarioConfig, Simulation, peak_rss_kb
from repro.sim.clock import TimeBounds
from repro.sim.engine import Simulator
from repro.sim.partition import (
    HALO_EPSILON,
    ShardContext,
    build_partition,
    conservative_lookahead,
    halo_width,
)
from repro.sim.sharded import ShardedEngine, run_sharded

SAFETY_SPECS = [
    {"name": "exclusion", "params": {}},
    {"name": "fork-uniqueness", "params": {}},
    {"name": "priority", "params": {}},
]


def _line_config(n=8, algorithm="alg2", seed=3, **extra):
    return ScenarioConfig(
        positions=line_positions(n, spacing=1.0),
        radio_range=1.1,
        algorithm=algorithm,
        seed=seed,
        **extra,
    )


# ----------------------------------------------------------------------
# Partition geometry
# ----------------------------------------------------------------------


def test_build_partition_splits_longer_axis():
    positions = [Point(float(i), 0.0) for i in range(8)]
    partition = build_partition(positions, 2)
    assert partition.axis == 0
    assert partition.num_shards == 2
    assert partition.cuts == (3.5,)
    owners = [partition.shard_of(p) for p in positions]
    assert owners == [0, 0, 0, 0, 1, 1, 1, 1]


def test_build_partition_vertical_axis():
    positions = [Point(0.0, float(i)) for i in range(6)]
    partition = build_partition(positions, 3)
    assert partition.axis == 1
    assert [partition.shard_of(p) for p in positions] == [0, 0, 1, 1, 2, 2]


def test_build_partition_validates_bounds():
    positions = [Point(float(i), 0.0) for i in range(4)]
    with pytest.raises(ConfigurationError):
        build_partition(positions, 0)
    with pytest.raises(ConfigurationError):
        build_partition(positions, 5)
    with pytest.raises(ConfigurationError):
        build_partition([], 1)


def test_conservative_lookahead_static():
    bounds = TimeBounds(nu=1.0)
    assert conservative_lookahead(bounds) == bounds.min_message_delay


def test_conservative_lookahead_mobility_cap():
    bounds = TimeBounds(nu=1.0)
    # radio 1.1, speed 2.0: the mobility cap 1.1/(2*2.0) = 0.275 binds.
    capped = conservative_lookahead(bounds, radio_range=1.1, max_speed=2.0)
    assert capped == pytest.approx(0.275)
    # Slow movers leave the message bound binding.
    slow = conservative_lookahead(bounds, radio_range=1.1, max_speed=0.1)
    assert slow == bounds.min_message_delay


def test_halo_width_covers_worst_case_approach():
    lookahead = 0.5
    width = halo_width(1.1, 1.2, lookahead)
    assert width == pytest.approx(1.1 + 2 * 1.2 * lookahead + HALO_EPSILON)


# ----------------------------------------------------------------------
# Engine satellites: wall-clock stats, ingest, safe horizon
# ----------------------------------------------------------------------


def test_simulator_stats_include_wall_rates():
    sim = Simulator()
    sim.schedule_at(1.0, lambda: None)
    sim.run(until=2.0)
    stats = sim.stats()
    assert stats["executed_events"] == 1
    assert stats["wall_time_s"] > 0.0
    assert stats["events_per_sec"] > 0.0


def test_simulator_ingest_respects_now_clamp():
    sim = Simulator()
    seen = []
    sim.schedule_at(5.0, lambda: None)
    sim.run(until=5.0)
    # A barrier injection at/before now is clamped to now, not dropped.
    count = sim.ingest([(3.0, seen.append, ("late",)), (7.0, seen.append, ("ok",))])
    assert count == 2
    sim.run(until=10.0)
    assert seen == ["late", "ok"]


def test_simulator_safe_horizon_caps_run():
    sim = Simulator()
    ran = []
    sim.schedule_at(1.0, ran.append, 1)
    sim.schedule_at(9.0, ran.append, 9)
    sim.set_safe_horizon(5.0)
    sim.run(until=20.0)
    assert ran == [1]
    assert sim.now == 5.0
    sim.set_safe_horizon(None)
    sim.run(until=20.0)
    assert ran == [1, 9]


def test_peak_rss_reported_on_linux():
    rss = peak_rss_kb()
    assert rss is None or rss > 0


def test_resources_in_report_only_when_profiling():
    plain = Simulation(_line_config()).run(until=20.0)
    assert plain.resources["wall_time_s"] >= 0.0
    assert plain.resources["events_per_sec"] >= 0.0
    assert plain.report().resources is None

    profiled = Simulation(
        dataclasses.replace(_line_config(), profile=True)
    ).run(until=20.0)
    report = profiled.report()
    assert report.resources is not None
    assert set(report.resources) >= {
        "wall_time_s", "events_per_sec", "peak_rss_kb",
    }


def test_wall_rates_do_not_leak_into_report_engine_block():
    result = Simulation(_line_config()).run(until=20.0)
    assert "wall_time_s" in result.engine
    report = result.report()
    assert "wall_time_s" not in report.engine
    assert "events_per_sec" not in report.engine


# ----------------------------------------------------------------------
# Single-shard bit-identity across scenario families
# ----------------------------------------------------------------------


def _family_scenarios(algorithm, family, count):
    pool = scenario_pool(algorithm, count=6 * count, seed=11)
    picked = [s for s in pool if s["family"] == family]
    assert picked, family
    return picked[:count]


@pytest.mark.parametrize(
    "algorithm,family",
    [
        ("alg1-greedy", "fig6"),
        ("alg2", "crash-line"),
        ("alg2", "mobility-waypoint"),
    ],
)
def test_single_shard_bit_identical_reports(algorithm, family):
    for scenario in _family_scenarios(algorithm, family, 2):
        until = scenario["until"]
        plain = Simulation(config_from_dict(scenario["scenario"]))
        expected = plain.run(until=until).report().to_json()
        sharded = ShardedEngine(
            config_from_dict(scenario["scenario"]), num_shards=1
        )
        actual = sharded.run(until=until).report().to_json()
        assert actual == expected


# ----------------------------------------------------------------------
# Multi-shard behavior
# ----------------------------------------------------------------------


def test_multi_shard_run_reaches_cs_across_boundary():
    engine = ShardedEngine(_line_config(), num_shards=2, workers=1)
    result = engine.run(until=60.0)
    assert result.cs_entries > 0
    assert engine.windows > 0
    assert result.engine["num_shards"] == 2
    assert len(result.engine["per_shard"]) == 2
    # The boundary pair (3, 4) straddles the cut; both sides must make
    # progress, which only happens when cross-shard mail flows.
    per_node = result.metrics.counters
    assert per_node[3].cs_entries > 0
    assert per_node[4].cs_entries > 0


def test_multi_shard_results_independent_of_worker_count():
    reports = []
    for workers in (1, 2):
        engine = ShardedEngine(_line_config(), num_shards=2, workers=workers)
        reports.append(engine.run(until=60.0).report().to_json())
    assert reports[0] == reports[1]


def test_multi_shard_mobility_worker_independent():
    from repro.mobility.waypoint import RandomWaypoint

    def factory(node_id):
        if node_id < 3:
            return RandomWaypoint(
                8.0, 2.0, speed_range=(0.4, 1.2), pause_range=(1.0, 4.0)
            )
        return None

    def cfg():
        return _line_config(
            mobility_factory=factory, delta_override=7
        )

    reports = []
    for workers in (1, 2):
        engine = ShardedEngine(
            cfg(), num_shards=2, workers=workers, max_speed=1.2
        )
        reports.append(engine.run(until=40.0).report().to_json())
    assert reports[0] == reports[1]
    data = json.loads(reports[0])
    assert data["response"]["cs_entries"] > 0


def test_multi_shard_resources_and_rates_populated():
    result = run_sharded(_line_config(), until=30.0, num_shards=2, workers=1)
    assert result.resources["wall_time_s"] > 0.0
    assert result.resources["events_per_sec"] > 0.0
    assert result.engine["events_per_sec"] > 0.0
    rss = result.resources["peak_rss_kb"]
    assert rss is None or rss > 0


def test_multi_shard_crash_stays_local_to_owner():
    config = _line_config(crashes=[(15.0, 3)])
    result = run_sharded(config, until=60.0, num_shards=2, workers=1)
    assert result.metrics.counters[3].cs_entries >= 0
    assert 3 in result.metrics.crashed
    # The survivor side keeps making progress past the crash.
    assert result.cs_entries > 0


# ----------------------------------------------------------------------
# Monitor verdict preservation
# ----------------------------------------------------------------------


def test_clean_run_stays_clean_under_sharding():
    engine = ShardedEngine(
        _line_config(), num_shards=2, workers=1,
        monitor_specs=SAFETY_SPECS,
    )
    result = engine.run(until=60.0)
    assert engine.violations == []
    assert result.cs_entries > 0


def test_ablation_violation_preserved_under_sharding():
    """alg2-nonotify's stale-priority bug is caught per-shard too.

    The violating interaction (a permanently-thinking node holding a
    stale priority over a hungry neighbor) occurs on pairs interior to
    a shard, so the per-shard monitor must reach the same verdict the
    global monitor does.
    """
    specs = SAFETY_SPECS + [
        {"name": "stale-priority", "params": {"bound": 3.0}}
    ]
    hunger = {
        node: [round(1.0 + node * 0.7 + k * 5.0, 3) for k in range(12)]
        for node in (0, 2)
    }

    def cfg():
        return ScenarioConfig(
            positions=line_positions(4, spacing=1.0),
            radio_range=1.1,
            algorithm="alg2-nonotify",
            seed=1,
            scripted_hunger=hunger,
        )

    unsharded = ShardedEngine(cfg(), num_shards=1, monitor_specs=specs)
    unsharded.run(until=60.0)
    sharded = ShardedEngine(
        cfg(), num_shards=2, workers=1, monitor_specs=specs
    )
    sharded.run(until=60.0)
    assert [v["monitor"] for v in unsharded.violations] == ["stale-priority"]
    assert [v["monitor"] for v in sharded.violations] == ["stale-priority"]


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "algorithm", ["oracle", "global-oracle", "token-mutex", "alg1-random"]
)
def test_global_state_algorithms_rejected(algorithm):
    with pytest.raises(ConfigurationError):
        ShardedEngine(_line_config(algorithm=algorithm), num_shards=2)


def test_callable_algorithm_rejected():
    def factory(ctx):  # pragma: no cover - never invoked
        raise AssertionError

    with pytest.raises(ConfigurationError):
        ShardedEngine(_line_config(algorithm=factory), num_shards=2)


def test_mobility_requires_max_speed():
    from repro.mobility.waypoint import RandomWaypoint

    config = _line_config(
        mobility_factory=lambda nid: RandomWaypoint(8.0, 2.0) if nid == 0 else None,
        delta_override=7,
    )
    with pytest.raises(ConfigurationError):
        ShardedEngine(config, num_shards=2)


def test_bad_shard_count_rejected():
    with pytest.raises(ConfigurationError):
        ShardedEngine(_line_config(), num_shards=0)
    with pytest.raises(ConfigurationError):
        ShardedEngine(_line_config(n=4), num_shards=5)


def test_coloring_algorithms_get_global_coloring():
    engine = ShardedEngine(
        _line_config(algorithm="choy-singh"), num_shards=2, workers=1
    )
    assert engine._config.initial_colors is not None
    result = engine.run(until=60.0)
    assert result.cs_entries > 0


# ----------------------------------------------------------------------
# Harness integration
# ----------------------------------------------------------------------


def test_replicate_with_shards_matches_inline_runs():
    config = _line_config()
    estimates = replicate(
        config, until=30.0, seeds=[1, 2], metrics=DEFAULT_METRICS, shards=2
    )
    inline = [
        run_sharded(
            dataclasses.replace(config, seed=seed),
            until=30.0, num_shards=2, workers=1,
        )
        for seed in (1, 2)
    ]
    expected = sum(r.cs_entries / r.duration for r in inline) / 2
    assert estimates["throughput"].mean == pytest.approx(expected)


def test_cli_run_accepts_shards(capsys):
    from repro.cli import main

    assert main([
        "run", "--topology", "line:8", "--algorithm", "alg2",
        "--until", "30", "--shards", "2", "--shard-workers", "1",
    ]) == 0
    out = capsys.readouterr().out
    assert "cs entries" in out.lower() or "alg2" in out


def test_multi_shard_probes_merge_with_honest_extrema():
    """Coordinator probes are an instrument-aware merge of the shard
    registries: counters sum, histogram min/max survive (a naive
    numeric merge would sum them), and the per-shard snapshots are
    preserved under resources for the shard-labeled OpenMetrics view.
    """
    result = run_sharded(
        _line_config(n=12, telemetry=True), until=60.0,
        num_shards=2, workers=1,
    )
    shard_probes = result.resources["shard_probes"]
    assert set(shard_probes) == {"0", "1"}
    merged = result.probes
    name = "fork.grant_latency"
    per_shard = [s[name] for s in shard_probes.values() if name in s]
    with_samples = [c for c in per_shard if c["count"]]
    assert with_samples, "expected grant-latency samples on some shard"
    assert merged[name]["count"] == sum(c["count"] for c in with_samples)
    assert merged[name]["min"] == min(c["min"] for c in with_samples)
    assert merged[name]["max"] == max(c["max"] for c in with_samples)
    counter = "alg2.notifications"
    assert result.probes[counter]["value"] == sum(
        s[counter]["value"] for s in shard_probes.values()
        if counter in s
    )


def test_multi_shard_merged_probes_worker_independent():
    one = run_sharded(
        _line_config(n=12, telemetry=True), until=60.0,
        num_shards=2, workers=1,
    )
    two = run_sharded(
        _line_config(n=12, telemetry=True), until=60.0,
        num_shards=2, workers=2,
    )
    assert one.probes == two.probes
    assert one.resources["shard_probes"] == two.resources["shard_probes"]


def test_telemetry_off_sharded_run_has_no_probe_plane():
    result = run_sharded(_line_config(), until=30.0, num_shards=2, workers=1)
    assert result.probes == {}
    assert "shard_probes" not in result.resources
