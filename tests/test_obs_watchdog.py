"""Tests for the starvation watchdog: unit semantics and crash scenarios."""

import pytest

from repro.metrics.collector import MetricsCollector
from repro.net.geometry import line_positions
from repro.obs.registry import MetricRegistry
from repro.obs.watchdog import StarvationWatchdog
from repro.runtime.simulation import ScenarioConfig, Simulation
from repro.sim.engine import Simulator


def _advance(sim, until):
    # Bounded run: the started watchdog reschedules itself forever, so
    # an unbounded drain would never terminate.
    sim.schedule_at(until, lambda: None)
    sim.run(until=until)


def test_threshold_and_period_must_be_positive():
    sim, metrics = Simulator(), MetricsCollector()
    with pytest.raises(ValueError):
        StarvationWatchdog(sim, metrics, threshold=0.0)
    with pytest.raises(ValueError):
        StarvationWatchdog(sim, metrics, threshold=5.0, period=-1.0)


def test_warns_once_per_hungry_interval():
    sim, metrics = Simulator(), MetricsCollector()
    dog = StarvationWatchdog(sim, metrics, threshold=10.0)
    metrics.note_hungry(1, 0.0)
    _advance(sim, 50.0)

    fresh = dog.check_now()
    assert [w.node for w in fresh] == [1]
    assert fresh[0].hungry_since == 0.0
    assert fresh[0].duration == 50.0
    # The same interval never warns twice.
    assert dog.check_now() == []

    # A new hungry interval warns again.
    metrics.note_eat_start(1, 50.0)
    metrics.note_think(1, 51.0)
    metrics.note_hungry(1, 51.0)
    _advance(sim, 100.0)
    again = dog.check_now()
    assert [w.node for w in again] == [1]
    assert again[0].hungry_since == 51.0
    assert len(dog.warnings) == 2


def test_crashed_nodes_are_never_reported():
    sim, metrics = Simulator(), MetricsCollector()
    dog = StarvationWatchdog(sim, metrics, threshold=10.0)
    metrics.note_hungry(1, 0.0)
    metrics.note_crash(1, 5.0)
    _advance(sim, 50.0)
    assert dog.check_now() == []


def test_periodic_ticks_and_registry_counter():
    sim, metrics = Simulator(), MetricsCollector()
    registry = MetricRegistry()
    dog = StarvationWatchdog(
        sim, metrics, threshold=10.0, period=5.0, registry=registry
    )
    metrics.note_hungry(2, 0.0)
    dog.start()
    _advance(sim, 30.0)
    dog.stop()
    assert [w.node for w in dog.warnings] == [2]
    assert registry.counter("watchdog.warnings").get() == 1
    assert dog.warning_dicts()[0]["kind"] == "starvation"


def test_warning_to_dict_round_trips_through_json():
    import json

    sim, metrics = Simulator(), MetricsCollector()
    dog = StarvationWatchdog(sim, metrics, threshold=1.0)
    metrics.note_hungry(3, 2.0)
    _advance(sim, 10.0)
    dog.check_now()
    (payload,) = dog.warning_dicts()
    assert json.loads(json.dumps(payload)) == payload
    assert payload["duration"] == payload["time"] - payload["hungry_since"]


# ----------------------------------------------------------------------
# End to end: crashed fork holder starves neighbors; oracle stays silent
# ----------------------------------------------------------------------


def _crash_scenario(algorithm):
    return ScenarioConfig(
        positions=line_positions(8, spacing=1.0),
        radio_range=1.1,
        algorithm=algorithm,
        seed=0,
        crashes=[(30.0, 4)],
        telemetry=True,
        watchdog=25.0,
    )


def test_crashed_fork_holder_fires_structured_warning():
    result = Simulation(_crash_scenario("alg2")).run(until=300.0)
    assert result.watchdog_warnings, "neighbors of the crashed node starve"
    warned = {w["node"] for w in result.watchdog_warnings}
    assert 4 not in warned, "the crashed node itself is not 'starving'"
    # Starvation stays local: a direct neighbor of the crashed fork
    # holder is affected, and nothing beyond distance 2 on the line.
    assert any(abs(node - 4) == 1 for node in warned)
    assert all(abs(node - 4) <= 2 for node in warned)
    for warning in result.watchdog_warnings:
        assert warning["kind"] == "starvation"
        assert warning["duration"] >= 25.0
    # The warning count also lands in the probe metrics.
    assert result.probes["watchdog.warnings"]["value"] == len(
        result.watchdog_warnings
    )


def test_oracle_baseline_is_silent_under_the_same_crash():
    result = Simulation(_crash_scenario("oracle")).run(until=300.0)
    assert result.watchdog_warnings == []


def test_watchdog_does_not_perturb_protocol_behavior():
    with_dog = Simulation(_crash_scenario("alg2")).run(until=300.0)
    config = _crash_scenario("alg2")
    config.watchdog = None
    without = Simulation(config).run(until=300.0)
    assert with_dog.cs_entries == without.cs_entries
    assert with_dog.messages_sent == without.messages_sent
    assert with_dog.response_times == without.response_times
