"""Smoke tests: the shipped examples run end-to-end.

Each example is executed as a subprocess (its own interpreter, exactly
as a user would run it); we check the exit code and a couple of
signature lines of its output.  Only the two fastest examples run here
to keep the suite quick — the longer ones are exercised by the
benchmark suite's equivalent experiments.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: float = 120.0):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart_example():
    out = run_example("quickstart.py")
    assert "critical-section entries" in out
    assert "starved nodes            : none" in out
    assert "Per-node fairness" in out


def test_meeting_room_example():
    out = run_example("meeting_room_projector.py")
    assert "takes the projector" in out
    assert "latecomer" in out
    assert "Recoloring runs per node" in out


@pytest.mark.slow
def test_failure_locality_demo_example():
    out = run_example("failure_locality_demo.py", timeout=300.0)
    assert "starvation radius" in out
    assert "alg2" in out and "chandy-misra" in out
