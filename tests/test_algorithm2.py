"""Tests for Algorithm 2 (Chapter 6): units and integration."""

import pytest

from repro.core.algorithm2 import Algorithm2
from repro.core.messages import ForkGrant, ForkRequest, Notification, Switch
from repro.core.states import NodeState
from repro.net.geometry import Point, line_positions
from repro.runtime.simulation import ScenarioConfig, Simulation
from repro.mobility import ScriptedMobility, ScriptedMove

from helpers import (
    FakeNode,
    assert_alg2_priorities_antisymmetric,
    assert_alg2_priority_graph_acyclic,
    assert_fork_uniqueness,
)


# ----------------------------------------------------------------------
# Unit level (FakeNode)
# ----------------------------------------------------------------------


def build_unit(node_id=1, neighbors=(0, 2)):
    node = FakeNode(node_id, neighbors)
    algorithm = Algorithm2(node)
    for peer in neighbors:
        algorithm.bootstrap_peer(peer)
    return node, algorithm


def test_bootstrap_matches_paper_initialization():
    node, alg = build_unit(node_id=1, neighbors=(0, 2))
    # at[j] and higher[j] true iff our id is smaller.
    assert not alg.forks.holds(0) and alg.forks.holds(2)
    assert alg.higher == {0: False, 2: True}


def test_hungry_broadcasts_notification_then_collects():
    node, alg = build_unit()
    node.set_state(NodeState.HUNGRY)
    alg.on_hungry()
    assert any(isinstance(m, Notification) for m in node.broadcasts)
    # Low neighbor is 2 (higher[2]); we already hold its fork, so the
    # high fork (from 0) is requested.
    assert [d for d, m in node.sent if isinstance(m, ForkRequest)] == [0]


def test_thinking_node_switches_below_all_on_notification():
    node, alg = build_unit(node_id=1, neighbors=(0, 2))
    # Node 2 (which we outrank: higher[2] is True from its perspective...
    # here: we outrank 0? higher[0]=False means 0 is NOT higher: we
    # outrank 0.  A notification from 0 while thinking -> switch storm.
    alg.on_message(0, Notification())
    switches = [d for d, m in node.sent if isinstance(m, Switch)]
    assert switches == [0]
    assert alg.higher[0] is True


def test_notification_from_higher_neighbor_ignored():
    node, alg = build_unit()
    alg.on_message(2, Notification())  # 2 already outranks us
    assert node.sent == []


def test_notification_ignored_while_hungry():
    node, alg = build_unit()
    node.set_state(NodeState.HUNGRY)
    alg.on_message(0, Notification())
    assert all(not isinstance(m, Switch) for _, m in node.sent)


def test_switch_receipt_lowers_sender_and_rechecks():
    node, alg = build_unit()
    node.set_state(NodeState.HUNGRY)
    alg.on_hungry()
    node.clear()
    # 2 was our low neighbor; it switches below us.
    alg.on_message(2, Switch())
    assert alg.higher[2] is False


def test_exit_cs_switches_below_all_and_grants():
    node, alg = build_unit()
    alg.forks.set_holds(0, True)
    alg.forks.suspended.add(0)
    node.set_state(NodeState.EATING)
    alg.on_exit_cs()
    kinds = [type(m).__name__ for _, m in node.sent]
    assert "Switch" in kinds and "ForkGrant" in kinds
    assert alg.higher[0] is True


def test_link_up_roles():
    node, alg = build_unit(node_id=1, neighbors=(0, 2))
    node.set_neighbors((0, 2, 7))
    alg.on_link_up(7, moving=False)  # we are static
    assert alg.forks.holds(7) and alg.higher[7] is False
    node.set_neighbors((0, 2, 7, 8))
    alg.on_link_up(8, moving=True)  # we are the mover
    assert not alg.forks.holds(8) and alg.higher[8] is True


def test_mover_demotes_from_eating():
    node, alg = build_unit()
    node.set_state(NodeState.EATING)
    node.set_neighbors((0, 2, 9))
    alg.on_link_up(9, moving=True)
    assert node.demote_calls == 1
    assert node.state is NodeState.HUNGRY


def test_link_down_forgets_state_and_rechecks():
    node, alg = build_unit()
    node.set_state(NodeState.HUNGRY)
    # We hold only the fork shared with 2; 0 departs; 2's fork is ours.
    node.set_neighbors((2,))
    alg.on_link_down(0)
    assert 0 not in alg.higher
    assert node.eat_calls == 1  # all remaining forks held -> eat


# ----------------------------------------------------------------------
# Integration (full simulation)
# ----------------------------------------------------------------------


def run_line(n=8, until=300.0, seed=3, **overrides):
    config = ScenarioConfig(
        positions=line_positions(n, spacing=1.0),
        algorithm="alg2",
        seed=seed,
        think_range=(0.5, 2.0),
        **overrides,
    )
    sim = Simulation(config)
    result = sim.run(until=until)
    return sim, result


def test_static_line_everyone_eats_repeatedly():
    sim, result = run_line()
    assert result.starved == []
    for node in range(8):
        assert result.metrics.counters[node].cs_entries >= 5


def test_invariants_hold_at_quiescence():
    sim, result = run_line()
    assert_fork_uniqueness(sim)
    assert_alg2_priorities_antisymmetric(sim)
    assert_alg2_priority_graph_acyclic(sim)


def test_crash_starves_at_most_radius_two():
    config = ScenarioConfig(
        positions=line_positions(11, spacing=1.0),
        algorithm="alg2",
        seed=5,
        think_range=(0.5, 2.0),
        crashes=[(15.0, 5)],
    )
    sim = Simulation(config)
    sim.run(until=600.0)
    report = sim.locality_report()
    radius = report.starvation_radius
    assert radius is None or radius <= 2, (
        f"Theorem 25 violated: starvation radius {radius}"
    )


def test_demotion_on_arrival_keeps_safety():
    # Node 3 starts isolated, then teleports next to node 1 while both
    # may be eating; the mover must demote, never violating safety.
    positions = [Point(0, 0), Point(1, 0), Point(2, 0), Point(50, 50)]
    config = ScenarioConfig(
        positions=positions,
        algorithm="alg2",
        seed=8,
        think_range=(0.1, 0.5),
        mobility_factory=lambda i: (
            ScriptedMobility([ScriptedMove(10.0, Point(1.0, 0.5))])
            if i == 3
            else None
        ),
    )
    sim = Simulation(config)
    result = sim.run(until=100.0)  # strict safety would raise on violation
    assert result.starved == []
    assert sim.topology.has_link(1, 3)


def test_switch_counter_grows():
    sim, result = run_line()
    total_switches = sum(
        sim.algorithm_of(i).switches_sent for i in range(8)
    )
    assert total_switches > 0
