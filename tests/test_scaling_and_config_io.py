"""Tests for power-law fitting and scenario serialization."""

import io

import pytest

from repro.analysis.scaling import doubling_ratio, fit_power_law
from repro.errors import ConfigurationError
from repro.harness.config_io import (
    config_from_dict,
    config_to_dict,
    load_config,
    save_config,
)
from repro.net.geometry import Point, line_positions
from repro.runtime.simulation import ScenarioConfig, Simulation
from repro.sim.clock import TimeBounds


# ----------------------------------------------------------------------
# Power-law fitting
# ----------------------------------------------------------------------


def test_fit_recovers_exact_power_law():
    xs = [1, 2, 4, 8, 16]
    ys = [3 * x ** 2 for x in xs]
    fit = fit_power_law(xs, ys)
    assert fit.exponent == pytest.approx(2.0)
    assert fit.coefficient == pytest.approx(3.0)
    assert fit.r_squared == pytest.approx(1.0)
    assert fit.predict(32) == pytest.approx(3 * 32 ** 2)


def test_fit_linear_vs_constant():
    xs = [2, 4, 8, 16]
    assert fit_power_law(xs, xs).exponent == pytest.approx(1.0)
    assert fit_power_law(xs, [5, 5, 5, 5]).exponent == pytest.approx(0.0)


def test_doubling_ratio_semantics():
    xs = [2, 4, 8]
    assert doubling_ratio(xs, [x ** 2 for x in xs]) == pytest.approx(4.0)
    assert doubling_ratio(xs, xs) == pytest.approx(2.0)


def test_fit_rejects_degenerate_input():
    with pytest.raises(ValueError):
        fit_power_law([1], [1])
    with pytest.raises(ValueError):
        fit_power_law([1, 2], [0, 5])  # non-positive y dropped -> 1 point
    with pytest.raises(ValueError):
        fit_power_law([3, 3], [1, 2])  # identical x
    with pytest.raises(ValueError):
        fit_power_law([1, 2], [1, 2, 3])


def test_fit_str_rendering():
    fit = fit_power_law([1, 2, 4], [2, 4, 8])
    assert "x^1.00" in str(fit)


# ----------------------------------------------------------------------
# Config serialization
# ----------------------------------------------------------------------


def sample_config():
    return ScenarioConfig(
        positions=line_positions(4, spacing=1.0),
        radio_range=1.5,
        algorithm="alg1-greedy",
        seed=9,
        bounds=TimeBounds(nu=0.5, tau=2.0, min_delay_fraction=1.0),
        think_range=(0.5, 1.5),
        max_entries=7,
        crashes=[(10.0, 2)],
        initial_colors={0: 0, 1: 1, 2: 0, 3: 1},
        scripted_hunger={0: [1.0, 5.0]},
        delta_override=3,
    )


def test_round_trip_preserves_fields():
    config = sample_config()
    rebuilt = config_from_dict(config_to_dict(config))
    assert rebuilt.positions == config.positions
    assert rebuilt.algorithm == config.algorithm
    assert rebuilt.seed == config.seed
    assert rebuilt.bounds == config.bounds
    assert rebuilt.think_range == config.think_range
    assert rebuilt.max_entries == config.max_entries
    assert rebuilt.crashes == config.crashes
    assert rebuilt.initial_colors == config.initial_colors
    assert rebuilt.scripted_hunger == config.scripted_hunger
    assert rebuilt.delta_override == config.delta_override


def test_round_trip_through_json_stream():
    config = sample_config()
    buffer = io.StringIO()
    save_config(config, buffer)
    buffer.seek(0)
    rebuilt = load_config(buffer)
    assert rebuilt.positions == config.positions
    assert rebuilt.crashes == config.crashes


def test_rebuilt_config_actually_runs_identically():
    config = ScenarioConfig(
        positions=line_positions(5, spacing=1.0),
        algorithm="alg2",
        seed=4,
        think_range=(0.5, 2.0),
    )
    rebuilt = config_from_dict(config_to_dict(config))
    a = Simulation(config).run(until=60.0)
    b = Simulation(rebuilt).run(until=60.0)
    assert a.cs_entries == b.cs_entries
    assert a.messages_sent == b.messages_sent


def test_mobility_block_attaches_models():
    data = config_to_dict(
        ScenarioConfig(positions=[Point(0, 0), Point(1, 0)], algorithm="alg2")
    )
    data["mobility"] = {
        "kind": "waypoint",
        "nodes": [0],
        "params": {"width": 4.0, "height": 4.0},
    }
    config = config_from_dict(data)
    assert config.mobility_factory is not None
    assert config.mobility_factory(0) is not None
    assert config.mobility_factory(1) is None


def test_unknown_mobility_kind_rejected():
    data = config_to_dict(
        ScenarioConfig(positions=[Point(0, 0)], algorithm="alg2")
    )
    data["mobility"] = {"kind": "jetpack", "nodes": [0], "params": {}}
    with pytest.raises(ConfigurationError):
        config_from_dict(data)


def test_callable_algorithm_does_not_serialize():
    config = ScenarioConfig(
        positions=[Point(0, 0)], algorithm=lambda ctx: None
    )
    with pytest.raises(ConfigurationError):
        config_to_dict(config)


def test_bad_positions_rejected():
    with pytest.raises(ConfigurationError):
        config_from_dict({"positions": "nope"})
