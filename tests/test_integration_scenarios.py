"""End-to-end acceptance scenarios combining features.

Each test is a miniature deployment story exercising several subsystems
at once (mobility + crashes + contention + partitions), always under
the strict safety monitor.
"""

import pytest

from repro.core.states import NodeState
from repro.mobility import RandomWaypoint, ScriptedMobility, ScriptedMove
from repro.net.geometry import Point, grid_positions, line_positions, ring_positions
from repro.runtime.simulation import ScenarioConfig, Simulation

from helpers import assert_fork_uniqueness


def test_partitioned_network_progresses_independently():
    """Two disconnected clusters each sustain local mutual exclusion."""
    positions = list(line_positions(4, spacing=1.0))
    positions += [Point(100.0 + i, 0.0) for i in range(4)]
    config = ScenarioConfig(
        positions=positions,
        algorithm="alg2",
        seed=11,
        think_range=(0.3, 1.5),
    )
    sim = Simulation(config)
    result = sim.run(until=120.0)
    assert not sim.topology.is_connected()
    for node in range(8):
        assert result.metrics.counters[node].cs_entries >= 5


def test_partitions_merge_and_stay_safe():
    """A bridging node reconnects two busy clusters mid-run."""
    positions = list(line_positions(3, spacing=1.0))          # cluster A: 0-2
    positions += [Point(6.0 + i, 0.0) for i in range(3)]      # cluster B: 3-5
    positions += [Point(50.0, 50.0)]                          # bridge: 6
    config = ScenarioConfig(
        positions=positions,
        algorithm="alg2",
        seed=12,
        think_range=(0.2, 1.0),
        mobility_factory=lambda i: (
            ScriptedMobility([ScriptedMove(40.0, Point(4.0, 0.2), speed=5.0)])
            if i == 6
            else None
        ),
    )
    sim = Simulation(config)
    result = sim.run(until=150.0)
    # The bridge links both sides (distance 2.2 to node 2 and 1.8 to 3
    # exceeds range 1.0? place check: it must at least be adjacent to
    # someone and have eaten).
    assert result.metrics.counters[6].cs_entries >= 1
    assert result.starved == []
    assert_fork_uniqueness(sim)


@pytest.mark.parametrize("algorithm", ["alg2", "alg1-greedy"])
def test_crash_and_mobility_together(algorithm):
    """A crash on one side while a mover churns the other side."""
    config = ScenarioConfig(
        positions=line_positions(9, spacing=1.0),
        algorithm=algorithm,
        seed=13,
        think_range=(0.3, 1.5),
        crashes=[(25.0, 1)],
        mobility_factory=lambda i: (
            RandomWaypoint(9.0, 2.0, speed_range=(0.5, 1.0),
                           pause_range=(5.0, 12.0))
            if i == 7
            else None
        ),
        delta_override=8,
    )
    sim = Simulation(config)
    result = sim.run(until=250.0)
    # The far side (nodes 4-8) keeps progressing after the crash.
    for node in range(4, 9):
        post = [
            s for s in result.metrics.samples
            if s.node == node and s.eating_at > 25.0
        ]
        assert post, f"node {node} made no progress after the crash"


def test_full_clique_contention():
    """A ring tight enough to be a clique: maximal local contention."""
    config = ScenarioConfig(
        positions=ring_positions(6, radius=0.45),
        radio_range=1.0,
        algorithm="alg2",
        seed=14,
        think_range=(0.0, 0.2),  # saturation
    )
    sim = Simulation(config)
    result = sim.run(until=120.0)
    entries = [result.metrics.counters[i].cs_entries for i in range(6)]
    assert min(entries) >= 5  # nobody is starved out of a clique
    # In a clique local mutex degenerates to global mutex: at most one
    # eater ever — guaranteed by the (strict) safety monitor having
    # stayed silent.


def test_everyone_moves_sometimes():
    """All nodes mobile: the hardest regime for Algorithm 1."""
    config = ScenarioConfig(
        positions=grid_positions(9, 1.0),
        radio_range=1.4,
        algorithm="alg1-greedy",
        seed=15,
        think_range=(0.5, 2.0),
        delta_override=8,
        mobility_factory=lambda i: RandomWaypoint(
            3.0, 3.0, speed_range=(0.3, 0.8), pause_range=(8.0, 20.0)
        ),
    )
    sim = Simulation(config)
    result = sim.run(until=300.0)
    total = result.cs_entries
    assert total > 100
    assert_fork_uniqueness(sim)


def test_crashed_node_neighbors_eventually_only_locals_starve():
    """Sanity on grids (not just lines): crash containment for alg2."""
    config = ScenarioConfig(
        positions=grid_positions(16, 1.0),
        radio_range=1.1,
        algorithm="alg2",
        seed=16,
        think_range=(0.3, 1.2),
        crashes=[(20.0, 5)],
    )
    sim = Simulation(config)
    sim.run(until=500.0)
    report = sim.locality_report()
    assert report.starvation_radius is None or report.starvation_radius <= 2


def test_long_run_stability():
    """A long mixed run: no drift, no leak of suspended requests."""
    config = ScenarioConfig(
        positions=line_positions(6, spacing=1.0),
        algorithm="alg2",
        seed=17,
        think_range=(0.2, 1.0),
    )
    sim = Simulation(config)
    result = sim.run(until=1000.0)
    assert result.starved == []
    # Suspended sets are transient: at quiescence of a think-heavy tail
    # they should not have grown without bound.
    for node in range(6):
        assert len(sim.algorithm_of(node).forks.suspended) <= 6
    # Fairness: entry counts within 3x of each other.
    entries = [result.metrics.counters[i].cs_entries for i in range(6)]
    assert max(entries) <= 3 * min(entries)
