#!/usr/bin/env python3
"""A tour of the mobility models and what they cost the protocols.

The same 16-node field runs Algorithm 2 under four mobility regimes —
static, random waypoint, Gauss-Markov (correlated velocity), and a
moving team (reference-point group mobility) — plus Algorithm 1 under
the most recoloring-hostile of them.  The table shows how movement
churn translates into response time, demotions and recoloring work,
with safety enforced by the strict monitor throughout.

Run:
    python examples/mobility_models_tour.py
"""

from repro import ScenarioConfig, Simulation
from repro.analysis.stats import summarize
from repro.analysis.tables import render_table
from repro.mobility import (
    GaussMarkov,
    GroupCenter,
    GroupMobility,
    RandomWaypoint,
)
from repro.net.geometry import grid_positions

N = 16
ARENA = 4.0
UNTIL = 400.0
MOVERS = 5  # nodes 0..4 move (where the regime says anyone moves)


def regime_factories():
    center = GroupCenter(
        start=grid_positions(N, 1.0)[0], width=ARENA, height=ARENA,
        speed=0.4, leg_duration=25.0,
    )
    return {
        "static": None,
        "waypoint": lambda i: (
            RandomWaypoint(ARENA, ARENA, speed_range=(0.5, 1.2),
                           pause_range=(5.0, 15.0))
            if i < MOVERS else None
        ),
        "gauss-markov": lambda i: (
            GaussMarkov(ARENA, ARENA, mean_speed=0.8, alpha=0.8)
            if i < MOVERS else None
        ),
        "group (team of 5)": lambda i: (
            GroupMobility(center, wander_radius=0.6, member_speed=1.0)
            if i < MOVERS else None
        ),
    }


def run(algorithm: str, regime: str, factory):
    config = ScenarioConfig(
        positions=grid_positions(N, 1.0),
        radio_range=1.3,
        algorithm=algorithm,
        seed=41,
        think_range=(0.5, 2.0),
        delta_override=N - 1,
        mobility_factory=factory,
    )
    sim = Simulation(config)
    result = sim.run(until=UNTIL)
    s = summarize(result.response_times)
    demotions = sum(c.demotions for c in result.metrics.counters.values())
    recolors = sum(
        getattr(sim.algorithm_of(i), "recolor_runs", 0) for i in range(N)
    )
    return [
        algorithm, regime, result.cs_entries, f"{s.mean:.2f}",
        f"{s.p95:.2f}", demotions, recolors,
        ",".join(map(str, result.starved)) or "-",
    ]


def main() -> None:
    rows = []
    for regime, factory in regime_factories().items():
        rows.append(run("alg2", regime, factory))
    # Algorithm 1 under the churn-heaviest regime, to show recoloring.
    rows.append(run("alg1-greedy", "gauss-markov",
                    regime_factories()["gauss-markov"]))
    print(render_table(
        ["algorithm", "mobility", "cs entries", "mean rt", "p95 rt",
         "demotions", "recolor runs", "starved"],
        rows,
        title=f"Mobility tour: {N}-node grid, {MOVERS} movers, {UNTIL} tu "
              "(strict safety monitor on)",
    ))
    print(
        "\nEvery regime kept full progress with zero mutual-exclusion "
        "violations;\nmovement shows up as demotions (preempted eaters) "
        "and, for Algorithm 1,\nrecoloring work."
    )


if __name__ == "__main__":
    main()
