#!/usr/bin/env python3
"""Failure locality, visualized: why Algorithm 2 is worth its messages.

A column of 13 relay nodes; the middle one dies silently at t=20 while
everyone keeps requesting the critical section.  With the classic
Chandy-Misra algorithm, the waiting chain radiating from the crash can
starve the entire column; with the paper's Algorithm 2 the damage stops
two hops away (Theorem 25: failure locality 2).

Run:
    python examples/failure_locality_demo.py
"""

from repro import ScenarioConfig, Simulation
from repro.net.geometry import line_positions

N = 13
CRASH_NODE = N // 2
CRASH_TIME = 20.0
DURATION = 600.0


def probe(algorithm: str):
    config = ScenarioConfig(
        positions=line_positions(N, spacing=1.0),
        algorithm=algorithm,
        seed=5,
        think_range=(0.5, 2.0),
        crashes=[(CRASH_TIME, CRASH_NODE)],
    )
    sim = Simulation(config)
    sim.run(until=DURATION)
    return sim.locality_report()


def render(algorithm: str, report) -> None:
    cells = []
    for node in range(N):
        if node == CRASH_NODE:
            cells.append("X")  # crashed
        elif node in report.starved:
            cells.append("#")  # starved
        else:
            cells.append(".")  # progressing
    radius = report.starvation_radius
    print(f"  {algorithm:>13s}  [{''.join(cells)}]  starvation radius = "
          f"{radius if radius is not None else 0}")


def main() -> None:
    print(f"{N}-node line, node {CRASH_NODE} crashes at t={CRASH_TIME} "
          f"(X = crashed, # = starved, . = progressing)\n")
    for algorithm in ("alg2", "alg1-linial", "alg1-greedy", "chandy-misra",
                      "ordered-ids"):
        render(algorithm, probe(algorithm))
    print(
        "\nAlgorithm 2 contains the damage to its 2-neighborhood "
        "(Theorem 25);\nChandy-Misra's waiting chains can starve nodes "
        "arbitrarily far away."
    )


if __name__ == "__main__":
    main()
