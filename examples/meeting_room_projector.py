#!/usr/bin/env python3
"""Meeting-room projector control (Chapter 1's second application).

"Another application of local mutual exclusion is to arbitrate access
to some piece of specialized hardware in a region, such as ... the
control over a projector in a meeting room."

Six laptops sit around a table; whoever holds the (local) critical
section drives the projector.  Mid-meeting, two latecomers walk in from
the corridor — their arrival must not let two people drive the
projector at once, and the paper's Algorithm 1 makes them *recolor*
before competing.  We print the control timeline and show the
latecomers integrating cleanly.

Run:
    python examples/meeting_room_projector.py
"""

from repro import ScenarioConfig, Simulation
from repro.mobility import ScriptedMobility, ScriptedMove
from repro.net.geometry import Point, ring_positions

ATTENDEES = 6
LATECOMERS = 2
ARRIVALS = (60.0, 90.0)
DURATION = 240.0


def main() -> None:
    # The table: six laptops on a ring, all in mutual radio range.
    positions = list(ring_positions(ATTENDEES, radius=0.45))
    # Latecomers start in the corridor, out of range.
    positions.append(Point(10.0, 0.0))
    positions.append(Point(12.0, 0.0))

    def arrivals(node_id):
        if node_id == ATTENDEES:
            return ScriptedMobility(
                [ScriptedMove(ARRIVALS[0], Point(0.0, 0.0), speed=2.0)]
            )
        if node_id == ATTENDEES + 1:
            return ScriptedMobility(
                [ScriptedMove(ARRIVALS[1], Point(0.1, 0.1), speed=2.0)]
            )
        return None

    config = ScenarioConfig(
        positions=positions,
        radio_range=1.5,
        algorithm="alg1-greedy",  # recoloring handles the walk-ins
        seed=31,
        think_range=(4.0, 12.0),  # presenters talk a while between slides
        mobility_factory=arrivals,
        mobility_step=1.0,
        trace=True,
    )
    sim = Simulation(config)
    result = sim.run(until=DURATION)

    print("Projector control timeline (node >= 6 are latecomers):")
    for record in sim.trace.select(category="cs.enter"):
        who = f"laptop-{record.node}"
        tag = "  <- latecomer" if record.node >= ATTENDEES else ""
        print(f"  t={record.time:7.2f}  {who} takes the projector{tag}")

    print()
    for node in range(len(positions)):
        entries = result.metrics.counters.get(node)
        count = entries.cs_entries if entries else 0
        print(f"  laptop-{node}: drove the projector {count} times")
    recolors = [sim.algorithm_of(i).recolor_runs for i in range(len(positions))]
    print(f"\nRecoloring runs per node: {recolors}")
    print("Latecomers recolored on arrival and nobody ever shared the "
          "projector (the strict safety monitor would have raised).")


if __name__ == "__main__":
    main()
