#!/usr/bin/env python3
"""Quickstart: local mutual exclusion on a small static network.

Runs the paper's Algorithm 2 (optimal failure locality) on an 8-node
line for 200 time units and prints what every downstream user wants to
know first: did everyone get their turns, how fast, at what message
cost — and was mutual exclusion ever violated (the strict safety
monitor would have raised).

Run:
    python examples/quickstart.py
"""

from repro import ScenarioConfig, run_simulation
from repro.analysis.stats import summarize
from repro.analysis.tables import render_table
from repro.net.geometry import line_positions


def main() -> None:
    config = ScenarioConfig(
        positions=line_positions(8, spacing=1.0),
        algorithm="alg2",          # Chapter 6: failure locality 2
        seed=7,
        think_range=(1.0, 4.0),    # time between a node's CS requests
    )
    result = run_simulation(config, until=200.0)

    print("Local mutual exclusion with Algorithm 2 (8-node line, 200 tu)")
    print(f"  critical-section entries : {result.cs_entries}")
    print(f"  messages sent            : {result.messages_sent}")
    print(f"  messages per CS entry    : {result.messages_per_cs():.1f}")
    print(f"  starved nodes            : {result.starved or 'none'}")
    summary = summarize(result.response_times)
    print(f"  response time            : {summary}")
    print()

    rows = []
    for node, counters in sorted(result.metrics.counters.items()):
        node_summary = summarize(result.metrics.response_times(node))
        rows.append(
            [node, counters.cs_entries,
             node_summary.mean if node_summary else float("nan"),
             node_summary.maximum if node_summary else float("nan")]
        )
    print(render_table(
        ["node", "cs entries", "mean response", "max response"], rows,
        title="Per-node fairness",
    ))


if __name__ == "__main__":
    main()
