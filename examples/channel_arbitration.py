#!/usr/bin/env python3
"""Wireless channel arbitration — the paper's motivating application.

Chapter 1: "nearby nodes can compete for exclusive access to a dedicated
wireless channel or to a satellite uplink facility using this algorithm.
They will be ensured of all eventually getting a turn to use the
communication channel exclusively."

Twenty sensor nodes are scattered over a field; a quarter of them are
mounted on patrol vehicles (random waypoint mobility).  Each node
periodically needs the uplink channel exclusively *within its radio
neighborhood* (two far-apart nodes can transmit simultaneously — that
is precisely why local, not global, mutual exclusion is the right
primitive).  We arbitrate with both of the paper's algorithms and
report utilization and fairness.

Run:
    python examples/channel_arbitration.py
"""

from repro import ScenarioConfig, Simulation, TimeBounds
from repro.analysis.stats import summarize
from repro.analysis.tables import render_table
from repro.metrics.fairness import jain_index
from repro.mobility import RandomWaypoint
from repro.net.geometry import random_positions
from repro.sim.rng import RandomSource

FIELD = 8.0          # field edge length (radio ranges)
NODES = 20
VEHICLES = 5         # nodes 0..4 patrol; the rest are static sensors
DURATION = 500.0


def arbitrate(algorithm: str) -> list:
    positions = random_positions(
        NODES, FIELD, FIELD, RandomSource(2024).stream("layout")
    )
    config = ScenarioConfig(
        positions=positions,
        radio_range=2.5,
        algorithm=algorithm,
        seed=99,
        bounds=TimeBounds(nu=0.05, tau=2.0),  # uplink bursts take ~2 tu
        think_range=(3.0, 10.0),              # data accumulates between bursts
        delta_override=NODES - 1,
        mobility_factory=lambda i: (
            RandomWaypoint(FIELD, FIELD, speed_range=(0.3, 0.8),
                           pause_range=(10.0, 40.0))
            if i < VEHICLES
            else None
        ),
    )
    sim = Simulation(config)
    result = sim.run(until=DURATION)

    entries = [result.metrics.counters[i].cs_entries for i in range(NODES)]
    summary = summarize(result.response_times)
    jain = jain_index(entries)
    return [
        algorithm,
        sum(entries),
        min(entries),
        f"{jain:.3f}",
        f"{summary.mean:.2f}",
        f"{summary.p95:.2f}",
        result.messages_sent,
        ",".join(map(str, result.starved)) or "-",
    ]


def main() -> None:
    print(__doc__.splitlines()[0])
    print(f"{NODES} nodes ({VEHICLES} mobile), field {FIELD}x{FIELD}, "
          f"{DURATION} tu\n")
    rows = [arbitrate(a) for a in ("alg2", "alg1-linial", "alg1-greedy")]
    print(render_table(
        ["algorithm", "uplink slots", "min/node", "jain fairness",
         "mean wait", "p95 wait", "messages", "starved"],
        rows,
        title="Channel arbitration (higher slots + fairness, lower wait = better)",
    ))
    print(
        "\nEvery node got uplink turns (min/node > 0) and no node starved —"
        "\nthe guarantee local mutual exclusion promises the application."
    )


if __name__ == "__main__":
    main()
