"""repro — reproduction of "Efficient and Robust Local Mutual Exclusion
in Mobile Ad Hoc Networks" (Alex Kogan, ICDCS 2008 / Technion MSc thesis).

Quickstart::

    from repro import ScenarioConfig, run_simulation
    from repro.net.geometry import line_positions

    config = ScenarioConfig(
        positions=line_positions(8, spacing=1.0),
        algorithm="alg2",
        seed=7,
    )
    result = run_simulation(config, until=200.0)
    print(result.cs_entries, max(result.response_times))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro._version import __version__
from repro.core.algorithm1 import Algorithm1
from repro.core.algorithm2 import Algorithm2
from repro.core.coloring.greedy import GreedyColoring
from repro.core.coloring.linial import LinialColoring
from repro.core.states import NodeState
from repro.errors import (
    ConfigurationError,
    ProtocolError,
    ReproError,
    SafetyViolation,
    SimulationError,
    TopologyError,
)
from repro.net.geometry import (
    Point,
    grid_positions,
    line_positions,
    random_positions,
    ring_positions,
)
from repro.runtime.simulation import (
    ScenarioConfig,
    Simulation,
    SimulationResult,
    run_simulation,
)
from repro.sim.clock import TimeBounds

__all__ = [
    "Algorithm1",
    "Algorithm2",
    "ConfigurationError",
    "GreedyColoring",
    "LinialColoring",
    "NodeState",
    "Point",
    "ProtocolError",
    "ReproError",
    "SafetyViolation",
    "ScenarioConfig",
    "Simulation",
    "SimulationError",
    "SimulationResult",
    "TimeBounds",
    "TopologyError",
    "grid_positions",
    "line_positions",
    "random_positions",
    "ring_positions",
    "run_simulation",
]
