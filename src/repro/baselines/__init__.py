"""Baseline protocols the paper compares against (Table 1 context).

* :class:`~repro.baselines.chandy_misra.ChandyMisra` — the hygienic
  dining philosophers algorithm [6]: dynamic priorities via clean/dirty
  forks; failure locality Theta(n) (waiting chains).
* :class:`~repro.baselines.choy_singh.ChoySingh` — the static
  double-doorway algorithm [9]: Algorithm 1's fork-collection stage
  with a fixed legal coloring and no recoloring; failure locality 4.
* :class:`~repro.baselines.ordered_ids.OrderedIds` — classic resource
  ordering: acquire forks in a global order; deadlock-free, unbounded
  waiting chains.
* :class:`~repro.baselines.centralized.CentralizedOracle` — an
  omniscient zero-message scheduler; the response-time floor.
"""

from repro.baselines.centralized import CentralizedOracle, OracleScheduler
from repro.baselines.chandy_misra import ChandyMisra
from repro.baselines.choy_singh import ChoySingh, legal_coloring
from repro.baselines.ordered_ids import OrderedIds

__all__ = [
    "CentralizedOracle",
    "ChandyMisra",
    "ChoySingh",
    "OrderedIds",
    "OracleScheduler",
    "legal_coloring",
]
