"""Resource-ordering baseline: acquire forks in a global link order.

The folklore deadlock-free solution (Dijkstra's resource hierarchy):
order all forks globally (here by their canonical link key) and have
each hungry node acquire its forks strictly in ascending order, holding
everything acquired until it finishes eating.  A holder grants a
request only for forks *above* its own current acquisition point (it
has not locked those yet) or while it is not competing; everything else
is deferred until it exits the critical section.

No doorways, no priority rotation: simple, deadlock-free, but waiting
chains are unbounded, so both response time and failure locality
degrade linearly with the chain length — the contrast Table 1's
comparison needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.core.base import LocalMutexAlgorithm, NodeServices
from repro.core.states import NodeState
from repro.net.messages import Message
from repro.net.topology import link_key


@dataclass(frozen=True)
class OIRequest(Message):
    """Ask the holder for the shared fork."""


@dataclass(frozen=True)
class OIFork(Message):
    """Hand the shared fork over."""


class OrderedIds(LocalMutexAlgorithm):
    """Global-order fork acquisition."""

    name = "ordered-ids"

    def __init__(self, node: NodeServices) -> None:
        super().__init__(node)
        self.holds_fork: Dict[int, bool] = {}
        self.deferred: Set[int] = set()
        #: The link currently being acquired (None while not collecting).
        self._target: Optional[Tuple[int, int]] = None

    def bootstrap_peer(self, peer: int) -> None:
        self.holds_fork[peer] = self.node_id < peer

    # ------------------------------------------------------------------
    def _order(self, peer: int) -> Tuple[int, int]:
        return link_key(self.node_id, peer)

    def _missing_in_order(self):
        return sorted(
            (
                peer
                for peer in self.node.neighbors()
                if not self.holds_fork.get(peer, False)
            ),
            key=self._order,
        )

    def _advance(self) -> None:
        """Request the smallest missing fork, or eat if none is missing."""
        if self.node.state is not NodeState.HUNGRY:
            return
        missing = self._missing_in_order()
        if not missing:
            self._target = None
            self.node.start_eating()
            return
        target_peer = missing[0]
        target = self._order(target_peer)
        if self._target != target:
            self._target = target
            self.node.send(target_peer, OIRequest())

    def _locked(self, peer: int) -> bool:
        """Is the fork shared with ``peer`` locked by our acquisition?"""
        if self.node.state is NodeState.EATING:
            return True
        if self.node.state is not NodeState.HUNGRY:
            return False
        if self._target is None:
            return True  # hungry with no pending target: all held forks locked
        return self._order(peer) <= self._target

    # ------------------------------------------------------------------
    def on_hungry(self) -> None:
        self._target = None
        self._advance()

    def on_exit_cs(self) -> None:
        self._target = None
        for peer in sorted(self.deferred):
            if self.holds_fork.get(peer, False) and peer in self.node.neighbors():
                self._grant(peer)
        self.deferred.clear()

    def _grant(self, peer: int) -> None:
        self.holds_fork[peer] = False
        self.deferred.discard(peer)
        self.node.send(peer, OIFork())

    def on_message(self, src: int, message: Message) -> None:
        if isinstance(message, OIRequest):
            if not self.holds_fork.get(src, False):
                return  # fork already in flight to src
            if self._locked(src):
                self.deferred.add(src)
            else:
                self._grant(src)
                # If the granted fork was our own next target, re-request.
                self._target = None
                self._advance()
        elif isinstance(message, OIFork):
            self.holds_fork[src] = True
            if self._target == self._order(src):
                self._target = None
            self._advance()

    # ------------------------------------------------------------------
    def on_link_up(self, peer: int, moving: bool) -> None:
        self.holds_fork[peer] = not moving
        if moving and self.node.state is NodeState.EATING:
            self.node.demote_to_hungry()
        self._target = None
        self._advance()

    def on_link_down(self, peer: int) -> None:
        self.holds_fork.pop(peer, None)
        self.deferred.discard(peer)
        if self._target == self._order(peer):
            self._target = None
        self._advance()
