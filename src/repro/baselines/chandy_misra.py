"""The Chandy–Misra hygienic dining philosophers algorithm [6].

The classic dynamic-priority solution the paper's Algorithm 2 descends
from: forks are *clean* or *dirty*; a hungry node requests missing
forks with request tokens; a holder yields a *dirty* fork (cleaning it
in transit) unless it is eating, and keeps a *clean* one.  Eating
dirties all forks, reversing the holder's priority below its neighbors.

Initial placement (all forks dirty, held by the smaller ID) makes the
precedence graph acyclic, which Chandy-Misra's proof needs.  Failure
locality is Theta(n): a crashed node holding a clean fork stalls its
neighbor, whose held forks stall *their* neighbors, and so on down a
waiting chain — the behavior experiment E3 exhibits.

Mobility support (not in the original) follows the paper's per-link
rules so the baseline can run in the same mobile scenarios: forks are
created at link-up owned by the static endpoint, destroyed at
link-down, and an eating mover demotes itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.base import LocalMutexAlgorithm, NodeServices
from repro.core.states import NodeState
from repro.net.messages import Message


@dataclass(frozen=True)
class CMRequest(Message):
    """The request token."""


@dataclass(frozen=True)
class CMFork(Message):
    """The fork (always sent clean)."""


class ChandyMisra(LocalMutexAlgorithm):
    """Hygienic dining philosophers, adapted to dynamic links."""

    name = "chandy-misra"

    def __init__(self, node: NodeServices) -> None:
        super().__init__(node)
        self.holds_fork: Dict[int, bool] = {}
        self.dirty: Dict[int, bool] = {}
        self.holds_token: Dict[int, bool] = {}
        self.deferred: Dict[int, bool] = {}

    # ------------------------------------------------------------------
    def bootstrap_peer(self, peer: int) -> None:
        """Acyclic start: smaller ID holds the (dirty) fork."""
        holds = self.node_id < peer
        self.holds_fork[peer] = holds
        self.dirty[peer] = True
        self.holds_token[peer] = not holds
        self.deferred[peer] = False

    # ------------------------------------------------------------------
    def _all_forks(self) -> bool:
        return all(
            self.holds_fork.get(j, False) for j in self.node.neighbors()
        )

    def _maybe_eat(self) -> None:
        if self.node.state is NodeState.HUNGRY and self._all_forks():
            self.node.start_eating()

    def _request_missing(self) -> None:
        for peer in sorted(self.node.neighbors()):
            if not self.holds_fork.get(peer, False) and self.holds_token.get(
                peer, False
            ):
                self.holds_token[peer] = False
                self.node.send(peer, CMRequest())

    def _grant(self, peer: int) -> None:
        """Yield the fork (cleaned); re-request it if we are hungry."""
        self.holds_fork[peer] = False
        self.deferred[peer] = False
        self.holds_token[peer] = True
        self.node.send(peer, CMFork())
        if self.node.state is NodeState.HUNGRY:
            self.holds_token[peer] = False
            self.node.send(peer, CMRequest())

    # ------------------------------------------------------------------
    def on_hungry(self) -> None:
        self._request_missing()
        self._maybe_eat()

    def on_exit_cs(self) -> None:
        for peer in sorted(self.node.neighbors()):
            self.dirty[peer] = True
            if self.deferred.get(peer, False) and self.holds_fork.get(peer, False):
                self._grant(peer)

    def on_message(self, src: int, message: Message) -> None:
        if isinstance(message, CMRequest):
            if not self.holds_fork.get(src, False):
                # The request crossed our grant in flight: the fork is
                # already on its way to src.  Keep the token for our own
                # future request; nothing is owed.
                self.holds_token[src] = True
                return
            if self.node.state is not NodeState.EATING and self.dirty.get(
                src, False
            ):
                self._grant(src)
            else:
                # Clean fork while hungry, or eating: defer.
                self.holds_token[src] = True
                self.deferred[src] = True
        elif isinstance(message, CMFork):
            self.holds_fork[src] = True
            self.dirty[src] = False
            self.deferred[src] = False
            self._maybe_eat()

    # ------------------------------------------------------------------
    def on_link_up(self, peer: int, moving: bool) -> None:
        if not moving:
            self.holds_fork[peer] = True
            self.dirty[peer] = True
            self.holds_token[peer] = False
            self.deferred[peer] = False
            return
        self.holds_fork[peer] = False
        self.dirty[peer] = True
        self.holds_token[peer] = True
        self.deferred[peer] = False
        if self.node.state is NodeState.EATING:
            self.node.demote_to_hungry()
        if self.node.state is NodeState.HUNGRY:
            self._request_missing()

    def on_link_down(self, peer: int) -> None:
        self.holds_fork.pop(peer, None)
        self.dirty.pop(peer, None)
        self.holds_token.pop(peer, None)
        self.deferred.pop(peer, None)
        self._maybe_eat()
