"""An omniscient centralized scheduler — the response-time floor.

Not a distributed algorithm at all: a single oracle sees every node's
state and the live topology, and admits hungry nodes in FIFO order the
instant no neighbor is eating.  Zero messages, zero latency.  Useful as
the lower-bound reference series in the Table 1 benchmark: no
message-passing protocol can respond faster on the same workload.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.base import LocalMutexAlgorithm, NodeServices
from repro.core.states import NodeState
from repro.net.messages import Message
from repro.net.topology import DynamicTopology


class OracleScheduler:
    """Shared admission controller (one per simulation).

    With ``global_exclusion`` the oracle enforces *global* mutual
    exclusion — at most one eater anywhere — turning it into an
    idealized stand-in for the token-based global-mutex algorithms the
    paper's introduction contrasts against (Walter et al. [39] etc.).
    Comparing the two oracle modes isolates exactly what "local" buys:
    spatial reuse of the critical section.
    """

    def __init__(
        self, topology: DynamicTopology, global_exclusion: bool = False
    ) -> None:
        self._topology = topology
        self._global = global_exclusion
        self._queue: List[int] = []
        self._nodes: Dict[int, "CentralizedOracle"] = {}

    def register(self, algorithm: "CentralizedOracle") -> None:
        self._nodes[algorithm.node_id] = algorithm

    # ------------------------------------------------------------------
    def request(self, node_id: int) -> None:
        if node_id not in self._queue:
            self._queue.append(node_id)
        self._admit()

    def release(self, node_id: int) -> None:
        self._admit()

    def withdraw(self, node_id: int) -> None:
        """Drop a node from the queue (it crashed or was demoted)."""
        if node_id in self._queue:
            self._queue.remove(node_id)

    def topology_changed(self) -> None:
        self._admit()

    # ------------------------------------------------------------------
    def _eating(self, node_id: int) -> bool:
        algorithm = self._nodes.get(node_id)
        return (
            algorithm is not None
            and algorithm.node.state is NodeState.EATING
        )

    def _admit(self) -> None:
        admitted = True
        while admitted:
            admitted = False
            for node_id in list(self._queue):
                algorithm = self._nodes[node_id]
                if algorithm.node.state is not NodeState.HUNGRY:
                    self._queue.remove(node_id)
                    continue
                if self._global:
                    blockers = (
                        j for j in self._nodes if j != node_id
                    )
                else:
                    blockers = self._topology.neighbors(node_id)
                if any(self._eating(j) for j in blockers):
                    continue
                self._queue.remove(node_id)
                algorithm.node.start_eating()
                admitted = True
                break


class CentralizedOracle(LocalMutexAlgorithm):
    """Per-node shim delegating every decision to the shared oracle."""

    name = "oracle"

    def __init__(self, node: NodeServices, scheduler: OracleScheduler) -> None:
        super().__init__(node)
        self.scheduler = scheduler
        scheduler.register(self)

    def on_hungry(self) -> None:
        self.scheduler.request(self.node_id)

    def on_exit_cs(self) -> None:
        self.scheduler.release(self.node_id)

    def on_message(self, src: int, message: Message) -> None:
        pass  # the oracle never sends messages

    def on_link_up(self, peer: int, moving: bool) -> None:
        if moving and self.node.state is NodeState.EATING:
            self.node.demote_to_hungry()
            self.scheduler.request(self.node_id)
        self.scheduler.topology_changed()

    def on_link_down(self, peer: int) -> None:
        self.scheduler.topology_changed()
