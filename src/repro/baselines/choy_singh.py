"""The Choy–Singh static double-doorway baseline [9].

Choy and Singh's algorithm is Algorithm 1's ancestor: a fixed legal
coloring plus the fork-collection module behind a double doorway, with
failure locality 4 and response time O(delta^2) in static networks.
The paper notes (end of Section 5.3) that Algorithm 1 degenerates to
exactly this once all nodes are legally colored and nothing moves — so
the baseline *is* Algorithm 1 instantiated with a precomputed legal
coloring, which doubles as a consistency check on the shared machinery.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.algorithm1 import Algorithm1
from repro.core.base import NodeServices
from repro.core.coloring.greedy import GreedyColoring
from repro.net.topology import DynamicTopology


def legal_coloring(topology: DynamicTopology) -> Dict[int, int]:
    """Greedy legal coloring of the whole (initial) communication graph.

    Deterministic: nodes in ascending id order take the smallest color
    unused by already-colored neighbors.  Uses at most delta+1 colors.
    """
    colors: Dict[int, int] = {}
    for node in topology.nodes():
        used = {
            colors[j] for j in topology.neighbors(node) if j in colors
        }
        color = 0
        while color in used:
            color += 1
        colors[node] = color
    return colors


class ChoySingh(Algorithm1):
    """Algorithm 1 with a fixed initial coloring (static setting)."""

    name = "choy-singh"

    def __init__(
        self,
        node: NodeServices,
        initial_colors: Dict[int, int],
        coloring: Optional[GreedyColoring] = None,
    ) -> None:
        super().__init__(
            node,
            coloring=coloring or GreedyColoring(),
            initial_colors=initial_colors,
        )
