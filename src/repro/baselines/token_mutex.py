"""A distributed token-based GLOBAL mutual exclusion baseline.

The paper's related work discusses token-based mutual exclusion in
MANETs (Walter et al. [39] route a single token over link-reversal
heights).  Global mutex solves a *stronger* (and, the introduction
argues, less useful) problem than local mutex: the token serializes the
entire network.  To quantify that cost with a real message-passing
protocol — not just the omniscient ``global-oracle`` — we implement
Raymond's classic spanning-tree token algorithm:

* one token exists per connected component; its holder may eat;
* every node keeps a ``parent`` pointer along a spanning tree, always
  oriented toward the current holder, a FIFO queue of pending
  requesters (children or itself), and an ``asked`` flag so each node
  has at most one outstanding request;
* a request travels up parent pointers to the holder; the token travels
  back down, reversing the pointers as it goes (the tree-structured
  ancestor of the link-reversal idea the paper's Algorithm 2 also
  descends from).

**Static networks only**: Raymond's tree does not survive topology
changes (the MANET token algorithms exist precisely to fix that); the
harness uses this baseline for the E10 throughput comparison on static
topologies.  Link events raise so misconfiguration fails fast.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional

from repro.core.base import LocalMutexAlgorithm, NodeServices
from repro.core.states import NodeState
from repro.errors import ProtocolError
from repro.net.messages import Message
from repro.net.topology import DynamicTopology


@dataclass(frozen=True)
class TokenRequest(Message):
    """Ask the parent to (eventually) send the token."""


@dataclass(frozen=True)
class Token(Message):
    """The privilege token itself."""


def spanning_tree(topology: DynamicTopology) -> Dict[int, Optional[int]]:
    """BFS parent pointers per connected component.

    The component's smallest node id is its root (parent ``None``) and
    initially holds that component's token.
    """
    parents: Dict[int, Optional[int]] = {}
    for component in topology.components():
        root = min(component)
        parents[root] = None
        frontier = deque([root])
        seen = {root}
        while frontier:
            node = frontier.popleft()
            for neighbor in sorted(topology.neighbors(node)):
                if neighbor not in seen:
                    seen.add(neighbor)
                    parents[neighbor] = node
                    frontier.append(neighbor)
    return parents


class RaymondToken(LocalMutexAlgorithm):
    """Raymond's algorithm; a per-component token serializes eating."""

    name = "token-mutex"

    def __init__(
        self, node: NodeServices, parents: Dict[int, Optional[int]]
    ) -> None:
        super().__init__(node)
        self.parent: Optional[int] = parents.get(node.node_id)
        self.holder = self.parent is None
        self.asked = False
        self.queue: Deque[int] = deque()

    # ------------------------------------------------------------------
    def _request_upward(self) -> None:
        if self.holder or self.asked or not self.queue:
            return
        assert self.parent is not None
        self.node.send(self.parent, TokenRequest())
        self.asked = True

    def _assign(self) -> None:
        """Holding the token and idle: serve the queue head."""
        if not self.holder or self.node.state is NodeState.EATING:
            return
        if not self.queue:
            return
        head = self.queue.popleft()
        if head == self.node_id:
            self.node.start_eating()
            return
        # Pass the token down; the edge reverses (head becomes parent).
        self.holder = False
        self.parent = head
        self.asked = False
        self.node.send(head, Token())
        # If others are still waiting here, immediately re-request.
        self._request_upward()

    # ------------------------------------------------------------------
    def on_hungry(self) -> None:
        self.queue.append(self.node_id)
        if self.holder:
            self._assign()
        else:
            self._request_upward()

    def on_exit_cs(self) -> None:
        # Still the holder; serve whoever queued while we ate.  Serving
        # must wait until the state flips to THINKING, so schedule it
        # for the same instant after the exit completes.
        self.node.sim.schedule(0.0, self._assign)

    def on_message(self, src: int, message: Message) -> None:
        if isinstance(message, TokenRequest):
            self.queue.append(src)
            if self.holder:
                self._assign()
            else:
                self._request_upward()
        elif isinstance(message, Token):
            self.holder = True
            self.parent = None
            self.asked = False
            self._assign()

    # ------------------------------------------------------------------
    def on_link_up(self, peer: int, moving: bool) -> None:
        raise ProtocolError(
            "token-mutex is a static-network baseline; topology changed"
        )

    def on_link_down(self, peer: int) -> None:
        raise ProtocolError(
            "token-mutex is a static-network baseline; topology changed"
        )
