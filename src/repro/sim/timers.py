"""Restartable one-shot timers on top of any runtime."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.sim.events import EventPriority

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.interface import Runtime, TimerHandle


class Timer:
    """A one-shot timer that can be (re)started and cancelled freely.

    Protocol code frequently needs "fire X after d unless something else
    happens first"; wrapping the schedule/cancel pair avoids dangling
    event handles scattered through algorithm state.

    ``sim`` is anything satisfying the
    :class:`~repro.runtime.interface.Runtime` protocol — the
    discrete-event simulator in tests and experiments, a wall-clock
    runtime in :mod:`repro.live` deployments.
    """

    def __init__(
        self,
        sim: "Runtime",
        callback: Callable[..., None],
        *args: Any,
        priority: EventPriority = EventPriority.NORMAL,
    ) -> None:
        self._sim = sim
        self._callback = callback
        self._args = args
        self._priority = priority
        self._event: Optional["TimerHandle"] = None

    @property
    def pending(self) -> bool:
        """True if the timer is armed and has not yet fired."""
        return self._event is not None and self._event.pending

    @property
    def deadline(self) -> Optional[float]:
        """Absolute fire time while armed, else None."""
        if self.pending:
            assert self._event is not None
            return self._event.time
        return None

    def start(self, delay: float) -> None:
        """Arm the timer; restarts (and supersedes) any pending deadline.

        Goes through :meth:`Simulator.schedule_timer`, so under the
        ladder discipline the deadline usually parks in the timer wheel
        and the (overwhelmingly common) restart-before-fire pattern
        never touches the main queue.
        """
        self.cancel()
        self._event = self._sim.schedule_timer(
            delay, self._fire, priority=self._priority
        )

    def cancel(self) -> None:
        """Disarm the timer if armed."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback(*self._args)
