"""Conservative parallel simulation over spatial shards.

:class:`ShardedEngine` splits a scenario into stripes
(:mod:`repro.sim.partition`), runs each stripe as an ordinary
:class:`~repro.runtime.simulation.Simulation` with its own event heap,
RNG streams and kinetic-mobility state, and advances all of them in
lock-step windows of one conservative lookahead
(:func:`~repro.sim.partition.conservative_lookahead`).  At each window
barrier the coordinator

1. drains every shard's outbox (messages whose destination is a ghost
   mirror of a remote node) and routes each transmission to the
   destination's owning shard, where it is injected through
   ``Simulator.ingest`` — the lookahead guarantees its arrival time lies
   beyond the barrier, so causality can never be violated;
2. collects the true positions of every moving node, feeds them to a
   global *halo topology* whose radius is
   :func:`~repro.sim.partition.halo_width`, and turns new cross-owner
   halo links into new ghost entries (and known ghost movers into
   position refreshes) for the affected shards.

Ownership is sticky — a node is simulated forever by the shard owning
its initial position — so per-node RNG streams, workloads and crash
injections never migrate and results are identical for any worker
count.  ``num_shards=1`` bypasses all of this and delegates to a plain
in-process :class:`Simulation`, making it bit-identical to the
unsharded engine by construction.

What multi-shard mode cannot host: algorithms built on global shared
state (``oracle``, ``global-oracle``, ``token-mutex``), the shared-RNG
``alg1-random``, and callable algorithm entries.  ``choy-singh`` and
``alg1-nodoorway`` eagerly color the topology at build time, so the
coordinator precomputes one global legal coloring for them; the Linial
delta is likewise pinned globally via ``delta_override``.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.metrics.collector import MetricsCollector
from repro.obs.registry import merge_snapshots
from repro.net.geometry import Point
from repro.net.topology import DynamicTopology
from repro.runtime.simulation import (
    ScenarioConfig,
    Simulation,
    SimulationResult,
    peak_rss_kb,
)
from repro.sim.partition import (
    ShardContext,
    build_partition,
    conservative_lookahead,
    halo_width,
)

#: Registry names whose factories close over global mutable state (a
#: central scheduler, a spanning tree) or the shared coloring RNG;
#: they cannot be split across shards.
_UNSHARDABLE = frozenset(
    {"oracle", "global-oracle", "token-mutex", "alg1-random"}
)

#: Registry names that eagerly compute a coloring of the topology they
#: can see at build time; shards must be handed one global coloring.
_NEEDS_GLOBAL_COLORING = frozenset({"choy-singh", "alg1-nodoorway"})


class _ShardHost:
    """One shard's simulation plus its barrier-protocol endpoints."""

    def __init__(
        self,
        config: ScenarioConfig,
        context: ShardContext,
        monitor_specs: Optional[List[Dict[str, Any]]],
    ) -> None:
        self.context = context
        self.simulation = Simulation(config, shard=context)
        self.suite = None
        if monitor_specs:
            from repro.explore.monitors import MonitorSuite, build_monitors

            self.suite = MonitorSuite(build_monitors(monitor_specs))
            self.suite.attach(self.simulation)

    # ------------------------------------------------------------------
    def advance(
        self,
        horizon: float,
        inbound: List[Tuple[int, int, Any, float]],
        ghost_updates: List[Tuple[int, float, float]],
    ) -> Dict[str, Any]:
        """Run one window: apply barrier inputs, execute to ``horizon``."""
        simulation = self.simulation
        engine = simulation.sim
        self._apply_ghost_updates(ghost_updates)
        if inbound:
            engine.ingest(
                [
                    (arrival, simulation.channel.receive_remote, (src, dst, message))
                    for src, dst, message, arrival in inbound
                ]
            )
        engine.set_safe_horizon(horizon)
        engine.run(until=horizon)
        outbox = list(self.context.outbox)
        self.context.outbox.clear()
        return {
            "outbox": outbox,
            "movers": self._mover_report(),
            "violation": self._violation(),
        }

    def _apply_ghost_updates(
        self, updates: List[Tuple[int, float, float]]
    ) -> None:
        """Materialize ghost births and barrier position refreshes.

        Moves go through ``mobility.teleport`` rather than raw topology
        calls so the kinetic engine re-certifies every in-flight local
        mover against the ghost's new position, and so the link layer's
        moving flag mirrors what the owning shard's link layer sees
        while the remote node's own motion toggles links.
        """
        simulation = self.simulation
        topology = simulation.topology
        linklayer = simulation.linklayer
        for node_id, x, y in updates:
            point = Point(x, y)
            if node_id in topology:
                if topology.position(node_id) != point:
                    simulation.mobility.teleport(node_id, point)
                continue
            self.context.ghost_nodes.add(node_id)
            linklayer.set_moving(node_id, True)
            linklayer.apply_diff(topology.upsert_node(node_id, point))
            linklayer.set_moving(node_id, False)
            # A zero-distance teleport re-certifies in-flight movers
            # against the newcomer without touching any link.
            simulation.mobility.teleport(node_id, point)

    def _mover_report(self) -> List[Tuple[int, float, float]]:
        """True positions of every owned node that has a mobility model."""
        mobility = self.simulation.mobility
        report = []
        for node_id in mobility.attached_nodes():
            position = mobility.position_now(node_id)
            report.append((node_id, position.x, position.y))
        return report

    def _violation(self) -> Optional[Dict[str, Any]]:
        if self.suite is not None and self.suite.violation is not None:
            return self.suite.violation.to_dict()
        return None

    # ------------------------------------------------------------------
    def finish(self, until: float, threshold: float) -> Dict[str, Any]:
        """Finalize monitors and extract the picklable result payload."""
        if self.suite is not None:
            self.suite.finalize()
        engine = self.simulation.sim
        engine.set_safe_horizon(None)
        if self._violation() is not None:
            # The violating shard stopped mid-window; freeze it there.
            result = self.simulation.run(
                until=engine.now, max_events=0, starvation_threshold=threshold
            )
        else:
            result = self.simulation.run(
                until=until, starvation_threshold=threshold
            )
        return {
            "duration": result.duration,
            "metrics": result.metrics,
            "messages_sent": result.messages_sent,
            "messages_by_kind": result.messages_by_kind,
            "cs_entries": result.cs_entries,
            "starved": result.starved,
            "channel": result.channel,
            "engine": result.engine,
            "probes": result.probes,
            "watchdog_warnings": result.watchdog_warnings,
            "violation": self._violation(),
            "monitor_checks": self.suite.checks if self.suite else 0,
        }


def _worker_main(conn, config, shard_ids, contexts, monitor_specs) -> None:
    """Child-process loop hosting a contiguous group of shards.

    Spawned via fork, so the (possibly unpicklable) config travels by
    memory inheritance; only the barrier payloads cross the pipe.
    """
    hosts = {
        shard_id: _ShardHost(config, contexts[shard_id], monitor_specs)
        for shard_id in shard_ids
    }
    try:
        while True:
            message = conn.recv()
            tag = message[0]
            if tag == "advance":
                _, horizon, inbound, ghost_updates = message
                conn.send(
                    {
                        shard_id: hosts[shard_id].advance(
                            horizon,
                            inbound.get(shard_id, []),
                            ghost_updates.get(shard_id, []),
                        )
                        for shard_id in shard_ids
                    }
                )
            elif tag == "finish":
                _, until, threshold = message
                conn.send(
                    {
                        "shards": {
                            shard_id: hosts[shard_id].finish(until, threshold)
                            for shard_id in shard_ids
                        },
                        "peak_rss_kb": peak_rss_kb(),
                    }
                )
            else:  # "stop"
                break
    finally:
        conn.close()


class _InProcessWorker:
    """Hosts every shard in the coordinator process (workers=1).

    Same send/recv surface as :class:`_PipeWorker`, so the barrier loop
    is oblivious to where shards live; recv() performs the work.
    """

    def __init__(self, config, contexts, monitor_specs) -> None:
        self._hosts = {
            context.shard_id: _ShardHost(config, context, monitor_specs)
            for context in contexts
        }
        self._pending = None

    def send(self, message) -> None:
        self._pending = message

    def recv(self):
        message, self._pending = self._pending, None
        tag = message[0]
        if tag == "advance":
            _, horizon, inbound, ghost_updates = message
            return {
                shard_id: host.advance(
                    horizon,
                    inbound.get(shard_id, []),
                    ghost_updates.get(shard_id, []),
                )
                for shard_id, host in self._hosts.items()
            }
        _, until, threshold = message
        return {
            "shards": {
                shard_id: host.finish(until, threshold)
                for shard_id, host in self._hosts.items()
            },
            "peak_rss_kb": peak_rss_kb(),
        }


class _PipeWorker:
    """A forked process hosting a contiguous group of shards."""

    def __init__(self, context, config, shard_ids, contexts, monitor_specs):
        self._conn, child_conn = context.Pipe()
        self._process = context.Process(
            target=_worker_main,
            args=(child_conn, config, shard_ids, contexts, monitor_specs),
        )
        self._process.start()
        child_conn.close()

    def send(self, message) -> None:
        self._conn.send(message)

    def recv(self):
        return self._conn.recv()

    def close(self) -> None:
        self._conn.close()
        self._process.join(timeout=30)
        if self._process.is_alive():  # pragma: no cover - hang guard
            self._process.terminate()
            self._process.join()


class ShardedEngine:
    """Coordinator for a spatially sharded run.

    Args:
        config: the scenario, exactly as for :class:`Simulation`.
        num_shards: stripes to split the arena into; 1 delegates to a
            plain in-process simulation (bit-identical results).
        workers: processes hosting the shards (each takes a contiguous
            group).  Defaults to ``min(num_shards, cpu_count)``;
            1 hosts every shard in this process.  Results are identical
            for every worker count.
        max_speed: upper bound on node speed, required whenever the
            scenario has mobility — it enters the lookahead and the
            ghost-halo width.
        monitor_specs: optional invariant-monitor specs (see
            :func:`repro.explore.monitors.build_monitors`) installed
            per shard; any violation stops the run at the next barrier
            and lands in :attr:`violations`.
    """

    def __init__(
        self,
        config: ScenarioConfig,
        num_shards: int,
        workers: Optional[int] = None,
        max_speed: Optional[float] = None,
        monitor_specs: Optional[List[Dict[str, Any]]] = None,
    ) -> None:
        if num_shards < 1:
            raise ConfigurationError(f"num_shards must be >= 1: {num_shards}")
        self.num_shards = num_shards
        self.max_speed = max_speed
        self.monitor_specs = monitor_specs
        self.violations: List[Dict[str, Any]] = []
        self.windows = 0
        self.lookahead: Optional[float] = None
        if workers is None:
            workers = min(num_shards, os.cpu_count() or 1)
        self.workers = max(1, min(workers, num_shards))
        if num_shards == 1:
            self._config = config
            return
        self._config = self._validated_config(config)
        if config.mobility_factory is not None:
            if max_speed is None or max_speed <= 0:
                raise ConfigurationError(
                    "sharded runs with mobility need max_speed > 0 "
                    "(it bounds the lookahead and the ghost halo)"
                )
        self.lookahead = conservative_lookahead(
            config.bounds,
            radio_range=config.radio_range,
            max_speed=max_speed or 0.0,
        )
        self._halo = halo_width(
            config.radio_range, max_speed or 0.0, self.lookahead
        )
        self._partition = build_partition(config.positions, num_shards)
        self._owner = [
            self._partition.shard_of(p) for p in config.positions
        ]
        # Global halo topology: tracks every node's latest reported true
        # position; a cross-owner link in here means the two shards must
        # mirror each other's endpoint.
        self._halo_topo = DynamicTopology(radio_range=self._halo)
        for node_id, position in enumerate(config.positions):
            self._halo_topo.add_node(node_id, position)
        self._ghosts_known: List[set] = [set() for _ in range(num_shards)]
        for a, b in self._halo_topo.links():
            if self._owner[a] != self._owner[b]:
                self._ghosts_known[self._owner[a]].add(b)
                self._ghosts_known[self._owner[b]].add(a)
        self._contexts = [
            ShardContext(
                shard_id=shard_id,
                num_shards=num_shards,
                local_nodes=frozenset(
                    node_id
                    for node_id, owner in enumerate(self._owner)
                    if owner == shard_id
                ),
                ghost_nodes=set(self._ghosts_known[shard_id]),
            )
            for shard_id in range(num_shards)
        ]

    # ------------------------------------------------------------------
    def _validated_config(self, config: ScenarioConfig) -> ScenarioConfig:
        algorithm = config.algorithm
        if callable(algorithm):
            raise ConfigurationError(
                "sharded runs need a registry algorithm name, not a callable"
            )
        name = str(algorithm)
        if name in _UNSHARDABLE:
            raise ConfigurationError(
                f"algorithm {name!r} relies on global shared state and "
                f"cannot run sharded"
            )
        full_topology = DynamicTopology(radio_range=config.radio_range)
        for node_id, position in enumerate(config.positions):
            full_topology.add_node(node_id, position)
        changes: Dict[str, Any] = {}
        if config.delta_override is None:
            # Every shard must build Linial machinery for the same delta;
            # a shard's local view can undercount the global max degree.
            changes["delta_override"] = max(1, full_topology.max_degree())
        if name in _NEEDS_GLOBAL_COLORING and config.initial_colors is None:
            from repro.baselines.choy_singh import legal_coloring

            changes["initial_colors"] = legal_coloring(full_topology)
        return dataclasses.replace(config, **changes) if changes else config

    # ------------------------------------------------------------------
    def run(
        self,
        until: float,
        starvation_threshold: Optional[float] = None,
    ) -> SimulationResult:
        """Advance every shard to ``until`` and merge the results."""
        threshold = (
            starvation_threshold
            if starvation_threshold is not None
            else 0.2 * until
        )
        if self.num_shards == 1:
            return self._run_single(until, threshold)
        wall_started = perf_counter()
        groups = self._shard_groups()
        use_processes = self.workers > 1 and self._fork_context() is not None
        if use_processes:
            merged = self._run_multiprocess(until, threshold, groups)
        else:
            merged = self._run_inprocess(until, threshold)
        merged.resources["wall_time_s"] = perf_counter() - wall_started
        executed = merged.engine["executed_events"]
        wall = merged.resources["wall_time_s"]
        merged.engine["wall_time_s"] = wall
        merged.engine["events_per_sec"] = executed / wall if wall > 0 else 0.0
        merged.resources["events_per_sec"] = merged.engine["events_per_sec"]
        return merged

    def _run_single(self, until: float, threshold: float) -> SimulationResult:
        simulation = Simulation(self._config)
        suite = None
        if self.monitor_specs:
            from repro.explore.monitors import MonitorSuite, build_monitors

            suite = MonitorSuite(build_monitors(self.monitor_specs))
            suite.attach(simulation)
        result = simulation.run(until=until, starvation_threshold=threshold)
        if suite is not None:
            suite.finalize()
            if suite.violation is not None:
                self.violations = [
                    {"shard": 0, **suite.violation.to_dict()}
                ]
        return result

    # ------------------------------------------------------------------
    def _shard_groups(self) -> List[List[int]]:
        """Contiguous shard blocks, one per worker."""
        n, w = self.num_shards, self.workers
        return [
            list(range(i * n // w, (i + 1) * n // w)) for i in range(w)
        ]

    @staticmethod
    def _fork_context():
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-Unix platforms
            return None

    def _run_inprocess(self, until: float, threshold: float) -> SimulationResult:
        workers = [
            _InProcessWorker(self._config, self._contexts, self.monitor_specs)
        ]
        payloads, rss = self._drive(workers, until, threshold)
        return self._merge(payloads, rss, threshold)

    def _run_multiprocess(
        self, until: float, threshold: float, groups: List[List[int]]
    ) -> SimulationResult:
        context = self._fork_context()
        workers: List[_PipeWorker] = []
        try:
            for group in groups:
                workers.append(
                    _PipeWorker(
                        context,
                        self._config,
                        group,
                        {s: self._contexts[s] for s in group},
                        self.monitor_specs,
                    )
                )
            payloads, rss = self._drive(workers, until, threshold)
            for worker in workers:
                worker.send(("stop",))
            return self._merge(payloads, rss, threshold)
        finally:
            for worker in workers:
                worker.close()

    # ------------------------------------------------------------------
    def _drive(
        self,
        workers,
        until: float,
        threshold: float,
    ) -> Tuple[Dict[int, Dict[str, Any]], Optional[int]]:
        """The barrier loop: windows of one lookahead until ``until``.

        Every worker gets its "advance" before any reply is collected —
        that send/recv split is where the parallelism comes from.
        """
        lookahead = self.lookahead
        now = 0.0
        inbound: Dict[int, List] = {}
        ghost_updates: Dict[int, List] = {}
        while now < until and not self.violations:
            horizon = min(now + lookahead, until)
            message = ("advance", horizon, inbound, ghost_updates)
            for worker in workers:
                worker.send(message)
            replies = [worker.recv() for worker in workers]
            self.windows += 1
            now = horizon
            mail: List[Tuple[int, int, Any, float]] = []
            movers: List[Tuple[int, float, float]] = []
            for reply in replies:
                for shard_id in sorted(reply):
                    shard_reply = reply[shard_id]
                    mail.extend(shard_reply["outbox"])
                    movers.extend(shard_reply["movers"])
                    if shard_reply["violation"] is not None:
                        self.violations.append(
                            {"shard": shard_id, **shard_reply["violation"]}
                        )
            inbound = self._route_mail(mail)
            ghost_updates = self._route_ghosts(movers)
        final = ("finish", until, threshold)
        for worker in workers:
            worker.send(final)
        finals = [worker.recv() for worker in workers]
        payloads: Dict[int, Dict[str, Any]] = {}
        rss_total: Optional[int] = None
        for reply in finals:
            payloads.update(reply["shards"])
            worker_rss = reply.get("peak_rss_kb")
            if worker_rss is not None:
                rss_total = (rss_total or 0) + worker_rss
        return payloads, rss_total

    def _route_mail(
        self, mail: List[Tuple[int, int, Any, float]]
    ) -> Dict[int, List]:
        """Sort barrier mail deterministically, bucket by owning shard.

        Per-directed-link arrivals are strictly increasing (the FIFO
        clamp), so ``(arrival, src, dst)`` is a total order and the
        receiving engine's ingestion tickets reproduce it exactly.
        """
        owner = self._owner
        inbound: Dict[int, List] = {}
        for item in sorted(mail, key=lambda m: (m[3], m[0], m[1])):
            inbound.setdefault(owner[item[1]], []).append(item)
        return inbound

    def _route_ghosts(
        self, movers: List[Tuple[int, float, float]]
    ) -> Dict[int, List]:
        """Update the halo view; emit ghost refreshes and births."""
        if not movers:
            return {}
        owner = self._owner
        ghosts_known = self._ghosts_known
        halo_topo = self._halo_topo
        updates: Dict[int, List] = {}
        movers = sorted(movers)
        # Refreshes first: shards already mirroring a mover get its new
        # position (births below must not double-send it).
        for node_id, x, y in movers:
            for shard_id, ghosts in enumerate(ghosts_known):
                if node_id in ghosts:
                    updates.setdefault(shard_id, []).append((node_id, x, y))
        new_pairs: List[Tuple[int, int]] = []
        for node_id, x, y in movers:
            diff = halo_topo.set_position(node_id, Point(x, y))
            for a, b in diff.added:
                if owner[a] != owner[b]:
                    new_pairs.append((a, b))
        for a, b in sorted(new_pairs):
            for local, remote in ((a, b), (b, a)):
                shard_id = owner[local]
                if shard_id == owner[remote]:
                    continue
                if remote in ghosts_known[shard_id]:
                    continue
                ghosts_known[shard_id].add(remote)
                position = halo_topo.position(remote)
                updates.setdefault(shard_id, []).append(
                    (remote, position.x, position.y)
                )
        return updates

    # ------------------------------------------------------------------
    def _merge(
        self,
        payloads: Dict[int, Dict[str, Any]],
        rss_total: Optional[int],
        threshold: float,
    ) -> SimulationResult:
        """One SimulationResult from every shard's payload.

        Owned-node sets are disjoint, so per-node structures merge by
        plain union; counter planes sum; response samples re-sort on
        (completion time, node) to restore one global timeline.
        """
        metrics = MetricsCollector()
        channel: Dict[str, Any] = {}
        shard_probes: Dict[str, Dict[str, Any]] = {}
        messages_by_kind: Dict[str, int] = {}
        warnings: List[Dict[str, Any]] = []
        engine: Dict[str, Any] = {
            "num_shards": self.num_shards,
            "windows": self.windows,
            "lookahead": self.lookahead,
            "executed_events": 0,
            "pending_events": 0,
            "now": 0.0,
            "scheduler": {
                "discipline": "",
                "enqueues": 0,
                "dequeues": 0,
                "cancelled": 0,
                "high_water": 0,
                "compactions": 0,
                "rung_spills": 0,
                "wheel_arms": 0,
                "wheel_cascades": 0,
                "cancelled_in_place": 0,
            },
            "per_shard": [],
        }
        duration = 0.0
        messages_sent = 0
        for shard_id in sorted(payloads):
            payload = payloads[shard_id]
            shard_metrics: MetricsCollector = payload["metrics"]
            metrics.samples.extend(shard_metrics.samples)
            metrics.counters.update(shard_metrics.counters)
            metrics.crashed.update(shard_metrics.crashed)
            metrics._hungry_since.update(shard_metrics._hungry_since)
            metrics._after_demotion.update(shard_metrics._after_demotion)
            messages_sent += payload["messages_sent"]
            _sum_numeric_into(messages_by_kind, payload["messages_by_kind"])
            _sum_numeric_into(channel, payload["channel"])
            if payload["probes"]:
                shard_probes[str(shard_id)] = payload["probes"]
            warnings.extend(payload["watchdog_warnings"])
            shard_engine = payload["engine"]
            engine["executed_events"] += shard_engine["executed_events"]
            engine["pending_events"] += shard_engine["pending_events"]
            engine["now"] = max(engine["now"], shard_engine["now"])
            shard_sched = shard_engine.get("scheduler", {})
            sched = engine["scheduler"]
            if not sched["discipline"]:
                sched["discipline"] = shard_sched.get("discipline", "")
            sched["high_water"] = max(
                sched["high_water"], shard_sched.get("high_water", 0)
            )
            for key in (
                "enqueues", "dequeues", "cancelled", "compactions",
                "rung_spills", "wheel_arms", "wheel_cascades",
                "cancelled_in_place",
            ):
                sched[key] += shard_sched.get(key, 0)
            # Per-shard wall-clock rates depend on worker grouping and
            # host load; keep the per-shard view purely virtual.  The
            # scheduler ops counters are stripped with them: they are
            # discipline-dependent by design, and the merged report
            # must be identical for every discipline and worker count.
            engine["per_shard"].append({
                "shard": shard_id,
                **{k: v for k, v in shard_engine.items()
                   if k not in ("wall_time_s", "events_per_sec", "scheduler")},
            })
            duration = max(duration, payload["duration"])
            if payload["violation"] is not None:
                record = {"shard": shard_id, **payload["violation"]}
                if record not in self.violations:
                    self.violations.append(record)
        metrics.samples.sort(key=lambda s: (s.eating_at, s.node))
        warnings.sort(
            key=lambda w: (w.get("hungry_since", 0.0), w.get("node", -1))
        )
        # Instrument-aware merge (min of mins, max of maxes, summed
        # counts with recomputed means) rather than blind numeric
        # summation, which would corrupt histogram extrema.
        probes = merge_snapshots(
            [shard_probes[k] for k in sorted(shard_probes, key=int)]
        )
        if rss_total is None:
            rss_total = peak_rss_kb()
        else:
            coordinator_rss = peak_rss_kb()
            if coordinator_rss is not None:
                rss_total += coordinator_rss
        return SimulationResult(
            config=self._config,
            duration=duration,
            metrics=metrics,
            messages_sent=messages_sent,
            messages_by_kind=messages_by_kind,
            starved=metrics.starving(duration, threshold),
            cs_entries=metrics.total_cs_entries(),
            channel=channel,
            engine=engine,
            probes=probes,
            watchdog_warnings=warnings,
            locality=None,
            profile=None,
            resources={
                "wall_time_s": 0.0,  # stamped by run()
                "events_per_sec": 0.0,
                "peak_rss_kb": rss_total,
                "workers": self.workers,
                # Per-shard registry snapshots ride under resources so
                # canonical (non-profile) reports stay bit-identical;
                # the OpenMetrics exporter labels them shard="k".
                **(
                    {"shard_probes": shard_probes}
                    if shard_probes else {}
                ),
            },
        )


def _sum_numeric_into(target: Dict[str, Any], source: Dict[str, Any]) -> None:
    """Recursively add ``source``'s numeric leaves into ``target``.

    Non-numeric leaves (labels, modes) are kept first-come; shards are
    merged in id order, so the choice is deterministic.
    """
    for key, value in source.items():
        if isinstance(value, dict):
            _sum_numeric_into(target.setdefault(key, {}), value)
        elif isinstance(value, bool) or not isinstance(value, (int, float)):
            target.setdefault(key, value)
        else:
            target[key] = target.get(key, 0) + value


def run_sharded(
    config: ScenarioConfig,
    until: float,
    num_shards: int,
    workers: Optional[int] = None,
    max_speed: Optional[float] = None,
) -> SimulationResult:
    """Convenience: build and run a sharded scenario in one call."""
    engine = ShardedEngine(
        config, num_shards=num_shards, workers=workers, max_speed=max_speed
    )
    return engine.run(until=until)
