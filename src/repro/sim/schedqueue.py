"""Scheduler queues: the adaptive ladder queue, the timer wheel, and
the binary-heap oracle.

The engine (:class:`repro.sim.engine.Simulator`) executes events in
``(time, priority, seq)`` order.  This module provides the pending-set
structures behind that contract:

* :class:`HeapQueue` — the classic binary heap (``heapq``).  O(log n)
  per operation, with lazy cancellation and in-place compaction.  Kept
  as the equivalence oracle behind ``scheduler="heap"``.
* :class:`LadderQueue` — an adaptive ladder queue (Tang/Goh/Thng):
  an unsorted *top* epoch for far-future events, spawn-on-demand
  *rungs* that bucket events by timestamp, and a sorted *bottom* list
  events are popped from.  Enqueue and dequeue are O(1) amortized: a
  push is one ``list.append`` (top or a rung bucket), and the sorting
  work is paid once per small bucket with a C-level ``sort`` on the
  precomputed event key.
* :class:`TimerWheel` — a hierarchical timer wheel fronting the
  high-churn restartable timers (protocol timeouts are overwhelmingly
  cancelled before firing).  Cancelling a wheel-resident timer is a
  flag flip that never touches the ladder; cancelled shells are
  recycled when their slot's window is released.

Why bucket routing cannot reorder events
----------------------------------------

Every structure here ultimately compares the same precomputed
``event._key`` tuples the heap compares, so *within* a sorted run the
order is trivially identical.  The only subtlety is bucket routing:
an event's rung bucket is ``int((t - start) / width)``, and its wheel
slot derives from ``int(t / g)``.  Both are monotone non-decreasing
functions of ``t`` under IEEE float arithmetic (subtraction and
division by a positive constant are monotone, and ``int`` truncation
is monotone for non-negative operands), and two events with equal
``t`` always map to the same bucket.  Monotone routing means a bucket
boundary can never *invert* two events — at worst roundoff shifts
which bucket a boundary time lands in, identically for every event at
that time — so the dequeue order is bit-identical to the heap's
regardless of floating-point roundoff.
"""

from __future__ import annotations

import heapq
import math
import operator
from typing import Callable, List, Optional

from repro.sim.events import ScheduledEvent

#: C-level sort key: one attribute fetch per element instead of a
#: Python-level ``__lt__`` call per comparison.
_KEY = operator.attrgetter("_key")

#: Never bother compacting pending sets smaller than this.
_COMPACT_MIN = 64

#: A rung bucket larger than this (and spanning more than one distinct
#: timestamp) is re-bucketed into a deeper rung instead of sorted.
_SPILL_THRESH = 64

#: Cap on buckets per rung; bounds per-spawn allocation at city scale.
_MAX_BUCKETS = 4096

#: A bottom list pushed past this length is re-bucketed into a rung so
#: insertion-sort work stays bounded.
_BOTTOM_LIMIT = 4096

_WHEEL_SLOTS = 64
_WHEEL_LEVELS = 4
_WHEEL_RANGE = _WHEEL_SLOTS**_WHEEL_LEVELS
#: Beyond this absolute tick the float-vs-tick safety argument for the
#: conservative ``next_time`` bound no longer holds; such times simply
#: stay in the ladder.
_MAX_TICK = 1 << 52

_Recycle = Callable[[ScheduledEvent], None]


class HeapQueue:
    """The binary-heap pending set (the equivalence oracle).

    Interface contract shared with :class:`LadderQueue`:

    * ``push(event)`` inserts.
    * ``peek()`` returns the minimum *live* event without removing it
      (recycling any cancelled shells it uncovers), or ``None``.
    * ``take()`` removes the event the immediately preceding ``peek``
      returned (peek-then-take pairing; never called cold).
    * ``note_cancelled()`` records one lazy cancellation and may
      compact.
    """

    discipline = "heap"
    rung_spills = 0  # ladder-only concept; constant for the oracle

    __slots__ = (
        "_heap",
        "_recycle",
        "_cancelled",
        "enqueues",
        "dequeues",
        "cancels",
        "high_water",
        "compactions",
    )

    def __init__(self, recycle: _Recycle) -> None:
        self._heap: List[ScheduledEvent] = []
        self._recycle = recycle
        self._cancelled = 0
        self.enqueues = 0
        self.dequeues = 0
        self.cancels = 0
        self.high_water = 0
        self.compactions = 0

    @property
    def size(self) -> int:
        """Resident entries, cancelled shells included."""
        return len(self._heap)

    @property
    def live(self) -> int:
        """Pending (non-cancelled) entries, O(1)."""
        return len(self._heap) - self._cancelled

    def push(self, event: ScheduledEvent) -> None:
        heap = self._heap
        heapq.heappush(heap, event)
        self.enqueues += 1
        if len(heap) > self.high_water:
            self.high_water = len(heap)

    def peek(self) -> Optional[ScheduledEvent]:
        heap = self._heap
        heappop = heapq.heappop
        recycle = self._recycle
        while heap:
            event = heap[0]
            if not event.cancelled:
                return event
            heappop(heap)
            self._cancelled -= 1
            recycle(event)
        return None

    def take(self) -> ScheduledEvent:
        self.dequeues += 1
        return heapq.heappop(self._heap)

    def note_cancelled(self) -> None:
        self.cancels += 1
        self._cancelled += 1
        heap = self._heap
        if self._cancelled > (len(heap) >> 1) and len(heap) >= _COMPACT_MIN:
            # In-place rebuild (slice assignment) so a run() loop
            # holding a reference keeps seeing the live heap.
            recycle = self._recycle
            for event in heap:
                if event.cancelled:
                    recycle(event)
            heap[:] = [event for event in heap if not event.cancelled]
            heapq.heapify(heap)
            self._cancelled = 0
            self.compactions += 1


class _Rung:
    """One ladder rung: equal-width buckets over ``[start, …)``.

    ``cur`` is the next bucket to extract; buckets below it are spent,
    so pushes routing here must land at index >= ``cur``.
    """

    __slots__ = ("start", "width", "buckets", "cur")

    def __init__(self, start: float, width: float,
                 buckets: List[List[ScheduledEvent]]) -> None:
        self.start = start
        self.width = width
        self.buckets = buckets
        self.cur = 0


class LadderQueue:
    """Adaptive ladder queue with O(1) amortized enqueue/dequeue.

    Three tiers, earliest last:

    * **top** — an unsorted append-only epoch holding every event at or
      after ``_top_start``.  When the rungs run dry the whole epoch is
      bucketed into a fresh rung in one pass.
    * **rungs** — a stack of bucket arrays; ``_rungs[-1]`` is the
      deepest (earliest) rung.  An extracted bucket that is still large
      and spans more than one timestamp spawns a deeper rung instead of
      being sorted (the "adaptive" part).
    * **bottom** — one extracted bucket, sorted *descending* by event
      key so the minimum pops from the list end in O(1).

    Invariant: every bottom key < every remaining rung key < every top
    key (strict, because routing is monotone in time and ``_top_start``
    is bumped past the transferred maximum with ``math.nextafter``).
    """

    discipline = "ladder"

    __slots__ = (
        "_top",
        "_top_start",
        "_rungs",
        "_bottom",
        "_recycle",
        "_size",
        "_cancelled",
        "enqueues",
        "dequeues",
        "cancels",
        "high_water",
        "compactions",
        "rung_spills",
    )

    def __init__(self, recycle: _Recycle) -> None:
        self._top: List[ScheduledEvent] = []
        self._top_start = -math.inf
        self._rungs: List[_Rung] = []
        self._bottom: List[ScheduledEvent] = []
        self._recycle = recycle
        self._size = 0
        self._cancelled = 0
        self.enqueues = 0
        self.dequeues = 0
        self.cancels = 0
        self.high_water = 0
        self.compactions = 0
        self.rung_spills = 0

    @property
    def size(self) -> int:
        """Resident entries, cancelled shells included."""
        return self._size

    @property
    def live(self) -> int:
        """Pending (non-cancelled) entries, O(1)."""
        return self._size - self._cancelled

    # ------------------------------------------------------------------
    def push(self, event: ScheduledEvent) -> None:
        self.enqueues += 1
        size = self._size + 1
        self._size = size
        if size > self.high_water:
            self.high_water = size
        if event.time >= self._top_start:
            self._top.append(event)
            return
        self._place(event)

    def _place(self, event: ScheduledEvent) -> None:
        t = event.time
        if t >= self._top_start:
            self._top.append(event)
            return
        for rung in self._rungs:
            start = rung.start
            # The explicit ``t >= start`` guard matters: int() truncates
            # toward zero, so a negative offset would alias to bucket 0
            # instead of falling through to a deeper tier.
            if t >= start:
                idx = int((t - start) / rung.width)
                if idx >= rung.cur:
                    buckets = rung.buckets
                    last = len(buckets) - 1
                    buckets[idx if idx < last else last].append(event)
                    return
        bottom = self._bottom
        if len(bottom) >= _BOTTOM_LIMIT and self._spill_bottom():
            self._place(event)
            return
        # Binary insort into the descending-sorted bottom: entries
        # before the insertion point have strictly greater keys.
        key = event._key
        lo, hi = 0, len(bottom)
        while lo < hi:
            mid = (lo + hi) >> 1
            if bottom[mid]._key > key:
                lo = mid + 1
            else:
                hi = mid
        bottom.insert(lo, event)

    def _spill_bottom(self) -> bool:
        """Re-bucket an oversized bottom into a new deepest rung."""
        bottom = self._bottom
        tmax = bottom[0].time  # descending by key: max first, min last
        tmin = bottom[-1].time
        if tmin == tmax:
            # A single timestamp cannot be bucketed further; leave the
            # (already sorted) list alone.
            return False
        self._bottom = []
        self._spawn_rung(bottom, tmin, tmax)
        return True

    def _spawn_rung(self, events: List[ScheduledEvent],
                    tmin: float, tmax: float) -> None:
        """Bucket ``events`` (whose times span ``tmin < tmax``) into a
        new deepest rung."""
        n = len(events)
        if n > _MAX_BUCKETS:
            n = _MAX_BUCKETS
        width = (tmax - tmin) / n
        if width <= 0.0:
            width = tmax - tmin  # denormal-underflow guard; still > 0
        buckets: List[List[ScheduledEvent]] = [[] for _ in range(n)]
        last = n - 1
        for event in events:
            idx = int((event.time - tmin) / width)
            buckets[idx if idx < last else last].append(event)
        self._rungs.append(_Rung(tmin, width, buckets))

    # ------------------------------------------------------------------
    def peek(self) -> Optional[ScheduledEvent]:
        while True:
            bottom = self._bottom
            while bottom:
                event = bottom[-1]
                if not event.cancelled:
                    return event
                bottom.pop()
                self._size -= 1
                self._cancelled -= 1
                self._recycle(event)
            if not self._refill():
                return None

    def take(self) -> ScheduledEvent:
        self.dequeues += 1
        self._size -= 1
        return self._bottom.pop()

    def _refill(self) -> bool:
        """Load the next bucket into the (empty) bottom.

        Returns False when the queue is completely drained.
        """
        rungs = self._rungs
        recycle = self._recycle
        while True:
            while rungs:
                rung = rungs[-1]
                buckets = rung.buckets
                n = len(buckets)
                cur = rung.cur
                while cur < n and not buckets[cur]:
                    cur += 1
                if cur >= n:
                    rungs.pop()
                    continue
                batch = buckets[cur]
                buckets[cur] = []
                rung.cur = cur + 1
                if cur + 1 >= n:
                    # Exhausted: drop it now so push routing can never
                    # clamp into a spent bucket.
                    rungs.pop()
                dead = 0
                for event in batch:
                    if event.cancelled:
                        dead += 1
                if dead:
                    for event in batch:
                        if event.cancelled:
                            recycle(event)
                    batch = [e for e in batch if not e.cancelled]
                    self._size -= dead
                    self._cancelled -= dead
                    if not batch:
                        continue
                if len(batch) > _SPILL_THRESH:
                    tmin = tmax = batch[0].time
                    for event in batch:
                        t = event.time
                        if t < tmin:
                            tmin = t
                        elif t > tmax:
                            tmax = t
                    if tmin != tmax:
                        self._spawn_rung(batch, tmin, tmax)
                        self.rung_spills += 1
                        continue
                batch.sort(key=_KEY, reverse=True)
                self._bottom = batch
                return True
            top = self._top
            if not top:
                return False
            tmin = tmax = top[0].time
            for event in top:
                t = event.time
                if t < tmin:
                    tmin = t
                elif t > tmax:
                    tmax = t
            self._top = []
            # Strictly above every transferred time, so an equal-time
            # push with an older (claimed) seq routes into the rung —
            # where key order sorts it — never into the fresh top.
            self._top_start = math.nextafter(tmax, math.inf)
            if tmin == tmax:
                top.sort(key=_KEY, reverse=True)
                self._bottom = top
                return True
            self._spawn_rung(top, tmin, tmax)

    # ------------------------------------------------------------------
    def note_cancelled(self) -> None:
        self.cancels += 1
        cancelled = self._cancelled + 1
        self._cancelled = cancelled
        if cancelled > (self._size >> 1) and self._size >= _COMPACT_MIN:
            self._sweep()

    def _sweep(self) -> None:
        """Drop cancelled shells from every tier, order-preserving."""
        recycle = self._recycle
        size = 0
        bottom = self._bottom
        live = [e for e in bottom if not e.cancelled]
        if len(live) != len(bottom):
            for event in bottom:
                if event.cancelled:
                    recycle(event)
            self._bottom = live
        size += len(live)
        for rung in self._rungs:
            buckets = rung.buckets
            for i in range(rung.cur, len(buckets)):
                bucket = buckets[i]
                if not bucket:
                    continue
                kept = [e for e in bucket if not e.cancelled]
                if len(kept) != len(bucket):
                    for event in bucket:
                        if event.cancelled:
                            recycle(event)
                    buckets[i] = kept
                size += len(kept)
        top = self._top
        kept_top = [e for e in top if not e.cancelled]
        if len(kept_top) != len(top):
            for event in top:
                if event.cancelled:
                    recycle(event)
            self._top = kept_top
        size += len(kept_top)
        self._size = size
        self._cancelled = 0
        self.compactions += 1


class TimerWheel:
    """Hierarchical timer wheel fronting restartable timers.

    Absolute-tick scheme: an event's tick is ``int(time / g)`` where
    the granularity ``g`` is the first armed delay; level ``l`` holds
    entries whose tick is ``delta`` ticks past the frontier with
    ``64**l <= delta < 64**(l+1)`` (level 0: ``delta < 64``).  The
    frontier advances only when the engine needs it to — releasing a
    slot either recycles its cancelled shells (the common fate of a
    protocol timeout, which therefore never touches the ladder) or
    injects the survivors into the main queue.

    ``next_time`` is a conservative lower bound on every resident
    entry's fire time: ``(frontier - 1) * g`` understates by up to one
    tick, so comparing it against a queue head can trigger a spurious
    release pass but can never skip a needed one.  The actual release
    cutoff is computed in tick space with the same ``int(t / g)``
    expression used to arm, which makes "is this entry due?" exact.
    """

    __slots__ = (
        "_g",
        "_frontier",
        "_levels",
        "_counts",
        "_recycle",
        "next_time",
        "live",
        "resident",
        "arms",
        "cascades",
        "cancelled_in_place",
    )

    def __init__(self, recycle: _Recycle) -> None:
        self._g: Optional[float] = None
        self._frontier = 0
        self._levels: List[List[List[ScheduledEvent]]] = [
            [[] for _ in range(_WHEEL_SLOTS)] for _ in range(_WHEEL_LEVELS)
        ]
        self._counts = [0] * _WHEEL_LEVELS
        self._recycle = recycle
        #: Conservative earliest fire time of any live resident (+inf
        #: when none) — the engine's cheap per-event release test.
        self.next_time = math.inf
        self.live = 0
        self.resident = 0
        self.arms = 0
        self.cascades = 0
        self.cancelled_in_place = 0

    # ------------------------------------------------------------------
    def accepts(self, time: float, now: float) -> bool:
        """Whether a timer at ``time`` can be wheel-resident.

        The first positive delay fixes the granularity.  Times before
        the frontier window, beyond the wheel's range, or past the
        tick-arithmetic safety bound fall back to the main queue.
        """
        g = self._g
        if g is None:
            delay = time - now
            if delay <= 0.0:
                return False
            self._g = g = delay
            # Every tick at or before "now" counts as already released.
            self._frontier = int(now / g) + 1
        if time - now >= g * _WHEEL_RANGE:
            return False
        tick = int(time / g)
        if tick > _MAX_TICK:
            return False
        delta = tick - self._frontier
        return 0 <= delta < _WHEEL_RANGE

    def arm(self, event: ScheduledEvent) -> None:
        """Place an accepted event; ``event.engine`` must be this wheel."""
        g = self._g
        tick = int(event.time / g)
        delta = tick - self._frontier
        if delta < 64:
            level = 0
        elif delta < 4096:
            level = 1
        elif delta < 262144:
            level = 2
        else:
            level = 3
        self._levels[level][(tick >> (6 * level)) & 63].append(event)
        self._counts[level] += 1
        self.resident += 1
        self.arms += 1
        if self.live == 0:
            self.next_time = (self._frontier - 1) * g
        self.live += 1

    def _note_cancelled(self) -> None:
        """Duck-typed engine hook (see ``ScheduledEvent.cancel``).

        The flag flip is the whole point: the shell stays slotted and
        is recycled when its window is released or cascaded, so a
        cancel never touches the ladder.
        """
        self.cancelled_in_place += 1
        self.live -= 1
        if self.live == 0:
            self.next_time = math.inf

    # ------------------------------------------------------------------
    def release_through(self, limit: float,
                        inject: Callable[[ScheduledEvent], None]) -> int:
        """Release every entry with ``time <= limit`` into ``inject``.

        Exactness: an entry at time ``u <= limit`` satisfies
        ``int(u / g) <= int(limit / g)`` because both sides apply the
        same monotone function, so no due (or tied) entry can be left
        behind.  Returns the number of live events injected.
        """
        if self._g is None:
            return 0
        return self._advance(int(limit / self._g), inject, stop_on_live=False)

    def release_until_live(self, limit: float,
                           inject: Callable[[ScheduledEvent], None]) -> int:
        """Advance until one live event is injected or ``limit`` passes.

        Used when the main queue is empty: the engine cannot know the
        next occupied slot, so the wheel walks forward (recycling any
        cancelled shells on the way) until something fires or the run
        deadline is cleared.
        """
        if self._g is None:
            return 0
        target = None if limit == math.inf else int(limit / self._g)
        return self._advance(target, inject, stop_on_live=True)

    def _advance(self, target: Optional[int],
                 inject: Callable[[ScheduledEvent], None],
                 stop_on_live: bool) -> int:
        levels = self._levels
        counts = self._counts
        recycle = self._recycle
        level0 = levels[0]
        frontier = self._frontier
        injected = 0
        while target is None or frontier <= target:
            if self.resident == 0:
                if target is None:
                    break
                frontier = target + 1
                break
            if (frontier & 63) == 0:
                self._cascade_at(frontier)
            if counts[0] == 0:
                # Level 0 empty: stride straight to the next cascade
                # boundary (never skipping one, so higher-level windows
                # are flushed in order).
                boundary = (frontier | 63) + 1
                if target is not None and boundary > target + 1:
                    frontier = target + 1
                else:
                    frontier = boundary
                continue
            idx = frontier & 63
            slot = level0[idx]
            if slot:
                level0[idx] = []
                counts[0] -= len(slot)
                self.resident -= len(slot)
                for event in slot:
                    if event.cancelled:
                        recycle(event)
                    else:
                        self.live -= 1
                        injected += 1
                        inject(event)
            frontier += 1
            if stop_on_live and injected:
                break
        self._frontier = frontier
        self.next_time = (
            (frontier - 1) * self._g if self.live else math.inf
        )
        return injected

    def _cascade_at(self, frontier: int) -> None:
        """Flush each higher level's slot whose window opens at
        ``frontier`` down into the lower levels (highest level first,
        so aligned boundaries compose)."""
        levels = self._levels
        counts = self._counts
        recycle = self._recycle
        g = self._g
        for level in (3, 2, 1):
            if counts[level] == 0:
                continue
            shift = 6 * level
            if frontier & ((1 << shift) - 1):
                continue  # not at this level's window boundary
            idx = (frontier >> shift) & 63
            slot = levels[level][idx]
            if not slot:
                continue
            levels[level][idx] = []
            counts[level] -= len(slot)
            self.cascades += len(slot)
            for event in slot:
                if event.cancelled:
                    self.resident -= 1
                    recycle(event)
                    continue
                tick = int(event.time / g)
                delta = tick - frontier
                if delta < 64:
                    low = 0
                elif delta < 4096:
                    low = 1
                else:
                    low = 2
                levels[low][(tick >> (6 * low)) & 63].append(event)
                counts[low] += 1
