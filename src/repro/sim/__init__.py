"""Discrete-event simulation kernel.

This package provides the execution substrate on which every protocol in
the reproduction runs: a deterministic event-driven scheduler
(:class:`~repro.sim.engine.Simulator`), scheduled-event handles
(:class:`~repro.sim.events.ScheduledEvent`), restartable timers
(:class:`~repro.sim.timers.Timer`), seeded random substreams
(:class:`~repro.sim.rng.RandomSource`) and a structured trace log
(:class:`~repro.sim.trace.TraceLog`).

The kernel knows nothing about networks or mutual exclusion; it only
orders callbacks in virtual time.  Determinism is a hard requirement:
given the same seed and configuration, every run produces the identical
event sequence, which the test suite relies on.
"""

from repro.sim.clock import TimeBounds
from repro.sim.engine import Simulator
from repro.sim.events import EventPriority, ScheduledEvent
from repro.sim.rng import RandomSource
from repro.sim.timers import Timer
from repro.sim.trace import TraceLog, TraceRecord

__all__ = [
    "EventPriority",
    "RandomSource",
    "ScheduledEvent",
    "Simulator",
    "TimeBounds",
    "Timer",
    "TraceLog",
    "TraceRecord",
]
