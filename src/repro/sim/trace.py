"""Structured trace log for simulation runs.

Traces serve three purposes: debugging protocol state machines,
asserting fine-grained event orderings in tests (e.g. "p2 took the
return path before p1 requested its fork"), and producing the per-stage
latency breakdown for the Figure 5 benchmark.

A trace record is a small immutable tuple of (time, category, node,
detail dict).  Recording can be disabled wholesale (the default for
benchmarks) at truly zero cost: hot paths normalize their trace handle
with :func:`live_trace` at construction time, hold ``None`` when
tracing is off, and guard every ``record()`` call with an
``is not None`` test — so neither the call nor its kwargs dict is ever
built.  :data:`NULL_TRACE` is the shared do-nothing instance handed to
code that wants an always-valid :class:`TraceLog` object instead of an
optional one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry."""

    time: float
    category: str
    node: Optional[int]
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        who = f"p{self.node}" if self.node is not None else "-"
        info = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{self.time:10.4f}] {who:>6} {self.category:<24} {info}"


class TraceLog:
    """An append-only, filterable event trace."""

    def __init__(self, enabled: bool = True, capacity: Optional[int] = None) -> None:
        self.enabled = enabled
        self._capacity = capacity
        self._records: List[TraceRecord] = []
        #: Records evicted by the capacity bound.  Analyses that need
        #: the *whole* run (eating intervals, stage latencies) check
        #: :attr:`truncated` and refuse to compute from a partial trace.
        self.dropped = 0

    @property
    def truncated(self) -> bool:
        """True iff the capacity bound ever evicted records."""
        return self.dropped > 0

    def record(
        self,
        time: float,
        category: str,
        node: Optional[int] = None,
        **detail: Any,
    ) -> None:
        """Append one record (no-op while disabled)."""
        if not self.enabled:
            return
        self._records.append(TraceRecord(time, category, node, detail))
        if self._capacity is not None and len(self._records) > self._capacity:
            # Drop the oldest half in one slice to amortize the cost.
            evict = len(self._records) // 2
            del self._records[:evict]
            self.dropped += evict

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def clear(self) -> None:
        """Drop all records (and reset the truncation counter)."""
        self._records.clear()
        self.dropped = 0

    def select(
        self,
        category: Optional[str] = None,
        node: Optional[int] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> List[TraceRecord]:
        """Return records matching all given filters, in time order."""
        result = []
        for rec in self._records:
            if category is not None and rec.category != category:
                continue
            if node is not None and rec.node != node:
                continue
            if predicate is not None and not predicate(rec):
                continue
            result.append(rec)
        return result

    def first(self, category: str, node: Optional[int] = None) -> Optional[TraceRecord]:
        """First record in a category (optionally for one node), or None."""
        matches = self.select(category=category, node=node)
        return matches[0] if matches else None

    def last(self, category: str, node: Optional[int] = None) -> Optional[TraceRecord]:
        """Last record in a category (optionally for one node), or None."""
        matches = self.select(category=category, node=node)
        return matches[-1] if matches else None

    def dump(self, limit: Optional[int] = None) -> str:
        """Human-readable rendering of the trace (for debugging)."""
        records = self._records if limit is None else self._records[-limit:]
        return "\n".join(str(rec) for rec in records)


class _NullTraceLog(TraceLog):
    """The shared disabled trace: never records, stays disabled."""

    def __init__(self) -> None:
        super().__init__(enabled=False)

    def record(self, *args: Any, **detail: Any) -> None:
        return


#: Shared sentinel for "no tracing".  Components that expose a TraceLog
#: attribute return this when built without one, so callers never need
#: a None check just to *have* a log object; hot paths should instead
#: normalize with :func:`live_trace` and skip record() calls entirely.
NULL_TRACE = _NullTraceLog()


def live_trace(trace: Optional[TraceLog]) -> Optional[TraceLog]:
    """Normalize a trace handle for hot-path guards.

    Returns ``trace`` only if it is a real, enabled log; ``None`` for
    ``None``, :data:`NULL_TRACE` and disabled logs.  Call sites then
    mirror the ``self._metrics is not None`` idiom: one pointer test
    decides whether any tracing work (including kwargs construction)
    happens at all.
    """
    if trace is None or not trace.enabled:
        return None
    return trace
