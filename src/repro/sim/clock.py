"""Timing model of the paper (Section 3.1).

The system is asynchronous, but the analysis assumes two upper bounds:

* ``nu``  -- the total time to prepare, transmit and receive one message;
* ``tau`` -- the maximum time any node spends in its critical section.

Nodes never read these bounds (the paper stresses they are *unknown* to
the algorithms and used only in the analysis); the simulator uses them to
draw message delays and eating durations, and the benchmark harness uses
them as the unit in which response times are reported.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Smallest representable gap between two causally ordered times.  Used by
#: the FIFO channel to keep deliveries on one link strictly ordered.
TIME_EPSILON = 1e-9


@dataclass(frozen=True)
class TimeBounds:
    """The (nu, tau) bounds of the paper's timing model.

    Attributes:
        nu: upper bound on one message's end-to-end delay.
        tau: upper bound on the time spent eating (in the CS).
        min_delay_fraction: messages are drawn uniformly from
            ``[min_delay_fraction * nu, nu]``; set to 1.0 for a fully
            deterministic network.
    """

    nu: float = 1.0
    tau: float = 1.0
    min_delay_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.nu <= 0:
            raise ConfigurationError(f"nu must be positive, got {self.nu}")
        if self.tau <= 0:
            raise ConfigurationError(f"tau must be positive, got {self.tau}")
        if not 0.0 < self.min_delay_fraction <= 1.0:
            raise ConfigurationError(
                "min_delay_fraction must be in (0, 1], got "
                f"{self.min_delay_fraction}"
            )

    @property
    def min_message_delay(self) -> float:
        """Lower edge of the message-delay distribution."""
        return self.nu * self.min_delay_fraction

    def draw_message_delay(self, rng) -> float:
        """Draw one message delay in ``[min_message_delay, nu]``."""
        if self.min_delay_fraction >= 1.0:
            return self.nu
        return rng.uniform(self.min_message_delay, self.nu)

    def draw_eating_time(self, rng) -> float:
        """Draw one eating duration in ``(0, tau]``.

        The distribution is uniform over the upper half of the range so
        that eating times are substantial relative to ``tau`` (keeping
        response-time measurements comparable across runs) while still
        exercising variability.
        """
        return rng.uniform(0.5 * self.tau, self.tau)
