"""The discrete-event simulator.

A :class:`Simulator` owns a pending set of :class:`ScheduledEvent`
objects and executes them in ``(time, priority, insertion order)``
order.  Everything else in the library — message delivery, mobility
steps, application hunger, crash injection, monitoring — is expressed
as events scheduled on one shared simulator instance.

Design notes
------------

* **Determinism.**  The engine itself is fully deterministic; all
  randomness enters through :class:`repro.sim.rng.RandomSource`
  substreams, so a (seed, config) pair reproduces a run bit-for-bit.
* **Reentrancy.**  Callbacks may schedule and cancel further events, but
  may not call :meth:`run` recursively.
* **Listeners.**  Observers (the safety monitor, metric collectors) can
  register post-event listeners; they fire after each executed event with
  the engine as argument.  Using listeners rather than wrapping every
  callback keeps protocol code free of instrumentation.  The listener
  list is snapshotted once per :meth:`run` call.
* **Scheduler disciplines.**  The pending set is an adaptive ladder
  queue by default (:class:`repro.sim.schedqueue.LadderQueue` — O(1)
  amortized enqueue/dequeue) with a hierarchical timer wheel
  (:class:`repro.sim.schedqueue.TimerWheel`) fronting restartable
  timers scheduled through :meth:`schedule_timer`; cancelling a
  wheel-resident timer is a flag flip that never touches the ladder.
  ``Simulator(scheduler="heap")`` selects the classic binary heap
  instead, which is kept as the equivalence oracle: both disciplines
  compare the same precomputed ``(time, priority, seq)`` keys and
  bucket routing is monotone in time (see :mod:`repro.sim.schedqueue`),
  so execution order, timestamps, and every deterministic counter are
  bit-identical either way.
* **Hot loop.**  Cancellation is lazy (cancelled shells stay resident),
  but the engine keeps a live count of them: ``pending_events`` is
  O(1), and when shells outnumber live events the pending set is swept
  in place, bounding both memory and pop-side skip work.  Listener
  dispatch is skipped entirely when no listeners are registered.
* **Profiling.**  :meth:`attach_profiler` installs an optional
  wall-clock profiler (per-callback-category totals, events/sec
  samples — see :mod:`repro.obs.profiler`).  The handle is hoisted
  once per :meth:`run` call, so the unprofiled hot loop pays a single
  ``is None`` test per event.
* **Fused event batches.**  A callback that owns a pre-ordered stream
  of future work (the channel layer's per-link delivery queues) can
  process several logical events inside one scheduled event: it claims
  an ordering ticket per item up front (:meth:`Simulator.claim_seq`),
  and at run time keeps consuming items while each item's
  ``(time, priority, seq)`` key precedes :meth:`next_live_key` and the
  active deadline, advancing the clock itself via
  :meth:`advance_clock`.  Such callbacks watch :attr:`push_marker` —
  bumped on every schedule, timer arm, and wheel release — to learn
  when a cached :meth:`next_live_key` barrier may have moved earlier.
  Execution *order* and timestamps are exactly what per-item
  scheduling would produce; only the number of queue operations (and
  hence ``executed_events`` and listener firings) shrinks.
* **Controlled tie-breaks.**  Events sharing a ``(time, priority)``
  pair normally run in insertion order — an arbitrary but fixed
  serialization of logically concurrent work.  A *choice controller*
  (:meth:`set_choice_controller`, used by :mod:`repro.explore`) is
  consulted whenever two or more live events are tied and may pick any
  of them to run next; the others are re-pushed with their original
  tickets, so the controller is consulted again as the group shrinks
  and can realize every permutation of the tie group.  Controllers see
  only genuinely concurrent events — they can never reorder across
  distinct timestamps or priority classes.  Wheel-resident timers due
  at the head's timestamp are released into the queue *before* the tie
  group is collected, so controllers see them too.
"""

from __future__ import annotations

import itertools
import math
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.events import EventPriority, ScheduledEvent
from repro.sim.schedqueue import HeapQueue, LadderQueue, TimerWheel

#: Free-list cap: shells beyond this are dropped to the garbage
#: collector instead of retained.  Large enough to absorb the release
#: burst of a compaction or a cancellation-heavy phase, small enough
#: that the pool itself can never dominate memory (~8 MB worst case).
_POOL_MAX = 65536


class Simulator:
    """A deterministic discrete-event scheduler.

    Args:
        pooling: recycle :class:`ScheduledEvent` shells through a free
            list (acquire on schedule, release when an event has fired
            or its cancelled shell leaves the pending set).  Event
            execution order, timestamps and every counter are identical
            either way — the flag exists for equivalence testing and
            for callers that keep event handles beyond their lifetime
            (see the handle contract in :mod:`repro.sim.events`).
        scheduler: pending-set discipline — ``"ladder"`` (default; the
            adaptive ladder queue plus timer wheel) or ``"heap"`` (the
            binary-heap oracle).  Bit-identical execution either way.
    """

    def __init__(self, pooling: bool = True, scheduler: str = "ladder") -> None:
        self._now: float = 0.0
        # Event free list (None when pooling is off — the established
        # None-when-off idiom, so the hot paths test one pointer).
        self._free: Optional[List[ScheduledEvent]] = [] if pooling else None
        if scheduler == "ladder":
            self._queue = LadderQueue(self._recycle)
            self._wheel: Optional[TimerWheel] = TimerWheel(self._recycle)
        elif scheduler == "heap":
            self._queue = HeapQueue(self._recycle)
            self._wheel = None
        else:
            raise SimulationError(
                f"unknown scheduler discipline: {scheduler!r} "
                "(expected 'ladder' or 'heap')"
            )
        self._seq = itertools.count()
        # Bumped whenever the set of pending keys may have gained an
        # earlier entry (push, timer arm, wheel release).  Fused-batch
        # callbacks compare it to decide when a cached next_live_key
        # barrier must be recomputed; cancellations leave it alone —
        # a stale-early barrier is conservative, a stale-late one
        # would reorder.
        self._push_marker = 0
        self._running = False
        self._stopped = False
        self._executed_events = 0
        self._deadline: Optional[float] = None
        # Standing cap on how far run() may advance, independent of the
        # per-call ``until``.  The sharded engine sets this to the next
        # barrier time so a shard can never execute past what a
        # neighbouring shard could still send it.
        self._safe_horizon: Optional[float] = None
        self._wall_time_s = 0.0
        self._listeners: List[Callable[["Simulator"], None]] = []
        # Optional wall-clock profiler (see repro.obs.profiler).  The
        # run loop hoists this once, so the unprofiled cost is one
        # ``is None`` test per executed event.
        self._profiler = None
        # Optional tie-break controller (see repro.explore.schedule);
        # hoisted the same way, so uncontrolled runs pay one ``is None``
        # test per event.
        self._choice_controller = None
        # One-shot hooks fired at the top of the next run() call (see
        # defer_startup).
        self._startup_hooks: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def executed_events(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._executed_events

    @property
    def pending_events(self) -> int:
        """Number of events still scheduled and not cancelled (O(1))."""
        wheel = self._wheel
        return self._queue.live + (wheel.live if wheel is not None else 0)

    @property
    def heap_size(self) -> int:
        """Resident entries, cancelled shells and wheel timers included."""
        wheel = self._wheel
        return self._queue.size + (wheel.resident if wheel is not None else 0)

    @property
    def heap_high_water(self) -> int:
        """Largest main-queue length ever reached (shells included).

        Wheel-resident timers do not count until released — that is the
        point of the wheel — so under the ladder discipline this tracks
        pressure on the ladder alone.
        """
        return self._queue.high_water

    @property
    def compactions(self) -> int:
        """How many times the pending set was compacted in place."""
        return self._queue.compactions

    @property
    def push_marker(self) -> int:
        """Monotone counter of pushes/arms/releases (see class docs)."""
        return self._push_marker

    @property
    def deadline(self) -> Optional[float]:
        """The ``until`` bound of the active :meth:`run` call, if any."""
        return self._deadline

    @property
    def wall_time_s(self) -> float:
        """Total wall-clock seconds spent inside :meth:`run` calls."""
        return self._wall_time_s

    def stats(self) -> Dict[str, object]:
        """Engine counters as one JSON-ready dict (for run reports).

        ``wall_time_s`` and ``events_per_sec`` are wall-clock derived
        and therefore non-deterministic; deterministic consumers (the
        canonical RunReport) strip them.  The ``scheduler`` sub-dict
        holds the queue-discipline ops counters — deterministic for a
        given discipline but *different between disciplines* (that is
        their job), so report-level consumers strip it too and surface
        it through the ``engine.sched_ops`` probe instead.
        """
        wall = self._wall_time_s
        queue = self._queue
        wheel = self._wheel
        return {
            "executed_events": self._executed_events,
            "pending_events": self.pending_events,
            "now": self._now,
            "scheduler": {
                "discipline": queue.discipline,
                "enqueues": queue.enqueues,
                "dequeues": queue.dequeues,
                "cancelled": queue.cancels,
                "high_water": queue.high_water,
                "compactions": queue.compactions,
                "rung_spills": queue.rung_spills,
                "wheel_arms": wheel.arms if wheel is not None else 0,
                "wheel_cascades": wheel.cascades if wheel is not None else 0,
                "cancelled_in_place": (
                    wheel.cancelled_in_place if wheel is not None else 0
                ),
            },
            "wall_time_s": wall,
            "events_per_sec": (self._executed_events / wall) if wall > 0 else 0.0,
        }

    @property
    def stop_requested(self) -> bool:
        """True after :meth:`stop`, until the next :meth:`run`."""
        return self._stopped

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: EventPriority = EventPriority.NORMAL,
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` to run ``delay`` from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: delay={delay}")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: EventPriority = EventPriority.NORMAL,
        seq: Optional[int] = None,
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at an absolute virtual time.

        ``seq`` lets a caller spend an ordering ticket previously claimed
        with :meth:`claim_seq` instead of drawing a fresh one, so a
        deferred scheduling decision (a queued message whose delivery
        event is created later) keeps the tie-break rank of the moment
        the work was *created*, not the moment it was scheduled.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past: t={time} < now={self._now}"
            )
        if seq is None:
            seq = next(self._seq)
        event = self._acquire(time, priority, seq, callback, tuple(args), self)
        self._queue.push(event)
        self._push_marker += 1
        return event

    def schedule_timer(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: EventPriority = EventPriority.NORMAL,
    ) -> ScheduledEvent:
        """Schedule a high-churn (likely-to-be-cancelled) timeout.

        Semantically identical to :meth:`schedule` — same ordering
        ticket, same handle contract — but under the ladder discipline
        the event may be parked in the timer wheel, where a later
        :meth:`ScheduledEvent.cancel` is a pure flag flip that never
        touches the main queue.  Protocol timeouts and crash schedules
        (overwhelmingly cancelled or retimed before firing) should come
        through here; one-shot work should use :meth:`schedule`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: delay={delay}")
        return self.schedule_timer_at(
            self._now + delay, callback, *args, priority=priority
        )

    def schedule_timer_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: EventPriority = EventPriority.NORMAL,
        seq: Optional[int] = None,
    ) -> ScheduledEvent:
        """Absolute-time form of :meth:`schedule_timer`.

        Falls back to :meth:`schedule_at` whenever the wheel cannot
        host the time (heap discipline, zero delay, out of range), so
        callers never need to care where the event actually lives.
        Exactly one ordering ticket is drawn either way, which is what
        keeps the two disciplines bit-identical.
        """
        wheel = self._wheel
        if wheel is not None and wheel.accepts(time, self._now):
            if seq is None:
                seq = next(self._seq)
            event = self._acquire(time, priority, seq, callback, tuple(args), wheel)
            wheel.arm(event)
            self._push_marker += 1
            return event
        return self.schedule_at(time, callback, *args, priority=priority, seq=seq)

    def claim_seq(self) -> int:
        """Reserve the next ordering ticket without scheduling anything.

        Tickets and implicitly drawn sequence numbers come from the same
        counter, so claiming one per logical event keeps total order
        across both kinds of scheduling.
        """
        return next(self._seq)

    def next_live_key(self) -> Optional[Tuple[float, int, int]]:
        """Sort key of the earliest non-cancelled scheduled event.

        Pops cancelled shells off the queue head as a side effect (they
        would be skipped by :meth:`run` anyway) and releases any
        wheel-resident timers due at or before the head so the returned
        key is a true global minimum.  Returns ``None`` when nothing
        live remains anywhere.
        """
        queue = self._queue
        wheel = self._wheel
        if wheel is not None and wheel.live:
            inject = self._wheel_inject
            while True:
                head = queue.peek()
                if head is None:
                    if wheel.live:
                        wheel.release_until_live(math.inf, inject)
                        continue
                    return None
                if wheel.live == 0 or wheel.next_time > head.time:
                    return head.sort_key()
                # One release pass empties the wheel of everything at or
                # before the head; whatever peeks next is the global min.
                wheel.release_through(head.time, inject)
                return queue.peek().sort_key()
        head = queue.peek()
        return None if head is None else head.sort_key()

    def advance_clock(self, time: float) -> None:
        """Advance ``now`` from inside a fused event batch.

        Only a running callback that has verified (via
        :meth:`next_live_key` and :attr:`deadline`) that no scheduled
        event precedes ``time`` may call this; the engine checks
        monotonicity but trusts the caller on ordering.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot advance the clock backwards: t={time} < now={self._now}"
            )
        if not self._running:
            raise SimulationError("advance_clock is only valid while running")
        self._now = time

    def attach_profiler(self, profiler) -> None:
        """Attach a wall-clock profiler (``repro.obs.EngineProfiler``).

        Must be called outside :meth:`run`; the hot loop snapshots the
        handle once per run call.
        """
        if self._running:
            raise SimulationError("cannot attach a profiler while running")
        self._profiler = profiler

    def detach_profiler(self) -> None:
        """Remove the attached profiler (if any)."""
        if self._running:
            raise SimulationError("cannot detach a profiler while running")
        self._profiler = None

    @property
    def profiler(self):
        """The attached profiler, or ``None``."""
        return self._profiler

    def set_choice_controller(self, controller) -> None:
        """Install a same-instant tie-break controller.

        ``controller.tie_break(group)`` is called whenever two or more
        live events share the next ``(time, priority)`` pair; ``group``
        is the tied events in insertion order and the return value is
        the index of the event to execute next.  The remaining events
        are re-pushed unchanged, so the controller is consulted again
        as the group shrinks — it has full permutation authority over
        the tie group and no authority over anything else.

        Must be called outside :meth:`run` (the hot loop snapshots the
        handle once per run call, like the profiler).
        """
        if self._running:
            raise SimulationError(
                "cannot install a choice controller while running"
            )
        self._choice_controller = controller

    def clear_choice_controller(self) -> None:
        """Remove the installed tie-break controller (if any)."""
        if self._running:
            raise SimulationError(
                "cannot remove a choice controller while running"
            )
        self._choice_controller = None

    def set_safe_horizon(self, time: Optional[float]) -> None:
        """Cap how far :meth:`run` may advance, across run calls.

        Conservative parallel simulation: the horizon is the latest time
        this engine is *guaranteed* to have received every external
        event for, so the hot loop treats it as an implicit ``until``
        (whichever is earlier wins).  ``None`` clears the cap.
        """
        if self._running:
            raise SimulationError("cannot move the safe horizon while running")
        if time is not None and time < self._now:
            raise SimulationError(
                f"safe horizon {time} is behind the clock ({self._now})"
            )
        self._safe_horizon = time

    def ingest(
        self,
        batch: List[Tuple[float, Callable[..., None], Tuple[Any, ...]]],
    ) -> int:
        """Mailbox ingress: schedule externally produced events.

        ``batch`` holds ``(time, callback, args)`` triples, pre-sorted by
        the caller into the deterministic cross-shard order; each is
        scheduled at ``max(time, now)`` so a timestamp that landed exactly
        on the barrier cannot raise.  Returns the number ingested.
        """
        if self._running:
            raise SimulationError("cannot ingest events while running")
        now = self._now
        schedule_at = self.schedule_at
        for time, callback, args in batch:
            schedule_at(time if time > now else now, callback, *args)
        return len(batch)

    def defer_startup(self, hook: Callable[[], None]) -> None:
        """Run ``hook()`` once, immediately before the next :meth:`run`.

        Construction-time work that only *schedules* events (the
        workload's per-node RNG seeding, for example) can be deferred
        here: the hook fires before the first event pops, so the queue
        holds exactly the same event set when execution starts and
        every engine counter — executed events, high water,
        compactions — matches eager scheduling.  Only the insertion
        tickets of construction-time events shift, which is observable
        solely for events sharing an exact ``(time, priority)`` pair.
        Hooks run in registration order and are dropped after firing.
        """
        self._startup_hooks.append(hook)

    def add_listener(self, listener: Callable[["Simulator"], None]) -> None:
        """Register a post-event observer (runs after every executed event)."""
        self._listeners.append(listener)

    def remove_listener(self, listener: Callable[["Simulator"], None]) -> None:
        """Unregister a previously added observer."""
        self._listeners.remove(listener)

    # ------------------------------------------------------------------
    # Shell lifecycle (shared by both disciplines and the wheel)
    # ------------------------------------------------------------------
    def _acquire(
        self,
        time: float,
        priority: EventPriority,
        seq: int,
        callback: Callable[..., None],
        args: Tuple[Any, ...],
        engine,
    ) -> ScheduledEvent:
        """Pool-aware shell acquisition (the single construction path)."""
        free = self._free
        if free:
            event = free.pop()
            event._reinit(time, priority, seq, callback, args, engine)
            return event
        return ScheduledEvent(time, priority, seq, callback, args, engine=engine)

    def _recycle(self, event: ScheduledEvent) -> None:
        """Return a dead shell to the free list (no-op when pooling is off).

        The one pool-cap-aware release path: the run loop, the queue
        disciplines, and the timer wheel all retire shells through
        here, so the cap check can't drift between call sites.
        """
        free = self._free
        if free is not None and len(free) < _POOL_MAX:
            event._release()
            free.append(event)

    def _note_cancelled(self) -> None:
        """Cancellation bookkeeping (called by ScheduledEvent.cancel)."""
        self._queue.note_cancelled()

    def _wheel_inject(self, event: ScheduledEvent) -> None:
        """Move a released wheel timer into the main queue.

        The event re-homes to the engine so a subsequent cancel lands
        in the queue's lazy-cancellation accounting, not the wheel's.
        """
        event.engine = self
        self._queue.push(event)
        self._push_marker += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Execute events until quiescence, a deadline, or an event budget.

        Args:
            until: stop once the next event would be strictly later than
                this time; the clock is advanced to ``until``.
            max_events: stop after executing this many events (a safety
                valve against accidental livelock in tests).

        Returns:
            The virtual time at which execution stopped.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        if self._startup_hooks:
            hooks, self._startup_hooks = self._startup_hooks, []
            for hook in hooks:
                hook()
        horizon = self._safe_horizon
        if horizon is not None and (until is None or horizon < until):
            until = horizon
        self._running = True
        self._stopped = False
        self._deadline = until
        wall_started = perf_counter()
        executed_this_call = 0
        queue = self._queue
        peek = queue.peek
        take = queue.take
        recycle = self._recycle
        profiler = self._profiler
        controller = self._choice_controller
        wheel = self._wheel
        inject = self._wheel_inject
        until_f = math.inf if until is None else until
        listeners = tuple(self._listeners)
        try:
            while True:
                if self._stopped:
                    break
                if max_events is not None and executed_this_call >= max_events:
                    break
                event = peek()
                if event is None:
                    if wheel is not None and wheel.live:
                        if wheel.release_until_live(until_f, inject):
                            continue
                    # Queue drained; advance to the deadline if given.
                    if until is not None and until > self._now:
                        self._now = until
                    break
                t = event.time
                if wheel is not None and wheel.next_time <= t:
                    # Release everything due at or before the head (or
                    # the deadline, whichever is earlier).  One pass
                    # suffices: whatever remains wheel-resident is
                    # strictly later than the post-release head, so we
                    # can pop without re-checking the wheel.
                    wheel.release_through(t if t <= until_f else until_f, inject)
                    event = peek()
                    t = event.time
                if t > until_f:
                    self._now = until
                    break
                if controller is None:
                    take()
                else:
                    event = self._pop_with_controller(controller)
                self._now = t
                # Mark fired up front: a cancel() of the in-flight event
                # from inside its own callback must stay a no-op and must
                # not disturb the lazy-cancellation count.
                event.cancelled = True
                if profiler is None:
                    event.callback(*event.args)
                else:
                    started = perf_counter()
                    event.callback(*event.args)
                    profiler.note(
                        event.callback, perf_counter() - started, self._now
                    )
                self._executed_events += 1
                executed_this_call += 1
                if listeners:
                    for listener in listeners:
                        listener(self)
                # The callback has run and any holder following the
                # handle contract has dropped its reference — recycle.
                recycle(event)
        finally:
            self._running = False
            self._deadline = None
            self._wall_time_s += perf_counter() - wall_started
        return self._now

    def _pop_with_controller(self, controller) -> ScheduledEvent:
        """Pop the next event, letting a controller resolve same-key ties.

        Collects every live event tied with the head on ``(time,
        priority)``; with two or more, the controller picks which runs
        now and the rest go back on the queue with their original
        tickets (so a later consultation sees the same relative order).
        The head is known live and in-bounds — :meth:`run` checked —
        and any wheel timers due at its timestamp were already
        released.  Tie comparison uses the precomputed ``_key`` fields,
        so no per-head IntEnum conversion happens in the loop.
        """
        queue = self._queue
        peek = queue.peek
        take = queue.take
        first = take()
        time, priority, _ = first._key
        group = [first]
        while True:
            head = peek()
            if head is None:
                break
            key = head._key
            if key[0] != time or key[1] != priority:
                break
            group.append(take())
        if len(group) == 1:
            return first
        index = controller.tie_break(group)
        if not isinstance(index, int) or not 0 <= index < len(group):
            raise SimulationError(
                f"tie_break returned {index!r} for a group of {len(group)}"
            )
        chosen = group.pop(index)
        push = queue.push
        for event in group:
            push(event)
        self._push_marker += 1
        return chosen

    def run_until_quiet(self, max_events: int = 10_000_000) -> float:
        """Run until no events remain (bounded by ``max_events``)."""
        return self.run(max_events=max_events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator now={self._now:.6f} pending={self.pending_events} "
            f"executed={self._executed_events}>"
        )
