"""Scheduled events and their ordering.

Events at the same virtual time are ordered by an explicit priority class
and then by insertion order.  Priority classes let the harness guarantee,
for example, that the safety monitor observes the state *after* all
protocol handlers scheduled for that instant have run.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Tuple


class EventPriority(enum.IntEnum):
    """Tie-breaking classes for events sharing a timestamp.

    Lower values run first.
    """

    #: Topology changes (LinkUp/LinkDown indications, mobility steps).
    TOPOLOGY = 0
    #: Ordinary protocol events: message deliveries, timers, app events.
    NORMAL = 10
    #: Observers that must see the post-state of an instant (monitors).
    MONITOR = 20


class ScheduledEvent:
    """A cancellable handle to one scheduled callback.

    Instances are created by :meth:`repro.sim.engine.Simulator.schedule`;
    user code only ever cancels them or inspects :attr:`time`.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        priority: EventPriority,
        seq: int,
        callback: Callable[..., None],
        args: Tuple[Any, ...],
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running.

        Cancelling an already-fired or already-cancelled event is a
        harmless no-op, which keeps timer-management code simple.
        """
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and not cancelled."""
        return not self.cancelled

    def sort_key(self) -> Tuple[float, int, int]:
        """Total order used by the engine's heap."""
        return (self.time, int(self.priority), self.seq)

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledEvent t={self.time:.6f} {name} {state}>"
