"""Scheduled events and their ordering.

Events at the same virtual time are ordered by an explicit priority class
and then by insertion order.  Priority classes let the harness guarantee,
for example, that the safety monitor observes the state *after* all
protocol handlers scheduled for that instant have run.

:class:`ScheduledEvent` is the single hottest allocation in the library
(one per message hop, timer and mobility step), so it is slotted and
carries a precomputed ``(time, priority, seq)`` key — heap comparisons
reduce to one C-level tuple compare instead of attribute lookups and
enum coercion per ``__lt__`` call.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Optional, Tuple


class EventPriority(enum.IntEnum):
    """Tie-breaking classes for events sharing a timestamp.

    Lower values run first.
    """

    #: Topology changes (LinkUp/LinkDown indications, mobility steps).
    TOPOLOGY = 0
    #: Ordinary protocol events: message deliveries, timers, app events.
    NORMAL = 10
    #: Observers that must see the post-state of an instant (monitors).
    MONITOR = 20


class ScheduledEvent:
    """A cancellable handle to one scheduled callback.

    Instances are created by :meth:`repro.sim.engine.Simulator.schedule`;
    user code only ever cancels them or inspects :attr:`time`.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled",
                 "engine", "_key")

    def __init__(
        self,
        time: float,
        priority: EventPriority,
        seq: int,
        callback: Callable[..., None],
        args: Tuple[Any, ...],
        engine: Optional[Any] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: Owning simulator, notified on cancel so it can keep a live
        #: count of dead heap entries (see Simulator.pending_events).
        self.engine = engine
        self._key = (time, int(priority), seq)

    def cancel(self) -> None:
        """Prevent the callback from running.

        Cancelling an already-fired or already-cancelled event is a
        harmless no-op, which keeps timer-management code simple.
        """
        if self.cancelled:
            return
        self.cancelled = True
        engine = self.engine
        if engine is not None:
            engine._note_cancelled()

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and not cancelled."""
        return not self.cancelled

    def sort_key(self) -> Tuple[float, int, int]:
        """Total order used by the engine's heap."""
        return self._key

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return self._key < other._key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledEvent t={self.time:.6f} {name} {state}>"
