"""Scheduled events and their ordering.

Events at the same virtual time are ordered by an explicit priority class
and then by insertion order.  Priority classes let the harness guarantee,
for example, that the safety monitor observes the state *after* all
protocol handlers scheduled for that instant have run.

:class:`ScheduledEvent` is the single hottest allocation in the library
(one per message hop, timer and mobility step), so it is slotted and
carries a precomputed ``(time, priority, seq)`` key — ordering
comparisons reduce to one C-level tuple compare (or one key-attribute
fetch in the ladder queue's bucket sorts) instead of attribute lookups
and enum coercion per ``__lt__`` call.

Pooling
-------

A pooling engine (:class:`repro.sim.engine.Simulator` with the default
``pooling=True``) recycles event shells through a free list instead of
allocating one object per event: :meth:`ScheduledEvent._reinit` rebuilds
a released shell in place, and :meth:`ScheduledEvent._release` retires
it.  The handle contract for user code is the one the :class:`Timer`
discipline already follows — **drop every reference once the event has
fired or you have cancelled it**.  Each release bumps
:attr:`ScheduledEvent.generation`, so long-lived holders that must
revalidate a handle later (e.g. the crash injector's retime path) store
``(event, event.generation)`` and treat a generation mismatch as "that
event is gone".  Under ``__debug__`` a released shell is poisoned: its
``callback`` is replaced by a sentinel and ``cancel()`` on it raises,
catching use-after-release at the point of misuse.

Scheduler interplay
-------------------

The :attr:`engine` pointer is duck-typed: it is whatever structure
currently owns the pending shell — the simulator itself for main-queue
events, or a :class:`repro.sim.schedqueue.TimerWheel` for wheel-parked
timers (which re-home to the simulator when their slot is released).
``cancel()`` only requires a ``_note_cancelled()`` hook, so the wheel
can account a cancellation as an in-place flag flip while the queue
disciplines track lazy-deleted shells for compaction.  Either way the
shell funnels back to the same pool through the engine's single
recycle path once it has fired or its dead shell leaves its container.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Optional, Tuple


def _freed_callback() -> None:  # pragma: no cover - never scheduled
    raise AssertionError("a released (pooled) event shell was executed")


class EventPriority(enum.IntEnum):
    """Tie-breaking classes for events sharing a timestamp.

    Lower values run first.
    """

    #: Topology changes (LinkUp/LinkDown indications, mobility steps).
    TOPOLOGY = 0
    #: Ordinary protocol events: message deliveries, timers, app events.
    NORMAL = 10
    #: Observers that must see the post-state of an instant (monitors).
    MONITOR = 20


class ScheduledEvent:
    """A cancellable handle to one scheduled callback.

    Instances are created by :meth:`repro.sim.engine.Simulator.schedule`;
    user code only ever cancels them or inspects :attr:`time`.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled",
                 "engine", "generation", "_key")

    def __init__(
        self,
        time: float,
        priority: EventPriority,
        seq: int,
        callback: Callable[..., None],
        args: Tuple[Any, ...],
        engine: Optional[Any] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: Owning container (simulator or timer wheel), notified on
        #: cancel so it can keep a live count of dead pending entries
        #: (see Simulator.pending_events).
        self.engine = engine
        #: Recycling stamp: bumped each time a pooling engine releases
        #: this shell back to its free list.  Holders that revalidate a
        #: handle later compare against the generation they captured.
        self.generation = 0
        self._key = (time, int(priority), seq)

    def _reinit(
        self,
        time: float,
        priority: EventPriority,
        seq: int,
        callback: Callable[..., None],
        args: Tuple[Any, ...],
        engine: Any,
    ) -> None:
        """Rebuild a released shell in place (pool acquire)."""
        assert self.callback is _freed_callback, (
            "pool invariant violated: re-initializing a live event"
        )
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.engine = engine
        self._key = (time, int(priority), seq)

    def _release(self) -> None:
        """Retire a fired/cancelled shell to the free list (pool release).

        Clears the callback, arguments and engine pointer so the pool
        never keeps referents alive, and bumps :attr:`generation` so
        stale ``(event, generation)`` tokens stop validating.
        """
        self.generation += 1
        self.callback = _freed_callback
        self.args = ()
        self.engine = None

    def cancel(self) -> None:
        """Prevent the callback from running.

        Cancelling an already-fired or already-cancelled event is a
        harmless no-op, which keeps timer-management code simple.  A
        handle that was *released to the event pool* is another matter —
        cancelling it could tear down an unrelated recycled event — so
        under ``__debug__`` that raises instead.
        """
        assert self.callback is not _freed_callback, (
            "use-after-release: cancel() on an event shell that was "
            "returned to the pool (drop handles once an event has fired "
            "or been cancelled, or revalidate via the generation stamp)"
        )
        if self.cancelled:
            return
        self.cancelled = True
        engine = self.engine
        if engine is not None:
            engine._note_cancelled()

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and not cancelled."""
        return not self.cancelled

    def sort_key(self) -> Tuple[float, int, int]:
        """Total order used by the engine's pending set."""
        return self._key

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return self._key < other._key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledEvent t={self.time:.6f} {name} {state}>"
