"""Seeded random substreams.

Every stochastic component (per-node workload, per-link jitter, mobility
of each node, crash schedule...) draws from its own named substream so
that changing one component's consumption pattern does not perturb the
others.  Substream seeds are derived deterministically from the root seed
and the stream name via a stable hash.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Tuple


def _derive_seed(root_seed: int, name: Tuple) -> int:
    """Derive a 64-bit substream seed from the root seed and a name."""
    payload = repr((root_seed, name)).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big")


class RandomSource:
    """A root seed plus a family of independent named substreams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[Tuple, random.Random] = {}

    def stream(self, *name) -> random.Random:
        """Return the (memoized) substream identified by ``name``.

        Example::

            rng = RandomSource(42)
            rng.stream("mobility", node_id).random()
        """
        key = tuple(name)
        stream = self._streams.get(key)
        if stream is None:
            stream = random.Random(_derive_seed(self.seed, key))
            self._streams[key] = stream
        return stream

    def has_stream(self, *name) -> bool:
        """True iff the named substream has been materialized.

        Lazy consumers use this to tell "never drawn" apart from
        "drawn before": a ``random.Random`` costs ~2.5 KB, so hot
        call sites avoid materializing streams for components that
        never end up drawing (see :meth:`stream_seed`).
        """
        return tuple(name) in self._streams

    def stream_seed(self, *name) -> int:
        """The seed :meth:`stream` would use for ``name``.

        Derived from the root seed and the name alone — never from
        stream state — so a caller can seed a reusable scratch
        ``random.Random`` and reproduce the substream's draws without
        materializing (and forever retaining) the memoized stream.
        """
        return _derive_seed(self.seed, tuple(name))

    def fork(self, *name) -> "RandomSource":
        """Derive an independent child :class:`RandomSource`."""
        return RandomSource(_derive_seed(self.seed, ("fork",) + tuple(name)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RandomSource seed={self.seed} streams={len(self._streams)}>"
