"""Spatial arena decomposition for the sharded engine.

The paper's model gives the synchronization bound a conservative
parallel simulator needs for free: a message takes at least
``TimeBounds.min_message_delay`` per hop, and nodes move at bounded
speed.  An event in one spatial region therefore cannot influence
another region sooner than one minimum hop delay, so shards may advance
in lock-step windows of that width and exchange mail only at window
barriers (:func:`conservative_lookahead`).

The arena is split into stripes along its longer axis with
equal-population cuts (:func:`build_partition`).  Stripes only assign
*ownership*; link coverage near boundaries is handled by ghost/halo
entries whose reach is :func:`halo_width` — the radio range plus the
largest distance two nodes can close during one window.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError
from repro.net.geometry import Point
from repro.sim.clock import TimeBounds

#: Additive slack on the halo reach so a pair sitting exactly at the
#: cutoff distance (common with grid layouts) is never excluded by
#: floating-point rounding.
HALO_EPSILON = 1e-6


@dataclass(frozen=True)
class Partition:
    """Stripes along one axis: ``cuts`` are the interior boundaries."""

    #: 0 = stripes perpendicular to x, 1 = perpendicular to y.
    axis: int
    #: Ascending interior cut coordinates; ``len(cuts) + 1`` stripes.
    cuts: Tuple[float, ...]

    @property
    def num_shards(self) -> int:
        return len(self.cuts) + 1

    def coordinate(self, point: Point) -> float:
        """The point's coordinate along the partition axis."""
        return point.x if self.axis == 0 else point.y

    def shard_of(self, point: Point) -> int:
        """Index of the stripe containing ``point``."""
        return bisect.bisect_right(self.cuts, self.coordinate(point))


def build_partition(positions: Sequence[Point], num_shards: int) -> Partition:
    """Equal-population stripes along the arena's longer axis.

    Cuts sit midway between the boundary nodes of adjacent stripes.
    Heavily duplicated coordinates can leave stripes unbalanced (every
    node on a cut coordinate lands in the lower stripe); that costs
    balance, never correctness.
    """
    if not positions:
        raise ConfigurationError("cannot partition an empty arena")
    if not 1 <= num_shards <= len(positions):
        raise ConfigurationError(
            f"num_shards must be in [1, {len(positions)}], got {num_shards}"
        )
    xs = [p.x for p in positions]
    ys = [p.y for p in positions]
    axis = 0 if (max(xs) - min(xs)) >= (max(ys) - min(ys)) else 1
    coords = sorted(xs if axis == 0 else ys)
    n = len(coords)
    cuts: List[float] = []
    for k in range(1, num_shards):
        idx = (k * n) // num_shards
        cut = (coords[idx - 1] + coords[idx]) / 2.0
        if cuts and cut <= cuts[-1]:
            cut = cuts[-1]
        cuts.append(cut)
    return Partition(axis=axis, cuts=tuple(cuts))


def conservative_lookahead(
    bounds: TimeBounds,
    radio_range: Optional[float] = None,
    max_speed: float = 0.0,
) -> float:
    """Window width L every shard may safely run ahead of its peers.

    A cross-shard message sent at any ``s`` inside window
    ``(t, t + L]`` arrives no earlier than ``s + min_message_delay``,
    which is strictly later than ``t + L`` whenever
    ``L <= min_message_delay`` — so mail collected at the barrier and
    injected into the next window can never violate causality.

    With mobility, L is additionally capped at
    ``radio_range / (2 * max_speed)`` so a ghost position refreshed at
    the barrier is never staler than half a radio range.
    """
    lookahead = bounds.min_message_delay
    if lookahead <= 0:
        raise ConfigurationError(
            f"need a positive minimum message delay for lookahead, "
            f"got {lookahead} (nu={bounds.nu}, "
            f"fraction={bounds.min_delay_fraction})"
        )
    if max_speed > 0 and radio_range is not None:
        lookahead = min(lookahead, radio_range / (2.0 * max_speed))
    return lookahead


def halo_width(radio_range: float, max_speed: float, lookahead: float) -> float:
    """How far a shard must see past its owned nodes.

    Ghost candidacy is decided from true positions at the barrier; both
    endpoints of a potential link can then close up to ``max_speed *
    lookahead`` each during the next window, so any pair that could come
    within radio range before the next barrier is within
    ``radio_range + 2 * max_speed * lookahead`` now.
    """
    return radio_range + 2.0 * max_speed * lookahead + HALO_EPSILON


@dataclass
class ShardContext:
    """What one shard's :class:`~repro.runtime.simulation.Simulation`
    needs to know about the decomposition it lives in.

    ``local_nodes`` are owned here (full harness, workload, mobility);
    ``ghost_nodes`` are topology-only mirrors of boundary-adjacent
    remote nodes, grown as the coordinator discovers new halo pairs.
    ``outbox`` collects ``(src, dst, message, arrival)`` for messages
    addressed to ghosts; the coordinator drains it at each barrier.
    """

    shard_id: int
    num_shards: int
    local_nodes: FrozenSet[int]
    ghost_nodes: Set[int] = field(default_factory=set)
    outbox: List[Tuple[int, int, object, float]] = field(default_factory=list)
