"""The simulator as test oracle: replay a live recording in-sim.

:func:`derive_replay` turns one recording into a scenario + decision
stream whose controlled simulation reproduces the live execution
*exactly* — same stamps, same delivery order, same state transitions:

* every ``hungry`` row becomes a scripted hunger arrival at its
  recorded stamp (``become_hungry`` self-guards, so ineffective pokes
  replay as the same no-ops);
* every ``enter`` effect becomes a scripted eating duration — the gap
  to its recorded ``exit``, or a past-the-horizon sentinel when the
  entry was demoted or still eating at the end (the demotion replays
  organically from the same messages; the sentinel only keeps the sim's
  eat timer from firing first);
* every emitted message becomes a replayed channel-delay decision:
  ``settle_stamp - emit_stamp``, where the settle stamp is its ``recv``
  *or* ``drop`` row (a drop replays as an arrival at the drop stamp,
  where the sim link is equally down — same silent drop).  Messages
  still in flight at the end get a sentinel arrival past the replay
  horizon.  Per-directed-link FIFO in the live transports keeps these
  arrival times monotone per link, so the channel's FIFO clamp never
  fires and replayed delays land verbatim;
* link rows become the scenario's ``link_script`` and crash rows its
  crash plan plus crash-time decisions.

Live stamps are strictly increasing (the runtime monotonizes them), so
the replay needs no tie-break decisions at all.  The scenario's ``nu``
is inflated to cover the largest replayed delay and the minimum-delay
fraction deflated under the smallest, so the scheduler's legality
clamp passes every recorded value through unchanged.

:func:`verify_recording` runs that replay under the exploration
subsystem's invariant monitors (exclusion, doorway-entry, priority
antisymmetry, ... — progress excluded: a wall-clock run makes no
virtual-time progress guarantees) and then checks *fidelity*: the sim
trace's externally visible transitions must match the recording's
``fx`` stream one for one, to within float rounding (the sim computes
``emit + delay`` where the recording stored the sum).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.live.recorder import FX_CATEGORIES, SCHEMA

#: Permitted stamp slack between a recorded effect and its replay.
#: Rounding in ``emit + (settle - emit)`` is a few ulp (~1e-13 at these
#: magnitudes); distinct stamps differ by >= TIME_EPSILON (1e-9).  This
#: sits cleanly between the two.
STAMP_TOLERANCE = 1e-10

#: How far past the end of the recording in-flight sentinels land.
_SENTINEL_MARGIN = 2.0
#: Replay horizon margin: sentinels stay strictly beyond it.
_HORIZON_MARGIN = 1.0


@dataclass
class DerivedReplay:
    """Everything needed to re-run one recording in the simulator."""

    scenario: Dict[str, Any]
    until: float
    decisions: List[List[Any]]
    #: The recording's effect stream: (stamp, trace category, node).
    expected: List[Tuple[float, str, int]]
    monitor_specs: List[Dict[str, Any]] = field(default_factory=list)


def derive_replay(recording: Dict[str, Any]) -> DerivedReplay:
    """Project one live recording onto a controlled-simulation input."""
    if recording.get("schema") != SCHEMA:
        raise ConfigurationError(
            f"unsupported recording schema {recording.get('schema')!r}"
        )
    origin = recording["scenario"]
    rows = recording["rows"]
    t_end = float(recording["t_end"])
    until = t_end + _HORIZON_MARGIN
    sentinel = t_end + _SENTINEL_MARGIN

    # Pass 1: where every message settled (delivered or dropped).
    settled: Dict[str, float] = {}
    for row in rows:
        if row["k"] in ("recv", "drop"):
            settled[row["m"]] = float(row["t"])

    hunger: Dict[int, List[float]] = {}
    eating: Dict[int, List[float]] = {}
    open_eat: Dict[int, Tuple[int, float]] = {}
    link_script: List[List[Any]] = []
    crashes: List[List[Any]] = []
    delays: List[float] = []
    crash_times: List[float] = []
    expected: List[Tuple[float, str, int]] = []

    for row in rows:
        t = float(row["t"])
        kind = row["k"]
        if kind == "hungry":
            hunger.setdefault(int(row["n"]), []).append(t)
        elif kind == "up":
            link_script.append(
                [t, "up", int(row["a"]), int(row["b"]),
                 int(row.get("mover", -1))]
            )
        elif kind == "down":
            link_script.append([t, "down", int(row["a"]), int(row["b"]), -1])
        elif kind == "crash":
            crashes.append([t, int(row["n"])])
            crash_times.append(t)
        for src, dst, mid, _ in row.get("emits", ()):
            arrival = settled.get(mid, sentinel)
            delays.append(arrival - t)
        for tag, node in row.get("fx", ()):
            node = int(node)
            expected.append((t, FX_CATEGORIES[tag], node))
            if tag == "enter":
                durations = eating.setdefault(node, [])
                durations.append(sentinel - t)
                open_eat[node] = (len(durations) - 1, t)
            elif tag == "exit":
                slot = open_eat.pop(node, None)
                if slot is not None:
                    index, entered = slot
                    eating[node][index] = t - entered
            elif tag == "demote":
                # Leave the sentinel: the sim's demotion arises from the
                # replayed messages; the timer must simply never win.
                open_eat.pop(node, None)

    bounds = dict(origin.get("bounds", {}))
    nu = float(bounds.get("nu", 1.0))
    fraction = float(bounds.get("min_delay_fraction", 0.5))
    if delays:
        nu = max(nu, max(delays))
        floor = min(delays)
        fraction = min(fraction, floor / nu)
        # The scheduler clamps delays into [fraction * nu, nu]; nudge
        # the fraction down until rounding cannot push the floor above
        # the smallest recorded delay.
        while fraction > 0.0 and fraction * nu > floor:
            fraction = math.nextafter(fraction, 0.0)
        fraction = max(fraction, 5e-324)
    bounds["nu"] = nu
    bounds["min_delay_fraction"] = fraction
    bounds.setdefault("tau", 1.0)

    scenario: Dict[str, Any] = {
        "positions": origin["positions"],
        "radio_range": origin.get("radio_range", 1.0),
        "algorithm": origin["algorithm"],
        "seed": origin.get("seed", 0),
        "bounds": bounds,
        "scripted_hunger": {
            str(node): times for node, times in hunger.items()
        },
        "crashes": crashes,
        "trace": True,
        "telemetry": True,
        "strict_safety": False,
    }
    if eating:
        scenario["scripted_eating"] = {
            str(node): durations for node, durations in eating.items()
        }
    if link_script:
        scenario["link_script"] = link_script
    for passthrough in ("initial_colors", "delta_override"):
        if origin.get(passthrough) is not None:
            scenario[passthrough] = origin[passthrough]

    decisions: List[List[Any]] = [["d", delay] for delay in delays]
    decisions.extend(["c", t] for t in crash_times)

    return DerivedReplay(
        scenario=scenario,
        until=until,
        decisions=decisions,
        expected=expected,
        monitor_specs=_monitor_specs(scenario, until),
    )


def _monitor_specs(scenario: Dict[str, Any],
                   until: float) -> List[Dict[str, Any]]:
    """The invariant-monitor set for one replay.

    The campaign defaults, minus progress (a live run compressed
    through ``time_scale`` carries no virtual-time progress guarantee)
    and with the same churn adjustments the defaults apply to mobile
    scenarios — a ``link_script`` is churn by another name.
    """
    from repro.explore.monitors import default_monitor_specs

    specs = [
        spec for spec in default_monitor_specs(scenario, until)
        if spec["name"] != "progress"
    ]
    if scenario.get("link_script"):
        specs = [s for s in specs if s["name"] != "stale-priority"]
        for spec in specs:
            if spec["name"] == "priority":
                spec["params"] = {"cycles": False}
    return specs


def verify_recording(recording: Dict[str, Any]) -> Dict[str, Any]:
    """Replay a recording in-sim; report invariants and fidelity.

    Returns a report dict whose ``clean`` flag is True iff no invariant
    monitor fired *and* the sim reproduced the recording's effect
    stream exactly (same transitions, same order, same stamps).
    """
    from repro.explore.runner import run_controlled
    from repro.explore.schedule import ReplaySchedule

    derived = derive_replay(recording)
    captured: Dict[str, Any] = {}
    result = run_controlled(
        derived.scenario,
        derived.until,
        ReplaySchedule(derived.decisions),
        monitor_specs=derived.monitor_specs,
        on_simulation=lambda sim: captured.update(sim=sim),
    )
    watched = frozenset(FX_CATEGORIES.values())
    actual = [
        (record.time, record.category, record.node)
        for record in captured["sim"].trace
        if record.category in watched
    ]
    divergence = _first_divergence(derived.expected, actual)
    return {
        "schema": recording["schema"],
        "runtime": recording.get("runtime"),
        "rows": len(recording["rows"]),
        "until": derived.until,
        "monitors": [spec["name"] for spec in derived.monitor_specs],
        "violation": (
            result.violation.to_dict() if result.violation else None
        ),
        "fidelity": {
            "expected": len(derived.expected),
            "actual": len(actual),
            "divergence": divergence,
        },
        "clean": result.violation is None and divergence is None,
    }


def _first_divergence(
    expected: List[Tuple[float, str, int]],
    actual: List[Tuple[float, str, int]],
) -> Optional[Dict[str, Any]]:
    """First place the replayed effect stream leaves the recorded one."""
    for index, (want, got) in enumerate(zip(expected, actual)):
        same = (
            want[1] == got[1]
            and want[2] == got[2]
            and abs(want[0] - got[0]) <= STAMP_TOLERANCE
        )
        if not same:
            return {"index": index, "expected": list(want), "actual": list(got)}
    if len(expected) != len(actual):
        index = min(len(expected), len(actual))
        return {
            "index": index,
            "expected": (
                list(expected[index]) if index < len(expected) else None
            ),
            "actual": list(actual[index]) if index < len(actual) else None,
        }
    return None
