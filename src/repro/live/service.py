"""The in-process live service: scenario in, recording out.

:func:`run_bus` takes the same scenario JSON dicts the exploration
campaigns use (:mod:`repro.explore.scenarios`), builds the unmodified
node stack over a :class:`~repro.live.bus.InProcessBus`, drives the
scenario's workload/crash/link scripts from wall-clock timers, and
returns a schema-versioned recording that
:func:`repro.live.replay.verify_recording` can check in-sim.

``time_scale`` is wall seconds per virtual unit: 0.005 compresses a
virtual-80 scenario into ~0.4 s of wall time, 1.0 runs it in real
time.  The scripted topology feed accepts teleport moves only (speed
0); a live deployment gets its churn from real membership events, and
the simulator remains the place to model continuous motion.

:func:`serve` wraps :func:`run_bus` with an OpenMetrics scrape
endpoint (the PR 8 exporter) live for the duration of the run.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Tuple

from repro.core.states import NodeState
from repro.errors import ConfigurationError
from repro.harness.config_io import config_from_dict
from repro.live.bus import InProcessBus
from repro.live.linklayer import LiveLinkLayer, adjacency_from_positions
from repro.live.node import LiveNodeSet, LiveProbes
from repro.live.recorder import LiveRecorder, make_recording
from repro.live.runtime import WallClockRuntime
from repro.net.geometry import Point
from repro.net.topology import DynamicTopology
from repro.obs.probes import build_probes
from repro.obs.registry import MetricRegistry


def scripted_link_feed(
    scenario: Dict[str, Any],
) -> List[Tuple[float, str, int, int, int]]:
    """Flatten a scenario's mobility block into timed link events.

    Replays the unit-disk geometry offline on a scratch topology: each
    teleport move yields its link diff, downs before ups, one entry per
    link.  Only scripted zero-speed (teleport) moves are supported —
    continuous motion has no defined link schedule without a clock to
    integrate it against.
    """
    mobility = scenario.get("mobility")
    if mobility is None:
        return []
    if mobility.get("kind") != "scripted":
        raise ConfigurationError(
            "live runs support scripted mobility only "
            f"(got {mobility.get('kind')!r})"
        )
    moves: List[Tuple[float, int, Point]] = []
    for node in mobility.get("nodes", []):
        for t, x, y, speed in mobility.get("params", {}).get("moves", []):
            if float(speed) > 0.0:
                raise ConfigurationError(
                    "live scripted moves must be teleports (speed 0); "
                    f"got speed {speed} for node {node}"
                )
            moves.append((float(t), int(node), Point(float(x), float(y))))
    moves.sort(key=lambda m: (m[0], m[1]))
    scratch = DynamicTopology(
        radio_range=float(scenario.get("radio_range", 1.0))
    )
    scratch.add_nodes(
        (node_id, Point(float(x), float(y)))
        for node_id, (x, y) in enumerate(scenario["positions"])
    )
    feed: List[Tuple[float, str, int, int, int]] = []
    for t, node, point in moves:
        diff = scratch.set_position(node, point)
        for a, b in diff.removed:
            feed.append((t, "down", a, b, node))
        for a, b in diff.added:
            feed.append((t, "up", a, b, node))
    return feed


def run_bus(
    scenario: Dict[str, Any],
    until: float,
    time_scale: float = 0.005,
    registry: Optional[MetricRegistry] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Run one scenario on the in-process bus; returns the recording."""
    config = config_from_dict(scenario)
    if config.mobility_factory is not None:
        # The factory was only built to validate the block; the live
        # feed below drives churn directly.
        config.mobility_factory = None

    loop = asyncio.new_event_loop()
    try:
        recorder = LiveRecorder()
        runtime = WallClockRuntime(loop, time_scale, recorder)
        if registry is None:
            registry = MetricRegistry()
        live_probes = LiveProbes(registry)
        protocol_probes = build_probes(registry)

        adjacency = adjacency_from_positions(
            config.positions, config.radio_range
        )
        bus = InProcessBus(loop, lambda *args: linklayer.dispatch(*args))
        linklayer = LiveLinkLayer(
            runtime, recorder, bus.send, adjacency, probes=live_probes
        )
        nodes = LiveNodeSet(
            config,
            runtime,
            linklayer,
            recorder.trace,
            hosted=range(len(config.positions)),
            probes=protocol_probes,
        )

        runtime.start()

        # --- workload -------------------------------------------------
        def fire_hungry(harness) -> None:
            effective = (
                not harness.crashed
                and harness.state is NodeState.THINKING
            )
            live_probes.inc_event("hungry")
            runtime.execute(
                "hungry",
                {"n": harness.node_id, "eff": bool(effective)},
                harness.become_hungry,
            )

        if config.scripted_hunger is not None:
            for node_id, times in config.scripted_hunger.items():
                harness = nodes.harnesses[node_id]
                for t in times:
                    if t < until:
                        loop.call_at(runtime.wall_at(t), fire_hungry, harness)
        else:
            # Stochastic service workload: think, get hungry, repeat.
            from repro.sim.rng import RandomSource

            workload_rng = RandomSource(config.seed)

            def arm(harness, rng, delay: float) -> None:
                t = runtime.now + delay
                if t < until:
                    loop.call_at(runtime.wall_at(t), fire_hungry, harness)

            for node_id, harness in nodes.harnesses.items():
                rng = workload_rng.stream("workload", node_id)
                harness.on_done_eating = (
                    lambda h, r=rng: arm(h, r, r.uniform(*config.think_range))
                )
                arm(harness, rng, rng.uniform(*config.initial_delay_range))

        # --- failures -------------------------------------------------
        def do_crash(node_id: int) -> None:
            linklayer.crash(node_id)
            nodes.harnesses[node_id].crash()

        def fire_crash(node_id: int) -> None:
            live_probes.inc_event("crash")
            runtime.execute("crash", {"n": node_id}, do_crash, node_id)

        for t, node_id in config.crashes:
            if t < until:
                loop.call_at(runtime.wall_at(t), fire_crash, node_id)

        # --- topology feed --------------------------------------------
        def fire_link(op: str, a: int, b: int, mover: int) -> None:
            fields: Dict[str, Any] = {"a": a, "b": b}
            if op == "up":
                fields["mover"] = mover
            live_probes.inc_event(op)
            runtime.execute(
                op, fields, linklayer.apply_link_event, op, a, b, mover
            )

        for t, op, a, b, mover in scripted_link_feed(scenario):
            if t < until:
                loop.call_at(runtime.wall_at(t), fire_link, op, a, b, mover)

        # --- run ------------------------------------------------------
        loop.call_at(runtime.wall_at(until), loop.stop)
        loop.run_forever()
        runtime.stop()
        t_end = max(runtime.wall_virtual(), runtime.last_stamp)
    finally:
        loop.close()

    doc_extra: Dict[str, Any] = {
        "metrics": nodes.metrics_summary(),
        "probes": registry.snapshot(),
    }
    if extra:
        doc_extra.update(extra)
    return make_recording(
        "bus", scenario, until, t_end, time_scale, recorder.rows, doc_extra
    )


def run_bus_family(
    family: str,
    algorithm: str,
    seed: int = 0,
    time_scale: float = 0.005,
    registry: Optional[MetricRegistry] = None,
) -> Dict[str, Any]:
    """Run one named scenario family on the bus (see explore.scenarios)."""
    from repro.explore.scenarios import build_scenario

    row = build_scenario(family, algorithm, seed)
    return run_bus(
        row["scenario"],
        row["until"],
        time_scale=time_scale,
        registry=registry,
        extra={"family": row["family"], "algorithm": algorithm, "seed": seed},
    )


def serve(
    family: str,
    algorithm: str,
    seed: int = 0,
    time_scale: float = 0.05,
    host: str = "127.0.0.1",
    port: int = 9464,
    duration: Optional[float] = None,
) -> Dict[str, Any]:
    """Run a bus scenario with a live OpenMetrics scrape endpoint.

    The endpoint serves the shared registry — protocol probes plus the
    ``live.*`` family — for the duration of the run, then shuts down.
    Returns the recording, like :func:`run_bus_family`.
    """
    import threading

    from repro.explore.scenarios import build_scenario
    from repro.obs.openmetrics import build_metrics_server, render_openmetrics

    registry = MetricRegistry()
    server = build_metrics_server(
        lambda: render_openmetrics(registry.snapshot()), host=host, port=port
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        row = build_scenario(family, algorithm, seed)
        until = duration if duration is not None else row["until"]
        return run_bus(
            row["scenario"],
            until,
            time_scale=time_scale,
            registry=registry,
            extra={
                "family": row["family"],
                "algorithm": algorithm,
                "seed": seed,
            },
        )
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)
