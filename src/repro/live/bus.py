"""In-process message bus: many nodes, one asyncio loop.

The simplest real transport: a send enqueues the delivery on the loop
with ``call_soon`` (or ``call_later`` when a fixed latency is
configured).  The loop's ready queue is FIFO and every timer with the
same latency preserves submission order, so deliveries happen in global
send order — which in particular preserves FIFO per directed link, the
one ordering property the protocols assume of a channel.

Each queued delivery carries the link incarnation observed at send
time; the link layer re-checks it at dispatch so churn between send
and delivery drops the message exactly like the simulated channel
does.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable


class InProcessBus:
    """Loop-backed transport for single-process live runs."""

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        dispatch: Callable[[int, int, Any, str, int], None],
        latency_wall: float = 0.0,
    ) -> None:
        self.loop = loop
        self._dispatch = dispatch
        self._latency = max(0.0, float(latency_wall))
        self.sent = 0

    def send(
        self, src: int, dst: int, message: Any, mid: str, incarnation: int
    ) -> None:
        self.sent += 1
        if self._latency > 0.0:
            self.loop.call_later(
                self._latency, self._dispatch, src, dst, message, mid,
                incarnation,
            )
        else:
            self.loop.call_soon(
                self._dispatch, src, dst, message, mid, incarnation
            )
