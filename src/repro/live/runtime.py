"""Wall-clock runtime: the live implementation of the Runtime protocol.

:class:`WallClockRuntime` gives :class:`~repro.runtime.node.NodeHarness`
and the algorithms the same two things the simulator gives them — a
clock (``now``) and restartable deadlines (``schedule`` /
``schedule_timer``) — but backed by an asyncio event loop instead of a
pending-event queue.  Virtual time maps linearly onto the loop's
monotonic clock through ``time_scale`` (wall seconds per virtual unit),
so one scenario description drives both worlds at whatever real-time
rate the deployment wants.

Every piece of node code runs inside :meth:`execute`, which is where
the record/replay contract is enforced:

* each execution gets a **strictly increasing** virtual stamp
  (``max(wall, last + ε)``) — recorded stamps never tie, so the in-sim
  replay needs no tie-break decisions;
* ``now`` is frozen at that stamp for the duration of the execution,
  exactly like the simulator freezes ``now`` per event;
* the recorder opens a row before the callback and closes it after, so
  every send and every trace effect lands in the row of the execution
  that caused it.

:meth:`observe_remote_stamp` is the socket transport's hybrid-clock
hook: bumping ``last`` to at least the sender's stamp before the
delivery executes guarantees receive stamps sort after their send even
across processes with skewed clocks.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, Optional

from repro.errors import SimulationError
from repro.sim.clock import TIME_EPSILON
from repro.sim.events import EventPriority


class LiveTimerHandle:
    """TimerHandle over an asyncio timer (cancel / pending / time)."""

    __slots__ = ("_handle", "_time", "_pending")

    def __init__(self, handle: asyncio.TimerHandle, time: float) -> None:
        self._handle = handle
        self._time = time
        self._pending = True

    @property
    def pending(self) -> bool:
        return self._pending

    @property
    def time(self) -> float:
        return self._time

    def cancel(self) -> None:
        if self._pending:
            self._pending = False
            self._handle.cancel()


class WallClockRuntime:
    """Virtual time over an asyncio loop, with recorded executions."""

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        time_scale: float,
        recorder=None,
    ) -> None:
        if time_scale <= 0:
            raise SimulationError(f"time_scale must be > 0: {time_scale}")
        self.loop = loop
        self.time_scale = float(time_scale)
        self.recorder = recorder
        self._t0: Optional[float] = None
        self._last = 0.0
        self._current: Optional[float] = None
        self._stopped = False

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    def start(self, t0_wall: Optional[float] = None) -> None:
        """Fix virtual zero at ``t0_wall`` (loop clock; default: now)."""
        self._t0 = self.loop.time() if t0_wall is None else float(t0_wall)

    @property
    def started(self) -> bool:
        return self._t0 is not None

    def wall_at(self, virtual: float) -> float:
        """Loop-clock instant corresponding to a virtual time."""
        if self._t0 is None:
            raise SimulationError("runtime not started")
        return self._t0 + virtual * self.time_scale

    def wall_virtual(self) -> float:
        """Raw (non-monotonized) virtual reading of the wall clock."""
        if self._t0 is None:
            raise SimulationError("runtime not started")
        return (self.loop.time() - self._t0) / self.time_scale

    @property
    def now(self) -> float:
        """Frozen execution stamp inside :meth:`execute`, else wall."""
        if self._current is not None:
            return self._current
        return self.wall_virtual()

    @property
    def last_stamp(self) -> float:
        """The most recent execution stamp (socket frames carry this)."""
        return self._last

    def observe_remote_stamp(self, stamp: float) -> None:
        """Hybrid-clock bump: our next stamp must exceed ``stamp``."""
        if stamp > self._last:
            self._last = float(stamp)

    def stop(self) -> None:
        """Refuse further executions (pending asyncio timers may still
        fire; they become no-ops)."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Execution dispatch (the recording boundary)
    # ------------------------------------------------------------------
    def execute(
        self,
        kind: str,
        fields: Dict[str, Any],
        fn: Callable[..., None],
        *args: Any,
    ) -> None:
        """Run one node-level callback as a stamped, recorded execution."""
        if self._stopped:
            return
        stamp = self.wall_virtual()
        if stamp <= self._last:
            stamp = self._last + TIME_EPSILON
        self._last = stamp
        self._current = stamp
        recorder = self.recorder
        if recorder is not None:
            recorder.begin(stamp, kind, fields)
        try:
            fn(*args)
        finally:
            if recorder is not None:
                recorder.end()
            self._current = None

    # ------------------------------------------------------------------
    # Runtime protocol (what Timer and node code call)
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: EventPriority = EventPriority.NORMAL,
    ) -> LiveTimerHandle:
        """One-shot callback ``delay`` virtual units from now.

        ``priority`` is accepted for protocol compatibility and ignored:
        wall-clock stamps never tie, so there is nothing to break.
        """
        return self.schedule_timer(delay, callback, *args, priority=priority)

    def schedule_timer(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: EventPriority = EventPriority.NORMAL,
    ) -> LiveTimerHandle:
        deadline = self.now + max(0.0, float(delay))
        holder: Dict[str, LiveTimerHandle] = {}

        def _fire() -> None:
            handle = holder["handle"]
            if not handle._pending:
                return
            handle._pending = False
            self.execute("timer", {}, callback, *args)

        raw = self.loop.call_at(self.wall_at(deadline), _fire)
        handle = LiveTimerHandle(raw, deadline)
        holder["handle"] = handle
        return handle
