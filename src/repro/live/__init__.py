"""Live service runtime: the protocols over real transports.

This package runs the *unmodified* registered algorithms and
:class:`~repro.runtime.node.NodeHarness` outside the simulator, over
two transports:

* :mod:`repro.live.bus` — many nodes, one asyncio loop, in-process
  delivery (per-directed-link FIFO preserved by the loop's ready
  queue);
* :mod:`repro.live.socket_transport` — one OS process per node,
  length-prefixed frames over localhost TCP, heartbeats, liveness
  timeouts and capped-backoff reconnects.

Node code cannot tell the difference: :class:`WallClockRuntime`
satisfies the same :class:`~repro.runtime.interface.Runtime` protocol
the simulator does, and :class:`~repro.live.linklayer.LiveLinkLayer`
mirrors the simulated link layer's observable contract.

Every run records a schema-versioned event log
(:mod:`repro.live.recorder`); :mod:`repro.live.replay` projects that
log back onto a controlled simulation — the simulator acting as test
oracle — and checks the run against the exploration subsystem's
invariant monitors plus exact effect-stream fidelity.  The CLI surface
is ``repro live run|serve|verify``; see docs/live.md.
"""

from repro.live.recorder import (
    SCHEMA,
    LiveRecorder,
    load_recording,
    make_recording,
    merge_rows,
    save_recording,
)
from repro.live.replay import DerivedReplay, derive_replay, verify_recording
from repro.live.runtime import LiveTimerHandle, WallClockRuntime
from repro.live.service import run_bus, run_bus_family, scripted_link_feed, serve
from repro.live.socket_transport import (
    backoff_delays,
    run_socket,
    run_socket_family,
)

__all__ = [
    "SCHEMA",
    "DerivedReplay",
    "LiveRecorder",
    "LiveTimerHandle",
    "WallClockRuntime",
    "backoff_delays",
    "derive_replay",
    "load_recording",
    "make_recording",
    "merge_rows",
    "run_bus",
    "run_bus_family",
    "run_socket",
    "run_socket_family",
    "save_recording",
    "scripted_link_feed",
    "serve",
    "verify_recording",
]
