"""Schema-versioned event logs of live executions.

A recording is a JSON document: a header (schema tag, runtime kind,
scenario, horizon) plus one **row per dispatched execution**, in stamp
order.  Rows are intentionally flat and small::

    {"t": 12.0031, "k": "recv", "src": 1, "dst": 2, "m": 7,
     "kind": "ForkRequest",
     "emits": [[2, 1, 8, "ForkGrant"]],
     "fx": [["enter", 2]]}

Row kinds: ``hungry`` (scripted/stochastic hunger arrival, with ``eff``
saying whether the node was thinking and alive), ``recv`` (message
delivery), ``drop`` (delivery suppressed by link churn), ``timer``
(wall-clock deadline fire — in practice the eating timer), ``up`` /
``down`` (link churn, one row per link), ``crash``.

The two per-row lists are what make the in-sim replay exact:

* ``emits`` — every message the execution sent, in send order.  A
  message's delivery delay is ``recv_row.t - emitting_row.t``; because
  emits live *inside* their causing row (not as separate rows), the
  socket-mode merge can re-stamp rows without ever separating a send
  from its cause.
* ``fx`` — the externally visible state transitions (hungry / enter /
  exit / demote / crashed) the execution produced, which is both the
  source of the replay's eating-duration script and the expected
  stream the verifier compares the sim trace against.

Socket runs produce one recording per node process;
:func:`merge_rows` interleaves them into a single global log: a stable
sort by (stamp, origin, per-origin index) followed by an epsilon bump
pass that restores strict monotonicity without reordering anything.
Per-origin order and cross-origin causality (receive stamps exceed
their send stamps, courtesy of the hybrid-clock bump) survive, so the
merged log satisfies the same invariants a bus-mode log does.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, TextIO

from repro.errors import ConfigurationError
from repro.sim.clock import TIME_EPSILON

#: Schema tag written into (and demanded from) every recording.
SCHEMA = "repro.live.recording/1"

#: Trace categories that count as externally visible effects, and the
#: compact tags they are recorded under.
FX_TAGS = {
    "app.hungry": "hungry",
    "cs.enter": "enter",
    "cs.exit": "exit",
    "cs.demoted": "demote",
    "node.crashed": "crashed",
}

#: Inverse mapping, for reconstructing the expected trace stream.
FX_CATEGORIES = {tag: category for category, tag in FX_TAGS.items()}


class _TraceAdapter:
    """The TraceLog face the node harness records effects through.

    Only the five :data:`FX_TAGS` categories are kept (attached to the
    recorder's current row); everything else the protocols trace is
    dropped — live runs are verified through replay, not through a
    full trace.
    """

    enabled = True

    def __init__(self, recorder: "LiveRecorder") -> None:
        self._recorder = recorder

    def record(
        self,
        time: float,
        category: str,
        node: Optional[int] = None,
        **detail: Any,
    ) -> None:
        self._recorder.note_fx(category, node)


class LiveRecorder:
    """Accumulates execution rows for one live runtime."""

    def __init__(self, origin: int = 0) -> None:
        #: Identifies this recorder in a multi-process run; message ids
        #: are ``"origin:seq"`` so they stay unique after a merge.
        self.origin = int(origin)
        self.rows: List[Dict[str, Any]] = []
        self.trace = _TraceAdapter(self)
        self._current: Optional[Dict[str, Any]] = None
        self._mid_seq = 0

    # ------------------------------------------------------------------
    # Row lifecycle (driven by WallClockRuntime.execute)
    # ------------------------------------------------------------------
    def begin(self, stamp: float, kind: str, fields: Dict[str, Any]) -> None:
        row: Dict[str, Any] = {"t": stamp, "k": kind}
        row.update(fields)
        self._current = row

    def end(self) -> None:
        row = self._current
        self._current = None
        if row is not None:
            self.rows.append(row)

    # ------------------------------------------------------------------
    # In-row annotations
    # ------------------------------------------------------------------
    def note_send(self, src: int, dst: int, message: Any) -> str:
        """Record one sent message in the current row; returns its id."""
        self._mid_seq += 1
        mid = f"{self.origin}:{self._mid_seq}"
        row = self._current
        if row is not None:
            row.setdefault("emits", []).append(
                [int(src), int(dst), mid, message.kind]
            )
        return mid

    def note_fx(self, category: str, node: Optional[int]) -> None:
        tag = FX_TAGS.get(category)
        row = self._current
        if tag is None or row is None or node is None:
            return
        row.setdefault("fx", []).append([tag, int(node)])


# ----------------------------------------------------------------------
# Whole-recording documents
# ----------------------------------------------------------------------
def make_recording(
    runtime_kind: str,
    scenario: Dict[str, Any],
    until: float,
    t_end: float,
    time_scale: float,
    rows: List[Dict[str, Any]],
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the JSON document for one finished live run."""
    doc: Dict[str, Any] = {
        "schema": SCHEMA,
        "runtime": runtime_kind,
        "scenario": scenario,
        "until": float(until),
        "t_end": float(t_end),
        "time_scale": float(time_scale),
        "rows": rows,
    }
    if extra:
        doc.update(extra)
    return doc


def save_recording(recording: Dict[str, Any], stream: TextIO) -> None:
    json.dump(recording, stream, sort_keys=True)
    stream.write("\n")


def load_recording(stream: TextIO) -> Dict[str, Any]:
    recording = json.load(stream)
    schema = recording.get("schema")
    if schema != SCHEMA:
        raise ConfigurationError(
            f"unsupported recording schema {schema!r} (expected {SCHEMA!r})"
        )
    return recording


def merge_rows(
    rows_by_origin: Dict[int, List[Dict[str, Any]]],
) -> List[Dict[str, Any]]:
    """Interleave per-process row logs into one strictly-stamped log."""
    indexed = []
    for origin_rank, origin in enumerate(sorted(rows_by_origin)):
        for idx, row in enumerate(rows_by_origin[origin]):
            indexed.append((float(row["t"]), origin_rank, idx, row))
    indexed.sort(key=lambda entry: entry[:3])
    merged: List[Dict[str, Any]] = []
    last: Optional[float] = None
    for stamp, _, _, row in indexed:
        row = dict(row)
        if last is not None and row["t"] <= last:
            row["t"] = last + TIME_EPSILON
        last = row["t"]
        merged.append(row)
    return merged
