"""TCP/localhost socket runtime: one process per node.

Each node runs as its own OS process with its own asyncio loop,
wall-clock runtime and recorder; neighbors talk over localhost TCP
streams carrying the length-prefixed frames of
:mod:`repro.live.codec`.  The dialing convention is by id — for every
undirected link the higher-id endpoint connects to the lower-id
endpoint's server — so exactly one stream exists per link.

Startup is coordinated over pipes by :func:`run_socket`: children bind
port 0 and report the kernel-assigned port, the coordinator broadcasts
the port map, children dial and accept until their neighbor set is
complete and report ready, then a single epoch ``t0`` (slightly in the
future) anchors every process's virtual clock.  Message frames carry
the sender's current execution stamp; the receiver's hybrid-clock bump
(:meth:`~repro.live.runtime.WallClockRuntime.observe_remote_stamp`)
makes receive stamps sort after their sends even across skewed clocks,
which is what lets :func:`~repro.live.recorder.merge_rows` interleave
the per-process logs into one causally consistent recording.

Robustness: every peer is heartbeated; silence past the liveness
timeout surfaces as an ``on_link_down`` to the algorithm (recorded as
an endpoint-scoped ``down`` row, counted under ``live.link_down``),
and the dialer side retries with capped exponential backoff plus
jitter (:func:`backoff_delays`).  A re-established stream surfaces as
``on_link_up``.  Endpoint-scoped churn replays best-effort — see
docs/live.md for the caveat; clean static runs replay exactly.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import random
import time
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from repro.errors import ReproError
from repro.live.codec import FrameDecoder, encode_frame
from repro.net.topology import link_key

#: Defaults for the robustness knobs, in wall seconds.
HEARTBEAT_INTERVAL = 0.1
LIVENESS_TIMEOUT = 1.0
RECONNECT_BASE = 0.05
RECONNECT_CAP = 2.0
RECONNECT_ATTEMPTS = 8


def backoff_delays(
    attempts: int = RECONNECT_ATTEMPTS,
    base: float = RECONNECT_BASE,
    cap: float = RECONNECT_CAP,
    rng: Optional[random.Random] = None,
) -> Iterator[float]:
    """Capped exponential backoff with jitter, in wall seconds.

    Delay ``k`` is uniform in ``[0.5, 1.5) * min(cap, base * 2**k)`` —
    exponential growth to a cap, with enough jitter that peers
    restarting together do not retry in lockstep.
    """
    rng = rng if rng is not None else random.Random()
    for attempt in range(attempts):
        yield min(cap, base * (2.0 ** attempt)) * (0.5 + rng.random())


class SocketTransport:
    """Framed TCP links from one node to its neighbors."""

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        runtime,
        node_id: int,
        neighbors: List[int],
        probes=None,
        hb_interval: float = HEARTBEAT_INTERVAL,
        liveness_timeout: float = LIVENESS_TIMEOUT,
        reconnect_attempts: int = RECONNECT_ATTEMPTS,
    ) -> None:
        self.loop = loop
        self.runtime = runtime
        self.node_id = node_id
        self.neighbors = sorted(neighbors)
        self.probes = probes
        self.hb_interval = hb_interval
        self.liveness_timeout = liveness_timeout
        self.reconnect_attempts = reconnect_attempts
        #: Wired after construction (link layer and transport reference
        #: each other).
        self.linklayer = None
        self._writers: Dict[int, asyncio.StreamWriter] = {}
        self._last_heard: Dict[int, float] = {}
        self._said_bye: Set[int] = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._tasks: List[asyncio.Task] = []
        self._all_connected = asyncio.Event()
        self._closing = False
        self._rng = random.Random(node_id * 7919 + 17)

    # ------------------------------------------------------------------
    # Startup
    # ------------------------------------------------------------------
    async def start_server(self) -> int:
        self._server = await asyncio.start_server(
            self._on_accept, "127.0.0.1", 0
        )
        return self._server.sockets[0].getsockname()[1]

    async def _on_accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        decoder = FrameDecoder()
        hello = None
        while hello is None:
            data = await reader.read(65536)
            if not data:
                writer.close()
                return
            frames = decoder.feed(data)
            if frames:
                hello = frames[0]
                rest = frames[1:]
        peer = int(hello["node"])
        self._attach(peer, reader, writer, decoder)
        for frame in rest:
            self._handle(peer, frame)

    async def connect_peers(self, ports: Dict[int, int]) -> None:
        """Dial lower-id neighbors; wait for higher-id ones to dial us."""
        for peer in self.neighbors:
            if peer < self.node_id:
                await self._dial(peer, ports[peer])
        self._check_connected()
        await self._all_connected.wait()

    async def _dial(self, peer: int, port: int) -> None:
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(encode_frame({"y": "hello", "node": self.node_id}))
        self._attach(peer, reader, writer, FrameDecoder())

    def _attach(
        self,
        peer: int,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        decoder: FrameDecoder,
    ) -> None:
        self._writers[peer] = writer
        self._last_heard[peer] = self.loop.time()
        self._said_bye.discard(peer)
        self._tasks.append(
            self.loop.create_task(self._read_loop(peer, reader, decoder))
        )
        self._check_connected()

    def _check_connected(self) -> None:
        if set(self.neighbors) <= set(self._writers):
            self._all_connected.set()

    def start_heartbeats(self) -> None:
        self._tasks.append(self.loop.create_task(self._heartbeat_loop()))

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def send(
        self, src: int, dst: int, message: Any, mid: str, incarnation: int
    ) -> None:
        writer = self._writers.get(dst)
        if writer is None:
            # Link is down/reconnecting: the message is lost in flight,
            # which the recording represents as an emit with no recv.
            return
        writer.write(encode_frame({
            "y": "msg",
            "src": src,
            "dst": dst,
            "m": mid,
            "i": incarnation,
            "s": self.runtime.last_stamp,
            "p": message,
        }))

    async def _read_loop(
        self, peer: int, reader: asyncio.StreamReader, decoder: FrameDecoder
    ) -> None:
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                self._last_heard[peer] = self.loop.time()
                for frame in decoder.feed(data):
                    self._handle(peer, frame)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if not self._closing:
                self._peer_lost(peer, reason="disconnect")

    def _handle(self, peer: int, frame: Dict[str, Any]) -> None:
        kind = frame.get("y")
        if kind == "msg":
            if not self.runtime.started:
                return
            self.runtime.observe_remote_stamp(float(frame["s"]))
            self.linklayer.dispatch(
                int(frame["src"]), int(frame["dst"]), frame["p"],
                frame["m"], int(frame["i"]),
            )
        elif kind == "bye":
            self._said_bye.add(peer)

    # ------------------------------------------------------------------
    # Liveness and reconnection
    # ------------------------------------------------------------------
    async def _heartbeat_loop(self) -> None:
        hb = encode_frame({"y": "hb"})
        while not self._closing:
            await asyncio.sleep(self.hb_interval)
            now = self.loop.time()
            for peer, writer in list(self._writers.items()):
                try:
                    writer.write(hb)
                except ConnectionError:  # pragma: no cover - race
                    continue
                if now - self._last_heard.get(peer, now) > self.liveness_timeout:
                    self._peer_lost(peer, reason="liveness")

    def _peer_lost(self, peer: int, reason: str) -> None:
        writer = self._writers.pop(peer, None)
        if writer is not None:
            try:
                writer.close()
            except Exception:  # pragma: no cover - teardown race
                pass
        if self._closing or peer in self._said_bye:
            return
        if self.probes is not None:
            self.probes.note_link_down(reason)
        if (self.runtime.started
                and peer in self.linklayer.neighbors(self.node_id)):
            a, b = link_key(self.node_id, peer)
            self.runtime.execute(
                "down",
                {"a": a, "b": b, "endpoint": self.node_id},
                self.linklayer.apply_link_event, "down", a, b, -1,
            )
        if peer < self.node_id:  # we are the dialer for this link
            self._tasks.append(self.loop.create_task(self._reconnect(peer)))

    async def _reconnect(self, peer: int) -> None:
        port = self._peer_ports.get(peer)
        if port is None:
            return
        for delay in backoff_delays(
            self.reconnect_attempts, rng=self._rng
        ):
            await asyncio.sleep(delay)
            if self._closing or peer in self._writers:
                return
            if self.probes is not None:
                self.probes.note_reconnect()
            try:
                await self._dial(peer, port)
            except ConnectionError:
                continue
            self._link_restored(peer)
            return

    def _link_restored(self, peer: int) -> None:
        if (self.runtime.started
                and peer not in self.linklayer.neighbors(self.node_id)):
            a, b = link_key(self.node_id, peer)
            self.runtime.execute(
                "up",
                {"a": a, "b": b, "mover": -1, "endpoint": self.node_id},
                self.linklayer.apply_link_event, "up", a, b, -1,
            )

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def remember_ports(self, ports: Dict[int, int]) -> None:
        self._peer_ports = dict(ports)

    async def close(self) -> None:
        self._closing = True
        bye = encode_frame({"y": "bye"})
        for writer in self._writers.values():
            try:
                writer.write(bye)
                await writer.drain()
            except ConnectionError:  # pragma: no cover - teardown race
                pass
        for writer in self._writers.values():
            writer.close()
        self._writers.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)


# ----------------------------------------------------------------------
# Per-node process body
# ----------------------------------------------------------------------
def _node_process(
    node_id: int,
    scenario: Dict[str, Any],
    until: float,
    time_scale: float,
    hb_interval: float,
    liveness_timeout: float,
    conn,
) -> None:
    try:
        _node_main(
            node_id, scenario, until, time_scale, hb_interval,
            liveness_timeout, conn,
        )
    except Exception as exc:  # surface to the coordinator, don't hang it
        try:
            conn.send(("error", node_id, f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass


def _node_main(
    node_id: int,
    scenario: Dict[str, Any],
    until: float,
    time_scale: float,
    hb_interval: float,
    liveness_timeout: float,
    conn,
) -> None:
    from repro.harness.config_io import config_from_dict
    from repro.live.linklayer import LiveLinkLayer, adjacency_from_positions
    from repro.live.node import LiveNodeSet, LiveProbes
    from repro.live.recorder import LiveRecorder
    from repro.live.runtime import WallClockRuntime
    from repro.obs.probes import build_probes
    from repro.obs.registry import MetricRegistry

    config = config_from_dict(scenario)
    loop = asyncio.new_event_loop()
    asyncio.set_event_loop(loop)
    recorder = LiveRecorder(origin=node_id)
    runtime = WallClockRuntime(loop, time_scale, recorder)
    registry = MetricRegistry()
    live_probes = LiveProbes(registry)
    protocol_probes = build_probes(registry)

    full = adjacency_from_positions(config.positions, config.radio_range)
    neighbors = sorted(full[node_id])
    # This process's membership view: its own links only.
    adjacency = {node_id: set(neighbors)}
    for peer in neighbors:
        adjacency[peer] = {node_id}

    transport = SocketTransport(
        loop, runtime, node_id, neighbors, probes=live_probes,
        hb_interval=hb_interval, liveness_timeout=liveness_timeout,
    )
    linklayer = LiveLinkLayer(
        runtime, recorder, transport.send, adjacency, probes=live_probes
    )
    transport.linklayer = linklayer
    nodes = LiveNodeSet(
        config, runtime, linklayer, recorder.trace,
        hosted=[node_id], probes=protocol_probes,
    )
    harness = nodes.harnesses[node_id]

    port = loop.run_until_complete(transport.start_server())
    conn.send(("port", node_id, port))
    tag, ports = conn.recv()
    assert tag == "peers"
    transport.remember_ports(ports)
    loop.run_until_complete(transport.connect_peers(ports))
    conn.send(("ready", node_id))
    tag, t0_epoch = conn.recv()
    assert tag == "go"
    runtime.start(loop.time() + (t0_epoch - time.time()))

    from repro.core.states import NodeState

    def fire_hungry() -> None:
        effective = (
            not harness.crashed and harness.state is NodeState.THINKING
        )
        live_probes.inc_event("hungry")
        runtime.execute(
            "hungry", {"n": node_id, "eff": bool(effective)},
            harness.become_hungry,
        )

    for t in (config.scripted_hunger or {}).get(node_id, ()):
        if t < until:
            loop.call_at(runtime.wall_at(t), fire_hungry)

    def fire_crash() -> None:
        live_probes.inc_event("crash")
        runtime.execute("crash", {"n": node_id}, _crash)

    def _crash() -> None:
        linklayer.crash(node_id)
        harness.crash()

    for t, victim in config.crashes:
        if victim == node_id and t < until:
            loop.call_at(runtime.wall_at(t), fire_crash)

    transport.start_heartbeats()
    loop.call_at(runtime.wall_at(until), loop.stop)
    loop.run_forever()
    runtime.stop()
    t_end = max(runtime.wall_virtual(), runtime.last_stamp)
    loop.run_until_complete(transport.close())
    loop.close()
    conn.send((
        "rows", node_id, recorder.rows, t_end, registry.snapshot(),
    ))
    conn.close()


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
def run_socket(
    scenario: Dict[str, Any],
    until: float,
    time_scale: float = 0.02,
    hb_interval: float = HEARTBEAT_INTERVAL,
    liveness_timeout: float = LIVENESS_TIMEOUT,
    start_grace: float = 0.5,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Run one scenario as one process per node over localhost TCP.

    Returns a merged, schema-versioned recording (runtime ``socket``)
    ready for :func:`repro.live.replay.verify_recording`.
    """
    from repro.live.recorder import make_recording, merge_rows

    n = len(scenario["positions"])
    ctx = multiprocessing.get_context("fork")
    conns = {}
    procs = {}
    try:
        for node in range(n):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_node_process,
                args=(node, scenario, until, time_scale, hb_interval,
                      liveness_timeout, child),
                daemon=True,
            )
            proc.start()
            child.close()
            conns[node] = parent
            procs[node] = proc

        setup_timeout = 30.0
        ports: Dict[int, int] = {}
        for node in range(n):
            msg = _recv(conns[node], setup_timeout)
            _expect(msg, "port", node)
            ports[msg[1]] = msg[2]
        for node in range(n):
            conns[node].send(("peers", ports))
        for node in range(n):
            _expect(_recv(conns[node], setup_timeout), "ready", node)
        t0_epoch = time.time() + start_grace
        for node in range(n):
            conns[node].send(("go", t0_epoch))

        run_timeout = until * time_scale + start_grace + 30.0
        rows_by_origin: Dict[int, List[Dict[str, Any]]] = {}
        snapshots: Dict[str, Any] = {}
        t_end = float(until)
        for node in range(n):
            msg = _recv(conns[node], run_timeout)
            _expect(msg, "rows", node)
            rows_by_origin[msg[1]] = msg[2]
            t_end = max(t_end, float(msg[3]))
            snapshots[str(node)] = msg[4]
        for proc in procs.values():
            proc.join(timeout=10.0)
    finally:
        for proc in procs.values():
            if proc.is_alive():
                proc.terminate()
        for conn in conns.values():
            conn.close()

    merged = merge_rows(rows_by_origin)
    doc_extra: Dict[str, Any] = {"probes_by_node": snapshots}
    if extra:
        doc_extra.update(extra)
    return make_recording(
        "socket", scenario, until, t_end, time_scale, merged, doc_extra
    )


def run_socket_family(
    family: str,
    algorithm: str,
    seed: int = 0,
    time_scale: float = 0.02,
) -> Dict[str, Any]:
    from repro.explore.scenarios import build_scenario

    row = build_scenario(family, algorithm, seed)
    if row["scenario"].get("mobility"):
        raise ReproError(
            "socket runs need a static scenario (scripted churn is "
            "bus-mode only); pick a static family"
        )
    return run_socket(
        row["scenario"], row["until"], time_scale=time_scale,
        extra={"family": row["family"], "algorithm": algorithm, "seed": seed},
    )


def _recv(conn, timeout: float) -> Tuple:
    if not conn.poll(timeout):
        raise ReproError(
            f"socket-run coordination timed out after {timeout:.0f}s"
        )
    return conn.recv()


def _expect(msg: Tuple, tag: str, node: int) -> None:
    if msg[0] == "error":
        raise ReproError(f"node {msg[1]} process failed: {msg[2]}")
    if msg[0] != tag:
        raise ReproError(
            f"unexpected coordination message from node {node}: {msg[0]!r} "
            f"(wanted {tag!r})"
        )
