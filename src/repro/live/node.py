"""Shared node assembly for the live runtimes.

Both live transports build their nodes here, the same way
:class:`repro.runtime.simulation.Simulation` does: a full
:class:`~repro.net.topology.DynamicTopology` from the scenario
positions (the coloring/registry build step needs the global graph even
when the process will only host one node), the registry's
:func:`~repro.runtime.registry.resolve`, and an *unmodified*
:class:`~repro.runtime.node.NodeHarness` per hosted node.  The
algorithm classes are exactly the registered ones — no live subclasses.

Also home of the ``live.*`` probe family: operational counters for the
live planes (deliveries, drops, liveness link-downs, reconnect
attempts), exported through the same registry/OpenMetrics pipeline as
the protocol probes.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.metrics.collector import MetricsCollector
from repro.net.topology import DynamicTopology
from repro.obs.registry import MetricRegistry
from repro.runtime.node import NodeHarness
from repro.runtime.registry import BuildContext, resolve
from repro.runtime.simulation import ScenarioConfig
from repro.sim.rng import RandomSource


class LiveProbes:
    """Operational counters for the live transports (``live.*``)."""

    __slots__ = ("registry", "events", "link_down", "reconnects")

    def __init__(self, registry: MetricRegistry) -> None:
        self.registry = registry
        self.events = registry.counter(
            "live.events", "live executions dispatched, by row kind"
        )
        self.link_down = registry.counter(
            "live.link_down", "live link-down events, by reason"
        )
        self.reconnects = registry.counter(
            "live.reconnects", "socket reconnect attempts"
        )

    def inc_event(self, kind: str) -> None:
        self.events.inc(key=kind)

    def note_link_down(self, reason: str) -> None:
        self.link_down.inc(key=reason)

    def note_reconnect(self) -> None:
        self.reconnects.inc()


class LiveNodeSet:
    """The harnesses (and shared collaborators) one process hosts."""

    def __init__(
        self,
        config: ScenarioConfig,
        runtime,
        linklayer,
        trace,
        hosted: Iterable[int],
        probes=None,
    ) -> None:
        self.config = config
        self.metrics = MetricsCollector()
        self.topology = DynamicTopology(radio_range=config.radio_range)
        self.topology.add_nodes(enumerate(config.positions))
        n = len(config.positions)
        delta = config.delta_override or max(1, self.topology.max_degree())
        context = BuildContext(
            topology=self.topology,
            n=n,
            delta=delta,
            initial_colors=config.initial_colors,
            rng=RandomSource(config.seed).stream("coloring"),
        )
        if callable(config.algorithm):
            factory = config.algorithm(context)
        else:
            factory = resolve(config.algorithm, context)
        # One RandomSource per process: substream seeds derive from the
        # (name, node) key alone, so a node's streams are identical no
        # matter which process hosts it.
        rng_source = RandomSource(config.seed)
        self.harnesses: Dict[int, NodeHarness] = {}
        for node_id in sorted(hosted):
            harness = NodeHarness(
                node_id,
                runtime,
                linklayer,
                config.bounds,
                trace,
                eat_rng=None,
                metrics=self.metrics,
                safety=None,
                probes=probes,
                rng_source=rng_source,
            )
            harness.bind(factory(harness))
            self.harnesses[node_id] = harness
            linklayer.register(node_id, harness)
        for node_id, harness in self.harnesses.items():
            harness.algorithm.bootstrap_peers(
                self.topology.sorted_neighbors(node_id)
            )

    def metrics_summary(self) -> Dict[str, int]:
        return {
            "cs_entries": self.metrics.total_cs_entries(),
            "crashed": len(self.metrics.crashed),
        }


def build_live_probes(registry: Optional[MetricRegistry]) -> Optional[LiveProbes]:
    if registry is None:
        return None
    return LiveProbes(registry)
