"""Length-prefixed frames for the socket transport.

A frame is a 4-byte big-endian length followed by a pickled payload
dict.  Pickle is what lets the interned protocol messages of
:mod:`repro.net.messages` cross the wire as themselves — their
``__reduce__`` round-trips through the constructor, so an unpickled
``ForkGrant(True)`` resolves to the receiver's interned instance, and
the receiving node runs the same objects the simulator would hand it.

Deserialization is restricted: :class:`_RestrictedUnpickler` only
resolves classes from ``repro.*`` modules (plus a tiny builtin
allowlist), so a frame cannot instantiate arbitrary types.  Peers are
trusted processes of the same deployment, but a localhost port is a
localhost port.
"""

from __future__ import annotations

import io
import pickle
from typing import Any, Iterator, List

from repro.errors import ProtocolError

#: Upper bound on a single frame; protocol messages are tiny, so
#: anything near this is a corrupt or hostile stream.
MAX_FRAME = 1 << 24

_LENGTH_BYTES = 4

_SAFE_BUILTINS = frozenset({"frozenset", "set", "tuple", "complex"})


class _RestrictedUnpickler(pickle.Unpickler):
    def find_class(self, module: str, name: str) -> Any:
        if module == "repro" or module.startswith("repro."):
            return super().find_class(module, name)
        if module == "builtins" and name in _SAFE_BUILTINS:
            return super().find_class(module, name)
        raise pickle.UnpicklingError(
            f"frame references forbidden global {module}.{name}"
        )


def encode_frame(payload: Any) -> bytes:
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    if len(body) > MAX_FRAME:
        raise ProtocolError(f"frame too large: {len(body)} bytes")
    return len(body).to_bytes(_LENGTH_BYTES, "big") + body


def decode_body(body: bytes) -> Any:
    return _RestrictedUnpickler(io.BytesIO(body)).load()


class FrameDecoder:
    """Incremental decoder: feed stream chunks, get whole frames out."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[Any]:
        self._buffer.extend(data)
        frames: List[Any] = []
        buffer = self._buffer
        while len(buffer) >= _LENGTH_BYTES:
            length = int.from_bytes(buffer[:_LENGTH_BYTES], "big")
            if length > MAX_FRAME:
                raise ProtocolError(
                    f"frame length {length} exceeds limit {MAX_FRAME}"
                )
            if len(buffer) < _LENGTH_BYTES + length:
                break
            body = bytes(buffer[_LENGTH_BYTES:_LENGTH_BYTES + length])
            del buffer[:_LENGTH_BYTES + length]
            frames.append(decode_body(body))
        return frames

    def __iter__(self) -> Iterator[Any]:  # pragma: no cover - convenience
        return iter(())
