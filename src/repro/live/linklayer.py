"""Link layer over a live transport, mirroring the simulated one.

:class:`LiveLinkLayer` reproduces the exact externally observable
contract of :class:`repro.net.linklayer.LinkLayer` +
:class:`repro.net.channel.ChannelLayer`, so an algorithm cannot tell
which one it is wired to:

* ``send`` from a crashed node is silently absorbed; ``send`` over a
  non-existent link raises :class:`~repro.errors.TopologyError`;
* ``broadcast`` is unicasts in ascending neighbor-id order;
* a delivery whose link went down (or came back up — the incarnation
  changed) after the send is dropped;
* a delivery to a crashed node is absorbed and counted;
* link-up indications go to the static endpoint first, then the moving
  endpoint with ``moving=True``; link-down indications go to both
  endpoints in canonical link order; crashed endpoints get nothing.

Unlike the simulated stack there is no ``DynamicTopology`` underneath:
the adjacency is this instance's *membership view*, maintained by
whatever topology feed drives :meth:`apply_link_event`.  In bus mode
one instance carries the global view; in socket mode each process
holds its own single-node view and only its own links.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.errors import TopologyError
from repro.net.topology import link_key


class LiveLinkLayer:
    """Membership view + delivery semantics for one live runtime."""

    def __init__(
        self,
        runtime,
        recorder,
        send_transport: Callable[[int, int, Any, str, int], None],
        adjacency: Dict[int, Set[int]],
        probes=None,
    ) -> None:
        self._runtime = runtime
        self._recorder = recorder
        #: ``(src, dst, message, mid, incarnation)`` — the transport owns
        #: queueing/framing; FIFO per directed link is its contract.
        self._send_transport = send_transport
        self._adjacency = {n: set(peers) for n, peers in adjacency.items()}
        self._handlers: Dict[int, Any] = {}
        self._crashed: Set[int] = set()
        self._incarnation: Dict[Tuple[int, int], int] = {}
        self._probes = probes
        #: Messages addressed to crashed nodes (absorbed silently).
        self.messages_to_crashed = 0
        #: Deliveries suppressed because the link churned mid-flight.
        self.dropped = 0

    # ------------------------------------------------------------------
    # Queries (the algorithm-facing surface)
    # ------------------------------------------------------------------
    def register(self, node_id: int, handler) -> None:
        self._handlers[node_id] = handler
        self._adjacency.setdefault(node_id, set())

    def neighbors(self, node_id: int) -> FrozenSet[int]:
        return frozenset(self._adjacency.get(node_id, ()))

    def sorted_neighbors(self, node_id: int) -> Tuple[int, ...]:
        return tuple(sorted(self._adjacency.get(node_id, ())))

    def is_crashed(self, node_id: int) -> bool:
        return node_id in self._crashed

    def live_nodes(self) -> Iterable[int]:
        return [n for n in sorted(self._handlers) if n not in self._crashed]

    def incarnation(self, a: int, b: int) -> int:
        return self._incarnation.get(link_key(a, b), 0)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, message) -> None:
        if src in self._crashed:
            return
        if dst not in self._adjacency.get(src, ()):
            raise TopologyError(f"no link {src} -> {dst}")
        mid = self._recorder.note_send(src, dst, message)
        self._send_transport(src, dst, message, mid, self.incarnation(src, dst))

    def broadcast(self, src: int, message) -> None:
        if src in self._crashed:
            return
        for dst in self.sorted_neighbors(src):
            self.send(src, dst, message)

    # ------------------------------------------------------------------
    # Delivery (called by the transport, on the loop)
    # ------------------------------------------------------------------
    def dispatch(
        self, src: int, dst: int, message, mid: str, incarnation: int
    ) -> None:
        """Deliver (or drop) one in-flight message as a recorded row.

        The drop check runs at dispatch time — the same instant the
        delivery would execute — so it sees exactly the link state the
        delivery would.
        """
        live = (
            incarnation == self.incarnation(src, dst)
            and dst in self._adjacency.get(src, ())
        )
        if not live:
            self.dropped += 1
            if self._probes is not None:
                self._probes.inc_event("drop")
            self._runtime.execute(
                "drop", {"src": src, "dst": dst, "m": mid}, _noop
            )
            return
        if self._probes is not None:
            self._probes.inc_event("recv")
        self._runtime.execute(
            "recv",
            {"src": src, "dst": dst, "m": mid, "kind": message.kind},
            self._deliver,
            src,
            dst,
            message,
        )

    def _deliver(self, src: int, dst: int, message) -> None:
        if dst in self._crashed:
            self.messages_to_crashed += 1
            return
        handler = self._handlers.get(dst)
        if handler is not None:
            handler.on_message(src, message)

    # ------------------------------------------------------------------
    # Topology feed
    # ------------------------------------------------------------------
    def apply_link_event(self, op: str, a: int, b: int, mover: int) -> None:
        """One link change, already inside a recorded execution.

        ``mover`` (for ``up``) is the endpoint whose movement created
        the link, or -1 when neither moved — it decides indication
        roles exactly like the simulated link layer's moving set does.
        """
        a, b = link_key(a, b)
        if op == "down":
            self._adjacency.get(a, set()).discard(b)
            self._adjacency.get(b, set()).discard(a)
            key = (a, b)
            self._incarnation[key] = self._incarnation.get(key, 0) + 1
            self._indicate_down(a, b)
            self._indicate_down(b, a)
        else:
            self._adjacency.setdefault(a, set()).add(b)
            self._adjacency.setdefault(b, set()).add(a)
            if mover == a:
                static_end, moving_end = b, a
            elif mover == b:
                static_end, moving_end = a, b
            else:
                static_end, moving_end = a, b  # canonical order, like sim
            self._indicate_up(static_end, moving_end, moving=False)
            self._indicate_up(moving_end, static_end, moving=True)

    def _indicate_up(self, node_id: int, peer: int, moving: bool) -> None:
        if node_id in self._crashed:
            return
        handler = self._handlers.get(node_id)
        if handler is not None:
            handler.on_link_up(peer, moving)

    def _indicate_down(self, node_id: int, peer: int) -> None:
        if node_id in self._crashed:
            return
        handler = self._handlers.get(node_id)
        if handler is not None:
            handler.on_link_down(peer)

    # ------------------------------------------------------------------
    # Failures
    # ------------------------------------------------------------------
    def crash(self, node_id: int) -> None:
        self._crashed.add(node_id)


def _noop() -> None:
    return None


def adjacency_from_positions(positions, radio_range: float,
                             ) -> Dict[int, Set[int]]:
    """Initial unit-disk adjacency for a list of Points."""
    from repro.net.topology import DynamicTopology

    topology = DynamicTopology(radio_range=radio_range)
    topology.add_nodes(
        (node_id, point) for node_id, point in enumerate(positions)
    )
    return {
        node_id: set(topology.neighbors(node_id))
        for node_id in topology.nodes()
    }
