"""Fairness metrics over critical-section allocations.

Starvation freedom says everyone *eventually* eats; fairness asks how
evenly turns are distributed.  The examples and several benchmarks
report Jain's index; this module centralizes it together with
contention-normalized shares (a degree-3 node competing with three
neighbors deserves fewer absolute turns than an isolated one, so raw
entry counts alone mislead on irregular topologies).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.metrics.collector import MetricsCollector
from repro.net.topology import DynamicTopology


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: (Σx)² / (n · Σx²), in (0, 1].

    1.0 means perfectly even; 1/n means one node took everything.
    All-zero allocations count as perfectly fair (nothing was unfairly
    distributed).
    """
    data = list(values)
    if not data:
        raise ValueError("jain_index of empty sequence")
    if any(v < 0 for v in data):
        raise ValueError("jain_index requires non-negative values")
    total = sum(data)
    if total == 0:
        return 1.0
    return total * total / (len(data) * sum(v * v for v in data))


def entry_counts(
    metrics: MetricsCollector, nodes: Sequence[int]
) -> List[int]:
    """CS entry counts for ``nodes`` (zero for nodes that never ate)."""
    return [
        metrics.counters[n].cs_entries if n in metrics.counters else 0
        for n in nodes
    ]


def contention_weights(topology: DynamicTopology) -> Dict[int, float]:
    """Ideal share weights: node i deserves ~1/(degree_i + 1) of time.

    In a neighborhood of k+1 mutually exclusive nodes each can hold the
    CS at most 1/(k+1) of the time; normalizing entries by this weight
    compares nodes across different local contention levels.
    """
    return {
        node: 1.0 / (topology.degree(node) + 1)
        for node in topology.nodes()
    }


def weighted_fairness(
    metrics: MetricsCollector, topology: DynamicTopology
) -> float:
    """Jain index of contention-normalized CS shares."""
    weights = contention_weights(topology)
    nodes = topology.nodes()
    counts = entry_counts(metrics, nodes)
    normalized = [
        count / weights[node] if weights[node] > 0 else 0.0
        for node, count in zip(nodes, counts)
    ]
    return jain_index(normalized)


def starvation_free(
    metrics: MetricsCollector,
    nodes: Sequence[int],
    now: float,
    threshold: float,
    exclude: Optional[Sequence[int]] = None,
) -> bool:
    """True iff no (non-excluded) node has been hungry past ``threshold``."""
    excluded = set(exclude or ())
    return not [
        n for n in metrics.starving(now, threshold) if n not in excluded
    ]


def fairness_report(
    metrics: MetricsCollector, topology: DynamicTopology
) -> Mapping[str, float]:
    """Bundle of fairness figures for result tables."""
    nodes = topology.nodes()
    counts = entry_counts(metrics, nodes)
    report = {
        "jain_raw": jain_index(counts),
        "jain_weighted": weighted_fairness(metrics, topology),
        "min_entries": float(min(counts)) if counts else 0.0,
        "max_entries": float(max(counts)) if counts else 0.0,
    }
    return report
