"""Measurement: response times, safety checking, failure locality."""

from repro.metrics.collector import MetricsCollector, ResponseSample
from repro.metrics.locality import LocalityReport, measure_failure_locality
from repro.metrics.safety import SafetyMonitor

__all__ = [
    "LocalityReport",
    "MetricsCollector",
    "ResponseSample",
    "SafetyMonitor",
    "measure_failure_locality",
]
