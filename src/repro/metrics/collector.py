"""Per-run measurement of the paper's response-time metric.

Response time (Definition 1): the interval between a node becoming
hungry and subsequently entering its critical section.  A mobility
demotion (eating -> hungry) starts a *new* hungry interval — the
definition's premise is a node that "remains static", so preempted
intervals are accounted separately and flagged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class ResponseSample:
    """One completed hungry -> eating interval."""

    node: int
    hungry_at: float
    eating_at: float
    #: True when this interval began with a demotion rather than an
    #: application request.
    after_demotion: bool = False

    @property
    def response_time(self) -> float:
        return self.eating_at - self.hungry_at


@dataclass
class NodeCounters:
    """Lifetime counters for one node."""

    hungry_count: int = 0
    cs_entries: int = 0
    cs_completions: int = 0
    demotions: int = 0


class MetricsCollector:
    """Aggregates state-transition events from all node harnesses."""

    def __init__(self) -> None:
        self.samples: List[ResponseSample] = []
        self.counters: Dict[int, NodeCounters] = {}
        #: node id -> crash time, for nodes that died during the run.
        self.crashed: Dict[int, float] = {}
        self._hungry_since: Dict[int, float] = {}
        self._after_demotion: Dict[int, bool] = {}

    def _node(self, node_id: int) -> NodeCounters:
        counters = self.counters.get(node_id)
        if counters is None:
            counters = NodeCounters()
            self.counters[node_id] = counters
        return counters

    # ------------------------------------------------------------------
    # Event intake (called by NodeHarness)
    # ------------------------------------------------------------------
    def note_hungry(self, node_id: int, time: float) -> None:
        self._node(node_id).hungry_count += 1
        self._hungry_since[node_id] = time
        self._after_demotion[node_id] = False

    def note_demotion(self, node_id: int, time: float) -> None:
        self._node(node_id).demotions += 1
        self._hungry_since[node_id] = time
        self._after_demotion[node_id] = True

    def note_eat_start(self, node_id: int, time: float) -> None:
        counters = self._node(node_id)
        counters.cs_entries += 1
        hungry_at = self._hungry_since.pop(node_id, None)
        if hungry_at is not None:
            self.samples.append(
                ResponseSample(
                    node=node_id,
                    hungry_at=hungry_at,
                    eating_at=time,
                    after_demotion=self._after_demotion.pop(node_id, False),
                )
            )

    def note_think(self, node_id: int, time: float) -> None:
        self._node(node_id).cs_completions += 1
        # The eating interval is over, so any demotion marker from it is
        # stale; without this, a hungry interval recorded without a
        # matching note_hungry/note_demotion would inherit the old flag.
        self._after_demotion.pop(node_id, None)

    def note_crash(self, node_id: int, time: float) -> None:
        """A node crashed: close out its in-flight measurement state.

        A crashed node is dead, not starving — leaving it in the hungry
        table would make :meth:`starving` (and the starvation watchdog
        built on it) report it forever.  The crash time is retained for
        run reports.
        """
        self.crashed[node_id] = time
        self._hungry_since.pop(node_id, None)
        self._after_demotion.pop(node_id, None)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def response_times(self, node_id: Optional[int] = None) -> List[float]:
        """All completed response times (optionally for one node)."""
        return [
            s.response_time
            for s in self.samples
            if node_id is None or s.node == node_id
        ]

    def total_cs_entries(self) -> int:
        return sum(c.cs_entries for c in self.counters.values())

    def hungry_nodes(self) -> Dict[int, float]:
        """Nodes currently hungry, with the time they became so."""
        return dict(self._hungry_since)

    def starving(self, now: float, threshold: float) -> List[int]:
        """Nodes hungry for longer than ``threshold`` as of ``now``."""
        return sorted(
            node
            for node, since in self._hungry_since.items()
            if now - since > threshold
        )

    def max_response_time(self) -> Optional[float]:
        times = self.response_times()
        return max(times) if times else None

    def mean_response_time(self) -> Optional[float]:
        times = self.response_times()
        return sum(times) / len(times) if times else None
