"""The local mutual exclusion safety monitor.

Checks the paper's safety condition — no two *current neighbors*
simultaneously in the critical section — at every point it could newly
become violated: when a node starts eating, and when a link forms
between two nodes (the mobile-setting hazard the eating->hungry
demotion exists to close).

By default a violation raises :class:`~repro.errors.SafetyViolation`
immediately (every test and benchmark runs under this); a non-strict
mode records violations instead, used by tests that *expect* a broken
protocol variant to fail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.states import NodeState
from repro.errors import SafetyViolation
from repro.net.topology import DynamicTopology


@dataclass(frozen=True)
class Violation:
    """A recorded (non-strict mode) safety violation."""

    time: float
    node_a: int
    node_b: int


class SafetyMonitor:
    """Watches all node harnesses for mutual exclusion violations."""

    def __init__(
        self,
        topology: DynamicTopology,
        harnesses: Dict[int, "NodeHarness"],  # noqa: F821
        strict: bool = True,
    ) -> None:
        self._topology = topology
        self._harnesses = harnesses
        self.strict = strict
        self.violations: List[Violation] = []
        self.checks_performed = 0

    # ------------------------------------------------------------------
    def _is_eating(self, node_id: int) -> bool:
        harness = self._harnesses.get(node_id)
        return harness is not None and harness.state is NodeState.EATING

    def _flag(self, time: float, a: int, b: int) -> None:
        if self.strict:
            raise SafetyViolation(time, a, b)
        self.violations.append(Violation(time, a, b))

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def note_eating_start(self, node_id: int, time: float) -> None:
        """A node entered the CS: none of its neighbors may be eating."""
        self.checks_performed += 1
        for peer in sorted(self._topology.neighbors(node_id)):
            if self._is_eating(peer):
                self._flag(time, node_id, peer)

    def on_link_event(self, kind: str, a: int, b: int, time: float) -> None:
        """Link-layer observer: a new link must not join two eaters.

        Called after both endpoints processed their indications, i.e.
        after the moving endpoint had its chance to demote itself.
        """
        if kind != "up":
            return
        self.checks_performed += 1
        if self._is_eating(a) and self._is_eating(b):
            self._flag(time, a, b)

    def deep_check(self, time: float) -> None:
        """Full sweep over all links (used by tests at checkpoints)."""
        self.checks_performed += 1
        for a, b in self._topology.links():
            if self._is_eating(a) and self._is_eating(b):
                self._flag(time, a, b)
