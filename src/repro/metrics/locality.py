"""Empirical failure-locality measurement (experiment E3).

Failure locality (Definition 1): nodes farther than ``m`` hops from any
crashed node must keep making progress.  We measure the converse: after
injecting a crash and running long past every healthy node's expected
response time, which hungry nodes starved, and how far are they from
the crash?  The *starvation radius* — the maximum crash distance of any
starved node — is the empirical failure locality; the paper predicts

* Algorithm 2: radius <= 2 (Theorem 25);
* Algorithm 1 / Linial: small (max(log* n, 4) + 2, Theorem 22);
* Algorithm 1 / greedy: up to n (Theorem 16);
* Chandy-Misra: up to n (waiting chains).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.net.topology import DynamicTopology


@dataclass
class LocalityReport:
    """Outcome of one failure-locality probe."""

    crashed: List[int]
    #: node -> hop distance to the nearest crashed node.
    distances: Dict[int, int] = field(default_factory=dict)
    #: hungry nodes that never ate after the crash.
    starved: List[int] = field(default_factory=list)
    #: hungry-after-crash nodes that did eat.
    progressed: List[int] = field(default_factory=list)

    @property
    def starvation_radius(self) -> Optional[int]:
        """Max crash distance among starved nodes (None if none starved)."""
        radii = [self.distances[n] for n in self.starved if n in self.distances]
        return max(radii) if radii else None

    @property
    def progress_radius(self) -> Optional[int]:
        """Min crash distance at which every node progressed."""
        if not self.starved:
            return 0
        radius = self.starvation_radius
        return None if radius is None else radius + 1

    def starved_by_distance(self) -> Dict[int, int]:
        """Histogram: crash distance -> number of starved nodes."""
        histogram: Dict[int, int] = {}
        for node in self.starved:
            dist = self.distances.get(node)
            if dist is not None:
                histogram[dist] = histogram.get(dist, 0) + 1
        return dict(sorted(histogram.items()))

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary (string keys, so it round-trips JSON)."""
        return {
            "crashed": sorted(self.crashed),
            "distances": {
                str(node): dist
                for node, dist in sorted(self.distances.items())
            },
            "starved": sorted(self.starved),
            "progressed": sorted(self.progressed),
            "starvation_radius": self.starvation_radius,
            "progress_radius": self.progress_radius,
            "starved_by_distance": {
                str(dist): count
                for dist, count in self.starved_by_distance().items()
            },
        }


def measure_failure_locality(
    topology: DynamicTopology,
    crashed: Iterable[int],
    hungry_after_crash: Iterable[int],
    ate_after_crash: Iterable[int],
) -> LocalityReport:
    """Build a :class:`LocalityReport` from post-run bookkeeping.

    Distance queries go through ``topology.distances_from``, which is
    memoized against the topology's version counter — repeated locality
    probes of the same crash against an unchanged end-of-run graph cost
    one BFS, not one per call.

    Args:
        topology: the (post-run) communication graph used for distances.
        crashed: crashed node ids.
        hungry_after_crash: nodes that were hungry at some point after
            the (first) crash.
        ate_after_crash: the subset of those that subsequently ate.
    """
    crashed = sorted(set(crashed))
    ate = set(ate_after_crash)
    hungry = sorted(set(hungry_after_crash))
    distances: Dict[int, int] = {}
    for crash_node in crashed:
        if crash_node not in topology:
            continue
        for node, dist in topology.distances_from(crash_node).items():
            if node not in distances or dist < distances[node]:
                distances[node] = dist
    report = LocalityReport(crashed=crashed, distances=distances)
    for node in hungry:
        if node in crashed:
            continue
        if node in ate:
            report.progressed.append(node)
        else:
            report.starved.append(node)
    return report
