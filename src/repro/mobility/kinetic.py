"""Kinetic link prediction: event-driven mobility without dead steps.

The fixed-step path in :mod:`repro.mobility.base` advances every moving
node on a timer, calling ``topology.set_position`` once per node per
``step_length`` of travel even when no link can possibly change — the
dominant cost of sparse or slow mobile scenarios.  Motion episodes are
piecewise linear, so link changes are *predictable*: for a pair of
nodes with relative position ``P(t) = P0 + V·dt`` the squared distance
is the quadratic

    q(dt) = |V|²·dt² + 2(P0·V)·dt + |P0|²

and the link toggles exactly where ``q(dt) = r²``.  The engine keeps
one scheduled *certificate* per candidate pair — the earliest root of
that quadratic over the pieces of both trajectories (each node is
linear until its arrival time, constant afterwards) — and touches the
topology only at certificates, episode boundaries and coarse
*horizon* refreshes.  Dead steps are skipped entirely.

Certificate completeness
------------------------

Candidate pairs are discovered from the spatial-hash grid, whose
stored positions go stale while a node flies.  Staleness is bounded:
every mid-flight node is repositioned at least every **half radio
range** of travel (its horizon event).  An examination of a pair —
whether it scheduled a crossing or proved there is none — depends only
on the two *trajectories*, so it is stamped with both endpoints' motion
generations and stays valid until one of them launches, retargets,
teleports or freezes.  Discovery therefore only has to run a full
**three-ring** (7×7 cell) window scan at a launch and at any
reposition that *changed the node's grid cell*; cell-preserving
horizons skip the scan.

Why that is complete: a crossing of pair ``(a, b)`` requires true
distance ``r``, hence stored–stored distance at most
``r + 2·(r/2) = 2r`` — under three cells (cells are ≥ ``r`` wide).
The stored cell distance of an unexamined pair can only fall to three
cells through some grid move, and every kind of grid move covers the
pair: a cell-changing reposition or launch immediately scans a window
that (symmetrically) contains the other endpoint; an arrival moves the
stored point under half a cell and leaves both trajectories as the
last exam modeled them, so no exam is invalidated and any further
approach takes cell-changing repositions of one endpoint; a teleport
re-certifies against every mid-flight mover; a freeze re-certifies its
scheduled pairs *and* every mover in its window (movers already inside
the window could cross the freeze position without another cell change
of their own).

Consistency between events
--------------------------

Stored positions of *other* mid-flight nodes are stale whenever a
batch of positions is applied, so those pairs are excluded from link
evaluation (``set_positions(..., deferred=...)``): each such pair has
its own certificate, computed from true trajectories.  Adjacency is
thus maintained from exact motion, never from stale snapshots.

Floating point at the boundary is handled at scheduling time: the
analytic root is nudged forward (exponentially growing increments on
the order of one ulp) until the inclusive distance test ``d ≤ r``
reports the intended side, so a fired certificate always toggles its
link and the follow-up certificate lands strictly later — no
same-instant event loops.  A grazing contact that never satisfies the
predicate is dropped after a bounded number of nudges.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.net.geometry import Point
from repro.net.linklayer import LinkLayer
from repro.net.topology import DynamicTopology, Link, link_key
from repro.sim.engine import ScheduledEvent, Simulator
from repro.sim.events import EventPriority

#: Fraction of the radio range a mid-flight node may travel between
#: stored-position refreshes.  The three-ring candidate window below is
#: sized for this bound (see the module docstring).
_HORIZON_FRACTION = 0.5

#: Grid rings scanned for certificate discovery (7×7 cells).
_DISCOVERY_RINGS = 3

#: Cap on boundary-refinement nudges before a contact is dropped.
_MAX_REFINE = 80


class _Motion:
    """One node's active linear flight."""

    __slots__ = (
        "node", "x0", "y0", "t0", "vx", "vy", "t1", "dest",
        "arrived_cb", "arrival_event", "horizon_event",
    )

    def __init__(
        self,
        node: int,
        origin: Point,
        dest: Point,
        t0: float,
        speed: float,
        arrived_cb: Callable[[], None],
    ) -> None:
        self.node = node
        self.x0 = origin.x
        self.y0 = origin.y
        self.t0 = t0
        dist = origin.distance_to(dest)
        self.t1 = t0 + dist / speed
        self.vx = (dest.x - origin.x) / (self.t1 - t0)
        self.vy = (dest.y - origin.y) / (self.t1 - t0)
        self.dest = dest
        self.arrived_cb = arrived_cb
        self.arrival_event: Optional[ScheduledEvent] = None
        self.horizon_event: Optional[ScheduledEvent] = None

    def position_at(self, t: float) -> Point:
        """Exact position at time ``t`` (clamped to the flight window)."""
        if t >= self.t1:
            return self.dest
        if t <= self.t0:
            return Point(self.x0, self.y0)
        dt = t - self.t0
        return Point(self.x0 + self.vx * dt, self.y0 + self.vy * dt)


class KineticEngine:
    """Certificate-driven execution of movement episodes.

    Owned by :class:`repro.mobility.base.MobilityController`; one engine
    serves the whole network.  All events run at
    :data:`EventPriority.TOPOLOGY` like the fixed-step path.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: DynamicTopology,
        linklayer: LinkLayer,
        step_length: float,
        probes=None,
    ) -> None:
        self._sim = sim
        self._topology = topology
        self._linklayer = linklayer
        #: The fixed-step path's step length — used only to account for
        #: the per-step updates this engine *didn't* execute.
        self._step_length = step_length
        self._probes = probes
        self._motion: Dict[int, _Motion] = {}
        self._pair_events: Dict[Link, ScheduledEvent] = {}
        self._pairs_of: Dict[int, Set[Link]] = {}
        # A pair's crossing function depends only on both endpoints'
        # motions, so an examination (even one that found no crossing)
        # stays valid until either endpoint's *trajectory* changes —
        # launch, retarget, teleport or crash-freeze, but NOT a plain
        # arrival (the exam already modeled the constant piece after
        # t1).  Each node carries a motion generation; ``_examined``
        # remembers the generation pair under which a pair was last
        # solved, letting horizon refreshes skip the (overwhelmingly
        # redundant) re-solve of an unchanged 7x7 window.
        self._gen: Dict[int, int] = {}
        self._examined: Dict[Link, Tuple[int, int]] = {}
        self._examined_cap = 4096
        # Counters (all deterministic; surfaced through stats()/probes).
        self.position_updates = 0
        self.crossings_scheduled = 0
        self.crossing_events = 0
        self.horizon_events = 0
        self.arrivals = 0
        self.teleports = 0
        self.fixed_step_equivalent = 0
        self.max_batch = 0

    # ------------------------------------------------------------------
    # API used by the controller
    # ------------------------------------------------------------------
    def launch(
        self,
        node_id: int,
        destination: Point,
        speed: float,
        arrived_cb: Callable[[], None],
    ) -> bool:
        """Begin an episode.  Returns True when it completed instantly
        (teleport or zero-length move); otherwise ``arrived_cb`` runs at
        the exact arrival time ``t0 + dist/speed``.
        """
        now = self._sim.now
        if node_id in self._motion:
            # Retarget mid-flight: pin the current true position first.
            self._freeze(node_id, self._motion[node_id].position_at(now))
        origin = self._topology.position(node_id)
        dist = origin.distance_to(destination)
        self._gen[node_id] = self._gen.get(node_id, 0) + 1
        if speed <= 0 or dist == 0.0:
            self.teleports += 1
            self.fixed_step_equivalent += 1
            self._apply(now, [node_id], {node_id: destination}, "teleport")
            # The jump invalidates every in-flight certificate computed
            # against the old stored position.
            for mover in sorted(self._motion):
                self._certify(mover, node_id)
            return True
        self.fixed_step_equivalent += max(1, math.ceil(dist / self._step_length))
        motion = _Motion(node_id, origin, destination, now, speed, arrived_cb)
        self._motion[node_id] = motion
        motion.arrival_event = self._sim.schedule_at(
            motion.t1, self._arrival, node_id,
            priority=EventPriority.TOPOLOGY,
        )
        period = (_HORIZON_FRACTION * self._topology.radio_range) / speed
        if now + period < motion.t1:
            motion.horizon_event = self._sim.schedule_at(
                now + period, self._horizon, node_id, period,
                priority=EventPriority.TOPOLOGY,
            )
        # The new motion invalidates every certificate involving this
        # node; re-certify known pairs, then discover around the origin.
        for pair in sorted(self._pairs_of.get(node_id, ())):
            self._certify(*pair)
        self._predict(node_id)
        return False

    def note_crash(self, node_id: int) -> None:
        """Freeze a crashed node at its exact position right now."""
        motion = self._motion.get(node_id)
        if motion is None:
            return
        position = motion.position_at(self._sim.now)
        self._freeze(node_id, position)

    def stats(self) -> Dict[str, object]:
        """Deterministic mobility-plane counters for reports/benchmarks."""
        return {
            "mode": "kinetic",
            "position_updates": self.position_updates,
            "crossings_scheduled": self.crossings_scheduled,
            "crossing_events": self.crossing_events,
            "horizon_events": self.horizon_events,
            "arrivals": self.arrivals,
            "teleports": self.teleports,
            "fixed_step_equivalent": self.fixed_step_equivalent,
            "dead_steps_skipped": max(
                0, self.fixed_step_equivalent - self.position_updates
            ),
            "max_batch": self.max_batch,
        }

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _arrival(self, node_id: int) -> None:
        motion = self._motion.get(node_id)
        if motion is None:
            return
        if self._linklayer.is_crashed(node_id):
            self._freeze(node_id, motion.position_at(self._sim.now))
            return
        del self._motion[node_id]
        if motion.horizon_event is not None:
            motion.horizon_event.cancel()
        self.arrivals += 1
        self._apply(
            self._sim.now, [node_id], {node_id: motion.dest}, "arrival"
        )
        motion.arrived_cb()

    def _horizon(self, node_id: int, period: float) -> None:
        motion = self._motion.get(node_id)
        if motion is None:
            return
        now = self._sim.now
        if self._linklayer.is_crashed(node_id):
            self._freeze(node_id, motion.position_at(now))
            return
        self.horizon_events += 1
        # Reposition only — no link evaluation.  Every link toggle
        # involving this mover has a scheduled certificate (the exam
        # cache guarantees the window was solved), so the horizon's only
        # job is keeping the grid fresh for discovery.
        self.position_updates += 1
        if self._probes is not None:
            self._probes.note_mobility_update("horizon", 1)
        if self._topology.reposition(node_id, motion.position_at(now)):
            # The discovery window shifted by at least one cell: scan
            # it.  An unchanged cell means an unchanged window whose
            # pairs are all exam-stamped; any *entrant* since then made
            # a cell-changing grid move of its own and scanned a window
            # containing this node (see the module docstring).
            self._predict(node_id)
        if now + period < motion.t1:
            motion.horizon_event = self._sim.schedule_at(
                now + period, self._horizon, node_id, period,
                priority=EventPriority.TOPOLOGY,
            )
        else:
            motion.horizon_event = None

    def _pair_event(self, a: int, b: int) -> None:
        pair = link_key(a, b)
        self._pair_events.pop(pair, None)
        self._drop_pair(pair)
        topology = self._topology
        if a not in topology or b not in topology:
            return
        for n in (a, b):
            if self._linklayer.is_crashed(n) and n in self._motion:
                self._freeze(n, self._motion[n].position_at(self._sim.now))
        self.crossing_events += 1
        now = self._sim.now
        batch = sorted((a, b))
        positions = {n: self._true_position(n, now) for n in batch}
        self._apply(now, batch, positions, "crossing")
        # Certificates are motion-based, so the other pairs of a and b
        # stay valid — only this pair needs its next crossing.
        self._certify(a, b)

    # ------------------------------------------------------------------
    # Position application
    # ------------------------------------------------------------------
    def _apply(
        self,
        now: float,
        batch: List[int],
        positions: Dict[int, Point],
        reason: str,
    ) -> None:
        moves = [(n, positions[n]) for n in batch]
        # Live keys view, no copy; batch members are never deferred
        # (set_positions exempts its own movers).
        diff = self._topology.set_positions(moves, deferred=self._motion.keys())
        self.position_updates += len(moves)
        if len(moves) > self.max_batch:
            self.max_batch = len(moves)
        if self._probes is not None:
            self._probes.note_mobility_update(reason, len(moves))
        self._linklayer.apply_diff(diff)

    def _freeze(self, node_id: int, position: Point) -> None:
        """Stop a flight (crash or retarget) at ``position``."""
        motion = self._motion.pop(node_id)
        self._gen[node_id] = self._gen.get(node_id, 0) + 1
        if motion.arrival_event is not None:
            motion.arrival_event.cancel()
        if motion.horizon_event is not None:
            motion.horizon_event.cancel()
        self._apply(self._sim.now, [node_id], {node_id: position}, "freeze")
        # Now static: recompute the pairs certified under the old motion.
        for pair in sorted(self._pairs_of.get(node_id, ())):
            self._certify(*pair)
        # A freeze rewrites this node's trajectory mid-piece, so every
        # pair exam against it is stale — including no-crossing exams
        # held by movers already inside the window, who may cross the
        # freeze position without another cell change of their own.
        # Re-solve against every nearby mover now (freezes are rare:
        # crashes and retargets only).
        for other in self._topology.nearby_nodes(
            position, rings=_DISCOVERY_RINGS
        ):
            if other != node_id and other in self._motion:
                self._certify(node_id, other)

    # ------------------------------------------------------------------
    # Certificates
    # ------------------------------------------------------------------
    def _predict(self, node_id: int) -> None:
        """(Re-)certify candidate pairs around a fresh position.

        Pairs whose examination is still valid (neither endpoint's
        motion generation changed since it was solved) are skipped —
        successive horizon windows of one flight overlap by 6/7 of
        their width, so almost all candidates were already solved.
        """
        if node_id not in self._motion:
            return
        topology = self._topology
        position = topology.position(node_id)
        examined = self._examined
        gen = self._gen
        candidates = topology.nearby_nodes(position, rings=_DISCOVERY_RINGS)
        seen = set(candidates)
        for other in candidates:
            if other == node_id:
                continue
            pair = link_key(node_id, other)
            stamp = (gen.get(pair[0], 0), gen.get(pair[1], 0))
            if examined.get(pair) == stamp:
                continue
            self._certify(node_id, other)
        # Current neighbors may sit outside the window (they linked
        # before one endpoint flew away); their break-up still needs a
        # certificate.
        for other in sorted(topology.neighbors(node_id)):
            if other not in seen:
                pair = link_key(node_id, other)
                stamp = (gen.get(pair[0], 0), gen.get(pair[1], 0))
                if examined.get(pair) == stamp:
                    continue
                self._certify(node_id, other)

    def _certify(self, a: int, b: int) -> None:
        pair = link_key(a, b)
        old = self._pair_events.pop(pair, None)
        if old is not None:
            old.cancel()
        self._drop_pair(pair)
        gen = self._gen
        self._examined[pair] = (gen.get(pair[0], 0), gen.get(pair[1], 0))
        if len(self._examined) > self._examined_cap:
            self._compact_examined()
        t = self._next_crossing(a, b)
        if t is None:
            return
        self._pair_events[pair] = self._sim.schedule_at(
            t, self._pair_event, pair[0], pair[1],
            priority=EventPriority.TOPOLOGY,
        )
        self._pairs_of.setdefault(a, set()).add(pair)
        self._pairs_of.setdefault(b, set()).add(pair)
        self.crossings_scheduled += 1
        if self._probes is not None:
            self._probes.note_mobility_crossing()

    def _compact_examined(self) -> None:
        """Sweep stale exam stamps; grow the cap to twice the live set."""
        gen = self._gen
        self._examined = {
            pair: stamp
            for pair, stamp in self._examined.items()
            if stamp == (gen.get(pair[0], 0), gen.get(pair[1], 0))
        }
        self._examined_cap = max(4096, 2 * len(self._examined))

    def _drop_pair(self, pair: Link) -> None:
        for n in pair:
            pairs = self._pairs_of.get(n)
            if pairs is not None:
                pairs.discard(pair)
                if not pairs:
                    del self._pairs_of[n]

    def true_position(self, node_id: int, t: Optional[float] = None) -> Point:
        """Exact position at time ``t`` (default: now), mid-flight aware.

        The sharded engine's barrier exchange reports *true* mover
        positions, not the lazily materialized topology positions, so
        ghost mirrors on other shards track the continuum trajectory.
        """
        return self._true_position(
            node_id, self._sim.now if t is None else t
        )

    # ------------------------------------------------------------------
    # Crossing math
    # ------------------------------------------------------------------
    def _true_position(self, node_id: int, t: float) -> Point:
        motion = self._motion.get(node_id)
        if motion is not None:
            return motion.position_at(t)
        return self._topology.position(node_id)

    def _next_crossing(self, a: int, b: int) -> Optional[float]:
        """Earliest time ≥ now the pair's link must toggle, or None.

        Solves ``q(dt) = r²`` on each linear piece of the relative
        trajectory (pieces split at the arrival times of whichever
        endpoints are flying; both are constant after arrival), then
        nudges the root forward until the inclusive distance test
        reports the toggled side.
        """
        now = self._sim.now
        topology = self._topology
        r = topology.radio_range
        r2 = r * r
        linked = topology.has_link(a, b)
        ma = self._motion.get(a)
        mb = self._motion.get(b)
        bounds = [now]
        if ma is not None and ma.t1 > now:
            bounds.append(ma.t1)
        if mb is not None and mb.t1 > now:
            bounds.append(mb.t1)
        bounds.sort()
        bounds.append(math.inf)
        pa = topology.position(a) if ma is None else None
        pb = topology.position(b) if mb is None else None
        hit: Optional[float] = None
        for s, e in zip(bounds, bounds[1:]):
            if e == s:
                continue
            if ma is None:
                ax, ay, avx, avy = pa.x, pa.y, 0.0, 0.0
            elif s >= ma.t1:
                ax, ay, avx, avy = ma.dest.x, ma.dest.y, 0.0, 0.0
            else:
                dt = s - ma.t0
                ax = ma.x0 + ma.vx * dt
                ay = ma.y0 + ma.vy * dt
                avx, avy = ma.vx, ma.vy
            if mb is None:
                bx, by, bvx, bvy = pb.x, pb.y, 0.0, 0.0
            elif s >= mb.t1:
                bx, by, bvx, bvy = mb.dest.x, mb.dest.y, 0.0, 0.0
            else:
                dt = s - mb.t0
                bx = mb.x0 + mb.vx * dt
                by = mb.y0 + mb.vy * dt
                bvx, bvy = mb.vx, mb.vy
            dx, dy = ax - bx, ay - by
            vx, vy = avx - bvx, avy - bvy
            c2 = vx * vx + vy * vy
            c1 = 2.0 * (dx * vx + dy * vy)
            c0 = dx * dx + dy * dy
            length = e - s
            if linked:
                if c0 > r2:
                    hit = s  # numerically outside already: separate now
                    break
                if c2 <= 0.0:
                    continue  # constant piece, stays inside
                disc = c1 * c1 - 4.0 * c2 * (c0 - r2)
                if disc < 0.0:
                    continue  # never reaches r on this piece
                root = (-c1 + math.sqrt(disc)) / (2.0 * c2)
                if 0.0 <= root <= length:
                    hit = s + root
                    break
            else:
                if c0 <= r2:
                    hit = s  # numerically inside already: connect now
                    break
                if c2 <= 0.0:
                    continue
                disc = c1 * c1 - 4.0 * c2 * (c0 - r2)
                if disc < 0.0:
                    continue
                sq = math.sqrt(disc)
                if (-c1 + sq) < 0.0:
                    continue  # both roots in the past
                root = (-c1 - sq) / (2.0 * c2)
                if root <= length:
                    hit = s + max(root, 0.0)
                    break
        if hit is None:
            return None
        return self._refine(a, b, max(hit, now), not linked)

    def _refine(
        self, a: int, b: int, t: float, want_linked: bool
    ) -> Optional[float]:
        """Nudge ``t`` forward until the distance test toggles the link."""
        r = self._topology.radio_range
        nudge = max(abs(t), 1.0) * 1e-15
        for _ in range(_MAX_REFINE):
            d = self._true_position(a, t).distance_to(
                self._true_position(b, t)
            )
            if (d <= r) if want_linked else (d > r):
                return t
            t += nudge
            nudge *= 2.0
        return None  # grazing contact: never decisively crosses
