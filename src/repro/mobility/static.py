"""The trivial mobility model: nobody moves."""

from __future__ import annotations

from typing import Optional

from repro.mobility.base import Episode, MobilityModel
from repro.net.topology import DynamicTopology


class StaticMobility(MobilityModel):
    """No movement, ever.

    Used for the static-setting experiments (Theorems 17, 23, 26) and as
    the default when a scenario does not configure mobility.
    """

    def next_episode(
        self, node_id: int, now: float, topology: DynamicTopology, rng
    ) -> Optional[Episode]:
        return None
