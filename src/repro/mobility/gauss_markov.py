"""Gauss-Markov mobility: temporally correlated velocity.

Random waypoint produces implausible sharp turns and a well-known
speed-decay artifact; Gauss-Markov is the standard alternative where a
node's speed and direction evolve as an AR(1) process around tunable
means.  ``alpha`` interpolates between memoryless Brownian motion
(alpha=0) and straight-line cruising (alpha=1).

Each episode emitted by this model is one "update interval" hop: the
controller walks the node to the next position computed from the
current (speed, direction) state, and the state is refreshed when the
model is next consulted.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.mobility.base import Episode, MobilityModel
from repro.net.geometry import Point
from repro.net.topology import DynamicTopology


class GaussMarkov(MobilityModel):
    """Gauss-Markov mobility over a rectangular arena."""

    def __init__(
        self,
        width: float,
        height: float,
        mean_speed: float = 1.0,
        alpha: float = 0.75,
        speed_sigma: float = 0.3,
        direction_sigma: float = 0.6,
        update_interval: float = 2.0,
    ) -> None:
        if width <= 0 or height <= 0:
            raise ConfigurationError("arena dimensions must be positive")
        if not 0.0 <= alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in [0, 1], got {alpha}")
        if mean_speed <= 0:
            raise ConfigurationError("mean_speed must be positive")
        if update_interval <= 0:
            raise ConfigurationError("update_interval must be positive")
        self.width = width
        self.height = height
        self.mean_speed = mean_speed
        self.alpha = alpha
        self.speed_sigma = speed_sigma
        self.direction_sigma = direction_sigma
        self.update_interval = update_interval
        #: Per-node AR(1) state: (speed, direction).
        self._state: Dict[int, Tuple[float, float]] = {}

    def _evolve(self, node_id: int, rng) -> Tuple[float, float]:
        speed, direction = self._state.get(
            node_id, (self.mean_speed, rng.uniform(0, 2 * math.pi))
        )
        a = self.alpha
        root = math.sqrt(max(0.0, 1 - a * a))
        speed = (
            a * speed
            + (1 - a) * self.mean_speed
            + root * self.speed_sigma * rng.gauss(0, 1)
        )
        speed = max(0.05 * self.mean_speed, speed)
        mean_direction = direction  # drift-free heading memory
        direction = (
            a * direction
            + (1 - a) * mean_direction
            + root * self.direction_sigma * rng.gauss(0, 1)
        )
        self._state[node_id] = (speed, direction)
        return speed, direction

    def next_episode(
        self, node_id: int, now: float, topology: DynamicTopology, rng
    ) -> Optional[Episode]:
        speed, direction = self._evolve(node_id, rng)
        origin = topology.position(node_id)
        distance = speed * self.update_interval
        x = origin.x + distance * math.cos(direction)
        y = origin.y + distance * math.sin(direction)
        # Bounce off arena walls by reflecting the heading.
        bounced = False
        if x < 0 or x > self.width:
            x = min(max(x, 0.0), self.width)
            direction = math.pi - direction
            bounced = True
        if y < 0 or y > self.height:
            y = min(max(y, 0.0), self.height)
            direction = -direction
            bounced = True
        if bounced:
            self._state[node_id] = (speed, direction % (2 * math.pi))
        return Episode(start_delay=0.0, destination=Point(x, y), speed=speed)
