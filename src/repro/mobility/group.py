"""Reference-point group mobility (RPGM).

The canonical model for the paper's motivating applications — military
units, emergency-response teams — where nodes move *together*: a
logical group center follows a random waypoint trajectory, and each
member wanders within a bounded radius of the (moving) center.  Group
mobility stresses the protocols differently from independent movement:
whole neighborhoods shift at once, so the recoloring module sees bursts
of concurrent participants.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.mobility.base import Episode, MobilityModel
from repro.net.geometry import Point
from repro.net.topology import DynamicTopology


class GroupCenter:
    """The shared reference point of one group.

    Consulted lazily: the first member to need an episode after the
    center's current leg completes advances the center.
    """

    def __init__(
        self,
        start: Point,
        width: float,
        height: float,
        speed: float = 0.8,
        leg_duration: float = 20.0,
    ) -> None:
        if width <= 0 or height <= 0:
            raise ConfigurationError("arena dimensions must be positive")
        if speed <= 0 or leg_duration <= 0:
            raise ConfigurationError("speed and leg duration must be positive")
        self.width = width
        self.height = height
        self.speed = speed
        self.leg_duration = leg_duration
        self._origin = start
        self._target = start
        self._leg_start = 0.0

    def position_at(self, now: float, rng) -> Point:
        """Where the center is now (advancing the trajectory lazily)."""
        while now >= self._leg_start + self.leg_duration:
            self._origin = self._position_on_leg(self._leg_start + self.leg_duration)
            self._leg_start += self.leg_duration
            self._target = Point(
                rng.uniform(0, self.width), rng.uniform(0, self.height)
            )
        return self._position_on_leg(now)

    def _position_on_leg(self, now: float) -> Point:
        elapsed = max(0.0, now - self._leg_start)
        return self._origin.towards(self._target, self.speed * elapsed)


class GroupMobility(MobilityModel):
    """One member's motion around a shared :class:`GroupCenter`."""

    def __init__(
        self,
        center: GroupCenter,
        wander_radius: float = 1.0,
        member_speed: float = 1.2,
        update_interval: float = 3.0,
    ) -> None:
        if wander_radius < 0:
            raise ConfigurationError("wander_radius must be >= 0")
        if member_speed <= 0 or update_interval <= 0:
            raise ConfigurationError(
                "member_speed and update_interval must be positive"
            )
        self.center = center
        self.wander_radius = wander_radius
        self.member_speed = member_speed
        self.update_interval = update_interval

    def next_episode(
        self, node_id: int, now: float, topology: DynamicTopology, rng
    ) -> Optional[Episode]:
        import math

        # Shared center RNG must be group-stable: derive draws from the
        # caller's stream only for the member offset, and advance the
        # center with a dedicated deterministic stream seeded by time.
        anchor = self.center.position_at(now + self.update_interval, rng)
        angle = rng.uniform(0, 2 * math.pi)
        radius = rng.uniform(0, self.wander_radius)
        destination = Point(
            anchor.x + radius * math.cos(angle),
            anchor.y + radius * math.sin(angle),
        )
        return Episode(
            start_delay=self.update_interval,
            destination=destination,
            speed=self.member_speed,
        )
