"""Mobility episodes and the controller executing them.

Episodes are executed by one of two engines:

* the **kinetic** path (default) — :mod:`repro.mobility.kinetic`
  schedules exact link-crossing certificates and touches the topology
  only when a link can actually change;
* the **fixed-step** path (``fixed_step=True``, i.e.
  ``ScenarioConfig(mobility_fixed_step=True)``) — the original
  step-timer execution, kept selectable for equivalence testing and
  for scenarios that want positions materialized along the whole path
  (e.g. external trace export at step granularity).

Both paths are deterministic for a fixed seed, arrive at identical
destination sequences (models draw from the same per-node RNG
streams), and produce identical link sets whenever the network is
quiescent — asserted by ``tests/test_mobility_kinetic.py``.  They are
*not* bit-identical mid-flight: the fixed-step path quantizes motion
to ``step_length`` hops (its arrival leads true motion by up to one
step), while the kinetic path follows the continuous trajectory.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.mobility.kinetic import KineticEngine
from repro.net.geometry import Point
from repro.net.linklayer import LinkLayer
from repro.net.topology import DynamicTopology
from repro.sim.engine import Simulator
from repro.sim.events import EventPriority
from repro.sim.trace import TraceLog, live_trace


@dataclass(frozen=True)
class Episode:
    """One movement episode: travel to ``destination`` at ``speed``.

    ``start_delay`` is measured from the moment the model is consulted.
    A non-positive ``speed`` means an instantaneous relocation
    (teleport) — used by scripted scenarios that only care about the
    before/after topologies, not the path.
    """

    start_delay: float
    destination: Point
    speed: float

    def __post_init__(self) -> None:
        if self.start_delay < 0:
            raise ConfigurationError(
                f"episode start_delay must be >= 0, got {self.start_delay}"
            )


class MobilityModel(abc.ABC):
    """Produces the next movement episode for a node, or None to rest."""

    @abc.abstractmethod
    def next_episode(
        self, node_id: int, now: float, topology: DynamicTopology, rng
    ) -> Optional[Episode]:
        """Return the node's next episode, or None if it stays put forever."""


class MobilityController:
    """Executes mobility models against the topology and link layer.

    One controller serves the whole network; each node may have its own
    model.  All position updates run at :data:`EventPriority.TOPOLOGY`
    so that link indications precede same-instant protocol events.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: DynamicTopology,
        linklayer: LinkLayer,
        rng_source,
        step_length: float = 0.25,
        trace: Optional[TraceLog] = None,
        probes=None,
        fixed_step: bool = False,
    ) -> None:
        if step_length <= 0:
            raise ConfigurationError(
                f"step_length must be positive, got {step_length}"
            )
        self._sim = sim
        self._topology = topology
        self._linklayer = linklayer
        self._rng_source = rng_source
        self._step_length = step_length
        self._trace = live_trace(trace)
        self._probes = probes
        self._kinetic: Optional[KineticEngine] = (
            None
            if fixed_step
            else KineticEngine(
                sim, topology, linklayer, step_length, probes=probes
            )
        )
        self._models: Dict[int, MobilityModel] = {}
        self._started = False
        # Fixed-step path counters (mirror of KineticEngine's stats).
        self._fixed_updates = 0
        self._fixed_arrivals = 0
        self._fixed_teleports = 0

    # ------------------------------------------------------------------
    def attach(self, node_id: int, model: MobilityModel) -> None:
        """Give ``node_id`` a mobility model (replacing any previous one)."""
        self._models[node_id] = model
        if self._started:
            self._consult(node_id)

    def start(self) -> None:
        """Begin consulting every attached model."""
        self._started = True
        for node_id in sorted(self._models):
            self._consult(node_id)

    # ------------------------------------------------------------------
    # Direct episode execution (used by scripted scenarios and tests)
    # ------------------------------------------------------------------
    def move_node(self, node_id: int, destination: Point, speed: float) -> None:
        """Start moving a node right now (outside any model schedule)."""
        self._begin_episode(node_id, Episode(0.0, destination, speed),
                            resume_model=False)

    def teleport(self, node_id: int, destination: Point) -> None:
        """Relocate a node instantaneously (still flagged as a move)."""
        self.move_node(node_id, destination, speed=0.0)

    # ------------------------------------------------------------------
    # Introspection (used by the sharded engine's barrier exchange)
    # ------------------------------------------------------------------
    def attached_nodes(self) -> List[int]:
        """Nodes with a mobility model, sorted."""
        return sorted(self._models)

    def position_now(self, node_id: int) -> Point:
        """The node's true current position, mid-flight aware.

        On the kinetic path a flying node's topology position is
        materialized lazily, so this consults the motion record; on the
        fixed-step path the topology is always current.
        """
        if self._kinetic is not None:
            return self._kinetic.true_position(node_id)
        return self._topology.position(node_id)

    # ------------------------------------------------------------------
    def _consult(self, node_id: int) -> None:
        if self._linklayer.is_crashed(node_id):
            return
        model = self._models.get(node_id)
        if model is None:
            return
        rng = self._rng_source.stream("mobility", node_id)
        episode = model.next_episode(node_id, self._sim.now, self._topology, rng)
        if episode is None:
            return
        self._sim.schedule(
            episode.start_delay,
            self._begin_episode,
            node_id,
            episode,
            True,
            priority=EventPriority.TOPOLOGY,
        )

    def note_crash(self, node_id: int) -> None:
        """Failure hook: freeze a mid-flight node at its exact position.

        Wired by the runtime's crash injector.  The fixed-step path
        freezes lazily (its next step observes the crash flag and stops
        at the last materialized position); the kinetic path pins the
        true position at the crash instant.
        """
        if self._kinetic is not None:
            self._kinetic.note_crash(node_id)

    def stats(self) -> Dict[str, object]:
        """Mobility-plane counters (both paths report the same keys)."""
        if self._kinetic is not None:
            return self._kinetic.stats()
        return {
            "mode": "fixed_step",
            "position_updates": self._fixed_updates,
            "crossings_scheduled": 0,
            "crossing_events": 0,
            "horizon_events": 0,
            "arrivals": self._fixed_arrivals,
            "teleports": self._fixed_teleports,
            "fixed_step_equivalent": self._fixed_updates,
            "dead_steps_skipped": 0,
            "max_batch": 1 if self._fixed_updates else 0,
        }

    def _begin_episode(
        self, node_id: int, episode: Episode, resume_model: bool = True
    ) -> None:
        if self._linklayer.is_crashed(node_id):
            return
        self._linklayer.set_moving(node_id, True)
        if self._kinetic is not None:
            arrived = self._kinetic.launch(
                node_id,
                episode.destination,
                episode.speed,
                partial(self._finish_episode, node_id, resume_model),
            )
            if arrived:
                self._finish_episode(node_id, resume_model)
            return
        if episode.speed <= 0:
            # Teleport: one position update while flagged moving.
            diff = self._topology.set_position(node_id, episode.destination)
            self._fixed_updates += 1
            self._fixed_teleports += 1
            if self._probes is not None:
                self._probes.note_mobility_update("teleport", 1)
            self._linklayer.apply_diff(diff)
            self._finish_episode(node_id, resume_model)
            return
        self._step(node_id, episode, resume_model)

    def _step(self, node_id: int, episode: Episode, resume_model: bool) -> None:
        if self._linklayer.is_crashed(node_id):
            # Crashed mid-flight: freeze in place, still flagged moving is
            # wrong — clear the flag without emitting a stop signal storm.
            self._linklayer.set_moving(node_id, False)
            return
        current = self._topology.position(node_id)
        nxt = current.towards(episode.destination, self._step_length)
        diff = self._topology.set_position(node_id, nxt)
        self._fixed_updates += 1
        if self._probes is not None:
            self._probes.note_mobility_update("step", 1)
        self._linklayer.apply_diff(diff)
        if nxt == episode.destination:
            self._fixed_arrivals += 1
            self._finish_episode(node_id, resume_model)
            return
        step_time = self._step_length / episode.speed
        self._sim.schedule(
            step_time,
            self._step,
            node_id,
            episode,
            resume_model,
            priority=EventPriority.TOPOLOGY,
        )

    def _finish_episode(self, node_id: int, resume_model: bool) -> None:
        self._linklayer.set_moving(node_id, False)
        if self._trace is not None:
            pos = self._topology.position(node_id)
            self._trace.record(
                self._sim.now, "move.arrived", node_id, x=pos.x, y=pos.y
            )
        if resume_model:
            self._consult(node_id)
