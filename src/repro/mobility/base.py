"""Mobility episodes and the controller executing them."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.net.geometry import Point
from repro.net.linklayer import LinkLayer
from repro.net.topology import DynamicTopology
from repro.sim.engine import Simulator
from repro.sim.events import EventPriority
from repro.sim.trace import TraceLog, live_trace


@dataclass(frozen=True)
class Episode:
    """One movement episode: travel to ``destination`` at ``speed``.

    ``start_delay`` is measured from the moment the model is consulted.
    A non-positive ``speed`` means an instantaneous relocation
    (teleport) — used by scripted scenarios that only care about the
    before/after topologies, not the path.
    """

    start_delay: float
    destination: Point
    speed: float

    def __post_init__(self) -> None:
        if self.start_delay < 0:
            raise ConfigurationError(
                f"episode start_delay must be >= 0, got {self.start_delay}"
            )


class MobilityModel(abc.ABC):
    """Produces the next movement episode for a node, or None to rest."""

    @abc.abstractmethod
    def next_episode(
        self, node_id: int, now: float, topology: DynamicTopology, rng
    ) -> Optional[Episode]:
        """Return the node's next episode, or None if it stays put forever."""


class MobilityController:
    """Executes mobility models against the topology and link layer.

    One controller serves the whole network; each node may have its own
    model.  All position updates run at :data:`EventPriority.TOPOLOGY`
    so that link indications precede same-instant protocol events.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: DynamicTopology,
        linklayer: LinkLayer,
        rng_source,
        step_length: float = 0.25,
        trace: Optional[TraceLog] = None,
    ) -> None:
        if step_length <= 0:
            raise ConfigurationError(
                f"step_length must be positive, got {step_length}"
            )
        self._sim = sim
        self._topology = topology
        self._linklayer = linklayer
        self._rng_source = rng_source
        self._step_length = step_length
        self._trace = live_trace(trace)
        self._models: Dict[int, MobilityModel] = {}
        self._started = False

    # ------------------------------------------------------------------
    def attach(self, node_id: int, model: MobilityModel) -> None:
        """Give ``node_id`` a mobility model (replacing any previous one)."""
        self._models[node_id] = model
        if self._started:
            self._consult(node_id)

    def start(self) -> None:
        """Begin consulting every attached model."""
        self._started = True
        for node_id in sorted(self._models):
            self._consult(node_id)

    # ------------------------------------------------------------------
    # Direct episode execution (used by scripted scenarios and tests)
    # ------------------------------------------------------------------
    def move_node(self, node_id: int, destination: Point, speed: float) -> None:
        """Start moving a node right now (outside any model schedule)."""
        self._begin_episode(node_id, Episode(0.0, destination, speed),
                            resume_model=False)

    def teleport(self, node_id: int, destination: Point) -> None:
        """Relocate a node instantaneously (still flagged as a move)."""
        self.move_node(node_id, destination, speed=0.0)

    # ------------------------------------------------------------------
    def _consult(self, node_id: int) -> None:
        if self._linklayer.is_crashed(node_id):
            return
        model = self._models.get(node_id)
        if model is None:
            return
        rng = self._rng_source.stream("mobility", node_id)
        episode = model.next_episode(node_id, self._sim.now, self._topology, rng)
        if episode is None:
            return
        self._sim.schedule(
            episode.start_delay,
            self._begin_episode,
            node_id,
            episode,
            True,
            priority=EventPriority.TOPOLOGY,
        )

    def _begin_episode(
        self, node_id: int, episode: Episode, resume_model: bool = True
    ) -> None:
        if self._linklayer.is_crashed(node_id):
            return
        self._linklayer.set_moving(node_id, True)
        if episode.speed <= 0:
            # Teleport: one position update while flagged moving.
            diff = self._topology.set_position(node_id, episode.destination)
            self._linklayer.apply_diff(diff)
            self._finish_episode(node_id, resume_model)
            return
        self._step(node_id, episode, resume_model)

    def _step(self, node_id: int, episode: Episode, resume_model: bool) -> None:
        if self._linklayer.is_crashed(node_id):
            # Crashed mid-flight: freeze in place, still flagged moving is
            # wrong — clear the flag without emitting a stop signal storm.
            self._linklayer.set_moving(node_id, False)
            return
        current = self._topology.position(node_id)
        nxt = current.towards(episode.destination, self._step_length)
        diff = self._topology.set_position(node_id, nxt)
        self._linklayer.apply_diff(diff)
        if nxt == episode.destination:
            self._finish_episode(node_id, resume_model)
            return
        step_time = self._step_length / episode.speed
        self._sim.schedule(
            step_time,
            self._step,
            node_id,
            episode,
            resume_model,
            priority=EventPriority.TOPOLOGY,
        )

    def _finish_episode(self, node_id: int, resume_model: bool) -> None:
        self._linklayer.set_moving(node_id, False)
        if self._trace is not None:
            pos = self._topology.position(node_id)
            self._trace.record(
                self._sim.now, "move.arrived", node_id, x=pos.x, y=pos.y
            )
        if resume_model:
            self._consult(node_id)
