"""Mobility models and the controller that drives node movement.

Movement happens in *episodes*: a node marks itself moving (the link
layer's start signal), advances along a straight segment in discrete
steps — re-evaluating unit-disk connectivity at every step — and then
marks itself static again.  Crashed nodes freeze immediately, matching
the paper's "a node does not change its location after it fails".
"""

from repro.mobility.base import Episode, MobilityController, MobilityModel
from repro.mobility.gauss_markov import GaussMarkov
from repro.mobility.group import GroupCenter, GroupMobility
from repro.mobility.static import StaticMobility
from repro.mobility.trace import ScriptedMobility, ScriptedMove
from repro.mobility.walk import RandomWalk
from repro.mobility.waypoint import RandomWaypoint

__all__ = [
    "Episode",
    "GaussMarkov",
    "GroupCenter",
    "GroupMobility",
    "MobilityController",
    "MobilityModel",
    "RandomWalk",
    "RandomWaypoint",
    "ScriptedMobility",
    "ScriptedMove",
    "StaticMobility",
]
