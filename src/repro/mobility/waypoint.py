"""Random waypoint mobility — the standard MANET evaluation model.

Each node repeatedly: pauses for a random time, picks a uniformly
random destination inside the arena, and travels there in a straight
line at a uniformly random speed.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.mobility.base import Episode, MobilityModel
from repro.net.geometry import Point
from repro.net.topology import DynamicTopology


class RandomWaypoint(MobilityModel):
    """Classic random-waypoint over a rectangular arena."""

    def __init__(
        self,
        width: float,
        height: float,
        speed_range=(0.5, 1.5),
        pause_range=(1.0, 5.0),
    ) -> None:
        if width <= 0 or height <= 0:
            raise ConfigurationError("arena dimensions must be positive")
        lo, hi = speed_range
        if not 0 < lo <= hi:
            raise ConfigurationError(f"bad speed range {speed_range}")
        plo, phi = pause_range
        if not 0 <= plo <= phi:
            raise ConfigurationError(f"bad pause range {pause_range}")
        self.width = width
        self.height = height
        self.speed_range = (lo, hi)
        self.pause_range = (plo, phi)

    def next_episode(
        self, node_id: int, now: float, topology: DynamicTopology, rng
    ) -> Optional[Episode]:
        pause = rng.uniform(*self.pause_range)
        destination = Point(rng.uniform(0, self.width), rng.uniform(0, self.height))
        speed = rng.uniform(*self.speed_range)
        return Episode(start_delay=pause, destination=destination, speed=speed)
