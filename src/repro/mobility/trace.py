"""Scripted mobility for scenario reproductions.

The Figure 6 benchmark (and several tests) need exact, repeatable
movement: "p3 moves out of range at t=40".  A :class:`ScriptedMobility`
replays a per-node list of :class:`ScriptedMove` entries at absolute
times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.mobility.base import Episode, MobilityModel
from repro.net.geometry import Point
from repro.net.topology import DynamicTopology


@dataclass(frozen=True)
class ScriptedMove:
    """One scheduled movement: go to ``destination`` starting at ``time``.

    ``speed <= 0`` teleports (the topology flips in one instant, still
    flagged as a move for symmetry-breaking purposes).
    """

    time: float
    destination: Point
    speed: float = 0.0


class ScriptedMobility(MobilityModel):
    """Replay a fixed move list for one node."""

    def __init__(self, moves: List[ScriptedMove]) -> None:
        ordered = sorted(moves, key=lambda m: m.time)
        for earlier, later in zip(ordered, ordered[1:]):
            if later.time < earlier.time:  # pragma: no cover - sorted above
                raise ConfigurationError("moves must have nondecreasing times")
        self._moves = ordered
        self._next_index = 0

    def next_episode(
        self, node_id: int, now: float, topology: DynamicTopology, rng
    ) -> Optional[Episode]:
        if self._next_index >= len(self._moves):
            return None
        move = self._moves[self._next_index]
        self._next_index += 1
        delay = max(0.0, move.time - now)
        return Episode(start_delay=delay, destination=move.destination,
                       speed=move.speed)
