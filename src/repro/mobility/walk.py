"""Random walk mobility: short hops in random directions.

Unlike random waypoint, a walker's displacement per episode is bounded,
producing frequent *local* neighborhood changes — the regime that
stresses the recoloring module of Algorithm 1 hardest.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.errors import ConfigurationError
from repro.mobility.base import Episode, MobilityModel
from repro.net.geometry import Point
from repro.net.topology import DynamicTopology


class RandomWalk(MobilityModel):
    """Fixed-radius random walk clipped to a rectangular arena."""

    def __init__(
        self,
        width: float,
        height: float,
        hop_range=(0.5, 1.5),
        speed: float = 1.0,
        pause_range=(1.0, 5.0),
    ) -> None:
        if width <= 0 or height <= 0:
            raise ConfigurationError("arena dimensions must be positive")
        if speed <= 0:
            raise ConfigurationError(f"speed must be positive, got {speed}")
        lo, hi = hop_range
        if not 0 < lo <= hi:
            raise ConfigurationError(f"bad hop range {hop_range}")
        self.width = width
        self.height = height
        self.hop_range = (lo, hi)
        self.speed = speed
        self.pause_range = pause_range

    def next_episode(
        self, node_id: int, now: float, topology: DynamicTopology, rng
    ) -> Optional[Episode]:
        pause = rng.uniform(*self.pause_range)
        origin = topology.position(node_id)
        angle = rng.uniform(0, 2 * math.pi)
        hop = rng.uniform(*self.hop_range)
        x = min(max(origin.x + hop * math.cos(angle), 0.0), self.width)
        y = min(max(origin.y + hop * math.sin(angle), 0.0), self.height)
        return Episode(start_delay=pause, destination=Point(x, y), speed=self.speed)
