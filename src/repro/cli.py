"""Command-line interface.

Nine subcommands::

    python -m repro algorithms            # list registered protocols
    python -m repro run ...               # one simulation, summarized
    python -m repro compare ...           # several protocols, one table
    python -m repro locality ...          # crash probe with ASCII strip
    python -m repro report ...            # inspect / diff RunReport JSON
    python -m repro explore ...           # adversarial exploration
                                          #   (fuzz | replay | shrink)
    python -m repro metrics ...           # OpenMetrics export / scrape
                                          #   endpoint (export | serve)
    python -m repro bench ...             # append-only bench history
                                          #   (append | history | check)
    python -m repro live ...              # real-transport runtimes
                                          #   (run | serve | verify)

``live run`` executes a scenario over a real transport — the in-process
asyncio bus or one-process-per-node localhost TCP sockets — recording a
schema-versioned event log; ``live verify`` replays such a log in the
simulator under the invariant monitors and checks effect-stream
fidelity (exit 1 when not clean); ``live serve`` runs a bus scenario
with a live OpenMetrics scrape endpoint.  See docs/live.md.

``explore fuzz`` runs a seeded campaign of controlled schedules with
invariant monitors attached and exits 1 when any monitor fires, saving
one replayable repro file per violation; ``explore replay`` re-executes
a repro file and verifies the recorded violation reappears; ``explore
shrink`` delta-debugs a repro file down to a minimal failing case.

Topology specs are compact strings: ``line:13``, ``grid:25``,
``ring:8``, ``random:20:8x6`` (20 nodes uniform in an 8x6 arena).

``run --report out.json`` saves the run's structured
:class:`~repro.obs.report.RunReport` (telemetry is switched on
implicitly so the probe metrics are populated); ``compare --report``
saves one JSON object keyed by algorithm name.  ``run --metrics
out.prom`` additionally writes the probe snapshot as OpenMetrics text;
``metrics serve report.json`` turns a saved report into a Prometheus
scrape endpoint; ``bench check`` exits 1 when the newest
``BENCH_history.jsonl`` record regressed past the calibrated-jitter
tolerance.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.analysis.stats import summarize
from repro.analysis.tables import render_table
from repro.errors import ConfigurationError, ReproError
from repro.harness.experiments import crash_probe
from repro.mobility import RandomWaypoint
from repro.net.geometry import (
    Point,
    grid_positions,
    line_positions,
    random_positions,
    ring_positions,
)
from repro.obs.report import RunReport
from repro.runtime.registry import ALGORITHMS
from repro.runtime.simulation import ScenarioConfig, Simulation
from repro.sim.clock import TimeBounds
from repro.sim.rng import RandomSource


def parse_topology(spec: str, seed: int = 0) -> Tuple[List[Point], float]:
    """Parse a topology spec; returns (positions, suggested arena span)."""
    parts = spec.split(":")
    kind = parts[0]
    try:
        if kind == "line" and len(parts) == 2:
            n = int(parts[1])
            return list(line_positions(n, spacing=1.0)), float(n)
        if kind == "grid" and len(parts) == 2:
            n = int(parts[1])
            side = max(1, round(n ** 0.5))
            return list(grid_positions(n, spacing=1.0)), float(side)
        if kind == "ring" and len(parts) == 2:
            n = int(parts[1])
            radius = max(1.0, n / 6.0)
            return list(ring_positions(n, radius=radius)), 2 * radius
        if kind == "random" and len(parts) == 3:
            n = int(parts[1])
            w, _, h = parts[2].partition("x")
            width, height = float(w), float(h or w)
            rng = RandomSource(seed).stream("cli-topology")
            return list(random_positions(n, width, height, rng)), max(width, height)
    except ValueError as exc:
        raise ConfigurationError(f"bad topology spec {spec!r}: {exc}") from exc
    raise ConfigurationError(
        f"unknown topology spec {spec!r} "
        "(use line:N, grid:N, ring:N or random:N:WxH)"
    )


def parse_range(spec: str) -> Tuple[float, float]:
    """Parse 'lo:hi' into a float pair."""
    lo, _, hi = spec.partition(":")
    try:
        return float(lo), float(hi or lo)
    except ValueError as exc:
        raise ConfigurationError(f"bad range {spec!r}") from exc


def parse_crash(spec: str) -> Tuple[float, int]:
    """Parse 'time:node' into a crash event."""
    time, _, node = spec.partition(":")
    try:
        return float(time), int(node)
    except ValueError as exc:
        raise ConfigurationError(f"bad crash spec {spec!r}") from exc


def build_config(args, algorithm: Optional[str] = None) -> ScenarioConfig:
    positions, span = parse_topology(args.topology, seed=args.seed)
    mobility_factory = None
    if args.movers > 0:
        movers = args.movers

        def mobility_factory(node_id, _span=span, _movers=movers):
            if node_id < _movers:
                return RandomWaypoint(
                    _span, _span, speed_range=(0.5, 1.2),
                    pause_range=(5.0, 20.0),
                )
            return None

    return ScenarioConfig(
        positions=positions,
        radio_range=args.radio_range,
        algorithm=algorithm or args.algorithm,
        seed=args.seed,
        bounds=TimeBounds(nu=args.nu, tau=args.tau),
        think_range=parse_range(args.think),
        crashes=[parse_crash(c) for c in args.crash],
        delta_override=len(positions) - 1 if args.movers else None,
        mobility_factory=mobility_factory,
        # A report or metrics snapshot is only useful with the probe
        # metrics in it.
        telemetry=bool(
            getattr(args, "report", None) or getattr(args, "metrics", None)
        ),
        watchdog=getattr(args, "watchdog", None),
        scheduler=getattr(args, "scheduler", "ladder"),
    )


def summarize_result(result) -> List[Sequence]:
    s = summarize(result.response_times)
    return [
        ["cs entries", result.cs_entries],
        ["messages", result.messages_sent],
        ["msgs / cs", f"{result.messages_per_cs():.1f}"
         if result.messages_per_cs() is not None else "-"],
        ["mean response", f"{s.mean:.3f}" if s else "-"],
        ["p95 response", f"{s.p95:.3f}" if s else "-"],
        ["max response", f"{s.maximum:.3f}" if s else "-"],
        ["starved", ",".join(map(str, result.starved)) or "none"],
    ]


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------


def cmd_algorithms(args, out) -> int:
    rows = [[name] for name in sorted(ALGORITHMS)]
    out.write(render_table(["algorithm"], rows) + "\n")
    return 0


def cmd_run(args, out) -> int:
    config = build_config(args)
    shards = getattr(args, "shards", 1)
    if shards > 1:
        from repro.sim.sharded import ShardedEngine

        engine = ShardedEngine(
            config,
            num_shards=shards,
            workers=getattr(args, "shard_workers", None),
            # build_config's waypoint movers draw speeds from (0.5, 1.2).
            max_speed=1.2 if args.movers > 0 else None,
        )
        result = engine.run(until=args.until)
    else:
        result = Simulation(config).run(until=args.until)
    out.write(render_table(
        ["metric", "value"],
        summarize_result(result),
        title=f"{args.algorithm} on {args.topology} for {args.until} tu "
              f"(seed {args.seed})",
    ) + "\n")
    for warning in result.watchdog_warnings:
        out.write(
            f"warning: node {warning['node']} starving since "
            f"t={warning['hungry_since']:.1f} "
            f"(observed t={warning['time']:.1f})\n"
        )
    if args.report:
        path = result.report().save(args.report)
        out.write(f"report written to {path}\n")
    if getattr(args, "metrics", None):
        path = Path(args.metrics)
        path.write_text(result.openmetrics())
        out.write(f"metrics written to {path}\n")
    return 0


def cmd_compare(args, out) -> int:
    rows = []
    reports = {}
    for algorithm in args.algorithms:
        if algorithm not in ALGORITHMS:
            raise ConfigurationError(f"unknown algorithm {algorithm!r}")
        config = build_config(args, algorithm=algorithm)
        result = Simulation(config).run(until=args.until)
        if args.report:
            reports[algorithm] = result.report().to_dict()
        s = summarize(result.response_times)
        rows.append([
            algorithm,
            result.cs_entries,
            f"{s.mean:.2f}" if s else "-",
            f"{s.maximum:.2f}" if s else "-",
            f"{result.messages_per_cs():.1f}"
            if result.messages_per_cs() is not None else "-",
            ",".join(map(str, result.starved)) or "-",
        ])
    out.write(render_table(
        ["algorithm", "cs entries", "mean rt", "max rt", "msgs/cs", "starved"],
        rows,
        title=f"Comparison on {args.topology}, {args.until} tu (seed "
              f"{args.seed})",
    ) + "\n")
    if args.report:
        path = Path(args.report)
        path.write_text(json.dumps(reports, indent=2, sort_keys=True) + "\n")
        out.write(f"reports written to {path}\n")
    return 0


def cmd_report(args, out) -> int:
    if len(args.files) > 2:
        raise ConfigurationError(
            "report takes one file (summary) or two (diff)"
        )
    first = RunReport.load(args.files[0])
    if len(args.files) == 1:
        for line in first.summary_lines():
            out.write(line + "\n")
        return 0
    second = RunReport.load(args.files[1])
    changed = first.diff(second)
    if not changed:
        out.write("reports are identical\n")
        return 0
    width = max(len(path) for path in changed)
    for path, (ours, theirs) in changed.items():
        out.write(f"{path:<{width}}  {ours!r} -> {theirs!r}\n")
    out.write(f"{len(changed)} leaves differ\n")
    return 1


def cmd_explore(args, out) -> int:
    handlers = {
        "fuzz": cmd_explore_fuzz,
        "replay": cmd_explore_replay,
        "shrink": cmd_explore_shrink,
    }
    return handlers[args.explore_command](args, out)


def cmd_explore_fuzz(args, out) -> int:
    from repro.explore import run_campaign, shrink_repro

    if args.algorithm not in ALGORITHMS:
        raise ConfigurationError(f"unknown algorithm {args.algorithm!r}")
    result = run_campaign(
        args.algorithm,
        runs=args.runs,
        seed=args.seed,
        strategy=args.strategy,
        workers=args.workers,
        stop_on_first=args.stop_on_first,
    )
    rows = [
        [o["family"], "VIOLATED" if o["violated"] else "ok", o["steps"]]
        for o in result.outcomes
    ]
    out.write(render_table(
        ["family", "outcome", "steps"],
        rows,
        title=f"fuzz {args.algorithm}: {result.runs} runs, "
              f"strategy {args.strategy}, seed {args.seed}",
    ) + "\n")
    if result.clean:
        out.write("campaign clean: no invariant violations\n")
        return 0
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    for index, repro in enumerate(result.violations):
        if args.shrink:
            repro, _ = shrink_repro(repro, max_replays=args.max_replays)
        monitor = repro.violation.get("monitor", "violation")
        path = out_dir / f"{args.algorithm}-{monitor}-{index}.json"
        repro.save(path)
        out.write(
            f"violation of {monitor!r} at step "
            f"{repro.violation.get('step')} "
            f"(t={repro.violation.get('time'):.3f}) -> {path}\n"
        )
    return 1


def cmd_explore_replay(args, out) -> int:
    from repro.explore import replay
    from repro.explore.repro_file import ReproFile

    repro = ReproFile.load(args.file)
    result = replay(repro)  # raises ReproError on divergence -> exit 2
    violation = result.violation
    out.write(
        f"reproduced: {violation.monitor!r} violated at step "
        f"{violation.step} (t={violation.time:.3f})\n"
    )
    if args.report:
        path = result.report.save(args.report)
        out.write(f"report written to {path}\n")
    return 0


def cmd_explore_shrink(args, out) -> int:
    from repro.explore import shrink_repro
    from repro.explore.repro_file import ReproFile

    repro = ReproFile.load(args.file)
    shrunk, replays = shrink_repro(repro, max_replays=args.max_replays)
    destination = Path(args.out) if args.out else Path(
        str(args.file)).with_suffix(".min.json")
    shrunk.save(destination)
    out.write(
        f"shrunk size {repro.size()} -> {shrunk.size()} "
        f"(decisions {len(repro.decisions)} -> {len(shrunk.decisions)}, "
        f"until {repro.until:g} -> {shrunk.until:g}) "
        f"in {replays} replays\n"
    )
    out.write(f"minimal repro written to {destination}\n")
    return 0


def cmd_metrics(args, out) -> int:
    handlers = {
        "export": cmd_metrics_export,
        "serve": cmd_metrics_serve,
    }
    return handlers[args.metrics_command](args, out)


def _report_openmetrics(path) -> str:
    from repro.obs.openmetrics import openmetrics_from_report

    return openmetrics_from_report(RunReport.load(path))


def cmd_metrics_export(args, out) -> int:
    text = _report_openmetrics(args.file)
    if args.out:
        Path(args.out).write_text(text)
        out.write(f"metrics written to {args.out}\n")
    else:
        out.write(text)
    return 0


def cmd_metrics_serve(args, out) -> int:
    from repro.obs.openmetrics import build_metrics_server

    # Re-read the report on every scrape so a long-running harness can
    # keep rewriting the file and Prometheus sees fresh numbers.
    server = build_metrics_server(
        lambda: _report_openmetrics(args.file),
        host=args.host,
        port=args.port,
    )
    host, port = server.server_address[:2]
    out.write(f"serving metrics on http://{host}:{port}/metrics\n")
    try:
        if args.once:
            server.handle_request()
        else:  # pragma: no cover - interactive loop
            server.serve_forever()
    finally:
        server.server_close()
    return 0


def cmd_bench(args, out) -> int:
    handlers = {
        "append": cmd_bench_append,
        "history": cmd_bench_history,
        "check": cmd_bench_check,
    }
    return handlers[args.bench_command](args, out)


def cmd_bench_append(args, out) -> int:
    from repro.obs.bench_history import append_record

    sections = json.loads(Path(args.bench).read_text())
    if not isinstance(sections, dict):
        raise ConfigurationError(
            f"{args.bench}: bench snapshot must be a JSON object"
        )
    record = append_record(args.history, sections)
    out.write(
        f"appended {len(record['sections'])} section(s) at "
        f"{record['timestamp']} "
        f"(commit {record['git_commit'] or 'unknown'}, "
        f"version {record['version']}) to {args.history}\n"
    )
    return 0


def cmd_bench_history(args, out) -> int:
    from repro.obs.bench_history import load_history

    records = load_history(args.history)
    if not records:
        out.write(f"no records in {args.history}\n")
        return 0
    rows = []
    for record in records[-args.last:] if args.last else records:
        commit = record.get("git_commit") or "-"
        rows.append([
            record.get("timestamp", "-"),
            commit[:12],
            record.get("version", "-"),
            len(record.get("sections", {})),
            record.get("peak_rss_kb") or "-",
        ])
    out.write(render_table(
        ["timestamp", "commit", "version", "sections", "peak rss kb"],
        rows,
        title=f"{len(records)} record(s) in {args.history}",
    ) + "\n")
    return 0


def cmd_bench_check(args, out) -> int:
    from repro.obs.bench_history import check_latest, load_history

    records = load_history(args.history)
    if len(records) < 2:
        out.write(
            f"{len(records)} record(s) in {args.history}: "
            "nothing to compare against yet\n"
        )
        return 0
    result = check_latest(records, floor=args.floor, window=args.window)
    out.write(
        f"checked {result.checked} metric(s) against a trailing median of "
        f"{result.baseline_records} record(s), tolerance "
        f"{result.tolerance:.1%} (jitter {result.jitter:.1%}, floor "
        f"{args.floor:.1%})\n"
    )
    if result.clean:
        out.write("no regressions\n")
        return 0
    for regression in result.regressions:
        out.write(f"REGRESSION {regression.describe()}\n")
    out.write(f"{len(result.regressions)} regression(s) detected\n")
    return 0 if args.report_only else 1


def cmd_locality(args, out) -> int:
    reports = {}
    for algorithm in args.algorithms:
        if algorithm not in ALGORITHMS:
            raise ConfigurationError(f"unknown algorithm {algorithm!r}")
        reports[algorithm] = crash_probe(
            algorithm, n=args.nodes, until=args.until, seed=args.seed,
            crash_time=args.crash_time,
        )
    crash_node = args.nodes // 2
    out.write(
        f"{args.nodes}-node line, node {crash_node} crashes while eating "
        f"(X = crashed, # = starved, . = progressing)\n"
    )
    for algorithm, report in reports.items():
        cells = []
        for node in range(args.nodes):
            if node == crash_node:
                cells.append("X")
            elif node in report.starved:
                cells.append("#")
            else:
                cells.append(".")
        radius = report.starvation_radius
        out.write(
            f"  {algorithm:>14s}  [{''.join(cells)}]  radius = "
            f"{radius if radius is not None else 0}\n"
        )
    return 0


def cmd_live(args, out) -> int:
    handlers = {
        "run": cmd_live_run,
        "verify": cmd_live_verify,
        "serve": cmd_live_serve,
    }
    return handlers[args.live_command](args, out)


def _write_recording(recording, destination, out) -> None:
    from repro.live import save_recording

    with open(destination, "w") as stream:
        save_recording(recording, stream)
    out.write(f"recording written to {destination}\n")


def _verify_one(recording, label, out) -> bool:
    from repro.live import verify_recording

    report = verify_recording(recording)
    if report["clean"]:
        out.write(
            f"{label}: clean — {report['rows']} rows replayed, "
            f"{report['fidelity']['expected']} effects matched, "
            f"monitors {', '.join(report['monitors'])}\n"
        )
    elif report["violation"] is not None:
        violation = report["violation"]
        out.write(
            f"{label}: VIOLATION — monitor {violation.get('monitor')!r} "
            f"fired at t={violation.get('time')}\n"
        )
    else:
        divergence = report["fidelity"]["divergence"]
        out.write(
            f"{label}: DIVERGED — replay left the recording at effect "
            f"{divergence['index']} (expected {divergence['expected']}, "
            f"got {divergence['actual']})\n"
        )
    return bool(report["clean"])


def cmd_live_run(args, out) -> int:
    from repro.live import run_bus_family, run_socket_family

    if args.runtime == "socket":
        recording = run_socket_family(
            args.family, args.algorithm, seed=args.seed,
            time_scale=args.time_scale or 0.02,
        )
    else:
        recording = run_bus_family(
            args.family, args.algorithm, seed=args.seed,
            time_scale=args.time_scale or 0.005,
        )
    out.write(
        f"live {args.runtime} run {args.family}/{args.algorithm} "
        f"seed {args.seed}: {len(recording['rows'])} rows, "
        f"t_end {recording['t_end']:.3f}\n"
    )
    if args.out:
        _write_recording(recording, args.out, out)
    if args.verify:
        return 0 if _verify_one(recording, args.out or "recording", out) else 1
    return 0


def cmd_live_verify(args, out) -> int:
    from repro.live import load_recording

    status = 0
    for path in args.files:
        with open(path) as stream:
            recording = load_recording(stream)
        if not _verify_one(recording, str(path), out):
            status = 1
    return status


def cmd_live_serve(args, out) -> int:
    from repro.live import serve

    out.write(
        f"serving live metrics on http://{args.host}:{args.port}/metrics\n"
    )
    recording = serve(
        args.family, args.algorithm, seed=args.seed,
        time_scale=args.time_scale or 0.05,
        host=args.host, port=args.port, duration=args.duration,
    )
    out.write(
        f"run finished: {len(recording['rows'])} rows, "
        f"t_end {recording['t_end']:.3f}\n"
    )
    if args.out:
        _write_recording(recording, args.out, out)
    return 0


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    from repro._version import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Local mutual exclusion in MANETs (Kogan, ICDCS 2008) — "
                    "simulation CLI",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("algorithms", help="list registered protocols")

    def add_common(p):
        p.add_argument("--topology", default="line:10",
                       help="line:N | grid:N | ring:N | random:N:WxH")
        p.add_argument("--radio-range", type=float, default=1.0)
        p.add_argument("--until", type=float, default=300.0,
                       help="virtual time to simulate")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--think", default="1.0:4.0",
                       help="think-time range lo:hi")
        p.add_argument("--nu", type=float, default=1.0,
                       help="max message delay")
        p.add_argument("--tau", type=float, default=1.0,
                       help="max eating time")
        p.add_argument("--movers", type=int, default=0,
                       help="first K nodes follow random waypoint")
        p.add_argument("--crash", action="append", default=[],
                       metavar="TIME:NODE", help="schedule a crash")
        p.add_argument("--report", default=None, metavar="OUT.json",
                       help="write the structured run report "
                            "(enables telemetry)")

    run_parser = sub.add_parser("run", help="run one simulation")
    add_common(run_parser)
    run_parser.add_argument("--algorithm", default="alg2",
                            choices=sorted(ALGORITHMS))
    run_parser.add_argument(
        "--metrics", default=None, metavar="OUT.prom",
        help="write the probe snapshot as OpenMetrics text "
             "(enables telemetry)",
    )
    run_parser.add_argument(
        "--watchdog", type=float, default=None, metavar="THRESHOLD",
        help="warn when a node stays hungry longer than this (virtual time)",
    )
    run_parser.add_argument(
        "--scheduler", choices=("ladder", "heap"), default="ladder",
        help="engine pending-set discipline (bit-identical results; "
             "heap is the equivalence oracle)",
    )
    run_parser.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="spatial shards for the parallel engine (1 = classic engine)",
    )
    run_parser.add_argument(
        "--shard-workers", type=int, default=None, metavar="W",
        help="processes hosting the shards (default: min(shards, cpus))",
    )

    compare_parser = sub.add_parser("compare", help="compare protocols")
    add_common(compare_parser)
    compare_parser.add_argument(
        "--algorithms", nargs="+",
        default=["alg2", "alg1-greedy", "chandy-misra"],
    )

    locality_parser = sub.add_parser(
        "locality", help="crash probe with ASCII starvation strip"
    )
    locality_parser.add_argument("--nodes", type=int, default=13)
    locality_parser.add_argument("--until", type=float, default=600.0)
    locality_parser.add_argument("--seed", type=int, default=5)
    locality_parser.add_argument("--crash-time", type=float, default=20.0)
    locality_parser.add_argument(
        "--algorithms", nargs="+",
        default=["alg2", "alg1-linial", "chandy-misra"],
    )

    report_parser = sub.add_parser(
        "report", help="pretty-print one RunReport JSON, or diff two"
    )
    report_parser.add_argument(
        "files", nargs="+", metavar="REPORT.json",
        help="one file to summarize, two to diff (exit 1 when they differ)",
    )

    explore_parser = sub.add_parser(
        "explore", help="adversarial exploration: fuzz, replay, shrink"
    )
    explore_sub = explore_parser.add_subparsers(
        dest="explore_command", required=True
    )

    fuzz_parser = explore_sub.add_parser(
        "fuzz", help="run a seeded fuzz campaign (exit 1 on violations)"
    )
    fuzz_parser.add_argument("--algorithm", default="alg2",
                             choices=sorted(ALGORITHMS))
    fuzz_parser.add_argument("--runs", type=int, default=20)
    fuzz_parser.add_argument("--seed", type=int, default=0)
    fuzz_parser.add_argument("--strategy", default="random",
                             choices=["random", "pct", "dfs"])
    fuzz_parser.add_argument("--workers", type=int, default=1,
                             help="process fan-out (random/pct only)")
    fuzz_parser.add_argument("--out", default="repros", metavar="DIR",
                             help="directory for violation repro files")
    fuzz_parser.add_argument("--stop-on-first", action="store_true",
                             help="stop the campaign at the first violation")
    fuzz_parser.add_argument("--shrink", action="store_true",
                             help="delta-debug each violation before saving")
    fuzz_parser.add_argument("--max-replays", type=int, default=150,
                             help="shrink replay budget (with --shrink)")

    replay_parser = explore_sub.add_parser(
        "replay", help="re-run a repro file (exit 2 when it diverges)"
    )
    replay_parser.add_argument("file", metavar="REPRO.json")
    replay_parser.add_argument("--report", default=None, metavar="OUT.json",
                               help="save the replay's RunReport")

    shrink_parser = explore_sub.add_parser(
        "shrink", help="delta-debug a repro file to a minimal failing case"
    )
    shrink_parser.add_argument("file", metavar="REPRO.json")
    shrink_parser.add_argument("--out", default=None, metavar="OUT.json",
                               help="destination (default: <file>.min.json)")
    shrink_parser.add_argument("--max-replays", type=int, default=300)

    metrics_parser = sub.add_parser(
        "metrics", help="OpenMetrics export and scrape endpoint"
    )
    metrics_sub = metrics_parser.add_subparsers(
        dest="metrics_command", required=True
    )
    export_parser = metrics_sub.add_parser(
        "export", help="render a saved RunReport as OpenMetrics text"
    )
    export_parser.add_argument("file", metavar="REPORT.json")
    export_parser.add_argument("--out", default=None, metavar="OUT.prom",
                               help="destination (default: stdout)")
    serve_parser = metrics_sub.add_parser(
        "serve", help="serve a saved RunReport on /metrics "
                      "(re-read per scrape)"
    )
    serve_parser.add_argument("file", metavar="REPORT.json")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=9464)
    serve_parser.add_argument("--once", action="store_true",
                              help="serve a single request, then exit")

    bench_parser = sub.add_parser(
        "bench", help="append-only bench history and regression checks"
    )
    bench_sub = bench_parser.add_subparsers(
        dest="bench_command", required=True
    )
    append_parser = bench_sub.add_parser(
        "append", help="append a BENCH_core.json snapshot to the history"
    )
    append_parser.add_argument("--bench", default="BENCH_core.json",
                               metavar="BENCH.json")
    append_parser.add_argument("--history", default="BENCH_history.jsonl",
                               metavar="HISTORY.jsonl")
    history_parser = bench_sub.add_parser(
        "history", help="list the recorded bench runs"
    )
    history_parser.add_argument("--history", default="BENCH_history.jsonl",
                                metavar="HISTORY.jsonl")
    history_parser.add_argument("--last", type=int, default=0,
                                help="only show the last N records")
    check_parser = bench_sub.add_parser(
        "check", help="compare the newest record to the trailing median "
                      "(exit 1 on regression)"
    )
    check_parser.add_argument("--history", default="BENCH_history.jsonl",
                              metavar="HISTORY.jsonl")
    check_parser.add_argument("--floor", type=float, default=0.05,
                              help="minimum drift fraction that flags")
    check_parser.add_argument("--window", type=int, default=5,
                              help="trailing records forming the baseline")
    check_parser.add_argument("--report-only", action="store_true",
                              help="report regressions but exit 0")

    live_parser = sub.add_parser(
        "live", help="run the protocols over a real transport; "
                     "verify recordings through the sim oracle"
    )
    live_sub = live_parser.add_subparsers(dest="live_command", required=True)

    def add_live_scenario(p):
        p.add_argument("--family", default="static-line",
                       help="scenario family (see explore's generator pool)")
        p.add_argument("--algorithm", default="alg2",
                       choices=sorted(ALGORITHMS))
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--time-scale", type=float, default=None,
                       metavar="SECONDS",
                       help="wall seconds per virtual time unit")

    live_run = live_sub.add_parser(
        "run", help="record one live scenario run"
    )
    add_live_scenario(live_run)
    live_run.add_argument("--runtime", choices=("bus", "socket"),
                          default="bus",
                          help="in-process asyncio bus, or one OS process "
                               "per node over localhost TCP")
    live_run.add_argument("--out", default=None, metavar="RECORDING.json",
                          help="write the recorded event log")
    live_run.add_argument("--verify", action="store_true",
                          help="replay the recording in-sim immediately "
                               "(exit 1 when not clean)")

    live_verify = live_sub.add_parser(
        "verify", help="replay recordings in-sim under invariant monitors "
                       "(exit 1 when any is not clean)"
    )
    live_verify.add_argument("files", nargs="+", metavar="RECORDING.json")

    live_serve = live_sub.add_parser(
        "serve", help="run a bus scenario with a live /metrics endpoint"
    )
    add_live_scenario(live_serve)
    live_serve.add_argument("--host", default="127.0.0.1")
    live_serve.add_argument("--port", type=int, default=9464)
    live_serve.add_argument("--duration", type=float, default=None,
                            help="virtual-time horizon override")
    live_serve.add_argument("--out", default=None, metavar="RECORDING.json",
                            help="write the recorded event log")
    return parser


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    arguments = list(argv) if argv is not None else sys.argv[1:]
    if arguments and arguments[0] == "--version":
        # Handled before argparse so the version lands on ``out`` (the
        # stock "version" action writes to stdout and exits).
        from repro import __version__

        out.write(f"repro {__version__}\n")
        return 0
    parser = build_parser()
    args = parser.parse_args(arguments)
    handlers = {
        "algorithms": cmd_algorithms,
        "run": cmd_run,
        "compare": cmd_compare,
        "locality": cmd_locality,
        "report": cmd_report,
        "explore": cmd_explore,
        "metrics": cmd_metrics,
        "bench": cmd_bench,
        "live": cmd_live,
    }
    try:
        return handlers[args.command](args, out)
    except FileNotFoundError as exc:
        out.write(f"error: {exc}\n")
        return 2
    except ReproError as exc:
        out.write(f"error: {exc}\n")
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
