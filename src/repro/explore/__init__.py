"""Adversarial exploration: controlled schedules, invariant monitors,
fuzz campaigns, shrinking and replayable repro files.

The simulator is deterministic, which makes every run an anecdote: one
event ordering out of the astronomically many a real MANET could
exhibit.  This package turns the simulator's nondeterministic *choice
points* — same-instant event tie-breaks, per-hop message delays,
crash timing — into first-class decisions a
:class:`~repro.explore.schedule.ControlledScheduler` makes, records
and replays.  On top of that sit online
:class:`~repro.explore.monitors.InvariantMonitor`\\ s checking the
paper's safety and progress claims after every event, seeded fuzz
campaigns over generated scenarios, delta-debugging of failing runs,
and schema-versioned JSON repro files that reproduce a violation
bit-identically.

Entry points::

    from repro.explore import run_controlled, run_campaign, replay

    result = run_campaign("alg2", runs=20, seed=1)
    if result.violations:
        repro = result.violations[0]
        replayed = replay(repro)       # same violation, same step

CLI: ``repro-sim explore fuzz|replay|shrink``.  See docs/exploration.md.
"""

from repro.explore.campaign import CampaignResult, run_campaign
from repro.explore.monitors import (
    InvariantMonitor,
    MonitorSuite,
    Violation,
    build_monitors,
    default_monitor_specs,
)
from repro.explore.repro_file import REPRO_SCHEMA_VERSION, ReproFile
from repro.explore.runner import ExplorationResult, replay, run_controlled
from repro.explore.scenarios import scenario_pool
from repro.explore.schedule import (
    BoundedDFSStrategy,
    ControlledScheduler,
    PCTStrategy,
    RandomStrategy,
    ReplaySchedule,
    build_strategy,
    dfs_prefixes,
)
from repro.explore.shrink import shrink_repro

__all__ = [
    "BoundedDFSStrategy",
    "CampaignResult",
    "ControlledScheduler",
    "ExplorationResult",
    "InvariantMonitor",
    "MonitorSuite",
    "PCTStrategy",
    "REPRO_SCHEMA_VERSION",
    "RandomStrategy",
    "ReplaySchedule",
    "ReproFile",
    "Violation",
    "build_monitors",
    "build_strategy",
    "default_monitor_specs",
    "dfs_prefixes",
    "replay",
    "run_campaign",
    "run_controlled",
    "scenario_pool",
    "shrink_repro",
]
