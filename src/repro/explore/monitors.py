"""Online invariant monitors: the oracle side of adversarial exploration.

Each :class:`InvariantMonitor` checks one of the paper's claims after
every executed event (the engine's post-event listener hook, so a
monitor sees exactly the states the protocol can be observed in — the
simulator changes nothing between events).  The :class:`MonitorSuite`
stops the run at the first violation and records *where* it happened
(step = executed-event count), which is what makes violations exact
replay targets.

Monitors and the claims they check:

``exclusion``
    Local mutual exclusion itself: no link with both endpoints EATING.
``fork-uniqueness``
    Lemma 3: per link at most one endpoint holds the shared fork.
``doorway-entry``
    The synchronous-doorway guarantee (Chapter 4): a node may cross
    ``SDr``/``SDf`` only while it observes every neighbor outside.
    Catches the ``alg1-nodoorway`` ablation.
``return-path``
    Figure 5 lines 59-60: behind ``SDf``, losing a lower-colored
    neighbor whose fork we lack must trigger the return path.  Catches
    ``alg1-noreturn``.
``priority``
    Lemma 24 for Algorithm 2: the ``higher[]`` relation is
    antisymmetric (never both False across a link — both True is the
    legal switch-in-transit window) and the strict priority digraph is
    acyclic (the cycle half only for static scenarios; under link
    churn settled cycles are reachable and self-healing).
``stale-priority``
    The notification obligation (Algorithm 6 lines 1-5, 22-25): a
    thinking node cannot outrank a hungry neighbor for longer than a
    few message round trips.  Catches ``alg2-nonotify``.
``progress``
    Eventual progress, via the existing
    :class:`~repro.obs.watchdog.StarvationWatchdog` run in pull mode,
    with a crash-exemption radius for the paper's failure-locality
    allowance.

Monitors are rebuilt from ``{"name", "params"}`` specs recorded in
repro files (:data:`MONITOR_BUILDERS`), so a replay judges the run
with exactly the monitors that originally flagged it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.doorway import SYNC_DOORWAYS
from repro.core.states import NodeState
from repro.errors import ConfigurationError
from repro.obs.watchdog import StarvationWatchdog


@dataclass
class Violation:
    """One invariant failure, pinned to an exact point in the run."""

    monitor: str
    step: int
    time: float
    details: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "monitor": self.monitor,
            "step": self.step,
            "time": self.time,
            "details": self.details,
        }


class InvariantMonitor:
    """Base class: attach to a built simulation, check after each event."""

    name = "invariant"

    def __init__(self, params: Optional[Dict[str, Any]] = None) -> None:
        self.params: Dict[str, Any] = dict(params or {})

    def spec(self) -> Dict[str, Any]:
        """JSON spec for repro files (rebuilt via MONITOR_BUILDERS)."""
        return {"name": self.name, "params": dict(self.params)}

    def attach(self, simulation) -> None:
        """Grab references and baseline snapshots before the run starts."""
        self.simulation = simulation

    def check(self) -> Optional[Dict[str, Any]]:
        """Post-event check; violation details or None."""
        return None

    def final(self) -> Optional[Dict[str, Any]]:
        """End-of-run check (for liveness-style monitors)."""
        return None

    # -- shared helpers -------------------------------------------------
    def _algorithms(self):
        for node_id, harness in self.simulation.harnesses.items():
            yield node_id, harness.algorithm

    def _links(self):
        return self.simulation.topology.links()

    def _link_pairs(self):
        """Links with both endpoint harnesses hosted here.

        In a sharded run one endpoint of a boundary link may be a ghost
        (no local harness); the owning shard's monitor sees that node's
        state, so pair invariants straddling a boundary are checked by
        whichever shard owns both endpoints of a *conflict* — and an
        exclusion/fork conflict always has a real harness behind each
        eating or fork-holding endpoint on its own shard.
        """
        harnesses = self.simulation.harnesses
        get = harnesses.get
        for a, b in self._links():
            harness_a = get(a)
            if harness_a is None:
                continue
            harness_b = get(b)
            if harness_b is None:
                continue
            yield a, b, harness_a, harness_b


class ExclusionMonitor(InvariantMonitor):
    """No two current neighbors eat at the same time."""

    name = "exclusion"

    def check(self) -> Optional[Dict[str, Any]]:
        for a, b, harness_a, harness_b in self._link_pairs():
            if (harness_a.state is NodeState.EATING
                    and harness_b.state is NodeState.EATING):
                return {"link": [a, b]}
        return None


class ForkUniquenessMonitor(InvariantMonitor):
    """Lemma 3: at most one endpoint of a link holds the shared fork."""

    name = "fork-uniqueness"

    def check(self) -> Optional[Dict[str, Any]]:
        for a, b, harness_a, harness_b in self._link_pairs():
            forks_a = getattr(harness_a.algorithm, "forks", None)
            forks_b = getattr(harness_b.algorithm, "forks", None)
            if forks_a is None or forks_b is None:
                continue
            if forks_a.holds(b) and forks_b.holds(a):
                return {"link": [a, b]}
        return None


class DoorwayEntryMonitor(InvariantMonitor):
    """A sync-doorway cross requires every peer observed outside.

    The post-event snapshot of each node's ``behind_set()`` doubles as
    the pre-event state of the next event (nothing changes between
    events), so a diff pinpoints fresh crossings.  In per-message mode
    a node's ``L`` view cannot change between its cross and this
    listener (one delivery per event), so ``peers_behind`` at check
    time is exactly the view the entry code decided on.
    """

    name = "doorway-entry"

    def attach(self, simulation) -> None:
        super().attach(simulation)
        self._behind: Dict[int, FrozenSet[str]] = {}
        for node_id, alg in self._algorithms():
            doorways = getattr(alg, "doorways", None)
            if doorways is not None:
                self._behind[node_id] = doorways.behind_set()

    def check(self) -> Optional[Dict[str, Any]]:
        violation = None
        for node_id in self._behind:
            doorways = self.simulation.harnesses[node_id].algorithm.doorways
            now_behind = doorways.behind_set()
            if now_behind == self._behind[node_id]:
                continue
            fresh = now_behind - self._behind[node_id]
            self._behind[node_id] = now_behind
            if violation is not None:
                continue
            for doorway in fresh & SYNC_DOORWAYS:
                peers = doorways.peers_behind(doorway)
                if peers:
                    violation = {
                        "node": node_id,
                        "doorway": doorway,
                        "peers_behind": sorted(peers),
                    }
                    break
        return violation


class ReturnPathMonitor(InvariantMonitor):
    """Figure 5's return path fires whenever its trigger condition holds.

    Pre-event state is the previous post-event snapshot.  Evaluated
    only for single-departure events with no simultaneous link-up for
    the node (a mover exiting all doorways legitimately skips the
    return path), mirroring ``Algorithm1.on_link_down``.
    """

    name = "return-path"

    def attach(self, simulation) -> None:
        super().attach(simulation)
        self._snapshots: Dict[int, Dict[str, Any]] = {}
        for node_id in simulation.harnesses:
            self._snapshots[node_id] = self._snapshot(node_id)

    def _snapshot(self, node_id: int) -> Dict[str, Any]:
        harness = self.simulation.harnesses[node_id]
        alg = harness.algorithm
        doorways = getattr(alg, "doorways", None)
        neighbors = frozenset(harness.neighbors())
        from repro.core.doorway import FORK_SYNC

        return {
            "neighbors": neighbors,
            "behind_sdf": (doorways.is_behind(FORK_SYNC)
                           if doorways is not None else False),
            "holds": {peer: alg.forks.holds(peer) for peer in neighbors}
                     if getattr(alg, "forks", None) is not None else {},
            "colors": dict(getattr(alg, "colors", {})),
            "my_color": getattr(alg, "my_color", None),
            "returns": getattr(alg, "return_paths_taken", 0),
            "crashed": harness.crashed,
        }

    def check(self) -> Optional[Dict[str, Any]]:
        violation = None
        for node_id, prev in list(self._snapshots.items()):
            harness = self.simulation.harnesses[node_id]
            # Refresh every node every event: doorway position, fork
            # holdings and colors all evolve without the neighbor set
            # changing, and the next link-down must judge against the
            # state just before it.
            snapshot = self._snapshot(node_id)
            self._snapshots[node_id] = snapshot
            current = snapshot["neighbors"]
            if current == prev["neighbors"] or violation is not None:
                continue
            departed = prev["neighbors"] - current
            arrived = current - prev["neighbors"]
            if len(departed) != 1 or arrived:
                continue
            (peer,) = departed
            peer_color = prev["colors"].get(peer)
            if (
                prev["behind_sdf"]
                and not prev["crashed"]
                and not harness.crashed
                and not prev["holds"].get(peer, False)
                and peer_color is not None
                and prev["my_color"] is not None
                and peer_color < prev["my_color"]
                and snapshot["returns"] <= prev["returns"]
            ):
                violation = {
                    "node": node_id,
                    "departed_peer": peer,
                    "peer_color": peer_color,
                    "my_color": prev["my_color"],
                }
        return violation


class PriorityMonitor(InvariantMonitor):
    """Lemma 24: ``higher[]`` antisymmetry and priority-graph acyclicity.

    Both directions True is the legal switch-in-transit window; both
    False would let two neighbors each treat the other as low — the
    deadlock door Algorithm 2's invariant keeps shut.  The strict
    digraph (edge a->b when ``higher_a[b]`` and not ``higher_b[a]``,
    read "b outranks a") must stay acyclic.

    The acyclicity half is a *static-case* invariant and is switched
    off with ``params={"cycles": False}`` for mobility scenarios: an
    abdication (Switch) in flight across a link formation can settle
    *after* the mover's link-up sink-making and re-raise it, weaving a
    legitimate cycle out of three individually-correct steps (the
    campaigns found exactly this — see docs/exploration.md).  Such a
    cycle is healed by the notification mechanism at the next
    staggered hunger onset, so under churn the standing hazard is
    starvation, which the progress monitor owns.  Antisymmetry is a
    settled per-link invariant and stays on everywhere.
    """

    name = "priority"

    def __init__(self, params: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(params)
        self.check_cycles = bool(self.params.get("cycles", True))

    def check(self) -> Optional[Dict[str, Any]]:
        edges: Dict[int, List[int]] = {}
        for a, b, harness_a, harness_b in self._link_pairs():
            alg_a = harness_a.algorithm
            alg_b = harness_b.algorithm
            higher_a = getattr(alg_a, "higher", None)
            higher_b = getattr(alg_b, "higher", None)
            if higher_a is None or higher_b is None:
                continue
            if higher_a.get(b) is False and higher_b.get(a) is False:
                return {"kind": "antisymmetry", "link": [a, b]}
            if not self.check_cycles:
                continue
            if higher_a.get(b) and not higher_b.get(a):
                edges.setdefault(a, []).append(b)
            elif higher_b.get(a) and not higher_a.get(b):
                edges.setdefault(b, []).append(a)
        cycle = _find_cycle(edges)
        if cycle is not None:
            return {"kind": "cycle", "cycle": cycle}
        return None


def _find_cycle(edges: Dict[int, List[int]]) -> Optional[List[int]]:
    """First directed cycle in ``edges`` (DFS with a grey set), or None."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {node: WHITE for node in edges}
    parent: Dict[int, int] = {}
    for root in edges:
        if color[root] != WHITE:
            continue
        stack = [(root, iter(edges.get(root, ())))]
        color[root] = GREY
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                if color.get(child, WHITE) == GREY:
                    cycle = [child, node]
                    walk = node
                    while walk != child:
                        walk = parent[walk]
                        cycle.append(walk)
                    cycle.reverse()
                    return cycle
                if color.get(child, WHITE) == WHITE:
                    color[child] = GREY
                    parent[child] = node
                    stack.append((child, iter(edges.get(child, ()))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return None


class StalePriorityMonitor(InvariantMonitor):
    """The notification obligation: a hunger onset next to a thinking
    priority-holder must clear the stale priority within ``bound``.

    When node *i* turns HUNGRY while neighbor *j* is THINKING and
    ``higher_i[j]`` is True, clean Algorithm 2's Line-2 notification
    makes *j* switch below all its neighbors, so *i* observes
    ``higher_i[j] is False`` within one notification + switch round
    trip (about ``2 * nu``; links are FIFO, so the notification lands
    at *j* after any in-flight switch of *i*'s own and *j* judges it
    against current priorities).  The obligation discharges on
    observing the flag False, on *j* leaving THINKING, on the link
    disappearing, or on a crash at either end — but never on *i*'s
    own state changes: a thinking neighbor bypass-grants its forks, so
    the hungry node eats fine with or without the notification, and
    eating must not count as discharge.  An obligation outstanding
    past ``bound`` (default three message bounds) is the
    ``alg2-nonotify`` signature — *j* keeps its stale priority and
    will ambush *i* whenever it wakes.  Must not be installed for
    mobility scenarios, where a link-up legitimately grants standing
    priority with no re-notification.
    """

    name = "stale-priority"

    def __init__(self, params: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(params)
        if "bound" not in self.params:
            raise ConfigurationError("stale-priority monitor needs a bound")
        self.bound = float(self.params["bound"])

    def attach(self, simulation) -> None:
        super().attach(simulation)
        self._prev_state: Dict[int, NodeState] = {
            node_id: harness.state
            for node_id, harness in simulation.harnesses.items()
        }
        self._obligations: Dict[Tuple[int, int], float] = {}

    def check(self) -> Optional[Dict[str, Any]]:
        sim = self.simulation
        now = sim.sim.now
        harnesses = sim.harnesses
        links: Set[FrozenSet[int]] = {
            frozenset(link) for link in self._links()
        }

        # Discharge or time out the outstanding obligations.
        violation = None
        for (i, j), since in list(self._obligations.items()):
            hungry = harnesses[i]
            thinker = harnesses[j]
            higher = getattr(hungry.algorithm, "higher", {})
            if (
                higher.get(j) is not True
                or thinker.state is not NodeState.THINKING
                or frozenset((i, j)) not in links
                or hungry.crashed
                or thinker.crashed
            ):
                del self._obligations[(i, j)]
                continue
            if violation is None and now - since > self.bound:
                violation = {
                    "hungry_node": i,
                    "thinking_node": j,
                    "since": since,
                    "bound": self.bound,
                }

        # Open new obligations at hunger onsets.
        for node_id, harness in harnesses.items():
            prev = self._prev_state.get(node_id)
            self._prev_state[node_id] = harness.state
            if (harness.state is not NodeState.HUNGRY
                    or prev is NodeState.HUNGRY):
                continue
            higher = getattr(harness.algorithm, "higher", None)
            if higher is None or harness.crashed:
                continue
            for peer in harness.neighbors():
                other = harnesses.get(peer)
                if (
                    other is not None
                    and not other.crashed
                    and other.state is NodeState.THINKING
                    and higher.get(peer) is True
                ):
                    self._obligations.setdefault((node_id, peer), now)
        return violation

    def final(self) -> Optional[Dict[str, Any]]:
        return self.check()


class ProgressMonitor(InvariantMonitor):
    """Eventual progress via the starvation watchdog in pull mode.

    ``threshold`` is the hungry duration that counts as starvation;
    ``exempt_radius`` excuses nodes within that topology distance of a
    crashed node (the paper's failure-locality allowance — radius 2
    for Algorithm 2 by Theorem 25).
    """

    name = "progress"

    def __init__(self, params: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(params)
        if "threshold" not in self.params:
            raise ConfigurationError("progress monitor needs a threshold")
        self.threshold = float(self.params["threshold"])
        self.exempt_radius = int(self.params.get("exempt_radius", 0))

    def attach(self, simulation) -> None:
        super().attach(simulation)
        self._watchdog = StarvationWatchdog(
            simulation.sim, simulation.metrics, threshold=self.threshold
        )

    def _exempt(self, node: int) -> bool:
        crashed = list(self.simulation.metrics.crashed)
        if not crashed or self.exempt_radius <= 0:
            return False
        topology = self.simulation.topology
        seen = set(crashed)
        frontier = deque((c, 0) for c in crashed)
        while frontier:
            current, distance = frontier.popleft()
            if current == node:
                return True
            if distance >= self.exempt_radius:
                continue
            for peer in topology.neighbors(current):
                if peer not in seen:
                    seen.add(peer)
                    frontier.append((peer, distance + 1))
        return False

    def _judge(self) -> Optional[Dict[str, Any]]:
        for warning in self._watchdog.check_now():
            if not self._exempt(warning.node):
                return {
                    "node": warning.node,
                    "hungry_since": warning.hungry_since,
                    "duration": warning.duration,
                    "threshold": self.threshold,
                }
        return None

    def check(self) -> Optional[Dict[str, Any]]:
        return self._judge()

    def final(self) -> Optional[Dict[str, Any]]:
        return self._judge()


class MonitorSuite:
    """Runs a set of monitors from the engine's post-event listener.

    Stops the simulation at the first violation; ``violation`` then
    pins the monitor, step and time, which replay verifies against.
    """

    def __init__(self, monitors: List[InvariantMonitor]) -> None:
        self.monitors = monitors
        self.violation: Optional[Violation] = None
        self.checks = 0

    def attach(self, simulation) -> None:
        self._simulation = simulation
        for monitor in self.monitors:
            monitor.attach(simulation)
        simulation.sim.add_listener(self._on_event)

    def specs(self) -> List[Dict[str, Any]]:
        return [monitor.spec() for monitor in self.monitors]

    def _record(self, monitor: InvariantMonitor,
                details: Dict[str, Any], engine) -> None:
        self.violation = Violation(
            monitor=monitor.name,
            step=engine.executed_events,
            time=engine.now,
            details=details,
        )

    def _on_event(self, engine) -> None:
        if self.violation is not None:
            return
        for monitor in self.monitors:
            self.checks += 1
            details = monitor.check()
            if details is not None:
                self._record(monitor, details, engine)
                engine.stop()
                return

    def finalize(self) -> None:
        """Run end-of-run checks (liveness monitors)."""
        if self.violation is not None:
            return
        engine = self._simulation.sim
        for monitor in self.monitors:
            self.checks += 1
            details = monitor.final()
            if details is not None:
                self._record(monitor, details, engine)
                return


#: name -> builder(params) for rebuilding monitors from repro-file specs.
MONITOR_BUILDERS = {
    "exclusion": ExclusionMonitor,
    "fork-uniqueness": ForkUniquenessMonitor,
    "doorway-entry": DoorwayEntryMonitor,
    "return-path": ReturnPathMonitor,
    "priority": PriorityMonitor,
    "stale-priority": StalePriorityMonitor,
    "progress": ProgressMonitor,
}


def build_monitors(specs: List[Dict[str, Any]]) -> List[InvariantMonitor]:
    """Instantiate monitors from ``{"name", "params"}`` specs."""
    monitors = []
    for spec in specs:
        name = spec.get("name")
        builder = MONITOR_BUILDERS.get(name)
        if builder is None:
            raise ConfigurationError(f"unknown monitor {name!r}")
        monitors.append(builder(spec.get("params") or {}))
    return monitors


def default_monitor_specs(scenario: Dict[str, Any],
                          until: float) -> List[Dict[str, Any]]:
    """The monitor set a fuzz campaign installs for one scenario.

    Safety monitors always run.  Algorithm-specific monitors follow the
    registry-name prefix; progress follows the paper's failure-locality
    claims — radius-2 exemption for Algorithm 2 under crashes, disabled
    for Algorithm 1 under crashes (its locality is unbounded), plain
    starvation check otherwise.
    """
    algorithm = str(scenario.get("algorithm", ""))
    nu = float(scenario.get("bounds", {}).get("nu", 1.0))
    crashes = scenario.get("crashes") or []
    mobile = "mobility" in scenario
    specs: List[Dict[str, Any]] = [
        {"name": "exclusion", "params": {}},
        {"name": "fork-uniqueness", "params": {}},
    ]
    if algorithm.startswith("alg1"):
        specs.append({"name": "doorway-entry", "params": {}})
        specs.append({"name": "return-path", "params": {}})
    if algorithm.startswith("alg2"):
        # Under mobility the cycle half of the priority check is off:
        # in-flight abdications crossing link formations weave settled
        # (but self-healing) cycles — see PriorityMonitor's docstring.
        priority_params = {} if not mobile else {"cycles": False}
        specs.append({"name": "priority", "params": priority_params})
        if not mobile:
            specs.append(
                {"name": "stale-priority", "params": {"bound": 3.0 * nu}}
            )
    if not crashes:
        specs.append(
            {"name": "progress", "params": {"threshold": 0.6 * until}}
        )
    elif algorithm.startswith("alg2"):
        specs.append(
            {
                "name": "progress",
                "params": {"threshold": 0.6 * until, "exempt_radius": 2},
            }
        )
    return specs
