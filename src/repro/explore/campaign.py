"""Fuzz campaigns: many controlled runs, parallel and cached.

A campaign pairs generated scenarios (:mod:`repro.explore.scenarios`)
with per-run strategy seeds and executes them through
:func:`~repro.explore.runner.run_controlled`, fanning out over the
same ``ProcessPoolExecutor`` pattern the multi-seed harness uses —
tasks are plain JSON dicts, the worker is module-level, and results
are reassembled positionally so ``workers=N`` returns exactly what
serial execution would.

Caching reuses :class:`~repro.harness.cache.ResultCache` (float-only
metric dicts): a *clean* outcome is cached under the SHA-256 of the
canonical task JSON + library version, so re-running a green campaign
is free.  Violating runs are never cached — a violation must always
re-run so its repro file and decision trace are fresh.

DFS campaigns (``strategy="dfs"``) are different in kind: they
systematically enumerate tie-break prefixes of *one* scenario,
expanding the frontier with the branching factors each run observed
(:func:`~repro.explore.schedule.dfs_prefixes`).  They run serially —
each run's prefix depends on earlier runs.
"""

from __future__ import annotations

import hashlib
import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.explore.monitors import default_monitor_specs
from repro.explore.repro_file import ReproFile
from repro.explore.runner import run_controlled
from repro.explore.scenarios import scenario_pool
from repro.explore.schedule import (
    BoundedDFSStrategy,
    build_strategy,
    dfs_prefixes,
)
from repro.harness.cache import ResultCache


def _task_key(task: Dict[str, Any]) -> str:
    """Cache key: canonical task JSON + library version (stale-proof)."""
    from repro._version import __version__

    blob = json.dumps(
        {"task": task, "version": __version__},
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _run_task(task: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one campaign task (module-level: pool workers pickle it).

    Returns a JSON-ready dict: always ``violated``/``steps``/
    ``duration``; violating runs add the full repro-file dict.
    """
    strategy = build_strategy(task["strategy"])
    result = run_controlled(
        task["scenario"], task["until"], strategy,
        monitor_specs=task["monitors"],
    )
    out: Dict[str, Any] = {
        "violated": result.violated,
        "steps": result.steps,
        "duration": result.report.duration,
        "family": task.get("family", "?"),
    }
    if result.violated:
        out["repro"] = result.to_repro().to_dict()
    return out


@dataclass
class CampaignResult:
    """Aggregate outcome of one fuzz campaign."""

    algorithm: str
    strategy: str
    runs: int
    cached_hits: int
    violations: List[ReproFile] = field(default_factory=list)
    #: Per-run summaries, in task order: family, violated, steps.
    outcomes: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations

    def violated_monitors(self) -> List[str]:
        """Distinct monitors that fired, in first-seen order."""
        seen: List[str] = []
        for repro in self.violations:
            monitor = repro.violation.get("monitor")
            if monitor not in seen:
                seen.append(monitor)
        return seen

    def summary(self) -> Dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "strategy": self.strategy,
            "runs": self.runs,
            "cached_hits": self.cached_hits,
            "violations": len(self.violations),
            "violated_monitors": self.violated_monitors(),
        }


def _build_tasks(
    algorithm: str,
    runs: int,
    seed: int,
    strategy: str,
    pct_depth: int,
) -> List[Dict[str, Any]]:
    pool = scenario_pool(algorithm, count=min(runs, 10), seed=seed)
    tasks = []
    for k in range(runs):
        entry = pool[k % len(pool)]
        strategy_seed = seed * 1000 + k
        if strategy == "random":
            descriptor: Dict[str, Any] = {
                "kind": "random", "seed": strategy_seed,
            }
        elif strategy == "pct":
            descriptor = {
                "kind": "pct", "seed": strategy_seed, "depth": pct_depth,
            }
        else:
            raise ConfigurationError(
                f"unknown campaign strategy {strategy!r} "
                "(expected random, pct or dfs)"
            )
        tasks.append(
            {
                "scenario": entry["scenario"],
                "until": entry["until"],
                "family": entry["family"],
                "strategy": descriptor,
                "monitors": default_monitor_specs(
                    entry["scenario"], entry["until"]
                ),
            }
        )
    return tasks


def run_campaign(
    algorithm: str,
    runs: int = 20,
    seed: int = 0,
    strategy: str = "random",
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    pct_depth: int = 3,
    stop_on_first: bool = False,
) -> CampaignResult:
    """Fuzz one algorithm: ``runs`` controlled runs over a scenario pool.

    Args:
        algorithm: registry name (clean algorithms or ablations).
        runs: number of controlled runs.
        seed: campaign seed; scenario pool and per-run strategy seeds
            (``seed * 1000 + k``) derive from it, so a campaign is
            reproducible from ``(algorithm, runs, seed, strategy)``.
        strategy: ``random``, ``pct`` or ``dfs``.
        workers: process fan-out for random/pct (DFS is serial).
        cache: optional :class:`ResultCache`; clean outcomes are
            cached, violations always re-execute.
        stop_on_first: serially stop at the first violation (used by
            the CLI smoke mode; implies no parallelism).
    """
    if strategy == "dfs":
        return run_dfs_campaign(algorithm, max_runs=runs, seed=seed)

    tasks = _build_tasks(algorithm, runs, seed, strategy, pct_depth)

    outcomes: List[Optional[Dict[str, Any]]] = [None] * len(tasks)
    cached_hits = 0
    pending: List[int] = []
    for index, task in enumerate(tasks):
        cached = cache.get(_task_key(task)) if cache is not None else None
        if cached is not None and not cached.get("violated"):
            cached_hits += 1
            outcomes[index] = {
                "violated": False,
                "steps": int(cached.get("steps", 0)),
                "duration": cached.get("duration", 0.0),
                "family": task.get("family", "?"),
                "cached": True,
            }
        else:
            pending.append(index)

    if stop_on_first:
        for index in pending:
            outcome = _run_task(tasks[index])
            outcomes[index] = outcome
            if outcome["violated"]:
                break
    elif workers > 1 and len(pending) > 1:
        with ProcessPoolExecutor(max_workers=workers) as executor:
            futures = [
                (index, executor.submit(_run_task, tasks[index]))
                for index in pending
            ]
            for index, future in futures:
                outcomes[index] = future.result()
    else:
        for index in pending:
            outcomes[index] = _run_task(tasks[index])

    violations: List[ReproFile] = []
    final: List[Dict[str, Any]] = []
    for index, outcome in enumerate(outcomes):
        if outcome is None:  # after stop_on_first
            continue
        repro_dict = outcome.pop("repro", None)
        if repro_dict is not None:
            violations.append(ReproFile.from_dict(repro_dict))
        elif (cache is not None and not outcome.get("cached")
              and not outcome["violated"]):
            cache.put(
                _task_key(tasks[index]),
                {
                    "violated": 0.0,
                    "steps": float(outcome["steps"]),
                    "duration": float(outcome["duration"]),
                },
            )
        final.append(
            {
                "family": outcome.get("family", "?"),
                "violated": outcome["violated"],
                "steps": outcome["steps"],
            }
        )

    return CampaignResult(
        algorithm=algorithm,
        strategy=strategy,
        runs=len(final),
        cached_hits=cached_hits,
        violations=violations,
        outcomes=final,
    )


def run_dfs_campaign(
    algorithm: str,
    max_runs: int = 50,
    seed: int = 0,
    scenario: Optional[Dict[str, Any]] = None,
    until: Optional[float] = None,
) -> CampaignResult:
    """Bounded-DFS enumeration of tie-break orderings for one scenario.

    Explores the prefix tree breadth-first up to ``max_runs`` runs:
    each run follows its prefix then defaults to choice 0, and the
    branching factors it records spawn the sibling prefixes.  Small
    configurations only — the tree is exponential.
    """
    if scenario is None:
        entry = scenario_pool(algorithm, count=1, seed=seed)[0]
        scenario, until = entry["scenario"], entry["until"]
    if until is None:
        raise ConfigurationError("run_dfs_campaign needs until with scenario")
    monitors = default_monitor_specs(scenario, until)

    frontier: List[List[int]] = [[]]
    violations: List[ReproFile] = []
    outcomes: List[Dict[str, Any]] = []
    executed = 0
    while frontier and executed < max_runs:
        prefix = frontier.pop(0)
        strategy = BoundedDFSStrategy(prefix)
        result = run_controlled(scenario, until, strategy,
                                monitor_specs=monitors)
        executed += 1
        outcomes.append(
            {
                "family": "dfs",
                "violated": result.violated,
                "steps": result.steps,
                "prefix": list(prefix),
            }
        )
        if result.violated:
            violations.append(result.to_repro())
            continue
        frontier.extend(dfs_prefixes(prefix, result.branching))

    return CampaignResult(
        algorithm=algorithm,
        strategy="dfs",
        runs=executed,
        cached_hits=0,
        violations=violations,
        outcomes=outcomes,
    )
