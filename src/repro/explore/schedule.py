"""Controlled schedulers: the decision side of adversarial exploration.

The simulator has exactly three nondeterministic choice points, each
surfaced by a hook in the existing planes:

``tie_break(group)``
    Which of several live events sharing ``(time, priority)`` runs
    first (:meth:`repro.sim.engine.Simulator.set_choice_controller`).
    The engine re-consults as the group shrinks, so a controller has
    full permutation authority over every same-instant batch.
``message_delay(src, dst, message)``
    The per-hop delivery latency in ``[min_message_delay, nu]``
    (:attr:`repro.net.channel.Channel.delay_source`).
``crash_time(node_id, base)``
    When a planned crash actually fires
    (:meth:`repro.runtime.failures.CrashInjector.apply_control`).

Every decision is appended to a flat typed :class:`DecisionLog` —
``["t", index]``, ``["d", delay]``, ``["c", time]`` — which is the
replayable trace written into repro files.  Floats survive the JSON
round trip exactly (``repr`` is shortest-round-trip), so a replayed
run is bit-identical to the original.

Strategies:

:class:`RandomStrategy`
    Seeded uniform choices; the workhorse for fuzz campaigns.
:class:`PCTStrategy`
    Probabilistic concurrency testing (Burckhardt et al., ASPLOS
    2010, adapted): random priorities over *actors* with ``depth``
    change points, plus delay quantization so same-instant tie groups
    actually form.  Finds bugs that need one rare ordering held for a
    long window.
:class:`BoundedDFSStrategy`
    Systematic enumeration of tie-break permutations for small
    configurations, driven by :func:`dfs_prefixes`.
:class:`ReplaySchedule`
    Replays a recorded :class:`DecisionLog`, deviating to defaults
    once a queue is exhausted (which shrinking exploits).
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

#: Decision-type tags used in the flat trace.
TIE, DELAY, CRASH = "t", "d", "c"

Decision = List[Any]  # ["t", int] | ["d", float] | ["c", float]


class DecisionLog:
    """Flat, typed, JSON-ready record of every choice a run made."""

    def __init__(self) -> None:
        self.decisions: List[Decision] = []

    def record(self, kind: str, value: Any) -> None:
        self.decisions.append([kind, value])

    def counts(self) -> Dict[str, int]:
        out = {TIE: 0, DELAY: 0, CRASH: 0}
        for kind, _ in self.decisions:
            out[kind] = out.get(kind, 0) + 1
        return out

    def __len__(self) -> int:
        return len(self.decisions)


class ControlledScheduler:
    """Base class: records decisions and enforces the delay bounds.

    Subclasses override ``_tie_break``/``_message_delay``/``_crash_time``;
    the public methods wrap them with recording and clamping so every
    strategy produces a legal, replayable trace.  ``bind`` is called by
    the runner once the scenario's timing parameters are known.
    """

    kind = "base"

    def __init__(self) -> None:
        self.log = DecisionLog()
        self._delay_floor = 0.0
        self._nu = 1.0

    def bind(self, min_message_delay: float, nu: float) -> None:
        self._delay_floor = float(min_message_delay)
        self._nu = float(nu)

    def describe(self) -> Dict[str, Any]:
        """JSON descriptor for repro files; see :func:`build_strategy`."""
        return {"kind": self.kind}

    # -- engine hook ---------------------------------------------------
    def tie_break(self, group: Sequence[Any]) -> int:
        index = self._tie_break(group)
        self.log.record(TIE, index)
        return index

    # -- channel hook --------------------------------------------------
    def message_delay(self, src: int, dst: int, message: Any) -> float:
        delay = self._message_delay(src, dst, message)
        delay = min(max(float(delay), self._delay_floor), self._nu)
        self.log.record(DELAY, delay)
        return delay

    # -- crash hook ----------------------------------------------------
    def crash_time(self, node_id: int, base: float) -> float:
        time = max(0.0, float(self._crash_time(node_id, base)))
        self.log.record(CRASH, time)
        return time

    # -- strategy body -------------------------------------------------
    def _tie_break(self, group: Sequence[Any]) -> int:
        return 0

    def _message_delay(self, src: int, dst: int, message: Any) -> float:
        return self._nu

    def _crash_time(self, node_id: int, base: float) -> float:
        return base


class RandomStrategy(ControlledScheduler):
    """Seeded uniform randomness at every choice point.

    Crash times get a +/-5*nu jitter around the planned time so
    campaigns also explore crash/message interleavings the scenario
    author did not pin down.
    """

    kind = "random"

    def __init__(self, seed: int) -> None:
        super().__init__()
        self.seed = int(seed)
        self._rng = random.Random(self.seed)

    def describe(self) -> Dict[str, Any]:
        return {"kind": self.kind, "seed": self.seed}

    def _tie_break(self, group: Sequence[Any]) -> int:
        return self._rng.randrange(len(group))

    def _message_delay(self, src: int, dst: int, message: Any) -> float:
        span = self._nu - self._delay_floor
        return self._delay_floor + span * self._rng.random()

    def _crash_time(self, node_id: int, base: float) -> float:
        return base + self._rng.uniform(-5.0 * self._nu, 5.0 * self._nu)


class PCTStrategy(ControlledScheduler):
    """Priority-based exploration in the PCT style.

    Each *actor* (callback qualname plus up to two integer arguments,
    which in this codebase identifies a node or directed link) gets a
    lazily assigned random priority; tie groups are won by the
    highest-priority actor.  ``depth - 1`` change points, drawn over
    the expected number of tie decisions, demote the currently
    top-priority actor, which is what lets PCT hold a rare ordering
    exactly long enough to matter.

    Delays are quantized to three levels so messages actually collide
    at the same instant — with continuous delays, tie groups would
    almost never form and the priorities would have nothing to decide.
    """

    kind = "pct"

    def __init__(self, seed: int, depth: int = 3,
                 expected_decisions: int = 500) -> None:
        super().__init__()
        if depth < 1:
            raise ConfigurationError("PCT depth must be >= 1")
        self.seed = int(seed)
        self.depth = int(depth)
        self.expected_decisions = int(expected_decisions)
        self._rng = random.Random(self.seed)
        self._priorities: Dict[Tuple[Any, ...], float] = {}
        self._decision_index = 0
        self._change_points = sorted(
            self._rng.randrange(max(1, self.expected_decisions))
            for _ in range(self.depth - 1)
        )

    def describe(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "seed": self.seed,
            "depth": self.depth,
            "expected_decisions": self.expected_decisions,
        }

    @staticmethod
    def _actor(event: Any) -> Tuple[Any, ...]:
        key: List[Any] = [getattr(event.callback, "__qualname__",
                                  repr(event.callback))]
        for arg in event.args[:2]:
            if isinstance(arg, int):
                key.append(arg)
        return tuple(key)

    def _priority(self, actor: Tuple[Any, ...]) -> float:
        if actor not in self._priorities:
            self._priorities[actor] = self._rng.random()
        return self._priorities[actor]

    def _tie_break(self, group: Sequence[Any]) -> int:
        while (self._change_points
               and self._decision_index >= self._change_points[0]):
            self._change_points.pop(0)
            if self._priorities:
                top = max(self._priorities, key=self._priorities.get)
                self._priorities[top] = -self._rng.random()
        self._decision_index += 1
        best, best_priority = 0, float("-inf")
        for index, event in enumerate(group):
            priority = self._priority(self._actor(event))
            if priority > best_priority:
                best, best_priority = index, priority
        return best

    def _message_delay(self, src: int, dst: int, message: Any) -> float:
        span = self._nu - self._delay_floor
        level = self._rng.randrange(3)
        return self._delay_floor + span * level / 2.0

    def _crash_time(self, node_id: int, base: float) -> float:
        return base + self._rng.uniform(-5.0 * self._nu, 5.0 * self._nu)


class BoundedDFSStrategy(ControlledScheduler):
    """One path of a bounded depth-first enumeration of tie-breaks.

    Delays are pinned to ``nu`` so broadcasts land at the same instant
    and form large tie groups — the branching the DFS enumerates.  The
    strategy follows ``prefix`` for its first ``len(prefix)`` tie
    decisions, takes choice 0 afterwards, and records the branching
    factor it saw at each depth so :func:`dfs_prefixes` can expand the
    frontier.
    """

    kind = "dfs"

    def __init__(self, prefix: Sequence[int] = ()) -> None:
        super().__init__()
        self.prefix = [int(c) for c in prefix]
        self.branching: List[int] = []

    def describe(self) -> Dict[str, Any]:
        return {"kind": self.kind, "prefix": list(self.prefix)}

    def _tie_break(self, group: Sequence[Any]) -> int:
        depth = len(self.branching)
        self.branching.append(len(group))
        if depth < len(self.prefix):
            return min(self.prefix[depth], len(group) - 1)
        return 0


def dfs_prefixes(prefix: Sequence[int],
                 branching: Sequence[int]) -> List[List[int]]:
    """Child prefixes to explore after running ``prefix``.

    ``branching`` is the group-size trace the run recorded.  The
    children extend ``prefix`` by one decision, covering every
    alternative at the first depth past the prefix (choice 0 is what
    the parent run already took).
    """
    depth = len(prefix)
    if depth >= len(branching) or branching[depth] <= 1:
        return []
    return [list(prefix) + [choice]
            for choice in range(1, branching[depth])]


class ReplaySchedule(ControlledScheduler):
    """Replays a recorded decision trace.

    The flat trace is split into three per-type queues, so the replay
    stays aligned even when shrinking removed decisions of one type.
    An exhausted queue falls back to the deterministic defaults
    (tie 0, delay ``nu``, crash at the planned time).
    """

    kind = "replay"

    def __init__(self, decisions: Sequence[Sequence[Any]]) -> None:
        super().__init__()
        self._queues: Dict[str, List[Any]] = {TIE: [], DELAY: [], CRASH: []}
        for kind, value in decisions:
            if kind not in self._queues:
                raise ConfigurationError(
                    f"unknown decision kind {kind!r} in trace")
            self._queues[kind].append(value)
        self._cursor = {TIE: 0, DELAY: 0, CRASH: 0}

    def describe(self) -> Dict[str, Any]:
        return {"kind": self.kind}

    def _next(self, kind: str) -> Optional[Any]:
        queue = self._queues[kind]
        cursor = self._cursor[kind]
        if cursor >= len(queue):
            return None
        self._cursor[kind] = cursor + 1
        return queue[cursor]

    def _tie_break(self, group: Sequence[Any]) -> int:
        value = self._next(TIE)
        if value is None:
            return 0
        return min(int(value), len(group) - 1)

    def _message_delay(self, src: int, dst: int, message: Any) -> float:
        value = self._next(DELAY)
        return self._nu if value is None else float(value)

    def _crash_time(self, node_id: int, base: float) -> float:
        value = self._next(CRASH)
        return base if value is None else float(value)


def build_strategy(descriptor: Dict[str, Any]) -> ControlledScheduler:
    """Rebuild a strategy from its ``describe()`` dict (repro files)."""
    kind = descriptor.get("kind")
    if kind == "random":
        return RandomStrategy(seed=descriptor["seed"])
    if kind == "pct":
        return PCTStrategy(
            seed=descriptor["seed"],
            depth=descriptor.get("depth", 3),
            expected_decisions=descriptor.get("expected_decisions", 500),
        )
    if kind == "dfs":
        return BoundedDFSStrategy(prefix=descriptor.get("prefix", ()))
    if kind == "replay":
        return ReplaySchedule(descriptor.get("decisions", ()))
    raise ConfigurationError(f"unknown strategy kind {kind!r}")
