"""Seeded scenario generation for fuzz campaigns.

Scenarios are plain JSON dicts in the :mod:`repro.harness.config_io`
format — never live objects — so a failing case drops into a repro
file verbatim.  Each *family* stresses one part of the protocol:

``static-line`` / ``static-ring``
    Contended static topologies with staggered scripted hunger — the
    bread-and-butter workload for exclusion, fork-uniqueness,
    doorway-entry (staggered hunger is what exposes ``alg1-nodoorway``:
    a later node crosses while an earlier cross is visible) and
    stale-priority (a permanently-hungry node next to thinkers exposes
    ``alg2-nonotify``).
``crash-line``
    A mid-run crash in a contended line; exercises crash-timing
    choices and the failure-locality progress rules.
``mobility-waypoint``
    Random-waypoint movers over a grid; exercises the link-dynamics
    handlers (Algorithm 3 / Algorithm 7).
``fig6`` (Algorithm 1 family only)
    The paper's Figure 6 situation: a crashed high neighbor plus a
    departing lowest-color neighbor, which is exactly the trigger of
    the SDf return path — the run that exposes ``alg1-noreturn``.

All generation is driven by one :class:`random.Random` seeded from the
campaign seed, so a pool is reproducible from ``(algorithm, count,
seed)`` alone.
"""

from __future__ import annotations

import math
import random
from typing import Any, Dict, List


def _positions_line(n: int) -> List[List[float]]:
    return [[float(i), 0.0] for i in range(n)]


def _positions_ring(n: int) -> List[List[float]]:
    # Adjacent spacing just under the unit radio range, so the ring is
    # a cycle graph (next-nearest chords stay out of range for n >= 5).
    radius = 0.95 / (2.0 * math.sin(math.pi / n))
    return [
        [radius * math.cos(2 * math.pi * i / n),
         radius * math.sin(2 * math.pi * i / n)]
        for i in range(n)
    ]


def _staggered_hunger(n: int, rng: random.Random,
                      until: float) -> Dict[str, List[float]]:
    """Every node repeatedly hungry, phases offset by >= one message bound.

    The offsets stagger doorway crossings instead of synchronizing
    them, which is the access pattern the doorway-entry monitor needs.
    """
    period = 4.0 + rng.random() * 2.0
    return {
        str(node): [
            round(1.0 + node * 1.5 + k * period, 3)
            for k in range(int(until / period))
        ]
        for node in range(n)
    }


def _base(algorithm: str, positions: List[List[float]], seed: int,
          **extra: Any) -> Dict[str, Any]:
    scenario: Dict[str, Any] = {
        "algorithm": algorithm,
        "positions": positions,
        "seed": seed,
        # Telemetry gives campaigns the explore.* probe counters for
        # free; it adds no protocol events.
        "telemetry": True,
    }
    scenario.update(extra)
    return scenario


def _static_line(algorithm: str, rng: random.Random) -> Dict[str, Any]:
    n = rng.randrange(4, 7)
    until = 80.0
    return {
        "family": "static-line",
        "until": until,
        "scenario": _base(
            algorithm, _positions_line(n), seed=rng.randrange(1 << 16),
            scripted_hunger=_staggered_hunger(n, rng, until),
        ),
    }


def _static_ring(algorithm: str, rng: random.Random) -> Dict[str, Any]:
    n = rng.randrange(5, 7)
    until = 80.0
    return {
        "family": "static-ring",
        "until": until,
        "scenario": _base(
            algorithm, _positions_ring(n), seed=rng.randrange(1 << 16),
            scripted_hunger=_staggered_hunger(n, rng, until),
        ),
    }


def _asym_line(algorithm: str, rng: random.Random) -> Dict[str, Any]:
    """Only even nodes ever get hungry; odd nodes think forever.

    A permanently-thinking neighbor can only lose its standing
    priority through the notification protocol — the workload that
    exposes ``alg2-nonotify`` (all-hungry workloads mask it, because
    exit-CS switches resolve priorities anyway).
    """
    n = rng.randrange(4, 6)
    until = 60.0
    period = 5.0 + rng.random() * 2.0
    hunger = {
        str(node): [
            round(1.0 + node * 0.7 + k * period, 3)
            for k in range(int(until / period))
        ]
        for node in range(0, n, 2)
    }
    return {
        "family": "asym-line",
        "until": until,
        "scenario": _base(
            algorithm, _positions_line(n), seed=rng.randrange(1 << 16),
            scripted_hunger=hunger,
        ),
    }


def _crash_line(algorithm: str, rng: random.Random) -> Dict[str, Any]:
    n = rng.randrange(5, 7)
    until = 100.0
    victim = rng.randrange(n)
    return {
        "family": "crash-line",
        "until": until,
        "scenario": _base(
            algorithm, _positions_line(n), seed=rng.randrange(1 << 16),
            scripted_hunger=_staggered_hunger(n, rng, until),
            crashes=[[round(20.0 + rng.random() * 20.0, 3), victim]],
        ),
    }


def _mobility_waypoint(algorithm: str, rng: random.Random) -> Dict[str, Any]:
    n = 6
    until = 100.0
    movers = sorted(rng.sample(range(n), 2))
    return {
        "family": "mobility-waypoint",
        "until": until,
        "scenario": _base(
            algorithm, _positions_line(n), seed=rng.randrange(1 << 16),
            scripted_hunger=_staggered_hunger(n, rng, until),
            mobility={
                "kind": "waypoint",
                "nodes": movers,
                "params": {
                    "width": float(n), "height": 2.0,
                    "speed_range": [0.5, 1.0],
                    "pause_range": [2.0, 6.0],
                },
            },
        ),
    }


def _fig6(algorithm: str, rng: random.Random) -> Dict[str, Any]:
    """Figure 6: crashed p3, lowest-color p2 departs mid-collection.

    A legal coloring with p2 lowest means p1 behind ``SDf`` routinely
    lacks p2's fork when the move severs the 1-2 link — the exact
    trigger of lines 59-60.  The move time varies so different runs
    catch the pipeline in different phases.
    """
    move_at = round(40.0 + rng.random() * 60.0, 3)
    until = move_at + 40.0
    hunger = {
        "3": [1.0],
        "0": [round(t * 4.0 + 25.0, 3) for t in range(int(until / 4.0))],
        "1": [round(t * 4.0 + 25.0, 3) for t in range(int(until / 4.0))],
        "2": [round(t * 4.0 + 25.0, 3) for t in range(int(until / 4.0))],
    }
    return {
        "family": "fig6",
        "until": until,
        "scenario": _base(
            algorithm, _positions_line(4), seed=rng.randrange(1 << 16),
            initial_colors={"0": 2, "1": 1, "2": 0, "3": 3},
            scripted_hunger=hunger,
            crashes=[[20.0, 3]],
            mobility={
                "kind": "scripted",
                "nodes": [2],
                "params": {"moves": [[move_at, 2.0, 10.0, 0.0]]},
            },
        ),
    }


#: family name -> generator; order fixes the round-robin in a pool.
_FAMILIES = {
    "static-line": _static_line,
    "asym-line": _asym_line,
    "static-ring": _static_ring,
    "crash-line": _crash_line,
    "mobility-waypoint": _mobility_waypoint,
    "fig6": _fig6,
}


def build_scenario(family: str, algorithm: str,
                   seed: int = 0) -> Dict[str, Any]:
    """Generate one named-family scenario deterministically.

    The entry point the live runtime uses to pick up the exact same
    scenario shapes the fuzz campaigns run, so a live execution and its
    in-sim replay start from one JSON description.  Returns the same
    ``{"family", "until", "scenario"}`` rows as :func:`scenario_pool`.
    """
    try:
        generator = _FAMILIES[family]
    except KeyError:
        raise KeyError(
            f"unknown scenario family {family!r}; "
            f"available: {sorted(_FAMILIES)}"
        ) from None
    return generator(algorithm, random.Random(seed))


def scenario_pool(algorithm: str, count: int,
                  seed: int = 0) -> List[Dict[str, Any]]:
    """Generate ``count`` scenarios for one algorithm, round-robin over
    the applicable families.

    Returns ``[{"family", "until", "scenario"}, ...]``; every
    ``scenario`` value is a :func:`config_from_dict`-ready JSON dict.
    """
    rng = random.Random(seed)
    families = [
        name for name, _ in _FAMILIES.items()
        if name != "fig6" or algorithm.startswith("alg1")
    ]
    pool = []
    for k in range(count):
        family = families[k % len(families)]
        pool.append(_FAMILIES[family](algorithm, rng))
    return pool
