"""Controlled-run execution: one scenario under one strategy.

:func:`run_controlled` builds a simulation from a scenario dict, wires
a :class:`~repro.explore.schedule.ControlledScheduler` into all three
choice points (engine tie-breaks, channel delays, crash timing),
attaches a :class:`~repro.explore.monitors.MonitorSuite`, runs, and
returns an :class:`ExplorationResult` whose
:class:`~repro.obs.report.RunReport` carries an ``exploration``
section and ``explore.*`` probe counters.

Controlled runs force two existing equivalence modes:

* ``channel_per_message=True`` — the fast path's run-ahead delivery
  drain bypasses engine events, which would blind the tie-break
  controller to message arrivals; the per-message path is bit-identical
  and keeps every delivery a schedulable (and thus controllable) event.
* ``mobility_fixed_step=True`` — same reasoning for movement: discrete
  step events instead of kinetic run-ahead.

``strict_safety`` is turned *off*: the monitors are the oracle here,
and a violation must be recorded (step, time, details) rather than
raised mid-event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.explore.monitors import (
    MonitorSuite,
    Violation,
    build_monitors,
    default_monitor_specs,
)
from repro.explore.repro_file import ReproFile
from repro.explore.schedule import ControlledScheduler, ReplaySchedule
from repro.obs.report import RunReport

#: Decision-kind tag -> probe-counter key.
_DECISION_KEYS = {"t": "tie", "d": "delay", "c": "crash"}


@dataclass
class ExplorationResult:
    """Everything one controlled run produced."""

    scenario: Dict[str, Any]
    until: float
    strategy: Dict[str, Any]
    monitor_specs: List[Dict[str, Any]]
    decisions: List[List[Any]]
    violation: Optional[Violation]
    report: RunReport
    steps: int
    #: Tie-group sizes by decision depth (BoundedDFSStrategy only).
    branching: List[int] = field(default_factory=list)

    @property
    def violated(self) -> bool:
        return self.violation is not None

    def to_repro(self) -> ReproFile:
        """Package this (violating) run as a replayable repro file."""
        if self.violation is None:
            raise ConfigurationError(
                "only violating runs can become repro files"
            )
        return ReproFile(
            scenario=self.scenario,
            until=self.until,
            strategy=self.strategy,
            monitors=self.monitor_specs,
            decisions=self.decisions,
            violation=self.violation.to_dict(),
        )


def run_controlled(
    scenario: Dict[str, Any],
    until: float,
    strategy: ControlledScheduler,
    monitor_specs: Optional[List[Dict[str, Any]]] = None,
    on_simulation=None,
) -> ExplorationResult:
    """Run one scenario dict under a controlled scheduler and monitors.

    ``monitor_specs`` defaults to
    :func:`~repro.explore.monitors.default_monitor_specs` for the
    scenario.  The strategy must be fresh (strategies are stateful
    one-run objects).  ``on_simulation``, when given, is called with the
    fully wired :class:`~repro.runtime.simulation.Simulation` before the
    run starts — the hook live-run verification uses to read the trace
    log afterwards.
    """
    # Local import: config_io imports runtime.simulation, which several
    # explore modules sit below in test fakes.
    from repro.harness.config_io import config_from_dict

    if strategy.log.decisions:
        raise ConfigurationError(
            "strategy has already recorded decisions; "
            "use a fresh instance per run"
        )
    if monitor_specs is None:
        monitor_specs = default_monitor_specs(scenario, until)

    config = config_from_dict(scenario)
    # See module docstring: keep every choice an engine event, record
    # violations instead of raising.
    config.channel_per_message = True
    config.mobility_fixed_step = True
    config.strict_safety = False

    strategy.bind(config.bounds.min_message_delay, config.bounds.nu)

    # Local import mirrors the public API layering (repro -> explore).
    from repro.runtime.simulation import Simulation

    simulation = Simulation(config)
    simulation.sim.set_choice_controller(strategy)
    simulation.channel.delay_source = strategy.message_delay
    simulation.failures.apply_control(strategy)

    suite = MonitorSuite(build_monitors(monitor_specs))
    suite.attach(simulation)

    if on_simulation is not None:
        on_simulation(simulation)

    result = simulation.run(until=until)
    suite.finalize()

    registry = simulation.registry
    if registry is not None:
        decisions = registry.counter(
            "explore.decisions", "controlled choice-point decisions by kind"
        )
        for kind, count in strategy.log.counts().items():
            if count:
                decisions.inc(count, key=_DECISION_KEYS[kind])
        registry.counter(
            "explore.monitor_checks", "invariant-monitor checks executed"
        ).inc(suite.checks)
        if suite.violation is not None:
            registry.counter(
                "explore.violations", "invariant violations by monitor"
            ).inc(1, key=suite.violation.monitor)
        # Re-snapshot so the explore.* counters appear in the report.
        result.probes = registry.snapshot()

    report = result.report()
    report.exploration = {
        "strategy": strategy.describe(),
        "decisions": {
            _DECISION_KEYS[kind]: count
            for kind, count in sorted(strategy.log.counts().items())
            if count
        },
        "monitor_checks": suite.checks,
        "monitors": [spec["name"] for spec in monitor_specs],
        "violation": (
            suite.violation.to_dict() if suite.violation is not None else None
        ),
    }

    return ExplorationResult(
        scenario=scenario,
        until=until,
        strategy=strategy.describe(),
        monitor_specs=monitor_specs,
        decisions=list(strategy.log.decisions),
        violation=suite.violation,
        report=report,
        steps=simulation.sim.executed_events,
        branching=list(getattr(strategy, "branching", [])),
    )


def replay(repro: ReproFile) -> ExplorationResult:
    """Re-run a repro file; the recorded violation must reappear.

    Raises :class:`ConfigurationError` when the replay diverges (no
    violation, or a different monitor fired) — that means the repro
    file no longer matches the code under test.
    """
    schedule = ReplaySchedule(repro.decisions)
    result = run_controlled(
        repro.scenario, repro.until, schedule, monitor_specs=repro.monitors
    )
    expected = repro.violation
    if result.violation is None:
        raise ConfigurationError(
            "replay diverged: recorded violation of "
            f"{expected.get('monitor')!r} did not reproduce"
        )
    if result.violation.monitor != expected.get("monitor"):
        raise ConfigurationError(
            "replay diverged: expected a violation of "
            f"{expected.get('monitor')!r} but {result.violation.monitor!r} "
            "fired"
        )
    return result


def check_repro(repro: ReproFile,
                monitor: Optional[str] = None) -> Optional[ExplorationResult]:
    """Non-raising replay predicate for the shrinker.

    Returns the result when the run violates ``monitor`` (default: the
    repro's recorded monitor), else None.
    """
    target = monitor or repro.violation.get("monitor")
    schedule = ReplaySchedule(repro.decisions)
    result = run_controlled(
        repro.scenario, repro.until, schedule, monitor_specs=repro.monitors
    )
    if result.violation is not None and result.violation.monitor == target:
        return result
    return None
