"""Replayable repro files.

A repro file is the complete, self-contained description of one
violating run: the scenario (JSON dict), the horizon, the strategy
that found it, the monitors that judged it, the full decision trace,
and the violation itself.  Replaying it re-makes every recorded
decision (:class:`~repro.explore.schedule.ReplaySchedule`), so the
engine executes the identical event sequence and the violation
reappears at the same step — bit-identically, which the replay test
asserts on the serialized :class:`~repro.obs.report.RunReport`.

The file is schema-versioned independently of the run-report schema;
loaders reject other versions rather than misread them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro._version import __version__
from repro.errors import ConfigurationError

#: Bump on any breaking change to the repro-file layout.
REPRO_SCHEMA_VERSION = 1


@dataclass
class ReproFile:
    """One violating run, ready to replay."""

    scenario: Dict[str, Any]
    until: float
    strategy: Dict[str, Any]
    monitors: List[Dict[str, Any]]
    decisions: List[List[Any]]
    violation: Dict[str, Any]
    schema_version: int = REPRO_SCHEMA_VERSION
    #: Library version that wrote the file (informational; the schema
    #: version gates compatibility).
    version: str = __version__
    #: Optional shrink provenance: decision/scenario sizes before
    #: minimization, filled in by :func:`repro.explore.shrink.shrink_repro`.
    shrunk_from: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "schema_version": self.schema_version,
            "version": self.version,
            "scenario": self.scenario,
            "until": self.until,
            "strategy": self.strategy,
            "monitors": self.monitors,
            "decisions": self.decisions,
            "violation": self.violation,
        }
        if self.shrunk_from is not None:
            data["shrunk_from"] = self.shrunk_from
        return data

    def to_json(self) -> str:
        """Canonical JSON (sorted keys), bit-stable across dumps."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ReproFile":
        schema = data.get("schema_version")
        if schema != REPRO_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported repro-file schema version {schema!r} "
                f"(this library reads version {REPRO_SCHEMA_VERSION})"
            )
        for key in ("scenario", "until", "strategy", "monitors",
                    "decisions", "violation"):
            if key not in data:
                raise ConfigurationError(f"repro file missing {key!r}")
        return cls(
            scenario=data["scenario"],
            until=float(data["until"]),
            strategy=data["strategy"],
            monitors=data["monitors"],
            decisions=[list(d) for d in data["decisions"]],
            violation=data["violation"],
            version=data.get("version", __version__),
            shrunk_from=data.get("shrunk_from"),
        )

    @classmethod
    def from_json(cls, text: str) -> "ReproFile":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"bad repro-file JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ConfigurationError("repro file must be a JSON object")
        return cls.from_dict(data)

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ReproFile":
        return cls.from_json(Path(path).read_text())

    # ------------------------------------------------------------------
    def size(self) -> int:
        """Shrink metric: decisions + scripted-hunger entries + crashes
        + the horizon in whole time units.  Monotone under every shrink
        move, which the shrink tests assert."""
        hunger = self.scenario.get("scripted_hunger") or {}
        return (
            len(self.decisions)
            + sum(len(times) for times in hunger.values())
            + len(self.scenario.get("crashes") or [])
            + int(self.until)
        )
