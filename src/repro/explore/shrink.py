"""Delta-debugging of violating runs.

:func:`shrink_repro` minimizes a repro file while preserving *which*
monitor fires: it truncates the horizon to just past the violation,
then ddmin-reduces the crash plan, the scripted-hunger entries and the
decision trace (a removed decision replays as its deterministic
default, so partial traces stay valid).  Every candidate is validated
by an actual replay — a shrink step is kept only if the same monitor
still fires — and the kept repro's recorded violation is refreshed, so
the output replays green through :func:`repro.explore.runner.replay`.

The :meth:`~repro.explore.repro_file.ReproFile.size` metric (decisions
+ hunger entries + crashes + horizon) decreases monotonically across
accepted steps; the shrink tests assert this.
"""

from __future__ import annotations

import copy
import math
from typing import Any, Callable, List, Tuple

from repro.explore.repro_file import ReproFile
from repro.explore.runner import check_repro

#: Horizon margin kept past the violation time when truncating.
_UNTIL_MARGIN = 2.0


def _ddmin(items: List[Any],
           test: Callable[[List[Any]], bool]) -> List[Any]:
    """Greedy ddmin: remove ever-smaller chunks while ``test`` passes."""
    items = list(items)
    if not items:
        return items
    chunk = max(1, len(items) // 2)
    while True:
        removed = False
        index = 0
        while index < len(items):
            candidate = items[:index] + items[index + chunk:]
            if len(candidate) < len(items) and test(candidate):
                items = candidate
                removed = True
            else:
                index += chunk
        if chunk == 1:
            if not removed:
                return items
        else:
            chunk = max(1, chunk // 2)


def _clone(repro: ReproFile) -> ReproFile:
    return ReproFile.from_dict(copy.deepcopy(repro.to_dict()))


def shrink_repro(repro: ReproFile,
                 max_replays: int = 300) -> Tuple[ReproFile, int]:
    """Minimize a repro file; returns ``(shrunk, replays_used)``.

    ``max_replays`` bounds the number of candidate replays; when the
    budget runs out, the best repro found so far is returned (still
    guaranteed to fail its monitor — every kept candidate was
    validated).
    """
    target = repro.violation.get("monitor")
    best = _clone(repro)
    original = {
        "size": repro.size(),
        "decisions": len(repro.decisions),
        "until": repro.until,
    }
    replays = 0

    def try_candidate(candidate: ReproFile) -> bool:
        nonlocal replays, best
        if replays >= max_replays:
            return False
        replays += 1
        result = check_repro(candidate, monitor=target)
        if result is None:
            return False
        candidate.violation = result.violation.to_dict()
        best = candidate
        return True

    # --- 1. horizon: cut to just past the violation --------------------
    violation_time = float(best.violation.get("time", best.until))
    truncated = math.ceil(violation_time + _UNTIL_MARGIN)
    if truncated < best.until:
        candidate = _clone(best)
        candidate.until = float(truncated)
        try_candidate(candidate)

    # --- 2. crash plan --------------------------------------------------
    crashes = best.scenario.get("crashes") or []
    if crashes:
        def test_crashes(kept: List[Any]) -> bool:
            candidate = _clone(best)
            candidate.scenario["crashes"] = [list(c) for c in kept]
            return try_candidate(candidate)

        _ddmin(list(crashes), test_crashes)

    # --- 3. scripted hunger ---------------------------------------------
    hunger = best.scenario.get("scripted_hunger") or {}
    entries = [
        (node, time)
        for node, times in sorted(hunger.items())
        for time in times
    ]
    if entries:
        def test_hunger(kept: List[Any]) -> bool:
            rebuilt: dict = {}
            for node, time in kept:
                rebuilt.setdefault(node, []).append(time)
            candidate = _clone(best)
            candidate.scenario["scripted_hunger"] = rebuilt
            return try_candidate(candidate)

        _ddmin(entries, test_hunger)

    # --- 4. decision trace ----------------------------------------------
    if best.decisions:
        def test_decisions(kept: List[Any]) -> bool:
            candidate = _clone(best)
            candidate.decisions = [list(d) for d in kept]
            return try_candidate(candidate)

        _ddmin(list(best.decisions), test_decisions)

    if best.size() < original["size"]:
        best.shrunk_from = original
    return best, replays
