"""The package version, in one place.

Import-free so any module (including :mod:`repro.obs.report`, which
sits below :mod:`repro` in the import graph) can embed the version
without cycles.  ``pyproject.toml`` reads it via setuptools' dynamic
``attr:`` mechanism; :mod:`repro` re-exports it as
``repro.__version__``.
"""

__version__ = "1.4.0"
