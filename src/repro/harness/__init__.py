"""Experiment harness: canonical runners for every table and figure.

Each experiment function returns ``(headers, rows)`` suitable for
:func:`repro.analysis.tables.render_table`; the benchmarks print them
at paper scale and the test suite asserts their qualitative shape at
reduced scale.  EXPERIMENTS.md records the expected outcomes.
"""

from repro.harness.experiments import (
    compare_algorithms,
    crash_probe,
    doorway_latency,
    fig6_crash_scenario,
    pipeline_breakdown,
    response_vs_n,
    run_static,
)

__all__ = [
    "compare_algorithms",
    "crash_probe",
    "doorway_latency",
    "fig6_crash_scenario",
    "pipeline_breakdown",
    "response_vs_n",
    "run_static",
]
