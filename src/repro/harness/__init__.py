"""Experiment harness: canonical runners for every table and figure.

Each experiment function returns ``(headers, rows)`` suitable for
:func:`repro.analysis.tables.render_table`; the benchmarks print them
at paper scale and the test suite asserts their qualitative shape at
reduced scale.  EXPERIMENTS.md records the expected outcomes.

Multi-seed replication (:func:`replicate`), parameter sweeps
(:func:`sweep`) and the on-disk result cache (:class:`ResultCache`)
live here too — see ``docs/performance.md``.
"""

from repro.harness.cache import ResultCache, default_cache_dir, scenario_key
from repro.harness.experiments import (
    compare_algorithms,
    crash_probe,
    doorway_latency,
    fig6_crash_scenario,
    pipeline_breakdown,
    response_vs_n,
    run_static,
)
from repro.harness.multiseed import (
    DEFAULT_METRICS,
    Estimate,
    SweepPoint,
    estimate,
    replicate,
    sweep,
)

__all__ = [
    "DEFAULT_METRICS",
    "Estimate",
    "ResultCache",
    "SweepPoint",
    "compare_algorithms",
    "crash_probe",
    "default_cache_dir",
    "doorway_latency",
    "estimate",
    "fig6_crash_scenario",
    "pipeline_breakdown",
    "replicate",
    "response_vs_n",
    "run_static",
    "scenario_key",
    "sweep",
]
