"""ScenarioConfig serialization (JSON-friendly dicts).

Lets experiment definitions live in files and travel between the CLI,
notebooks and the benchmark harness.  Only declarative scenarios
round-trip: configs carrying callables (custom algorithm entries or
mobility factories) serialize their *declarative* part and re-attach
behavior by name.
"""

from __future__ import annotations

import json
from typing import Any, Dict, TextIO

from repro.errors import ConfigurationError
from repro.mobility import GaussMarkov, RandomWalk, RandomWaypoint
from repro.mobility.trace import ScriptedMobility, ScriptedMove
from repro.net.geometry import Point
from repro.runtime.simulation import ScenarioConfig
from repro.sim.clock import TimeBounds

#: Declarative mobility specs: name -> factory(params) -> model-builder.
_MOBILITY_KINDS = {
    # Exact, repeatable movement: {"moves": [[time, x, y, speed], ...]}.
    # Serializable (unlike a hand-built mobility_factory), which is what
    # lets exploration repro files carry Figure 6-style scenarios.
    "scripted": lambda p: ScriptedMobility(
        [ScriptedMove(float(t), Point(float(x), float(y)), float(s))
         for t, x, y, s in p["moves"]]
    ),
    "waypoint": lambda p: RandomWaypoint(
        p["width"], p["height"],
        speed_range=tuple(p.get("speed_range", (0.5, 1.5))),
        pause_range=tuple(p.get("pause_range", (1.0, 5.0))),
    ),
    "walk": lambda p: RandomWalk(
        p["width"], p["height"],
        hop_range=tuple(p.get("hop_range", (0.5, 1.5))),
        speed=p.get("speed", 1.0),
        pause_range=tuple(p.get("pause_range", (1.0, 5.0))),
    ),
    "gauss-markov": lambda p: GaussMarkov(
        p["width"], p["height"],
        mean_speed=p.get("mean_speed", 1.0),
        alpha=p.get("alpha", 0.75),
    ),
}


def config_to_dict(config: ScenarioConfig) -> Dict[str, Any]:
    """Serialize the declarative part of a scenario."""
    if callable(config.algorithm):
        raise ConfigurationError(
            "configs with callable algorithm entries do not serialize"
        )
    data: Dict[str, Any] = {
        "positions": [[p.x, p.y] for p in config.positions],
        "radio_range": config.radio_range,
        "algorithm": config.algorithm,
        "seed": config.seed,
        "bounds": {
            "nu": config.bounds.nu,
            "tau": config.bounds.tau,
            "min_delay_fraction": config.bounds.min_delay_fraction,
        },
        "think_range": list(config.think_range),
        "initial_delay_range": list(config.initial_delay_range),
        "max_entries": config.max_entries,
        "mobility_step": config.mobility_step,
        # Unlike channel_per_message, pooling, and scheduler (whose
        # alternate paths are bit-identical, so omitting them can never
        # replay a wrong cached result), the mobility execution mode
        # changes event timings — it must be part of the serialized
        # config and thus of every cache key.
        "mobility_fixed_step": config.mobility_fixed_step,
        "crashes": [[t, n] for t, n in config.crashes],
        "trace": config.trace,
        "strict_safety": config.strict_safety,
        "delta_override": config.delta_override,
        "telemetry": config.telemetry,
        "profile": config.profile,
        "watchdog": config.watchdog,
        "watchdog_period": config.watchdog_period,
    }
    if config.scripted_hunger is not None:
        data["scripted_hunger"] = {
            str(node): list(times)
            for node, times in config.scripted_hunger.items()
        }
    if config.scripted_eating is not None:
        data["scripted_eating"] = {
            str(node): list(durations)
            for node, durations in config.scripted_eating.items()
        }
    if config.link_script is not None:
        data["link_script"] = [
            [float(t), str(op), int(a), int(b), int(mover)]
            for t, op, a, b, mover in config.link_script
        ]
    if config.initial_colors is not None:
        data["initial_colors"] = {
            str(node): color for node, color in config.initial_colors.items()
        }
    return data


def config_from_dict(data: Dict[str, Any]) -> ScenarioConfig:
    """Rebuild a scenario from its serialized form.

    A ``mobility`` block of the form
    ``{"kind": "waypoint", "nodes": [0, 3], "params": {...}}`` attaches
    the named model to the listed nodes.
    """
    try:
        positions = [Point(float(x), float(y)) for x, y in data["positions"]]
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"bad positions in config: {exc}") from exc
    bounds_data = data.get("bounds", {})
    mobility_factory = None
    mobility = data.get("mobility")
    if mobility is not None:
        kind = mobility.get("kind")
        builder = _MOBILITY_KINDS.get(kind)
        if builder is None:
            raise ConfigurationError(
                f"unknown mobility kind {kind!r}; "
                f"available: {sorted(_MOBILITY_KINDS)}"
            )
        nodes = set(mobility.get("nodes", []))
        params = mobility.get("params", {})

        def mobility_factory(node_id, _nodes=nodes, _builder=builder,
                             _params=params):
            return _builder(_params) if node_id in _nodes else None

    scripted = data.get("scripted_hunger")
    scripted_eating = data.get("scripted_eating")
    link_script = data.get("link_script")
    initial_colors = data.get("initial_colors")
    return ScenarioConfig(
        positions=positions,
        radio_range=data.get("radio_range", 1.0),
        algorithm=data.get("algorithm", "alg2"),
        seed=data.get("seed", 0),
        bounds=TimeBounds(
            nu=bounds_data.get("nu", 1.0),
            tau=bounds_data.get("tau", 1.0),
            min_delay_fraction=bounds_data.get("min_delay_fraction", 0.5),
        ),
        think_range=tuple(data.get("think_range", (1.0, 5.0))),
        initial_delay_range=tuple(data.get("initial_delay_range", (0.0, 1.0))),
        max_entries=data.get("max_entries"),
        scripted_hunger=(
            {int(node): list(times) for node, times in scripted.items()}
            if scripted is not None
            else None
        ),
        scripted_eating=(
            {
                int(node): [float(d) for d in durations]
                for node, durations in scripted_eating.items()
            }
            if scripted_eating is not None
            else None
        ),
        link_script=(
            [[float(t), str(op), int(a), int(b), int(mover)]
             for t, op, a, b, mover in link_script]
            if link_script is not None
            else None
        ),
        mobility_factory=mobility_factory,
        mobility_step=data.get("mobility_step", 0.25),
        mobility_fixed_step=data.get("mobility_fixed_step", False),
        crashes=[(float(t), int(n)) for t, n in data.get("crashes", [])],
        trace=data.get("trace", False),
        strict_safety=data.get("strict_safety", True),
        initial_colors=(
            {int(node): int(color) for node, color in initial_colors.items()}
            if initial_colors is not None
            else None
        ),
        delta_override=data.get("delta_override"),
        telemetry=data.get("telemetry", False),
        profile=data.get("profile", False),
        watchdog=data.get("watchdog"),
        watchdog_period=data.get("watchdog_period", 5.0),
    )


def save_config(config: ScenarioConfig, stream: TextIO) -> None:
    """Write a scenario as JSON."""
    json.dump(config_to_dict(config), stream, indent=2, sort_keys=True)
    stream.write("\n")


def load_config(stream: TextIO) -> ScenarioConfig:
    """Read a scenario from JSON."""
    return config_from_dict(json.load(stream))
