"""On-disk result cache for scenario runs.

Sweeps and benchmark suites re-run the same (scenario, until, seed)
triples constantly — across pytest invocations, across notebook
restarts, across CI retries.  Each completed run's scalar metrics are
tiny, so caching them by a stable key makes re-running a suite skip
straight to the aggregation step.

Key scheme
----------

``scenario_key`` hashes the *declarative serialization* of the scenario
(:func:`repro.harness.config_io.config_to_dict`), the run horizon, the
seed and the library version with SHA-256.  Consequences:

* any change to any ``ScenarioConfig`` field changes the key — stale
  hits are impossible;
* bumping ``repro.__version__`` invalidates everything, so simulator
  behavior changes never leak cached results from an older code base;
* scenarios that cannot be serialized declaratively (callable
  ``algorithm`` entries, attached ``mobility_factory``) return ``None``
  and are simply never cached.

Entries live one-JSON-file-per-key under ``$REPRO_CACHE_DIR`` (default
``~/.cache/repro``).  A corrupted or truncated file is treated as a
miss and overwritten on the next run — the cache can only ever cost a
recomputation, never a crash or a wrong number.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Union

from repro import __version__
from repro.errors import ConfigurationError
from repro.harness.config_io import config_to_dict
from repro.runtime.simulation import ScenarioConfig

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def scenario_key(
    config: ScenarioConfig,
    until: float,
    seed: int,
    shards: int = 1,
    max_speed: Optional[float] = None,
) -> Optional[str]:
    """Stable cache key for one seeded run, or None if uncacheable.

    Uncacheable means the scenario carries behavior that does not
    serialize declaratively (a callable algorithm entry or a mobility
    factory), so no textual key can prove two runs equivalent.

    ``shards``/``max_speed`` name the execution engine: a multi-shard
    run is deterministic per (scenario, shard count, speed bound) but
    not event-order identical to the unsharded run, so the engine shape
    is part of the key and sharded results never alias classic ones.
    """
    if config.mobility_factory is not None:
        return None
    try:
        payload = config_to_dict(dataclasses.replace(config, seed=seed))
    except ConfigurationError:
        return None
    blob = json.dumps(
        {
            "config": payload,
            "until": until,
            "version": __version__,
            "shards": shards,
            "max_speed": max_speed,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Per-seed metric store, one JSON file per scenario key."""

    def __init__(self, directory: Union[str, Path, None] = None) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: Optional[str]) -> Optional[Dict[str, float]]:
        """Cached metric dict for ``key``, or None on miss.

        Any unreadable, corrupted or wrongly-shaped file counts as a
        miss; the caller re-runs and overwrites it.
        """
        if key is None:
            return None
        try:
            with open(self.path_for(key), "r", encoding="utf-8") as fh:
                data = json.load(fh)
            metrics = data["metrics"]
            result = {str(name): float(value) for name, value in metrics.items()}
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: Optional[str], metrics: Dict[str, float]) -> None:
        """Store (or extend) the metric dict for ``key``.

        Written atomically (temp file + rename) so a crashed run leaves
        either the old entry or the new one, never a torn file.
        """
        if key is None:
            return
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            payload = json.dumps(
                {"version": __version__, "metrics": metrics}, sort_keys=True
            )
            fd, tmp = tempfile.mkstemp(
                dir=str(self.directory), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    fh.write(payload)
                os.replace(tmp, self.path_for(key))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            # A read-only or full cache directory must never kill a run.
            pass

    def clear(self) -> int:
        """Delete all entries; returns the number removed."""
        removed = 0
        if not self.directory.is_dir():
            return removed
        for path in self.directory.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


def resolve_cache(
    cache: Union[bool, str, Path, ResultCache, None]
) -> Optional[ResultCache]:
    """Normalize the ``cache=`` argument accepted by the harness.

    ``None``/``False`` → caching off; ``True`` → default directory;
    a path → that directory; a :class:`ResultCache` → itself.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return ResultCache()
    if isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)
