"""Multi-seed experiment replication with confidence intervals.

One seed is an anecdote.  The replication helpers here re-run a
scenario across seeds and aggregate per-seed scalar metrics into a
mean with a Student-t confidence interval, which the benchmark suite
uses for its headline comparisons and which downstream users get for
free when evaluating their own configurations.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.runtime.simulation import ScenarioConfig, Simulation, SimulationResult

#: Two-sided 95% Student-t critical values by degrees of freedom (1..30);
#: falls back to the normal 1.96 beyond the table.
_T_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
    7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179,
    13: 2.160, 14: 2.145, 15: 2.131, 16: 2.120, 17: 2.110, 18: 2.101,
    19: 2.093, 20: 2.086, 25: 2.060, 30: 2.042,
}


def t_critical_95(dof: int) -> float:
    """Two-sided 95% t critical value."""
    if dof <= 0:
        raise ValueError("degrees of freedom must be positive")
    if dof in _T_95:
        return _T_95[dof]
    for key in sorted(_T_95):
        if dof < key:
            return _T_95[key]
    return 1.96


@dataclass(frozen=True)
class Estimate:
    """A mean with a symmetric 95% confidence half-width."""

    mean: float
    half_width: float
    samples: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def overlaps(self, other: "Estimate") -> bool:
        """True when the two intervals intersect."""
        return self.low <= other.high and other.low <= self.high

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.half_width:.3f} (n={self.samples})"


def estimate(values: Sequence[float]) -> Estimate:
    """95% CI estimate of a scalar's mean across replications."""
    data = list(values)
    if not data:
        raise ValueError("estimate of empty sample")
    n = len(data)
    mean = sum(data) / n
    if n == 1:
        return Estimate(mean, float("inf"), 1)
    variance = sum((v - mean) ** 2 for v in data) / (n - 1)
    half = t_critical_95(n - 1) * math.sqrt(variance / n)
    return Estimate(mean, half, n)


MetricFn = Callable[[SimulationResult], float]


def replicate(
    config: ScenarioConfig,
    until: float,
    seeds: Sequence[int],
    metrics: Dict[str, MetricFn],
) -> Dict[str, Estimate]:
    """Run a scenario under each seed; estimate each scalar metric.

    The scenario is rebuilt per seed (``dataclasses.replace``), so all
    stochastic inputs — workload, message jitter, mobility — re-draw.
    """
    samples: Dict[str, List[float]] = {name: [] for name in metrics}
    for seed in seeds:
        seeded = dataclasses.replace(config, seed=seed)
        result = Simulation(seeded).run(until=until)
        for name, fn in metrics.items():
            samples[name].append(fn(result))
    return {name: estimate(values) for name, values in samples.items()}


# Ready-made metric extractors ------------------------------------------------


def mean_response(result: SimulationResult) -> float:
    times = result.response_times
    return sum(times) / len(times) if times else float("nan")


def max_response(result: SimulationResult) -> float:
    times = result.response_times
    return max(times) if times else float("nan")


def throughput(result: SimulationResult) -> float:
    return result.cs_entries / result.duration if result.duration else 0.0


def message_cost(result: SimulationResult) -> float:
    per_cs = result.messages_per_cs()
    return per_cs if per_cs is not None else float("nan")


DEFAULT_METRICS: Dict[str, MetricFn] = {
    "mean_response": mean_response,
    "max_response": max_response,
    "throughput": throughput,
    "messages_per_cs": message_cost,
}
