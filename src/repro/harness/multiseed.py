"""Multi-seed experiment replication with confidence intervals.

One seed is an anecdote.  The replication helpers here re-run a
scenario across seeds and aggregate per-seed scalar metrics into a
mean with a Student-t confidence interval, which the benchmark suite
uses for its headline comparisons and which downstream users get for
free when evaluating their own configurations.

Scaling notes
-------------

Seeded runs are embarrassingly parallel and bit-deterministic, so
:func:`replicate` and :func:`sweep` accept ``workers=N`` (a
``ProcessPoolExecutor`` fan-out) and ``cache=`` (the on-disk store from
:mod:`repro.harness.cache`).  Results are keyed by seed and assembled
in input order, so the parallel path returns *exactly* the numbers the
serial path would — scheduling order never leaks into the estimates —
and cached seeds are skipped entirely on re-runs.

With ``workers > 1`` the scenario config and every metric function
cross a process boundary and must be picklable (the module-level
extractors in :data:`DEFAULT_METRICS` are; ad-hoc lambdas are not).
"""

from __future__ import annotations

import dataclasses
import itertools
import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.harness.cache import ResultCache, resolve_cache, scenario_key
from repro.runtime.simulation import ScenarioConfig, Simulation, SimulationResult

#: Two-sided 95% Student-t critical values by degrees of freedom (1..30);
#: falls back to the normal 1.96 beyond the table.
_T_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
    7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179,
    13: 2.160, 14: 2.145, 15: 2.131, 16: 2.120, 17: 2.110, 18: 2.101,
    19: 2.093, 20: 2.086, 25: 2.060, 30: 2.042,
}


def t_critical_95(dof: int) -> float:
    """Two-sided 95% t critical value."""
    if dof <= 0:
        raise ValueError("degrees of freedom must be positive")
    if dof in _T_95:
        return _T_95[dof]
    for key in sorted(_T_95):
        if dof < key:
            return _T_95[key]
    return 1.96


@dataclass(frozen=True)
class Estimate:
    """A mean with a symmetric 95% confidence half-width."""

    mean: float
    half_width: float
    samples: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def overlaps(self, other: "Estimate") -> bool:
        """True when the two intervals intersect."""
        return self.low <= other.high and other.low <= self.high

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.half_width:.3f} (n={self.samples})"


def estimate(values: Sequence[float]) -> Estimate:
    """95% CI estimate of a scalar's mean across replications."""
    data = list(values)
    if not data:
        raise ValueError("estimate of empty sample")
    n = len(data)
    mean = sum(data) / n
    if n == 1:
        return Estimate(mean, float("inf"), 1)
    variance = sum((v - mean) ** 2 for v in data) / (n - 1)
    half = t_critical_95(n - 1) * math.sqrt(variance / n)
    return Estimate(mean, half, n)


MetricFn = Callable[[SimulationResult], float]

CacheArg = Union[bool, str, Path, ResultCache, None]


def _report_name(
    config: ScenarioConfig,
    until: float,
    seed: int,
    shards: int = 1,
    max_speed: Optional[float] = None,
) -> str:
    """Filename stem for one per-seed report: the scenario key when the
    config serializes, else just the seed (collision-free within one
    replicate call, which runs a single scenario)."""
    key = scenario_key(config, until, seed, shards, max_speed)
    return key if key is not None else f"seed{seed}"


def _run_seed(
    config: ScenarioConfig,
    until: float,
    seed: int,
    metrics: Dict[str, MetricFn],
    report_dir: Optional[str] = None,
    shards: int = 1,
    max_speed: Optional[float] = None,
    metrics_dir: Optional[str] = None,
) -> Dict[str, float]:
    """Execute one seeded run and extract its scalar metrics.

    Module-level so worker processes can unpickle it.  With
    ``report_dir`` set, the run's full :class:`RunReport` is saved as
    ``<scenario_key>.json`` alongside the scalar extraction; with
    ``metrics_dir`` set, the probe snapshot is saved as
    ``<scenario_key>.prom`` OpenMetrics text.  With ``shards > 1`` the
    run goes through the sharded engine (shards hosted in-process: the
    seed fan-out is already the process-level parallelism here).
    """
    seeded = dataclasses.replace(config, seed=seed)
    if shards > 1:
        from repro.sim.sharded import ShardedEngine

        result = ShardedEngine(
            seeded, num_shards=shards, workers=1, max_speed=max_speed
        ).run(until=until)
    else:
        result = Simulation(seeded).run(until=until)
    stem = _report_name(config, until, seed, shards, max_speed)
    if report_dir is not None:
        directory = Path(report_dir)
        directory.mkdir(parents=True, exist_ok=True)
        result.report().save(directory / f"{stem}.json")
    if metrics_dir is not None:
        directory = Path(metrics_dir)
        directory.mkdir(parents=True, exist_ok=True)
        (directory / f"{stem}.prom").write_text(result.openmetrics())
    return {name: fn(result) for name, fn in metrics.items()}


def _collect_samples(
    jobs: Sequence[Tuple[ScenarioConfig, float, int]],
    metrics: Dict[str, MetricFn],
    workers: int,
    cache: Optional[ResultCache],
    report_dir: Optional[str] = None,
    shards: int = 1,
    max_speed: Optional[float] = None,
    metrics_dir: Optional[str] = None,
) -> List[Dict[str, float]]:
    """Metric dicts for each (config, until, seed) job, in job order.

    Cache hits are served without running; misses run serially or on a
    process pool.  Either way the output is positionally aligned with
    ``jobs``, so callers see identical numbers regardless of ``workers``.
    Per-seed reports (``report_dir``) are written only by runs that
    actually execute — a cache hit skips the run *and* the report.
    Keys encode ``shards``/``max_speed``, so sharded and classic runs of
    the same scenario occupy distinct cache entries.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    results: Dict[int, Dict[str, float]] = {}
    pending: List[Tuple[int, Optional[str], Optional[Dict[str, float]]]] = []
    for idx, (config, until, seed) in enumerate(jobs):
        key = (
            scenario_key(config, until, seed, shards, max_speed)
            if cache is not None
            else None
        )
        cached = cache.get(key) if cache is not None else None
        if cached is not None and all(name in cached for name in metrics):
            results[idx] = {name: cached[name] for name in metrics}
        else:
            pending.append((idx, key, cached))

    # Keep the no-report call shape identical to the historical one so
    # instrumented wrappers around _run_seed (tests, user tooling) only
    # need the extra arguments when reports, shards or metrics dumps
    # were requested.
    if metrics_dir is not None:
        extra: Tuple = (report_dir, shards, max_speed, metrics_dir)
    elif shards != 1:
        extra = (report_dir, shards, max_speed)
    elif report_dir is not None:
        extra = (report_dir,)
    else:
        extra = ()
    if workers > 1 and len(pending) > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                (entry, pool.submit(
                    _run_seed, *jobs[entry[0]], metrics, *extra
                ))
                for entry in pending
            ]
            computed = [(entry, future.result()) for entry, future in futures]
    else:
        computed = [
            (entry, _run_seed(*jobs[entry[0]], metrics, *extra))
            for entry in pending
        ]

    for (idx, key, cached), sample in computed:
        results[idx] = sample
        if cache is not None and key is not None:
            merged = dict(cached or {})
            merged.update(sample)
            cache.put(key, merged)
    return [results[idx] for idx in range(len(jobs))]


def replicate(
    config: ScenarioConfig,
    until: float,
    seeds: Sequence[int],
    metrics: Dict[str, MetricFn],
    *,
    workers: int = 1,
    cache: CacheArg = None,
    report_dir: Union[str, Path, None] = None,
    shards: int = 1,
    max_speed: Optional[float] = None,
    metrics_dir: Union[str, Path, None] = None,
) -> Dict[str, Estimate]:
    """Run a scenario under each seed; estimate each scalar metric.

    The scenario is rebuilt per seed (``dataclasses.replace``), so all
    stochastic inputs — workload, message jitter, mobility — re-draw.

    Args:
        workers: processes to fan seeds across (1 = in-process serial).
            The estimates are identical either way.
        cache: ``True`` for the default on-disk cache, a directory path,
            a :class:`~repro.harness.cache.ResultCache`, or ``None``
            (default) for no caching.  Cache keys encode the engine
            shape (``shards``/``max_speed``), so sharded replications
            cache independently of classic ones.
        report_dir: directory receiving one ``RunReport`` JSON per
            *executed* seed, named by scenario key.  Cached seeds do not
            re-run and therefore write no report; clear or bypass the
            cache to materialize reports for every seed.
        shards: spatial shards per run (1 = the classic engine).  The
            shards of one run are hosted in-process — ``workers`` is
            already the process-level fan-out here.
        max_speed: speed bound for sharded runs with mobility.
        metrics_dir: directory receiving one OpenMetrics ``.prom``
            snapshot per *executed* seed (same naming and cache-skip
            semantics as ``report_dir``).  Requires the scenario to
            have ``telemetry=True`` for the snapshot to carry samples.
    """
    seed_list = list(seeds)
    store = resolve_cache(cache)
    samples = _collect_samples(
        [(config, until, seed) for seed in seed_list], metrics, workers,
        store, str(report_dir) if report_dir is not None else None,
        shards, max_speed,
        str(metrics_dir) if metrics_dir is not None else None,
    )
    return {
        name: estimate([sample[name] for sample in samples])
        for name in metrics
    }


# Parameter sweeps ------------------------------------------------------------


@dataclass(frozen=True)
class SweepPoint:
    """One grid point of a parameter sweep, with its estimates."""

    params: Mapping[str, object]
    estimates: Dict[str, Estimate]


def sweep(
    config: ScenarioConfig,
    until: float,
    seeds: Sequence[int],
    metrics: Dict[str, MetricFn],
    grid: Mapping[str, Sequence[object]],
    *,
    workers: int = 1,
    cache: CacheArg = None,
    report_dir: Union[str, Path, None] = None,
    shards: int = 1,
    max_speed: Optional[float] = None,
    metrics_dir: Union[str, Path, None] = None,
) -> List[SweepPoint]:
    """Replicate across the cartesian product of config-field overrides.

    ``grid`` maps :class:`ScenarioConfig` field names to candidate
    values; each combination is applied to the base config with
    ``dataclasses.replace`` (build the scenario once, vary parameters
    cheaply).  All (point, seed) runs are flattened into one job list,
    so with ``workers > 1`` the pool stays saturated across the whole
    sweep rather than draining per point.  Points come back in grid
    order (first field varies slowest).

    ``report_dir`` behaves as in :func:`replicate`: one ``RunReport``
    JSON per executed (point, seed) run, named by scenario key so
    different grid points never collide; cache hits write nothing.
    ``metrics_dir`` is the OpenMetrics sibling of ``report_dir``.
    ``shards``/``max_speed`` behave as in :func:`replicate` and are
    part of every cache key, so sharded sweeps cache independently of
    classic ones.
    """
    names = list(grid)
    combos = list(itertools.product(*(grid[name] for name in names)))
    seed_list = list(seeds)
    configs = [
        dataclasses.replace(config, **dict(zip(names, combo)))
        for combo in combos
    ]
    jobs = [
        (point_config, until, seed)
        for point_config in configs
        for seed in seed_list
    ]
    store = resolve_cache(cache)
    samples = _collect_samples(
        jobs, metrics, workers, store,
        str(report_dir) if report_dir is not None else None,
        shards, max_speed,
        str(metrics_dir) if metrics_dir is not None else None,
    )
    points: List[SweepPoint] = []
    for i, combo in enumerate(combos):
        block = samples[i * len(seed_list): (i + 1) * len(seed_list)]
        points.append(
            SweepPoint(
                params=dict(zip(names, combo)),
                estimates={
                    name: estimate([sample[name] for sample in block])
                    for name in metrics
                },
            )
        )
    return points


# Ready-made metric extractors ------------------------------------------------


def mean_response(result: SimulationResult) -> float:
    times = result.response_times
    return sum(times) / len(times) if times else float("nan")


def max_response(result: SimulationResult) -> float:
    times = result.response_times
    return max(times) if times else float("nan")


def throughput(result: SimulationResult) -> float:
    return result.cs_entries / result.duration if result.duration else 0.0


def message_cost(result: SimulationResult) -> float:
    per_cs = result.messages_per_cs()
    return per_cs if per_cs is not None else float("nan")


DEFAULT_METRICS: Dict[str, MetricFn] = {
    "mean_response": mean_response,
    "max_response": max_response,
    "throughput": throughput,
    "messages_per_cs": message_cost,
}
