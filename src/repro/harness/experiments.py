"""Canonical experiment runners (see DESIGN.md Section 3).

These functions own the experimental methodology — topologies,
workloads, crash plans, what gets measured — so that the benchmark
files stay declarative and the test suite can re-run the same
experiments at reduced scale.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.analysis.stats import Summary, summarize
from repro.core.doorway_harness import doorway_entry
from repro.metrics.locality import LocalityReport
from repro.mobility import RandomWaypoint, ScriptedMobility, ScriptedMove
from repro.net.geometry import Point, grid_positions, line_positions
from repro.runtime.simulation import ScenarioConfig, Simulation, SimulationResult
from repro.sim.clock import TimeBounds

#: The protocols the Table 1 benchmark compares, in presentation order.
TABLE1_ALGORITHMS = (
    "oracle",
    "alg2",
    "alg1-linial",
    "alg1-greedy",
    "choy-singh",
    "chandy-misra",
    "ordered-ids",
)


# ----------------------------------------------------------------------
# Generic runners
# ----------------------------------------------------------------------


def run_static(
    algorithm,
    positions: Sequence[Point],
    until: float = 400.0,
    seed: int = 5,
    radio_range: float = 1.0,
    think_range: Tuple[float, float] = (1.0, 4.0),
    bounds: Optional[TimeBounds] = None,
    strict_safety: bool = True,
    **overrides,
) -> SimulationResult:
    """Run one algorithm on a static topology with the default workload."""
    config = ScenarioConfig(
        positions=list(positions),
        radio_range=radio_range,
        algorithm=algorithm,
        seed=seed,
        think_range=think_range,
        bounds=bounds or TimeBounds(),
        strict_safety=strict_safety,
        **overrides,
    )
    return Simulation(config).run(until=until)


@dataclass
class ComparisonRow:
    """One Table 1 row: measured behavior of one protocol."""

    algorithm: str
    cs_entries: int
    response: Optional[Summary]
    messages_per_cs: Optional[float]
    starvation_radius: Optional[int]


def compare_algorithms(
    n: int = 13,
    until: float = 500.0,
    seed: int = 5,
    crash_time: float = 20.0,
    algorithms: Sequence[str] = TABLE1_ALGORITHMS,
) -> List[ComparisonRow]:
    """Experiment T1: all protocols on one workload + one crash probe.

    Two runs per protocol: a failure-free run on a line of n nodes for
    throughput/latency, and a crash run (middle node fails) for the
    empirical failure locality.
    """
    positions = line_positions(n, spacing=1.0)
    rows: List[ComparisonRow] = []
    for algorithm in algorithms:
        clean = run_static(
            algorithm, positions, until=until, seed=seed,
            think_range=(0.5, 2.0),
        )
        report = crash_probe(
            algorithm, n=n, until=until, seed=seed, crash_time=crash_time
        )
        rows.append(
            ComparisonRow(
                algorithm=algorithm,
                cs_entries=clean.cs_entries,
                response=summarize(clean.response_times),
                messages_per_cs=clean.messages_per_cs(),
                starvation_radius=report.starvation_radius,
            )
        )
    return rows


def crash_probe(
    algorithm,
    n: int = 13,
    until: float = 500.0,
    seed: int = 5,
    crash_time: float = 20.0,
    crash_node: Optional[int] = None,
    crash_while_eating: bool = True,
) -> LocalityReport:
    """Experiment E3: crash the middle of a line, measure starvation radius.

    With ``crash_while_eating`` (the default) the victim is crashed the
    first time it is observed *eating* after ``crash_time``, so it dies
    holding every shared fork — the worst case for its neighborhood and
    the configuration the failure-locality bounds are about.  Crashing
    at an arbitrary instant often kills a node holding nothing, which
    starves nobody and measures nothing.
    """
    from repro.core.states import NodeState

    positions = line_positions(n, spacing=1.0)
    if crash_node is None:
        crash_node = n // 2
    config = ScenarioConfig(
        positions=positions,
        algorithm=algorithm,
        seed=seed,
        think_range=(0.5, 2.0),
        crashes=[] if crash_while_eating else [(crash_time, crash_node)],
    )
    sim = Simulation(config)
    if crash_while_eating:
        harness = sim.harnesses[crash_node]
        checkpoint = crash_time
        while checkpoint < until:
            sim.sim.run(until=checkpoint)
            if harness.state is NodeState.EATING:
                break
            checkpoint += 0.25
        sim.failures.schedule(sim.sim.now, crash_node)
    sim.run(until=until)
    return sim.locality_report()


# ----------------------------------------------------------------------
# Doorway experiments (Figures 1-4)
# ----------------------------------------------------------------------


def star_positions(delta: int, radius: float = 0.9) -> List[Point]:
    """A star: node 0 in the center with ``delta`` leaves.

    Under unit-disk with radius < range < 2*radius*sin(pi/delta) the
    leaves see only the hub — but for doorway experiments we place
    leaves inside mutual range deliberately NOT mattering: the hub's
    degree is what drives Lemma 1's delta factor.
    """
    import math

    points = [Point(0.0, 0.0)]
    for i in range(delta):
        angle = 2 * math.pi * i / delta
        points.append(Point(radius * math.cos(angle), radius * math.sin(angle)))
    return points


def doorway_latency(
    kind: str,
    delta: int,
    module_time: float = 1.0,
    returns: int = 1,
    until: float = 400.0,
    seed: int = 3,
) -> Optional[Summary]:
    """Experiments F2-F4: traversal latency of one doorway kind.

    Topology: a star with hub degree ``delta``; every node cycles
    through the doorway continuously (saturation), so the hub
    experiences the full interference the lemmas bound.

    Returns None when the hub never completed a traversal — which is a
    *result*, not an error: the raw synchronous doorway can starve its
    most-contended user indefinitely (the pathology the asynchronous
    entry and the double doorway exist to fix).
    """
    bounds = TimeBounds(nu=0.1, tau=0.1)
    result = run_static(
        doorway_entry(kind, module_time=module_time, returns=returns),
        star_positions(delta),
        until=until,
        seed=seed,
        radio_range=1.0,
        think_range=(0.0, 0.1),
        bounds=bounds,
        strict_safety=False,
    )
    # The hub (node 0) has degree delta and experiences the full
    # interference Lemmas 1-2 bound; leaves only see the hub.
    return summarize(result.metrics.response_times(node_id=0))


# ----------------------------------------------------------------------
# Figure 5: Algorithm 1 pipeline breakdown
# ----------------------------------------------------------------------

_STAGES = (
    ("hungry", "app.hungry"),
    ("cross_ADr", None),  # filled from doorway.crossed detail
    ("cross_SDr", None),
    ("recolor", "recolor.done"),
    ("cross_ADf", None),
    ("cross_SDf", None),
    ("eat", "cs.enter"),
)


def pipeline_breakdown(
    n: int = 12,
    until: float = 400.0,
    seed: int = 9,
    coloring: str = "alg1-greedy",
) -> Dict[str, float]:
    """Experiment F5: mean time spent per pipeline stage.

    Runs Algorithm 1 on a grid where a third of the nodes wander, so the
    recoloring path is exercised, and averages the stage-to-stage
    deltas of every hungry episode that traversed the full pipeline.
    """
    side = max(2, int(round(n ** 0.5)))
    config = ScenarioConfig(
        positions=grid_positions(n, 1.0),
        radio_range=1.2,
        algorithm=coloring,
        seed=seed,
        think_range=(1.0, 4.0),
        trace=True,
        delta_override=n - 1,
        mobility_factory=lambda i: (
            RandomWaypoint(side, side, speed_range=(0.5, 1.0),
                           pause_range=(10.0, 30.0))
            if i % 3 == 0
            else None
        ),
    )
    sim = Simulation(config)
    sim.run(until=until)

    # Reconstruct per-node episodes from the trace.
    events_by_node: Dict[int, List[Tuple[float, str]]] = {}
    for rec in sim.trace:
        label = None
        if rec.category == "app.hungry":
            label = "hungry"
        elif rec.category == "doorway.crossed":
            label = f"cross_{rec.detail['doorway']}"
        elif rec.category == "recolor.done":
            label = "recolor"
        elif rec.category == "cs.enter":
            label = "eat"
        if label is not None and rec.node is not None:
            events_by_node.setdefault(rec.node, []).append((rec.time, label))

    order = [
        "hungry", "cross_ADr", "cross_SDr", "recolor",
        "cross_ADf", "cross_SDf", "eat",
    ]
    durations: Dict[str, List[float]] = {label: [] for label in order[1:]}
    for events in events_by_node.values():
        idx = 0
        last_time = None
        for time, label in events:
            if label == "hungry":
                idx = 1
                last_time = time
                continue
            if last_time is None or idx == 0:
                continue
            # Accept the next expected stage; skip stages not taken.
            while idx < len(order) and order[idx] != label:
                idx += 1
            if idx >= len(order):
                idx = 0
                continue
            durations[label].append(time - last_time)
            last_time = time
            if label == "eat":
                idx = 0
            else:
                idx += 1
    return {
        label: (sum(values) / len(values) if values else 0.0)
        for label, values in durations.items()
    }


# ----------------------------------------------------------------------
# Figure 6: the crash + movement scenario
# ----------------------------------------------------------------------


@dataclass
class Fig6Outcome:
    """What the scripted Figure 6 scenario produced."""

    p1_entries: int
    p2_entries_before_move: int
    p2_entries_after_move: int
    #: p3 is blocked by the crashed p4 while in its neighborhood; after
    #: moving away it is isolated and eats trivially.
    p3_entries_before_move: int
    p3_entries_after_move: int
    p2_return_paths: int


def fig6_crash_scenario(
    move_time: float = 250.0,
    until: float = 500.0,
    seed: int = 1,
) -> Fig6Outcome:
    """Reproduce Figure 6: p4 crashes; p3 blocks; p2 blocked until p3
    moves away, then recovers via the return path; p1 is never harmed.

    Node ids: 0=p1, 1=p2, 2=p3, 3=p4 on a line.  Initial colors give
    the figure's priority order color(p3) < color(p2) < color(p1) with
    the failed node p4 lowest priority.
    """
    positions = line_positions(4, spacing=1.0)
    initial_colors = {0: 2, 1: 1, 2: 0, 3: 3}
    config = ScenarioConfig(
        positions=positions,
        algorithm="alg1-greedy",
        seed=seed,
        initial_colors=initial_colors,
        # p4 eats once early (so it ends up holding the p3-p4 fork),
        # then crashes; the others start competing afterwards.
        scripted_hunger={
            3: [1.0],
            0: [t * 4.0 + 30.0 for t in range(int((until - 30) / 4))],
            1: [t * 4.0 + 30.0 for t in range(int((until - 30) / 4))],
            2: [t * 4.0 + 30.0 for t in range(int((until - 30) / 4))],
        },
        crashes=[(20.0, 3)],
        mobility_factory=lambda i: (
            ScriptedMobility([ScriptedMove(move_time, Point(2.0, 10.0))])
            if i == 2
            else None
        ),
        trace=True,
    )
    sim = Simulation(config)
    sim.run(until=until)
    p2_eats = [
        rec.time for rec in sim.trace.select(category="cs.enter", node=1)
    ]
    p3_eats = [
        rec.time for rec in sim.trace.select(category="cs.enter", node=2)
    ]
    alg_p2 = sim.algorithm_of(1)
    return Fig6Outcome(
        p1_entries=len(sim.trace.select(category="cs.enter", node=0)),
        p2_entries_before_move=sum(1 for t in p2_eats if t < move_time),
        p2_entries_after_move=sum(1 for t in p2_eats if t >= move_time),
        p3_entries_before_move=sum(1 for t in p3_eats if t < move_time),
        p3_entries_after_move=sum(1 for t in p3_eats if t >= move_time),
        p2_return_paths=alg_p2.return_paths_taken,
    )


# ----------------------------------------------------------------------
# Offline coloring runs (experiment E4)
# ----------------------------------------------------------------------


def coloring_offline(procedure, ids: Sequence[int]):
    """Run one coloring procedure over a clique of participants.

    Instant, in-order message delivery — isolates the procedure's round
    count and color range from network timing.  Returns
    ``(colors, rounds)`` where colors maps id -> final color.
    """
    from repro.core.messages import RecolorNack

    # A deque: the drain loop below pops from the head per message, and
    # list.pop(0) would make it O(n²) over the whole coloring run.
    queue: Deque[Tuple[int, int, object]] = deque()
    finished: Dict[int, int] = {}
    sessions = {}
    for node_id in ids:
        peers = {j for j in ids if j != node_id}
        sessions[node_id] = procedure.create_session(
            node_id,
            peers,
            lambda dst, msg, src=node_id: queue.append((src, dst, msg)),
            lambda value, src=node_id: finished.__setitem__(src, value),
        )
    for session in sessions.values():
        session.begin()
    while queue:
        src, dst, msg = queue.popleft()
        target = sessions[dst]
        if isinstance(msg, RecolorNack):
            target.remove_peer(src)
        elif target.active:
            target.on_peer_message(src, msg)
        else:
            queue.append((dst, src, RecolorNack(0)))
    rounds = max(s.rounds_executed for s in sessions.values())
    return finished, rounds


# ----------------------------------------------------------------------
# Scaling experiments (E1, E6)
# ----------------------------------------------------------------------


def response_vs_n(
    algorithm,
    ns: Sequence[int],
    until: float = 400.0,
    seed: int = 5,
    mobile_fraction: float = 0.0,
    arena_scale: float = 1.0,
) -> List[Tuple[int, Summary]]:
    """Experiments E1/E6: response-time summary as n grows (line graphs)."""
    results: List[Tuple[int, Summary]] = []
    for n in ns:
        mobility = None
        if mobile_fraction > 0:
            span = n * arena_scale

            def mobility(i, _span=span, _n=n):
                if i % max(1, int(1 / mobile_fraction)) == 0:
                    return RandomWaypoint(
                        _span, 2.0, speed_range=(0.5, 1.0),
                        pause_range=(10.0, 30.0),
                    )
                return None

        config = ScenarioConfig(
            positions=line_positions(n, spacing=1.0),
            algorithm=algorithm,
            seed=seed,
            think_range=(0.5, 2.0),
            mobility_factory=mobility,
            delta_override=n - 1 if mobility else None,
        )
        result = Simulation(config).run(until=until)
        summary = summarize(result.response_times)
        assert summary is not None, f"no samples for n={n}"
        results.append((n, summary))
    return results
