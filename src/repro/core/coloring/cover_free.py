"""Constructive cover-free set families for Linial's color reduction.

The paper invokes Erdős–Frankl–Füredi (Theorem 18): for n > delta there
exist n subsets of ``[5 delta^2 log n]`` such that no subset is covered
by the union of any delta others.  The original proof is probabilistic
and the thesis suggests exhaustive search; we substitute the classical
*polynomial* construction (the one Linial's own paper uses), which is
explicit, fast, and has the same asymptotics:

    For a prime q and degree bound d, associate with every value
    ``v < q^(d+1)`` the polynomial ``f_v`` over GF(q) whose coefficients
    are the base-q digits of v, and the set
    ``F_v = { x*q + f_v(x) : x in GF(q) } ⊆ [q^2]``.

    Distinct polynomials of degree <= d agree on at most d points, so
    ``|F_u ∩ F_v| <= d`` for u != v.  If ``q > d*delta``, the union of
    any delta other sets covers at most ``d*delta < q = |F_v|`` elements
    of ``F_v`` — the cover-free property, with ground set size
    ``q^2 = O((delta * log m / log(delta*log m))^2)``.

Iterating families shrinks a color range m to q^2; the fixpoint is
reached after Theta(log* m) rounds, exactly the paper's round count.
"""

from __future__ import annotations

import functools
import math
from typing import FrozenSet, Iterable, List, Sequence

from repro.errors import ConfigurationError, ProtocolError


def is_prime(value: int) -> bool:
    """Deterministic primality test for the small moduli we need."""
    if value < 2:
        return False
    if value < 4:
        return True
    if value % 2 == 0:
        return False
    factor = 3
    while factor * factor <= value:
        if value % factor == 0:
            return False
        factor += 2
    return True


def next_prime(value: int) -> int:
    """The smallest prime >= value."""
    candidate = max(2, value)
    while not is_prime(candidate):
        candidate += 1
    return candidate


class PolynomialFamily:
    """A (delta-)cover-free family of ``m`` sets over ``[q^2]``.

    Parameters are chosen as the smallest (d, q) pair with ``q`` prime,
    ``q > d * delta`` and ``q^(d+1) >= m``, so every value in ``[0, m)``
    has a distinct degree-<=d polynomial.
    """

    def __init__(self, m: int, delta: int) -> None:
        if m < 1:
            raise ConfigurationError(f"family size must be >= 1, got {m}")
        if delta < 1:
            raise ConfigurationError(f"delta must be >= 1, got {delta}")
        self.m = m
        self.delta = delta
        self.degree, self.q = self._choose_parameters(m, delta)

    @staticmethod
    def _choose_parameters(m: int, delta: int):
        best = None
        for degree in range(1, max(2, int(math.log2(max(m, 2)))) + 2):
            q = next_prime(degree * delta + 1)
            if q ** (degree + 1) >= m:
                size = q * q
                if best is None or size < best[2]:
                    best = (degree, q, size)
        if best is None:  # pragma: no cover - range above always suffices
            raise ConfigurationError(f"no parameters for m={m}, delta={delta}")
        return best[0], best[1]

    @property
    def range_size(self) -> int:
        """Size of the ground set (the new color range): q^2."""
        return self.q * self.q

    # ------------------------------------------------------------------
    def _coefficients(self, value: int) -> Sequence[int]:
        if not 0 <= value < self.q ** (self.degree + 1):
            raise ProtocolError(
                f"value {value} outside family domain "
                f"[0, {self.q ** (self.degree + 1)})"
            )
        digits = []
        v = value
        for _ in range(self.degree + 1):
            digits.append(v % self.q)
            v //= self.q
        return digits

    def _evaluate(self, coefficients: Sequence[int], x: int) -> int:
        result = 0
        for coef in reversed(coefficients):
            result = (result * x + coef) % self.q
        return result

    def set_for(self, value: int) -> FrozenSet[int]:
        """The set ``F_value = { x*q + f_value(x) }``."""
        coefficients = self._coefficients(value)
        return frozenset(
            x * self.q + self._evaluate(coefficients, x) for x in range(self.q)
        )

    def fresh_element(self, value: int, others: Iterable[int]) -> int:
        """The smallest element of ``F_value`` not covered by the others.

        ``others`` are the neighbors' current values (at most ``delta``
        of them).  Existence is guaranteed by the cover-free property;
        exceeding ``delta`` neighbors violates the paper's model and
        raises.
        """
        others = list(others)
        if len(others) > self.delta:
            raise ProtocolError(
                f"{len(others)} concurrent neighbors exceed the family's "
                f"delta bound {self.delta}"
            )
        covered = set()
        for other in others:
            covered |= self.set_for(other)
        own = self.set_for(value)
        available = own - covered
        if not available:  # pragma: no cover - excluded by construction
            raise ProtocolError(
                f"cover-free property violated for value {value}"
            )
        return min(available)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PolynomialFamily m={self.m} delta={self.delta} "
            f"d={self.degree} q={self.q} range={self.range_size}>"
        )


@functools.lru_cache(maxsize=None)
def reduction_schedule(id_space: int, delta: int) -> tuple:
    """The shared per-round family schedule for (id_space, delta).

    Round k maps colors in range ``m_k`` to range ``m_{k+1} = q_k^2``;
    the schedule stops when the range stops shrinking.  Its length is
    the algorithm's round count — Theta(log* id_space), the quantity
    experiment E4 measures.

    All nodes compute the identical schedule (they know n and delta by
    the paper's assumption), so rounds stay aligned without any global
    coordination.
    """
    if id_space < 1:
        raise ConfigurationError(f"id_space must be >= 1, got {id_space}")
    if delta < 1:
        raise ConfigurationError(f"delta must be >= 1, got {delta}")
    schedule: List[PolynomialFamily] = []
    m = id_space
    while True:
        family = PolynomialFamily(m, delta)
        if family.range_size >= m:
            break
        schedule.append(family)
        m = family.range_size
    return tuple(schedule)


def final_color_range(id_space: int, delta: int) -> int:
    """The color range Algorithm 5 ends with (Delta for Lemma 10)."""
    schedule = reduction_schedule(id_space, delta)
    if not schedule:
        return id_space
    return schedule[-1].range_size
