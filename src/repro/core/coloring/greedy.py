"""Greedy coloring procedure (Algorithm 4, Section 5.4.1).

Each participant floods the subgraph ``G`` of concurrently-recoloring
nodes: per iteration it exchanges its edge set with the peers in R and
merges what it receives.  The loop ends when (1) no new edges arrived,
(2) a peer reported it finished, or (3) R became empty.  The node then
sends its final graph with ``finished=True`` and colors ``G`` with a
deterministic greedy traversal; concurrent neighbors end with the same
graph (Lemma 14) and therefore pick distinct colors (Assumption 1).

Complexities (Lemma 15 / Theorem 16): O(n) rounds and failure locality
n — a crash anywhere in the recoloring flood can stall every
participant — but colors land in [0, delta] and no knowledge of n or
delta is needed.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Set, Tuple

from repro.core.coloring.session import (
    ColoringProcedure,
    ColoringSession,
    FinishFn,
    SendFn,
)
from repro.core.messages import GraphExchange
from repro.net.topology import link_key

Edge = Tuple[int, int]


def greedy_color_graph(edges: FrozenSet[Edge], node_id: int) -> int:
    """Deterministically greedy-color the graph; return node_id's color.

    Traversal is DFS from the smallest node id of each component,
    visiting neighbors in ascending order — every node computing this
    on the same edge set assigns the same colors.  A node absent from
    the graph is isolated and gets color 0.
    """
    adjacency: Dict[int, Set[int]] = {}
    for a, b in edges:
        adjacency.setdefault(a, set()).add(b)
        adjacency.setdefault(b, set()).add(a)
    if node_id not in adjacency:
        return 0
    colors: Dict[int, int] = {}
    visited: Set[int] = set()
    for root in sorted(adjacency):
        if root in visited:
            continue
        stack = [root]
        visited.add(root)
        while stack:
            node = stack.pop()
            used = {colors[j] for j in adjacency[node] if j in colors}
            color = 0
            while color in used:
                color += 1
            colors[node] = color
            for j in sorted(adjacency[node], reverse=True):
                if j not in visited:
                    visited.add(j)
                    stack.append(j)
    return colors[node_id]


class GreedySession(ColoringSession):
    """One greedy recoloring run (the loop of Algorithm 4)."""

    def __init__(
        self, node_id: int, peers: Set[int], send: SendFn, finish: FinishFn
    ) -> None:
        super().__init__(node_id, peers, send, finish)
        self.graph: Set[Edge] = set()

    def _start(self) -> None:
        if not self.peers:
            # Line 69: nobody is recoloring with us; decide immediately.
            self._finish(greedy_color_graph(frozenset(), self.node_id))
            return
        self._send_round(
            lambda peer: GraphExchange(
                self.rounds_executed + 1, frozenset(self.graph), False
            )
        )

    def _complete_round(self, inputs) -> None:
        finished_seen = any(msg.finished for _, msg in inputs)
        merged = set(self.graph)
        for _, msg in inputs:
            merged.update(msg.edges)
        merged.update(link_key(self.node_id, peer) for peer in self.peers)
        no_change = merged == self.graph
        self.graph = merged
        if no_change or finished_seen or not self.peers:
            self._finish_loop()
            return
        self._send_round(
            lambda peer: GraphExchange(
                self.rounds_executed + 1, frozenset(self.graph), False
            )
        )

    def _finish_loop(self) -> None:
        final = frozenset(self.graph)
        for peer in sorted(self.peers):
            # Line 71: one last message with the finished flag on.
            self._send(peer, GraphExchange(self.rounds_executed + 1, final, True))
        self._finish(greedy_color_graph(final, self.node_id))


class GreedyColoring(ColoringProcedure):
    """Factory for :class:`GreedySession` (the "practical" variant)."""

    name = "greedy"

    def create_session(
        self, node_id: int, peers: Set[int], send: SendFn, finish: FinishFn
    ) -> GreedySession:
        return GreedySession(node_id, peers, send, finish)

    def max_color(self) -> Optional[int]:
        # Greedy colors are bounded by the recoloring subgraph's degree,
        # itself at most delta; the bound is topology-dependent, so the
        # procedure itself reports "unbounded" and the wrapper relies on
        # actual returned values.
        return None
