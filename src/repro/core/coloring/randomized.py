"""Randomized coloring procedure (the Chapter 7 extension).

The discussion chapter observes that Kuhn–Wattenhofer's randomized
color reduction "can easily substitute the coloring procedure used by
the recoloring module, leading to an algorithm for local mutual
exclusion with probabilistic properties".  This module implements that
substitution with the classic Luby-style trial scheme such algorithms
build on:

Per round, every undecided participant draws a uniformly random
candidate from its palette minus the colors neighbors have already
*locked*, and announces it.  A node locks its candidate when no
neighbor announced the same value that round; it then sends one final
``decided`` announcement and leaves the exchange.  With palette size
``2 * (delta + 1)`` a trial succeeds with probability > 1/2, so the
expected round count is O(log k) for k concurrent participants; a
deterministic fallback (a unique out-of-palette color keyed by node id)
caps the worst case.

The *final* coloring is always legal, not just probably: a node locks
a color only when no neighbor announced or previously locked it, and
two neighbors announcing the same candidate both retry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from repro.core.coloring.session import (
    ColoringProcedure,
    ColoringSession,
    FinishFn,
    RoundInput,
    SendFn,
)
from repro.core.messages import RecoloringRound
from repro.errors import ConfigurationError, ProtocolError


@dataclass(frozen=True)
class Candidate(RecoloringRound):
    """One randomized-coloring round message.

    ``decided`` marks the sender's final color: the receiver forbids
    the value permanently and drops the sender from the exchange.
    """

    round_index: int
    value: int
    decided: bool = False


class RandomizedSession(ColoringSession):
    """One randomized recoloring run."""

    def __init__(
        self,
        node_id: int,
        peers: Set[int],
        send: SendFn,
        finish: FinishFn,
        palette_size: int,
        rng,
        max_rounds: int,
    ) -> None:
        super().__init__(node_id, peers, send, finish)
        self._palette_size = palette_size
        self._rng = rng
        self._max_rounds = max_rounds
        self._forbidden: Set[int] = set()
        self._candidate: Optional[int] = None

    # ------------------------------------------------------------------
    def _draw(self) -> int:
        available = [
            c for c in range(self._palette_size) if c not in self._forbidden
        ]
        if not available:  # pragma: no cover - palette sized to prevent this
            raise ProtocolError(
                f"palette of size {self._palette_size} exhausted"
            )
        return available[self._rng.randrange(len(available))]

    def _start(self) -> None:
        if not self.peers:
            self._finish(0)
            return
        self._trial_round()

    def _trial_round(self) -> None:
        if self.rounds_executed >= self._max_rounds:
            # Probabilistic budget exhausted: take the guaranteed-unique
            # out-of-palette fallback color.
            self._decide(self._palette_size + self.node_id)
            return
        self._candidate = self._draw()
        self._send_round(
            lambda peer: Candidate(self.rounds_executed, self._candidate)
        )

    def _complete_round(self, inputs: List[RoundInput]) -> None:
        conflicted = False
        for src, message in inputs:
            if message.decided:
                self._forbidden.add(message.value)
                self.peers.discard(src)
            elif message.value == self._candidate:
                conflicted = True
        # A neighbor may have locked our candidate in an earlier round
        # whose announcement raced our draw: re-check forbidden too.
        assert self._candidate is not None
        if conflicted or self._candidate in self._forbidden:
            if self.peers:
                self._trial_round()
            else:
                # Everyone else is done; a fresh draw cannot conflict.
                self._decide(self._draw(), announce=False)
            return
        self._decide(self._candidate)

    def _decide(self, value: int, announce: bool = True) -> None:
        if announce:
            for peer in sorted(self.peers):
                self._send(peer, Candidate(self.rounds_executed, value, True))
        self._finish(value)


class RandomizedColoring(ColoringProcedure):
    """Factory for randomized recoloring sessions.

    Args:
        delta: maximum degree; the palette holds ``2 * (delta + 1)``
            colors so each trial succeeds with probability > 1/2.
        rng: a ``random.Random`` (one shared stream keeps runs
            reproducible under a fixed seed).
        max_rounds: trials before the deterministic fallback
            (default ``10 + delta``).
    """

    name = "randomized"

    def __init__(self, delta: int, rng, max_rounds: Optional[int] = None) -> None:
        if delta < 1:
            raise ConfigurationError(f"delta must be >= 1, got {delta}")
        self.delta = delta
        self.palette_size = 2 * (delta + 1)
        self._rng = rng
        self.max_rounds = max_rounds if max_rounds is not None else 10 + delta

    def create_session(
        self, node_id: int, peers: Set[int], send: SendFn, finish: FinishFn
    ) -> RandomizedSession:
        return RandomizedSession(
            node_id, peers, send, finish,
            palette_size=self.palette_size,
            rng=self._rng,
            max_rounds=self.max_rounds,
        )

    def max_color(self) -> Optional[int]:
        return None  # fallback band is id-dependent
