"""Round-synchronized peer exchange shared by both coloring procedures.

A coloring session runs behind the recoloring double doorway.  Per
round, the node sends one message to every live participant in ``R``
and waits for one message from each.  Peers leave ``R`` via NACK (they
are not participating, Algorithm 2 Lines 40-43) or link failure
(Algorithm 3 Line 61); the round completes when every remaining peer
has answered.

Messages are paired to rounds by per-peer FIFO order (the links are
FIFO and a participant has at most one outstanding round message per
peer), so no global round tags are required for correctness; the tags
on the wire exist for tracing and sanity checks.

Round alignment between neighbors is guaranteed by the doorway
structure: a node cannot start a session while a neighbor is mid-session
(it would be blocked at the SDr entry), as analyzed in Lemma 19.
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.net.messages import Message

SendFn = Callable[[int, Message], None]
FinishFn = Callable[[int], None]

#: One consumed round input: (sender id, message).
RoundInput = Tuple[int, Message]


class ColoringSession(abc.ABC):
    """One run of a coloring procedure for one node.

    Args:
        node_id: the host node's id (its initial "color" is its ID).
        peers: the initial participant set R (a copy is taken).
        send: unicast send to a peer.
        finish: called exactly once with the procedure's return value
            (the wrapper negates it per Algorithm 2 Line 38).
    """

    def __init__(
        self,
        node_id: int,
        peers: Set[int],
        send: SendFn,
        finish: FinishFn,
    ) -> None:
        self.node_id = node_id
        self.peers: Set[int] = set(peers)
        self._send = send
        self._finish_cb = finish
        self.active = False
        self.rounds_executed = 0
        #: Telemetry probes; Algorithm 1 installs them after
        #: ``create_session`` (None when the run is uninstrumented).
        self.probes = None
        self._awaiting: Set[int] = set()
        self._inbox: Dict[int, Deque[Message]] = {}
        self._round_inputs: List[RoundInput] = []
        self._in_round = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def begin(self) -> None:
        """Start the session (crossing SDr just completed)."""
        self.active = True
        self._start()

    def abort(self) -> None:
        """Tear the session down (the host moved; Algorithm 3 Line 52)."""
        self.active = False
        self._inbox.clear()
        self._awaiting.clear()

    def remove_peer(self, peer: int) -> None:
        """Drop a peer from R (NACK received or link failed)."""
        if not self.active:
            return
        self.peers.discard(peer)
        self._inbox.pop(peer, None)
        if self._in_round and peer in self._awaiting:
            self._awaiting.discard(peer)
            self._maybe_complete_round()

    # ------------------------------------------------------------------
    # Message intake
    # ------------------------------------------------------------------
    def on_peer_message(self, src: int, message: Message) -> None:
        """Queue a round message from a participating peer."""
        if not self.active or src not in self.peers:
            return  # stale (peer already dropped, or session over)
        self._inbox.setdefault(src, deque()).append(message)
        self._drain()

    def _drain(self) -> None:
        if not self._in_round:
            return
        for src in sorted(self._awaiting & set(self._inbox)):
            queue = self._inbox.get(src)
            if queue:
                self._round_inputs.append((src, queue.popleft()))
                self._awaiting.discard(src)
                if not queue:
                    del self._inbox[src]
        self._maybe_complete_round()

    def _maybe_complete_round(self) -> None:
        if self._in_round and not self._awaiting:
            self._in_round = False
            inputs = self._round_inputs
            self._round_inputs = []
            self.rounds_executed += 1
            if self.probes is not None:
                self.probes.note_recolor_round()
            self._complete_round(inputs)

    # ------------------------------------------------------------------
    # Round plumbing for subclasses
    # ------------------------------------------------------------------
    def _send_round(self, make_message: Callable[[int], Message]) -> None:
        """Send this round's message to every peer and await replies."""
        self._awaiting = set(self.peers)
        self._in_round = True
        for peer in sorted(self.peers):
            self._send(peer, make_message(peer))
        self._drain()

    def _finish(self, value: int) -> None:
        self.active = False
        self._inbox.clear()
        self._awaiting.clear()
        self._in_round = False
        self._finish_cb(value)

    # ------------------------------------------------------------------
    # Subclass responsibilities
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _start(self) -> None:
        """Kick off the first round (or finish immediately)."""

    @abc.abstractmethod
    def _complete_round(self, inputs: List[RoundInput]) -> None:
        """All awaited peers answered; advance the procedure.

        ``inputs`` are (sender, message) pairs, one per peer that was
        awaited when the round completed.
        """


class ColoringProcedure(abc.ABC):
    """Factory for coloring sessions; one per Algorithm 1 configuration."""

    #: Procedure name used in configs and reports ("greedy" / "linial").
    name = "abstract"

    @abc.abstractmethod
    def create_session(
        self,
        node_id: int,
        peers: Set[int],
        send: SendFn,
        finish: FinishFn,
    ) -> ColoringSession:
        """Build a fresh session for one recoloring run."""

    @abc.abstractmethod
    def max_color(self) -> Optional[int]:
        """Upper bound on returned colors (Delta), None if unbounded."""
