"""Coloring procedures pluggable into Algorithm 1's recoloring module.

Two implementations, matching the paper's Section 5.4:

* :class:`~repro.core.coloring.greedy.GreedyColoring` (Algorithm 4) —
  floods the subgraph of concurrently-recoloring nodes and colors it
  greedily.  O(n) rounds / failure locality, colors in [0, delta];
  needs no knowledge of n or delta.
* :class:`~repro.core.coloring.linial.LinialColoring` (Algorithm 5) —
  O(log* n) rounds of cover-free-family color reduction.  Assumes n and
  delta known; colors in O(delta^2 log delta) after the final round.

Both are *session factories*: Algorithm 1 creates one session per
recoloring run.
"""

from repro.core.coloring.cover_free import PolynomialFamily, reduction_schedule
from repro.core.coloring.greedy import GreedyColoring, greedy_color_graph
from repro.core.coloring.linial import LinialColoring

__all__ = [
    "GreedyColoring",
    "LinialColoring",
    "PolynomialFamily",
    "greedy_color_graph",
    "reduction_schedule",
]
