"""Linial-style fast coloring procedure (Algorithm 5, Section 5.4.2).

Per round, every participant sends its temporary color to the peers in
R, receives theirs, and uses the round's cover-free family to pick a
new temporary color whose set element is missed by all neighbors' sets.
The number of rounds is the length of the shared reduction schedule —
Theta(log* n) — after which colors live in a range of O(delta^2 *
polylog(delta)) (the paper's O(delta^2) up to the log factor inherent
in explicit constructions).

The procedure assumes all nodes know ``n`` (the ID space) and ``delta``
(the maximum degree) so they derive the identical schedule; this is the
paper's stated assumption for this variant.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.core.coloring.cover_free import final_color_range, reduction_schedule
from repro.core.coloring.session import (
    ColoringProcedure,
    ColoringSession,
    FinishFn,
    SendFn,
)
from repro.core.messages import TempColor
from repro.errors import ConfigurationError


class LinialSession(ColoringSession):
    """One Linial recoloring run (the loop of Algorithm 5)."""

    def __init__(
        self,
        node_id: int,
        peers: Set[int],
        send: SendFn,
        finish: FinishFn,
        schedule,
    ) -> None:
        super().__init__(node_id, peers, send, finish)
        self._schedule = schedule
        self.temp_color = node_id  # Line 63: temp-color := ID
        self.phase = 0

    def _start(self) -> None:
        if not self.peers:
            self._finish(0)  # Line 71: R empty -> color 0
            return
        if not self._schedule:
            # The ID space is already no larger than the target range;
            # the ID itself is a legal small color.
            self._finish(self.temp_color)
            return
        self._send_phase()

    def _send_phase(self) -> None:
        self._send_round(lambda peer: TempColor(self.phase, self.temp_color))

    def _complete_round(self, inputs) -> None:
        if not self.peers:
            self._finish(0)  # R drained mid-loop (Line 70 guard)
            return
        family = self._schedule[self.phase]
        neighbor_values = [msg.value for _, msg in inputs]
        self.temp_color = family.fresh_element(self.temp_color, neighbor_values)
        self.phase += 1
        if self.phase >= len(self._schedule):
            self._finish(self.temp_color)
            return
        self._send_phase()


class LinialColoring(ColoringProcedure):
    """Factory for :class:`LinialSession`.

    Args:
        id_space: size of the node-ID space (the paper's n).
        delta: maximum node degree the family must tolerate.
    """

    name = "linial"

    def __init__(self, id_space: int, delta: int) -> None:
        if id_space < 1:
            raise ConfigurationError(f"id_space must be >= 1, got {id_space}")
        if delta < 1:
            raise ConfigurationError(f"delta must be >= 1, got {delta}")
        self.id_space = id_space
        self.delta = delta
        self.schedule = reduction_schedule(id_space, delta)

    @property
    def rounds(self) -> int:
        """Round count of every session — the measured log* n quantity."""
        return len(self.schedule)

    def create_session(
        self, node_id: int, peers: Set[int], send: SendFn, finish: FinishFn
    ) -> LinialSession:
        if node_id >= self.id_space:
            raise ConfigurationError(
                f"node id {node_id} outside configured id space {self.id_space}"
            )
        return LinialSession(node_id, peers, send, finish, self.schedule)

    def max_color(self) -> Optional[int]:
        return final_color_range(self.id_space, self.delta) - 1
