"""Doorways (Chapter 4).

A doorway guards a module: a node *crosses* it by completing entry code
and *exits* it by completing exit code.  The guarantee: if ``p_i``
crosses before a neighbor ``p_j`` begins entering, ``p_j`` does not
cross until ``p_i`` exits.

Two entry disciplines (Figure 2):

* **synchronous** — cross when *all* neighbors are observed outside
  *simultaneously* (a conjunctive re-check on every update);
* **asynchronous** — cross once each neighbor has been observed outside
  *at least once* since we started waiting (per-neighbor sticky flags),
  which avoids the starvation a synchronous doorway allows.

Algorithm 1 uses four doorways per node — the recoloring double doorway
(asynchronous ``ADr`` around synchronous ``SDr``) and the fork-collection
double doorway with a return path (``ADf`` around ``SDf``), interleaved
as in Figure 5.  :class:`DoorwaySet` manages all of them for one node:
the ``L[]`` view of each neighbor's position, cross/exit broadcasts,
entry waiting, and the link-event bookkeeping of Figure 2's LinkUp
handlers.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, FrozenSet, Iterable, Set

from repro.core.base import NodeServices
from repro.core.dispatch import MessageDispatchMixin, handles
from repro.core.messages import DoorwayCross, DoorwayExit
from repro.errors import ProtocolError


class Position(enum.Enum):
    """Last known position of a neighbor relative to one doorway."""

    CROSS = "cross"
    EXIT = "exit"


#: Doorway names of Algorithm 1, in pipeline order (Figure 5).
RECOLOR_ASYNC = "ADr"
RECOLOR_SYNC = "SDr"
FORK_ASYNC = "ADf"
FORK_SYNC = "SDf"
ALL_DOORWAYS = (RECOLOR_ASYNC, RECOLOR_SYNC, FORK_ASYNC, FORK_SYNC)
SYNC_DOORWAYS = frozenset({RECOLOR_SYNC, FORK_SYNC})


class DoorwaySet(MessageDispatchMixin):
    """All doorway state of one node.

    Args:
        node: host node services (send/broadcast/neighbors).
        on_crossed: callback fired (synchronously) when a pending entry
            completes; receives the doorway name.
        doorways: the doorway names managed (default: Algorithm 1's four).
        sync_doorways: which of them use the synchronous discipline.
    """

    def __init__(
        self,
        node: NodeServices,
        on_crossed: Callable[[str], None],
        doorways: Iterable[str] = ALL_DOORWAYS,
        sync_doorways: FrozenSet[str] = SYNC_DOORWAYS,
    ) -> None:
        self._node = node
        self._on_crossed = on_crossed
        self._names = tuple(doorways)
        self._sync = frozenset(sync_doorways)
        self._L: Dict[str, Dict[int, Position]] = {d: {} for d in self._names}
        self._behind: Dict[str, bool] = {d: False for d in self._names}
        self._waiting: Dict[str, bool] = {d: False for d in self._names}
        # For asynchronous doorways: neighbors observed outside at least
        # once since the current entry attempt began (sticky).
        self._seen_outside: Dict[str, Set[int]] = {d: set() for d in self._names}
        # Telemetry: None when the run is uninstrumented (the
        # live_trace/NULL_TRACE idiom), so every probe site below is one
        # pointer test.  _crossed_at feeds the time-behind histogram.
        self._probes = getattr(node, "probes", None)
        self._crossed_at: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def is_behind(self, doorway: str) -> bool:
        """True iff this node is currently behind ``doorway``."""
        return self._behind[doorway]

    def is_waiting(self, doorway: str) -> bool:
        """True iff an entry attempt on ``doorway`` is pending."""
        return self._waiting[doorway]

    def peer_behind(self, doorway: str, peer: int) -> bool:
        """Our last-known view: is ``peer`` behind ``doorway``?"""
        return self._L[doorway].get(peer, Position.EXIT) is Position.CROSS

    def behind_set(self) -> FrozenSet[str]:
        """Doorways this node is behind (the ``L[i]`` part of Hello)."""
        return frozenset(d for d in self._names if self._behind[d])

    def peers_behind(self, doorway: str) -> Set[int]:
        """Current neighbors we believe are behind ``doorway``."""
        return {
            j
            for j in self._node.neighbors()
            if self.peer_behind(doorway, j)
        }

    # ------------------------------------------------------------------
    # Entry / exit
    # ------------------------------------------------------------------
    def start_entry(self, doorway: str) -> None:
        """Begin the entry code; crossing may complete immediately."""
        if self._behind[doorway]:
            raise ProtocolError(
                f"node {self._node.node_id} re-entering doorway {doorway} "
                "while already behind it"
            )
        self._waiting[doorway] = True
        if doorway not in self._sync:
            self._seen_outside[doorway] = {
                j
                for j in self._node.neighbors()
                if not self.peer_behind(doorway, j)
            }
        self._try_cross(doorway)

    def abort_entry(self, doorway: str) -> None:
        """Abandon a pending entry attempt (mobility restart)."""
        self._waiting[doorway] = False
        self._seen_outside[doorway].clear()

    def exit(self, doorway: str) -> None:
        """Run the exit code: broadcast and clear our position."""
        if not self._behind[doorway]:
            return
        self._behind[doorway] = False
        if self._probes is not None:
            now = self._node.now
            self._probes.note_doorway_exit(
                doorway, now - self._crossed_at.pop(doorway, now)
            )
        self._node.broadcast(DoorwayExit(doorway))

    def exit_all(self) -> None:
        """Exit every doorway we are behind and abort pending entries.

        Used by a moving node arriving in a new neighborhood (Algorithm
        3 Line 52): it notifies all neighbors it is outside everything.
        """
        for doorway in self._names:
            self._waiting[doorway] = False
            self._seen_outside[doorway].clear()
            if self._behind[doorway]:
                self._behind[doorway] = False
                if self._probes is not None:
                    now = self._node.now
                    self._probes.note_doorway_exit(
                        doorway, now - self._crossed_at.pop(doorway, now)
                    )
                self._node.broadcast(DoorwayExit(doorway))

    # ------------------------------------------------------------------
    # Upcalls from the host algorithm
    # ------------------------------------------------------------------
    def note_cross(self, src: int, doorway: str) -> None:
        """Record that ``src`` crossed ``doorway``."""
        self._L[doorway][src] = Position.CROSS

    def note_exit(self, src: int, doorway: str) -> None:
        """Record that ``src`` exited ``doorway``; retry pending entries."""
        self._L[doorway][src] = Position.EXIT
        if self._waiting[doorway]:
            if doorway not in self._sync:
                self._seen_outside[doorway].add(src)
            self._try_cross(doorway)
        self._retry_sync_entries()

    @handles(DoorwayCross)
    def _on_cross_message(self, src: int, message: DoorwayCross) -> None:
        self.note_cross(src, message.doorway)

    @handles(DoorwayExit)
    def _on_exit_message(self, src: int, message: DoorwayExit) -> None:
        self.note_exit(src, message.doorway)

    def on_message(self, src: int, message) -> bool:
        """Consume a doorway message; returns True if it was one."""
        return self.dispatch_message(src, message)

    def on_link_down(self, peer: int) -> None:
        """Forget a departed neighbor; blocked entries may now complete."""
        for doorway in self._names:
            self._L[doorway].pop(peer, None)
            self._seen_outside[doorway].discard(peer)
        self.retry_pending()

    def on_new_neighbor_while_static(self, peer: int) -> None:
        """Figure 2, LinkUp while static: the newcomer is outside everything.

        The newcomer genuinely is outside: a moving node exits all
        doorways when it arrives in a new neighborhood.
        """
        for doorway in self._names:
            self._L[doorway][peer] = Position.EXIT
            if self._waiting[doorway] and doorway not in self._sync:
                self._seen_outside[doorway].add(peer)
        # A new neighbor can never *unblock* a sync entry, so no retry.

    def on_hello(self, peer: int, behind_doorways: FrozenSet[str]) -> None:
        """Initialize ``L[peer]`` from a static neighbor's Hello."""
        for doorway in self._names:
            if doorway in behind_doorways:
                self._L[doorway][peer] = Position.CROSS
            else:
                self._L[doorway][peer] = Position.EXIT

    def retry_pending(self) -> None:
        """Re-evaluate every pending entry (after neighbor-set changes)."""
        for doorway in self._names:
            if self._waiting[doorway]:
                self._try_cross(doorway)

    # ------------------------------------------------------------------
    def _retry_sync_entries(self) -> None:
        # An exit observed on one doorway cannot unblock a *different*
        # doorway, but the common case — several pending doorways — is
        # cheap to re-check and keeps the logic obviously safe.
        for doorway in self._names:
            if self._waiting[doorway]:
                self._try_cross(doorway)

    def _satisfied(self, doorway: str) -> bool:
        neighbors = self._node.neighbors()
        if doorway in self._sync:
            return all(not self.peer_behind(doorway, j) for j in neighbors)
        seen = self._seen_outside[doorway]
        return all(j in seen for j in neighbors)

    def _try_cross(self, doorway: str) -> None:
        if not self._waiting[doorway] or not self._satisfied(doorway):
            return
        self._waiting[doorway] = False
        self._seen_outside[doorway].clear()
        self._behind[doorway] = True
        if self._probes is not None:
            self._probes.note_doorway_cross(doorway)
            self._crossed_at[doorway] = self._node.now
        self._node.broadcast(DoorwayCross(doorway))
        self._on_crossed(doorway)
