"""Protocol messages of Algorithms 1-7.

Naming follows the paper where it has a name; the ``Hello`` message is
the pair "(update-color(color[i]), L[i])" that a static node sends to a
newly arrived neighbor in Algorithm 3 Line 46.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from repro.net.messages import Message, interned

# ----------------------------------------------------------------------
# Doorway messages (Chapter 4).  ``doorway`` names which of the node's
# doorways the broadcast refers to: "ADr", "SDr", "ADf" or "SDf".
# ----------------------------------------------------------------------


@interned
@dataclass(frozen=True, slots=True)
class DoorwayCross(Message):
    """Broadcast when a node crosses (completes the entry code of) a doorway."""

    doorway: str


@interned
@dataclass(frozen=True, slots=True)
class DoorwayExit(Message):
    """Broadcast when a node exits a doorway."""

    doorway: str


# ----------------------------------------------------------------------
# Fork collection messages (Algorithms 1 and 6).
# ----------------------------------------------------------------------


@interned
@dataclass(frozen=True, slots=True)
class ForkRequest(Message):
    """``req`` — ask the neighbor for the shared fork."""


@interned
@dataclass(frozen=True, slots=True)
class ForkGrant(Message):
    """``(fork, flag)`` — hand over the shared fork.

    ``flag`` is the "I want it back" bit set by a sender that grants a
    fork to a higher-priority neighbor while itself still competing.
    """

    flag: bool


# ----------------------------------------------------------------------
# Color bookkeeping (Algorithm 1).
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class UpdateColor(Message):
    """``update-color(c)`` — announce the sender's (new) color."""

    color: int


@dataclass(frozen=True, slots=True)
class Hello(Message):
    """State transfer to a newly arrived neighbor (Algorithm 3 Line 46).

    Carries the static node's color (None if it has not chosen one yet)
    and the set of doorways it is currently behind, so the newcomer can
    initialize its ``L[]`` view consistently.
    """

    color: Optional[int]
    behind_doorways: FrozenSet[str] = field(default_factory=frozenset)


# ----------------------------------------------------------------------
# Recoloring module messages (Algorithms 2, 4, 5).
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class RecoloringRound(Message):
    """Marker base for per-round coloring-procedure messages.

    Algorithm 1 NACKs any such message it receives while not
    participating in recoloring (Lines 40-43), regardless of which
    coloring procedure produced it.
    """


@dataclass(frozen=True, slots=True)
class GraphExchange(RecoloringRound):
    """One greedy-coloring round: the sender's edge set G (Algorithm 4).

    ``edges`` are canonical (min, max) node-id pairs.  ``finished`` is
    the flag of Line 71; ``iteration`` pairs rounds between asynchronous
    peers.
    """

    iteration: int
    edges: FrozenSet[Tuple[int, int]]
    finished: bool = False


@dataclass(frozen=True, slots=True)
class TempColor(RecoloringRound):
    """One Linial-coloring round: the sender's temporary color (Algorithm 5)."""

    phase: int
    value: int


@dataclass(frozen=True, slots=True)
class RecolorNack(Message):
    """NACK sent by a node not participating in recoloring (Lines 40-43).

    Tells the sender to drop us from its participant set R.  Echoes the
    round index of the message being refused.
    """

    iteration: int


# ----------------------------------------------------------------------
# Algorithm 2 (Chapter 6) priority messages.
# ----------------------------------------------------------------------


@interned
@dataclass(frozen=True, slots=True)
class Notification(Message):
    """``notification`` — sent to all neighbors upon becoming hungry."""


@interned
@dataclass(frozen=True, slots=True)
class Switch(Message):
    """``switch`` — the sender lowers its priority below the receiver."""
