"""The fork-collection engine shared by Algorithm 1 and Algorithm 6.

Both algorithms collect forks the same way — low (higher-priority)
forks first, then high forks, with suspension rules that give low
neighbors precedence — and differ only in *how priority is decided*
(colors vs. the ``higher[]`` flags) and in *what gates collection*
(being behind the SDf doorway vs. simply being hungry).  This module
implements the shared mechanics against a small host interface, so each
algorithm's listing stays a direct transcription of the paper.

Mapping to the paper's listings (Algorithm 1 / Algorithm 6):

=====================  ======================================
``start_collection``   Lines 1-4 / 3-5
``handle_request``     Lines 10-16 / 10-14
``handle_fork``        Lines 17-23 / 15-21
``send_fork``          Lines 30-32 / 34-36
``release_high``       Lines 33-35 / 37-39
``grant_suspended``    Line 8 / Line 9
=====================  ======================================
"""

from __future__ import annotations

from typing import Protocol

from repro.core.base import NodeServices
from repro.core.forks import ForkTable
from repro.core.messages import ForkGrant, ForkRequest


class ForkHost(Protocol):
    """What the fork engine needs from its algorithm."""

    node: NodeServices
    forks: ForkTable

    def is_low(self, peer: int) -> bool:
        """True iff ``peer`` has priority over us (smaller color /
        ``higher[peer]``)."""
        ...

    def collecting(self) -> bool:
        """True iff we are actively collecting forks (hungry and, for
        Algorithm 1, behind SDf)."""
        ...

    def bypass_grants(self) -> bool:
        """The "outside SDf" / "thinking" disjunct: grant requests
        unconditionally because we are not competing."""
        ...

    def want_back(self, peer: int) -> bool:
        """The flag of the fork message (Line 31 / Line 35)."""
        ...

    def enter_cs(self) -> None:
        """All forks collected: enter the critical section."""
        ...


class ForkProtocol:
    """Priority-based fork collection for one node."""

    __slots__ = ("_host", "_requested", "_probes", "_requested_at")

    def __init__(self, host: ForkHost) -> None:
        self._host = host
        # Dedup of outstanding requests; purely an optimization (the
        # protocol tolerates duplicates) to keep message counts honest.
        self._requested: set = set()
        # Telemetry (None when the run is uninstrumented).  _requested_at
        # stamps the request time per peer to feed the request->grant
        # latency histogram when the fork arrives.
        self._probes = getattr(host.node, "probes", None)
        self._requested_at: dict = {}

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def _neighbors(self):
        return self._host.node.neighbors()

    def all_forks(self) -> bool:
        return self._host.forks.all_forks(self._neighbors())

    def all_low_forks(self) -> bool:
        return self._host.forks.all_low_forks(self._neighbors(), self._host.is_low)

    # ------------------------------------------------------------------
    # Collection entry point (SDf crossed / became hungry)
    # ------------------------------------------------------------------
    def start_collection(self) -> None:
        """Lines 1-4: eat if possible, else request the missing tier."""
        self._requested.clear()
        if self.all_forks():
            self._host.enter_cs()
        elif self.all_low_forks():
            self.request_high_forks()
        else:
            self.request_low_forks()

    def recheck(self) -> None:
        """Re-evaluate progress after the neighbor set or priorities change.

        The listings evaluate ``all-forks`` / ``all-low-forks`` whenever
        an event fires; link failures and ``switch`` messages change the
        truth of those macros without a fork arriving, so the host calls
        this after such events (the proofs of Lemmas 8-9 rely on the
        node proceeding once a blocking neighbor departs).
        """
        if not self._host.collecting():
            return
        if self.all_forks():
            self._host.enter_cs()
        elif self.all_low_forks():
            self.request_high_forks()
        else:
            self.request_low_forks()

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def request_low_forks(self) -> None:
        """Lines 24-26: ask every low neighbor for the missing fork."""
        host = self._host
        for peer in host.forks.missing(self._neighbors(), host.is_low):
            self._request(peer)

    def request_high_forks(self) -> None:
        """Lines 27-29: ask every high neighbor for the missing fork."""
        host = self._host
        for peer in host.forks.missing(
            self._neighbors(), lambda j: not host.is_low(j)
        ):
            self._request(peer)

    def _request(self, peer: int) -> None:
        if peer in self._requested:
            return
        self._requested.add(peer)
        if self._probes is not None:
            self._probes.note_fork_request()
            self._requested_at[peer] = self._host.node.now
        self._host.node.send(peer, ForkRequest())

    # ------------------------------------------------------------------
    # Request handling (Lines 10-16)
    # ------------------------------------------------------------------
    def handle_request(self, src: int) -> None:
        host = self._host
        if not host.forks.holds(src):
            return  # the fork is already on its way to src
        if not host.is_low(src):
            # Request from a high neighbor: grant unless we hold all low
            # forks while competing.
            if not self.all_low_forks() or host.bypass_grants():
                self.send_fork(src)
            else:
                host.forks.suspended.add(src)
        else:
            # Request from a low neighbor: grant unless we already hold
            # everything (we are eating or about to).
            if not self.all_forks() or host.bypass_grants():
                self.send_fork(src)
                self.release_high_forks()
            else:
                host.forks.suspended.add(src)

    # ------------------------------------------------------------------
    # Fork receipt (Lines 17-23)
    # ------------------------------------------------------------------
    def handle_fork(self, src: int, flag: bool) -> None:
        host = self._host
        host.forks.set_holds(src, True)
        self._requested.discard(src)
        if self._probes is not None:
            requested_at = self._requested_at.pop(src, None)
            if requested_at is not None:
                self._probes.note_fork_grant_latency(
                    host.node.now - requested_at
                )
        if not host.collecting():
            # Not competing (thinking, or hungry outside SDf after the
            # return path): honor a want-back immediately rather than
            # strand the sender.
            if flag:
                self.send_fork(src)
            return
        if self.all_forks():
            host.enter_cs()
        if self.all_low_forks():
            if flag:
                host.forks.suspended.add(src)
            self.request_high_forks()
        elif flag:
            self.send_fork(src)

    # ------------------------------------------------------------------
    # Granting
    # ------------------------------------------------------------------
    def send_fork(self, peer: int) -> None:
        """Lines 30-32: hand the fork over, with the want-back flag."""
        host = self._host
        if self._probes is not None:
            self._probes.note_fork_grant()
        host.node.send(peer, ForkGrant(flag=host.want_back(peer)))
        host.forks.set_holds(peer, False)
        host.forks.suspended.discard(peer)

    def release_high_forks(self) -> None:
        """Lines 33-35: grant suspended high-fork requests we can satisfy."""
        host = self._host
        for peer in sorted(host.forks.suspended):
            if not host.is_low(peer) and host.forks.holds(peer):
                self.send_fork(peer)

    def grant_suspended(self) -> None:
        """Line 8 / Line 9: grant every suspended request."""
        host = self._host
        for peer in sorted(host.forks.suspended):
            if host.forks.holds(peer) and peer in self._neighbors():
                self.send_fork(peer)
        host.forks.suspended.clear()

    def clear_requests(self) -> None:
        """Forget request dedup state (leaving SDf / finishing a cycle)."""
        self._requested.clear()

    def forget_peer(self, peer: int) -> None:
        """Link to ``peer`` failed: drop any outstanding request state."""
        self._requested.discard(peer)
        self._requested_at.pop(peer, None)
