"""Algorithm 2: optimal failure locality via dynamic priorities (Chapter 6).

No doorways and no colors: each node keeps a boolean ``higher[j]`` per
neighbor ("j currently has priority over me").  A node that becomes
hungry first *notifies* its neighbors; a thinking neighbor that still
outranks the requester responds by *switching* — lowering itself below
all of its neighbors — so standing priority can never be hoarded by
passive nodes (this is what buys the O(n) static response time of
Theorem 26).  A node exiting its critical section likewise lowers
itself below everyone (the link-reversal step that keeps the priority
graph acyclic, Lemma 24).

Fork collection itself is the shared engine with ``higher[]`` in place
of color comparisons; the "outside SDf" grant bypass becomes "I am
thinking" since there is no doorway to be outside of.

Failure locality is the optimal 2 (Theorem 25): a crashed node can
strand only the neighbors waiting on its forks and, transitively, their
neighbors waiting on *those* forks — never further, because a hungry
node with all low forks suspends high requests only while its crashed
high neighbor keeps it from eating.
"""

from __future__ import annotations

from typing import Dict

from repro.core.base import LocalMutexAlgorithm, NodeServices
from repro.core.dispatch import MessageDispatchMixin, handles
from repro.core.fork_collection import ForkProtocol
from repro.core.forks import ForkTable
from repro.core.messages import ForkGrant, ForkRequest, Notification, Switch
from repro.core.states import NodeState
from repro.net.messages import Message


class Algorithm2(MessageDispatchMixin, LocalMutexAlgorithm):
    """The second algorithm (Algorithms 6 and 7)."""

    name = "alg2"

    __slots__ = ("higher", "forks", "fork_proto", "switches_sent", "_probes")

    def __init__(self, node: NodeServices) -> None:
        super().__init__(node)
        #: higher[j] — neighbor j has priority over us.  Exactly one of
        #: higher_i[j] / higher_j[i] holds except while a switch message
        #: is in transit (both True), preserving Lemma 24's acyclicity.
        self.higher: Dict[int, bool] = {}
        self.forks = ForkTable()
        self.fork_proto = ForkProtocol(self)
        #: Counter for experiments.
        self.switches_sent = 0
        # Telemetry (None when the run is uninstrumented).
        self._probes = getattr(node, "probes", None)

    # ------------------------------------------------------------------
    # Bootstrap
    # ------------------------------------------------------------------
    def bootstrap_peer(self, peer: int) -> None:
        """Initial state: smaller ID holds the fork and yields priority."""
        self.forks.set_holds(peer, self.node_id < peer)
        self.higher[peer] = self.node_id < peer

    def bootstrap_peers(self, peers) -> None:
        """Fused :meth:`bootstrap_peer` loop (city-scale construction).

        Same per-peer state in the same (ascending) insertion order,
        writing the two per-peer dicts directly instead of paying two
        method calls and a property read per link endpoint.
        """
        me = self.node.node_id
        at = self.forks._at
        higher = self.higher
        for peer in peers:
            at[peer] = higher[peer] = me < peer

    # ------------------------------------------------------------------
    # ForkHost interface
    # ------------------------------------------------------------------
    def is_low(self, peer: int) -> bool:
        return self.higher.get(peer, False)

    def collecting(self) -> bool:
        return self.node.state is NodeState.HUNGRY

    def bypass_grants(self) -> bool:
        return self.node.state is NodeState.THINKING

    def want_back(self, peer: int) -> bool:
        return self.is_low(peer) and self.node.state is NodeState.HUNGRY

    def enter_cs(self) -> None:
        self.node.start_eating()

    # ------------------------------------------------------------------
    # Application upcalls
    # ------------------------------------------------------------------
    def on_hungry(self) -> None:
        """Lines 1-5: notify everyone, then start collecting."""
        if self._probes is not None:
            self._probes.note_notification()
        self.node.broadcast(Notification())
        self.fork_proto.start_collection()

    def on_exit_cs(self) -> None:
        """Lines 6-9: lower our priority below all, grant suspensions."""
        self._switch_below_all("exit_cs")
        self.fork_proto.grant_suspended()
        self.fork_proto.clear_requests()

    def _switch_below_all(self, reason: str) -> None:
        """Send ``switch`` to every neighbor we currently outrank.

        ``reason`` labels the priority flip for telemetry: "exit_cs"
        (Lines 6-9), "notified" (Lines 22-25) or "link_up" (Lines 45-46).
        """
        probes = self._probes
        for peer in self.node.sorted_neighbors():
            state = self.higher.get(peer)
            if state is None:
                # The link formed this very instant and its handshake
                # (on_link_up) has not run yet; the per-link priority is
                # established there.  Treating the missing entry as "we
                # outrank them" would send a Switch that can cross the
                # peer's own and leave both sides low — the antisymmetry
                # violation the priority monitor guards against.
                continue
            if not state:
                self.node.send(peer, Switch())
                self.higher[peer] = True
                self.switches_sent += 1
                if probes is not None:
                    probes.note_switch(reason)

    # ------------------------------------------------------------------
    # Messages
    # ------------------------------------------------------------------
    def on_message(self, src: int, message: Message) -> None:
        self.dispatch_message(src, message)

    @handles(ForkRequest)
    def _on_fork_request(self, src: int, message: ForkRequest) -> None:
        self.fork_proto.handle_request(src)

    @handles(ForkGrant)
    def _on_fork_grant(self, src: int, message: ForkGrant) -> None:
        self.fork_proto.handle_fork(src, message.flag)

    @handles(Notification)
    def _on_notification(self, src: int, message: Notification) -> None:
        # Lines 22-25: a thinking node that outranks the requester
        # steps below all of its neighbors.
        if (
            self.node.state is NodeState.THINKING
            and not self.higher.get(src, False)
        ):
            self._switch_below_all("notified")

    @handles(Switch)
    def _on_switch(self, src: int, message: Switch) -> None:
        # Lines 26-27 — plus a progress re-check: the sender just
        # became our high neighbor, which can complete all-low-forks.
        self.higher[src] = False
        self.fork_proto.recheck()

    # ------------------------------------------------------------------
    # Link dynamics (Algorithm 7)
    # ------------------------------------------------------------------
    def on_link_up(self, peer: int, moving: bool) -> None:
        if not moving:
            # Lines 40-41: the static endpoint owns the fork and the
            # priority (bias toward non-moving nodes, Section 3.1).
            self.forks.link_created(peer, we_are_static=True)
            self.higher[peer] = False
            return
        # Lines 42-46: the mover yields the fork and all priority.
        self.forks.link_created(peer, we_are_static=False)
        self.higher[peer] = True
        if self.node.state is NodeState.EATING:
            self.node.demote_to_hungry()  # Line 44
        self._switch_below_all("link_up")  # Lines 45-46
        # Resume collection against the new neighborhood (the proof of
        # Theorem 25 restarts the response-time analysis at the move).
        self.fork_proto.recheck()

    def on_link_down(self, peer: int) -> None:
        # Lines 47-48 (S := S \ {j}) plus per-link state destruction.
        self.forks.link_destroyed(peer)
        self.higher.pop(peer, None)
        self.fork_proto.forget_peer(peer)
        # A departed neighbor may have been the only reason we could not
        # eat; the macros are over the *current* neighbor set.
        self.fork_proto.recheck()
