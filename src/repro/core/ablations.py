"""Ablated protocol variants for the design-choice benchmarks.

Each variant removes exactly one mechanism the paper argues for, so the
A-series benchmarks can attribute measured properties to mechanisms:

* :class:`Algorithm2NoNotify` — Algorithm 2 without the notification /
  switch-on-notification mechanism.  The paper credits that mechanism
  for the static O(n) response (Theorem 26): without it, a thinking
  neighbor retains stale priority and ambushes the hungry node when it
  wakes, re-creating the convoy behavior of prior optimal-locality
  algorithms.
* :class:`Algorithm1NoReturnPath` — Algorithm 1 without the SDf return
  path (Lines 59-60 disabled).  The return path exists so a node whose
  low neighbor departed holding their shared fork re-queues instead of
  barging with its leftover in-doorway standing (Lemma 8's analysis
  leans on it); removing it degrades fairness under mobility.
* :class:`PassthroughDoorwaySet` / the ``alg1-nodoorway`` registry
  entry — fork collection with colors but with every doorway entry
  auto-granted.  Without doorway admission control, locally-low-colored
  nodes can re-enter endlessly while a high-colored neighbor waits for
  its fork set to align, inflating tail response (the effect Choy and
  Singh introduced doorways to bound).  Only valid with a fixed legal
  coloring (no recoloring), since doorways are also what keeps
  concurrent recoloring sessions aligned.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.algorithm1 import Algorithm1
from repro.core.algorithm2 import Algorithm2
from repro.core.base import NodeServices
from repro.core.coloring.greedy import GreedyColoring
from repro.core.doorway import DoorwaySet
from repro.core.messages import Notification
from repro.errors import ConfigurationError


class Algorithm2NoNotify(Algorithm2):
    """Algorithm 2 with the notification mechanism removed (ablation A1)."""

    name = "alg2-nonotify"

    def on_hungry(self) -> None:
        # Line 2 skipped: neighbors are not warned.
        self.fork_proto.start_collection()

    def _on_notification(self, src: int, message: Notification) -> None:
        # Dispatch-table override: the @handles mark on the base method
        # resolves to this no-op, so notifications are dropped.
        return  # pragma: no cover - nobody sends them in this variant


class Algorithm1NoReturnPath(Algorithm1):
    """Algorithm 1 with the SDf return path disabled (ablation A2)."""

    name = "alg1-noreturn"

    def _take_return_path(self) -> None:
        # Lines 59-60 skipped: stay behind SDf and just re-evaluate the
        # fork macros over the shrunken neighbor set.
        self.fork_proto.recheck()


class Algorithm1SelfOrganizing(Algorithm1):
    """The self-organizing variant sketched in Chapter 7.

    "It seems our first algorithm can be made self-organizing by
    running a recoloring module to fix the colors of nodes after every
    topology change."  Here *both* endpoints of a new link schedule a
    recoloring before next competing — not only the mover — so color
    ranges stay compact as the neighborhood graph densifies, at the
    price of extra recoloring traffic (quantified in the E7/E8
    benches when run with this variant).
    """

    name = "alg1-selforg"

    def on_link_up(self, peer: int, moving: bool) -> None:
        super().on_link_up(peer, moving)
        if not moving:
            # The static endpoint also refreshes its color before its
            # next critical-section attempt.  Unlike the mover it does
            # not abandon an in-flight attempt: interrupting a node
            # behind SDf would forfeit its standing for no safety gain.
            if not self._pipeline_active():
                self.needs_recolor = True


class PassthroughDoorwaySet(DoorwaySet):
    """A doorway set whose every entry succeeds immediately."""

    def _satisfied(self, doorway: str) -> bool:
        return True


class Algorithm1NoDoorways(Algorithm1):
    """Algorithm 1's fork collection without doorway admission (ablation A3).

    Requires a pre-assigned legal coloring: without doorways there is
    nothing keeping concurrent recoloring sessions round-aligned, so
    this variant refuses to run uncolored.
    """

    name = "alg1-nodoorway"

    def __init__(
        self,
        node: NodeServices,
        initial_colors: Dict[int, int],
        coloring: Optional[GreedyColoring] = None,
    ) -> None:
        if initial_colors is None or node.node_id not in initial_colors:
            raise ConfigurationError(
                "alg1-nodoorway requires a full initial coloring"
            )
        super().__init__(
            node,
            coloring=coloring or GreedyColoring(),
            initial_colors=initial_colors,
        )
        # Swap in pass-through doorways (same names, no admission).
        self.doorways = PassthroughDoorwaySet(node, self._on_crossed)
