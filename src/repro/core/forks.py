"""Per-node fork bookkeeping shared by Algorithms 1 and 6.

A fork is a token shared by the two endpoints of a live link; holding
it means holding the neighbor's permission to eat.  Forks are created
at link formation (owned by the static endpoint) and destroyed at link
failure.  ``at[j]`` is the paper's boolean "I hold the fork shared with
p_j"; ``S`` is the set of neighbors whose fork requests are suspended.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Set


class ForkTable:
    """The ``at[]`` array and suspended-request set ``S`` of one node."""

    __slots__ = ("_at", "suspended")

    def __init__(self) -> None:
        self._at: Dict[int, bool] = {}
        self.suspended: Set[int] = set()

    # ------------------------------------------------------------------
    # The at[] predicate
    # ------------------------------------------------------------------
    def holds(self, peer: int) -> bool:
        """``at[peer]`` — True iff we hold the fork shared with peer."""
        return self._at.get(peer, False)

    def set_holds(self, peer: int, value: bool) -> None:
        self._at[peer] = value

    def known_peers(self) -> Iterable[int]:
        return self._at.keys()

    # ------------------------------------------------------------------
    # Link lifecycle
    # ------------------------------------------------------------------
    def link_created(self, peer: int, we_are_static: bool) -> None:
        """Fork created with the link, owned by the static endpoint."""
        self._at[peer] = we_are_static
        self.suspended.discard(peer)

    def link_destroyed(self, peer: int) -> None:
        """Fork destroyed with the link."""
        self._at.pop(peer, None)
        self.suspended.discard(peer)

    # ------------------------------------------------------------------
    # The all-forks / all-low-forks macros (Section 5.2)
    # ------------------------------------------------------------------
    def all_forks(self, neighbors: FrozenSet[int]) -> bool:
        """True iff we hold the fork of every current neighbor."""
        return all(self._at.get(j, False) for j in neighbors)

    def all_low_forks(
        self, neighbors: FrozenSet[int], is_low: Callable[[int], bool]
    ) -> bool:
        """True iff we hold every fork shared with a *low* neighbor.

        A low neighbor is one with higher priority (smaller color in
        Algorithm 1, ``higher[j]`` true in Algorithm 6); the predicate
        is injected by the host algorithm.
        """
        return all(self._at.get(j, False) for j in neighbors if is_low(j))

    def missing(
        self, neighbors: FrozenSet[int], want: Callable[[int], bool]
    ) -> Iterable[int]:
        """Neighbors matching ``want`` whose fork we do not hold (sorted)."""
        return sorted(
            j for j in neighbors if want(j) and not self._at.get(j, False)
        )
