"""Table-driven protocol message dispatch.

Every protocol handler used to route incoming messages through an
``isinstance`` if/elif chain — a linear scan of Python-level type
checks on the hottest upcall in the system.  This module replaces the
chains with a per-class dispatch table keyed on the *message class*:

* mark handler methods with :func:`handles`::

      class Algorithm2(MessageDispatchMixin, LocalMutexAlgorithm):
          @handles(ForkRequest)
          def _on_fork_request(self, src, message):
              self.fork_proto.handle_request(src)

* :class:`MessageDispatchMixin` assembles ``{message class: function}``
  per concrete class at definition time, resolving handler *names*
  through the subclass so ordinary method overriding still works (an
  ablation overrides ``_on_notification`` and the table picks up the
  override — no table surgery needed);

* :meth:`~MessageDispatchMixin.dispatch_message` routes one message
  with a single dict lookup on ``type(message)``.  Messages whose exact
  class is not in the table fall back to a one-time MRO walk (so a
  handler registered for a marker base like ``RecoloringRound`` catches
  every subclass), and the outcome — handler or miss — is cached, so
  the steady state is always one dict hit.

Unhandled messages are ignored (``dispatch_message`` returns False),
preserving the forward-compatibility stance of the if/elif chains.
"""

from __future__ import annotations

from typing import Any, Callable, ClassVar, Dict, Type

Handler = Callable[[Any, int, Any], None]

#: Attribute name carrying a handler's message classes (set by @handles).
_MARK = "__dispatch_handles__"

#: Cache entry meaning "no handler anywhere in this message class's MRO".
_MISS = None


def handles(*message_types: type):
    """Mark a method as the handler for the given message classes.

    A handler registered for a base class catches all of its subclasses
    unless a more specific handler exists (closest match in the message
    class's MRO wins).
    """
    if not message_types:
        raise ValueError("@handles needs at least one message class")

    def mark(fn):
        setattr(fn, _MARK, message_types)
        return fn

    return mark


class MessageDispatchMixin:
    """Gives a class a message dispatch table built from @handles marks."""

    # Stateless mixin (the table is a class attribute): empty slots keep
    # slotted users dict-free.
    __slots__ = ()

    _dispatch_table: ClassVar[Dict[type, Handler]]

    def __init_subclass__(cls, **kwargs) -> None:
        # object.__init_subclass__ rather than zero-arg super(): mixin
        # users may be re-created (dataclass slots) and cooperative
        # super() would then hold a stale __class__ cell.
        object.__init_subclass__(**kwargs)
        table: Dict[type, Handler] = {}
        # Base-to-derived scan; getattr(cls, name) resolves each marked
        # name through the *final* MRO, so overriding a handler method
        # in a subclass replaces the entry even without re-decorating.
        for klass in reversed(cls.__mro__):
            for name, attr in vars(klass).items():
                if getattr(attr, _MARK, None):
                    fn = getattr(cls, name)
                    for mtype in getattr(attr, _MARK):
                        table[mtype] = fn
        cls._dispatch_table = table

    def dispatch_message(self, src: int, message: Any) -> bool:
        """Route one message; True iff a handler consumed it."""
        table = self._dispatch_table
        mtype = message.__class__
        try:
            handler = table[mtype]
        except KeyError:
            handler = self._resolve_handler(mtype)
        if handler is _MISS:
            return False
        handler(self, src, message)
        return True

    @classmethod
    def _resolve_handler(cls, mtype: Type) -> Any:
        """MRO-walk fallback for message classes seen the first time."""
        table = cls._dispatch_table
        handler = _MISS
        for base in mtype.__mro__[1:]:
            found = table.get(base)
            if found is not None:
                handler = found
                break
        table[mtype] = handler
        return handler
