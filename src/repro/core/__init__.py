"""The paper's contribution: two local mutual exclusion algorithms.

* :class:`~repro.core.algorithm1.Algorithm1` — doorway pipeline +
  recoloring + fork collection (Chapter 5), with pluggable coloring
  procedures (greedy, Algorithm 4; Linial, Algorithm 5).
* :class:`~repro.core.algorithm2.Algorithm2` — doorway-free fork
  collection with dynamic boolean priorities (Chapter 6); optimal
  failure locality 2.

Both are reactive state machines implementing the
:class:`~repro.core.base.LocalMutexAlgorithm` interface, driven by the
runtime node harness.
"""

from repro.core.algorithm1 import Algorithm1
from repro.core.algorithm2 import Algorithm2
from repro.core.base import LocalMutexAlgorithm, NodeServices
from repro.core.states import NodeState

__all__ = [
    "Algorithm1",
    "Algorithm2",
    "LocalMutexAlgorithm",
    "NodeServices",
    "NodeState",
]
